// Elderly-care scenario (the paper's motivating application): a
// dementia patient wears an IoT pendant in a two-story house. The
// caregiver is alerted when the patient wanders out — but only after a
// few consecutive outside decisions, to avoid false alarms from single
// noisy scans.
//
// Demonstrates: multi-floor premises, alert debouncing on top of
// GEM's per-record decisions, and inspecting outlier scores.

#include <cstdio>
#include <deque>

#include "core/gem.h"
#include "rf/dataset.h"

using namespace gem;  // NOLINT(build/namespaces) example binary

namespace {

/// Raises an alarm only after `threshold` consecutive outside
/// decisions (a scan every few seconds makes this a ~15 s latency).
class WanderingAlarm {
 public:
  explicit WanderingAlarm(int threshold) : threshold_(threshold) {}

  /// Returns true when the alarm fires (on the transition only).
  bool Observe(core::Decision decision) {
    if (decision == core::Decision::kOutside) {
      ++streak_;
    } else {
      streak_ = 0;
      fired_ = false;
    }
    if (streak_ >= threshold_ && !fired_) {
      fired_ = true;
      return true;
    }
    return false;
  }

 private:
  int threshold_;
  int streak_ = 0;
  bool fired_ = false;
};

}  // namespace

int main() {
  // The ~200 m^2 two-story house preset (Table II user 10).
  rf::DatasetOptions options;
  options.seed = 11;
  const rf::Dataset data =
      rf::GenerateScenarioDataset(rf::HomePreset(9), options);

  core::Gem gem{core::GemConfig{}};
  if (!gem.Train(data.train).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }
  std::printf("GEM trained on %zu records from the initial walk.\n\n",
              data.train.size());

  WanderingAlarm alarm(/*threshold=*/5);
  int alarms = 0;
  int true_outside_events = 0;
  bool was_outside = false;
  for (size_t i = 0; i < data.test.size(); ++i) {
    const rf::ScanRecord& record = data.test[i];
    const core::InferenceResult result = gem.Infer(record);
    if (!record.inside && !was_outside) ++true_outside_events;
    was_outside = !record.inside;

    if (alarm.Observe(result.decision)) {
      ++alarms;
      std::printf("ALERT at t=%.0fs: patient appears OUTSIDE "
                  "(score %.2f, truly %s)\n",
                  record.timestamp_s, result.score,
                  record.inside ? "inside" : "outside");
    }
  }
  std::printf("\n%d alarm(s) raised across %d true outside excursions.\n",
              alarms, true_outside_events);
  return 0;
}

// Quickstart: train GEM on a few minutes of in-premises RF scans, then
// stream new scans through it for in-out detection.
//
// This example uses the bundled RF simulator as the scan source; in a
// real deployment you would fill rf::ScanRecord from your platform's
// WiFi scan API (each record is just a list of (MAC, RSS) pairs).

#include <cstdio>

#include "core/gem.h"
#include "obs/export.h"
#include "rf/dataset.h"

using namespace gem;  // NOLINT(build/namespaces) example binary

int main() {
  // 1. Get initial in-premises training data: the user walks the
  //    inner perimeter of a ~50 m^2 apartment for ~8 minutes.
  rf::DatasetOptions options;
  options.seed = 7;
  const rf::Dataset data =
      rf::GenerateScenarioDataset(rf::HomePreset(2), options);
  std::printf("training records: %zu (all in-premises)\n",
              data.train.size());

  // 2. Train GEM: bipartite graph -> BiSAGE embeddings -> enhanced
  //    histogram detector. Defaults follow the paper's tuned values.
  core::Gem gem{core::GemConfig{}};
  const Status status = gem.Train(data.train);
  if (!status.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("model trained (graph: %d records, %d MACs)\n",
              gem.embedder().graph().num_records(),
              gem.embedder().graph().num_macs());

  // 3. Stream new scans. Each Infer() embeds the record, decides
  //    inside/outside, and self-enhances on highly confident
  //    in-premises samples.
  int correct = 0;
  int alerts = 0;
  int updates = 0;
  for (const rf::ScanRecord& record : data.test) {
    const core::InferenceResult result = gem.Infer(record);
    const bool predicted_inside =
        result.decision == core::Decision::kInside;
    correct += predicted_inside == record.inside ? 1 : 0;
    alerts += predicted_inside ? 0 : 1;
    updates += result.model_updated ? 1 : 0;
  }
  std::printf("streamed %zu records: %.1f%% correct, %d alerts, "
              "%d self-enhancement updates\n",
              data.test.size(),
              100.0 * correct / static_cast<double>(data.test.size()),
              alerts, updates);

  // 4. Every stage above was instrumented by gem::obs — dump the
  //    Table-III-style per-stage latency + counter breakdown.
  std::printf("\n== gem::obs metrics ==\n%s",
              obs::Export(obs::MetricsRegistry::Get(),
                          obs::ExportFormat::kTable)
                  .c_str());
  return 0;
}

// multi_fence_serve — the full snapshot + serving lifecycle in one run.
//
// 1. Train GEM on four simulated homes and snapshot each to disk.
// 2. Start a fresh FenceRegistry (as a restarted server process would)
//    and load every snapshot back.
// 3. Drive mixed traffic for all four fences through the serving
//    engine from several client threads at once.
// 4. Mid-stream, live-reload one fence from its snapshot and watch the
//    generation counter tick without dropping traffic.
// 5. Dump the gem::obs metrics the engine recorded.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/gem.h"
#include "obs/export.h"
#include "rf/dataset.h"
#include "serve/engine.h"
#include "serve/fence_registry.h"
#include "serve/snapshot.h"

using namespace gem;  // NOLINT(build/namespaces) example binary

namespace {

constexpr int kNumFences = 4;

rf::Dataset SimulateHome(int user) {
  rf::DatasetOptions options;
  options.train_duration_s = 240.0;  // keep the demo quick
  options.test_segments = 4;
  options.test_segment_duration_s = 60.0;
  options.seed = 1000 + static_cast<uint64_t>(user);
  return rf::GenerateScenarioDataset(rf::HomePreset(user), options);
}

}  // namespace

int main() {
  // --- Phase 1: train and snapshot four homes. -----------------------
  std::vector<std::string> snapshot_paths;
  std::vector<rf::Dataset> datasets;
  for (int user = 0; user < kNumFences; ++user) {
    datasets.push_back(SimulateHome(user));
    core::Gem gem{core::GemConfig{}};
    const Status trained = gem.Train(datasets.back().train);
    if (!trained.ok()) {
      std::fprintf(stderr, "training home %d failed: %s\n", user,
                   trained.ToString().c_str());
      return 1;
    }
    const std::string path =
        "home_" + std::to_string(user) + ".gem";
    const Status saved = serve::SaveSnapshot(path, gem);
    if (!saved.ok()) {
      std::fprintf(stderr, "snapshot %s failed: %s\n", path.c_str(),
                   saved.ToString().c_str());
      return 1;
    }
    snapshot_paths.push_back(path);
    std::printf("home_%d trained and snapshotted to %s\n", user,
                path.c_str());
  }

  // --- Phase 2: "restart" — a fresh registry loads the snapshots. ----
  serve::FenceRegistry registry;
  for (int user = 0; user < kNumFences; ++user) {
    const std::string fence_id = "home_" + std::to_string(user);
    auto generation =
        registry.InstallFromSnapshot(fence_id, snapshot_paths[user]);
    if (!generation.ok()) {
      std::fprintf(stderr, "loading %s failed: %s\n",
                   snapshot_paths[user].c_str(),
                   generation.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("registry serving %zu fences\n", registry.size());

  // --- Phase 3+4: concurrent mixed traffic with a live reload. -------
  serve::Engine engine(&registry);
  std::atomic<int> served{0};
  std::atomic<int> shed{0};
  std::vector<std::thread> clients;
  clients.reserve(kNumFences);
  for (int user = 0; user < kNumFences; ++user) {
    clients.emplace_back([&, user] {
      const std::string fence_id = "home_" + std::to_string(user);
      for (const rf::ScanRecord& record : datasets[user].test) {
        serve::ServeRequest request;
        request.fence_id = fence_id;
        request.record = record;
        serve::ServeResponse response = engine.InferBlocking(request);
        while (response.status.code() == StatusCode::kUnavailable) {
          shed.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          response = engine.InferBlocking(request);
        }
        if (response.status.ok()) served.fetch_add(1);
      }
    });
  }

  // Live reload home_0 from its snapshot while the clients hammer it:
  // in-flight requests finish against the model they resolved; new
  // requests see generation 2.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto reloaded =
      registry.InstallFromSnapshot("home_0", snapshot_paths[0]);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "live reload failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("live-reloaded home_0 (now generation %llu)\n",
              static_cast<unsigned long long>(reloaded.value()));

  for (std::thread& client : clients) client.join();
  engine.Shutdown();
  std::printf("served %d requests (%d retried after backpressure)\n",
              served.load(), shed.load());

  // --- Phase 5: what the engine observed. ----------------------------
  const Status dumped = obs::WriteMetrics("-", obs::ExportFormat::kTable);
  if (!dumped.ok()) {
    std::fprintf(stderr, "metrics dump failed: %s\n",
                 dumped.ToString().c_str());
    return 1;
  }
  return 0;
}

// gem_cli — command-line geofencing over CSV scan logs.
//
// Usage:
//   gem_cli simulate <out_train.csv> <out_test.csv> [user 0-9] [seed]
//       Generate a simulated home dataset and write it as CSV.
//   gem_cli run <train.csv> <test.csv> [--threads=N]
//       Train GEM on the (in-premises) training records and stream the
//       test records through it, printing one decision per record and
//       summary metrics at the end (when the CSV carries ground truth).
//   gem_cli train <train.csv> --snapshot_out=<model.gem> [--threads=N]
//       Train GEM and persist the fitted model as a binary snapshot.
//   gem_cli serve --snapshots=<a.gem,b.gem,...> --requests=<records.csv>
//           [--threads=N] [--queue_depth=N] [--deadline_ms=N]
//           [--failpoints=SPEC]
//       Load each snapshot as a fence (id = file basename without
//       .gem), start the multi-tenant serving engine, and replay the
//       request CSV across the fences round-robin. --deadline_ms sets
//       the engine's default per-request deadline. --failpoints
//       installs a fault-injection schedule (grammar in
//       src/fault/failpoint.h, e.g.
//       "serve.engine.process=prob=0.01@7/unavailable"); it is an
//       error (exit 2) unless the binary was built with
//       -DGEM_ENABLE_FAILPOINTS=ON. Requests that fail under injection
//       or deadlines are counted and reported, not fatal.
//
// --threads=N sets the BiSAGE training / batch-embedding worker count
// for run and train, and the engine worker count for serve. The value
// is recorded in the metrics dump as the gem_cli_threads gauge
// (labeled by command), so a --metrics_out file documents how the run
// was parallelized.
//
// Observability flags (any command):
//   --metrics_out=<path>   Write a gem::obs metrics dump after the run
//                          ("-" = stdout).
//   --metrics_format=FMT   prom | json | table (default: table).
//   --trace_out=<path>     Record the per-thread timeline profiler for
//                          the whole run and write Chrome trace-event
//                          JSON (open in Perfetto / chrome://tracing).
//                          GEM_PROFILE=<path> does the same without a
//                          flag.
//
// serve additionally accepts:
//   --metrics_every_ms=N   Rewrite --metrics_out every N ms while the
//                          replay runs, so a long-running serve is
//                          observable before it exits.
// serve also traps SIGINT: the replay stops at the next request and
// the run finishes normally — final metrics dump, trace write, clean
// engine shutdown — instead of dying with half-written output.
//
// Unknown --flags and malformed flag values are errors: usage goes to
// stderr and the exit code is 2.
//
// The CSV format is rf::SaveRecordsCsv's:
//   record_id,timestamp_s,inside,mac,rss_dbm,band
// so real-device scan logs can be converted and replayed.

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/gem.h"
#include "fault/failpoint.h"
#include "math/metrics.h"
#include "obs/export.h"
#include "obs/resource_sampler.h"
#include "obs/timeline.h"
#include "rf/dataset.h"
#include "rf/record_io.h"
#include "serve/engine.h"
#include "serve/fence_registry.h"
#include "serve/snapshot.h"

using namespace gem;  // NOLINT(build/namespaces) CLI binary

namespace {

constexpr const char* kUsage =
    "gem_cli — geofencing over CSV scan logs\n"
    "  gem_cli simulate <train.csv> <test.csv> [user 0-9] [seed]\n"
    "  gem_cli run <train.csv> <test.csv> [--threads=N]\n"
    "  gem_cli train <train.csv> --snapshot_out=<model.gem> [--threads=N]\n"
    "  gem_cli serve --snapshots=<a.gem,b.gem,...> "
    "--requests=<records.csv>\n"
    "          [--threads=N] [--queue_depth=N] [--deadline_ms=N]\n"
    "          [--failpoints=SPEC]\n"
    "          [--metrics_every_ms=N]\n"
    "  any command: --metrics_out=<path|-> "
    "--metrics_format={prom,json,table}\n"
    "               --trace_out=<path|-> (Chrome trace-event JSON)\n";

int Usage() {
  std::fputs(kUsage, stderr);
  return 2;
}

struct ParsedArgs {
  std::vector<std::string> positional;  // [0] is the subcommand
  // --key=value and bare --key flags, in order.
  std::vector<std::pair<std::string, std::string>> flags;
};

/// Splits argv into positionals and --key[=value] flags. Flag
/// legality is checked per subcommand afterwards.
ParsedArgs SplitArgs(int argc, char** argv) {
  ParsedArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        args.flags.emplace_back(arg.substr(2), "");
      } else {
        args.flags.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

struct MetricsFlags {
  bool requested = false;
  std::string out = "-";
  obs::ExportFormat format = obs::ExportFormat::kTable;
};

/// Common flag table: every subcommand accepts the metrics and trace
/// flags; anything not in `allowed` (nor a common flag) is a usage
/// error.
bool CheckFlags(const ParsedArgs& args,
                const std::vector<std::string>& allowed,
                MetricsFlags* metrics, std::string* trace_out) {
  for (const auto& [key, value] : args.flags) {
    if (key == "trace_out") {
      if (value.empty()) {
        std::fprintf(stderr, "--trace_out needs a path (or -)\n");
        return false;
      }
      *trace_out = value;
      continue;
    }
    if (key == "metrics_out") {
      if (value.empty()) {
        std::fprintf(stderr, "--metrics_out needs a path (or -)\n");
        return false;
      }
      metrics->requested = true;
      metrics->out = value;
      continue;
    }
    if (key == "metrics_format") {
      const auto format = obs::ParseExportFormat(value);
      if (!format.has_value()) {
        std::fprintf(stderr,
                     "unknown --metrics_format '%s' (want prom, json or "
                     "table)\n",
                     value.c_str());
        return false;
      }
      metrics->requested = true;
      metrics->format = *format;
      continue;
    }
    bool ok = false;
    for (const std::string& name : allowed) ok = ok || name == key;
    if (!ok) {
      std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
      return false;
    }
  }
  return true;
}

std::string FlagValue(const ParsedArgs& args, const std::string& key,
                      const std::string& fallback = "") {
  for (const auto& [k, v] : args.flags) {
    if (k == key) return v;
  }
  return fallback;
}

/// Strict positive-int flag parse; returns false (with a message) on
/// garbage like --threads=abc or --threads=0.
bool ParsePositiveInt(const std::string& value, const char* flag_name,
                      int* out) {
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || v < 1 ||
      v > 1 << 20) {
    std::fprintf(stderr, "--%s needs a positive integer, got '%s'\n",
                 flag_name, value.c_str());
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

int DumpMetrics(const MetricsFlags& flags) {
  if (!flags.requested) return 0;
  const Status status = obs::WriteMetrics(flags.out, flags.format);
  if (!status.ok()) {
    std::fprintf(stderr, "metrics dump failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

std::vector<std::string> SplitCsvList(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) parts.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

/// "out/home_b.gem" -> "home_b": fence ids come from snapshot basenames.
std::string FenceIdFromPath(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = base.rfind(".gem");
  if (dot != std::string::npos && dot + 4 == base.size()) {
    base.resize(dot);
  }
  return base.empty() ? path : base;
}

int Simulate(const ParsedArgs& args) {
  if (args.positional.size() < 3) return Usage();
  const int user =
      args.positional.size() > 3 ? std::atoi(args.positional[3].c_str()) : 2;
  const uint64_t seed =
      args.positional.size() > 4
          ? std::strtoull(args.positional[4].c_str(), nullptr, 10)
          : 7;
  if (user < 0 || user > 9) {
    std::fprintf(stderr, "user must be in [0, 9]\n");
    return 2;
  }
  rf::DatasetOptions options;
  options.seed = seed;
  const rf::Dataset data =
      rf::GenerateScenarioDataset(rf::HomePreset(user), options);
  Status status = rf::SaveRecordsCsv(args.positional[1], data.train);
  if (status.ok()) status = rf::SaveRecordsCsv(args.positional[2], data.test);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu training and %zu test records (user %d, seed "
              "%llu)\n",
              data.train.size(), data.test.size(), user,
              static_cast<unsigned long long>(seed));
  return 0;
}

/// Parses an optional --threads flag (default 1). Returns false on a
/// malformed value; the thread count lands in the gem_cli_threads
/// gauge so a --metrics_out dump records the run's parallelism.
bool ParseThreadsFlag(const ParsedArgs& args, const std::string& command,
                      int* threads) {
  *threads = 1;
  const std::string value = FlagValue(args, "threads");
  if (!value.empty() && !ParsePositiveInt(value, "threads", threads)) {
    return false;
  }
  obs::MetricsRegistry::Get()
      .GetGauge("gem_cli_threads", {{"command", command}})
      .Set(static_cast<double>(*threads));
  return true;
}

Result<core::Gem> TrainFromCsv(const std::string& path, int num_threads) {
  auto train = rf::LoadRecordsCsv(path);
  if (!train.ok()) return train.status();
  core::GemConfig config;
  config.bisage.num_threads = num_threads;
  core::Gem gem{config};
  const Status status = gem.Train(train.value());
  if (!status.ok()) return status;
  std::fprintf(stderr, "trained on %zu records (%d MACs)\n",
               train.value().size(), gem.embedder().graph().num_macs());
  return gem;
}

int Run(const ParsedArgs& args) {
  if (args.positional.size() < 3) return Usage();
  int threads = 1;
  if (!ParseThreadsFlag(args, "run", &threads)) return 2;
  auto gem = TrainFromCsv(args.positional[1], threads);
  if (!gem.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 gem.status().ToString().c_str());
    return 1;
  }
  auto test = rf::LoadRecordsCsv(args.positional[2]);
  if (!test.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", args.positional[2].c_str(),
                 test.status().ToString().c_str());
    return 1;
  }

  std::vector<bool> actual, predicted;
  std::printf("timestamp_s,decision,score,updated\n");
  for (const rf::ScanRecord& record : test.value()) {
    const core::InferenceResult result = gem.value().Infer(record);
    const bool inside = result.decision == core::Decision::kInside;
    std::printf("%.1f,%s,%.4f,%d\n", record.timestamp_s,
                inside ? "inside" : "OUTSIDE", result.score,
                result.model_updated ? 1 : 0);
    actual.push_back(record.inside);
    predicted.push_back(inside);
  }
  const math::InOutMetrics m = math::ComputeInOutMetrics(actual, predicted);
  std::fprintf(stderr,
               "summary (vs CSV ground truth): F_in=%.3f F_out=%.3f "
               "P_in=%.3f R_in=%.3f P_out=%.3f R_out=%.3f\n",
               m.f_in, m.f_out, m.precision_in, m.recall_in,
               m.precision_out, m.recall_out);
  return 0;
}

int Train(const ParsedArgs& args) {
  if (args.positional.size() < 2) return Usage();
  const std::string snapshot_out = FlagValue(args, "snapshot_out");
  if (snapshot_out.empty()) {
    std::fprintf(stderr, "train needs --snapshot_out=<model.gem>\n");
    return 2;
  }
  int threads = 1;
  if (!ParseThreadsFlag(args, "train", &threads)) return 2;
  auto gem = TrainFromCsv(args.positional[1], threads);
  if (!gem.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 gem.status().ToString().c_str());
    return 1;
  }
  const Status saved = serve::SaveSnapshot(snapshot_out, gem.value());
  if (!saved.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  std::printf("snapshot written to %s\n", snapshot_out.c_str());
  return 0;
}

/// SIGINT request: the handler only sets the flag; the serve replay
/// loop polls it and winds down normally (final metrics dump, trace
/// write, engine drain) instead of dying mid-output.
volatile std::sig_atomic_t g_interrupted = 0;

void HandleSigint(int) { g_interrupted = 1; }

/// Rewrites the metrics dump every `period_ms` on a background thread
/// until stopped, so a long-running serve is observable while it runs
/// (the file always holds the latest dump).
class PeriodicMetricsFlusher {
 public:
  PeriodicMetricsFlusher(const MetricsFlags& flags, int period_ms)
      : flags_(flags), period_ms_(period_ms), thread_([this] { Loop(); }) {}
  ~PeriodicMetricsFlusher() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, std::chrono::milliseconds(period_ms_),
                         [this] { return stopping_; })) {
      lock.unlock();
      const Status status = obs::WriteMetrics(flags_.out, flags_.format);
      if (!status.ok()) {
        std::fprintf(stderr, "periodic metrics flush failed: %s\n",
                     status.ToString().c_str());
      }
      lock.lock();
    }
  }

  const MetricsFlags flags_;
  const int period_ms_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;  // guarded by mutex_
  std::thread thread_;
};

int Serve(const ParsedArgs& args, const MetricsFlags& metrics) {
  const std::vector<std::string> snapshot_paths =
      SplitCsvList(FlagValue(args, "snapshots"));
  const std::string requests_path = FlagValue(args, "requests");
  if (snapshot_paths.empty() || requests_path.empty()) {
    std::fprintf(stderr,
                 "serve needs --snapshots=<a.gem,...> and "
                 "--requests=<records.csv>\n");
    return 2;
  }
  int metrics_every_ms = 0;
  const std::string every_s = FlagValue(args, "metrics_every_ms");
  if (!every_s.empty()) {
    if (!ParsePositiveInt(every_s, "metrics_every_ms", &metrics_every_ms)) {
      return 2;
    }
    if (!metrics.requested) {
      std::fprintf(stderr,
                   "--metrics_every_ms needs --metrics_out to flush to\n");
      return 2;
    }
  }
  serve::EngineOptions options;
  const std::string threads_s = FlagValue(args, "threads");
  if (!threads_s.empty() &&
      !ParsePositiveInt(threads_s, "threads", &options.num_threads)) {
    return 2;
  }
  obs::MetricsRegistry::Get()
      .GetGauge("gem_cli_threads", {{"command", "serve"}})
      .Set(static_cast<double>(options.num_threads));
  const std::string depth_s = FlagValue(args, "queue_depth");
  if (!depth_s.empty()) {
    int depth = 0;
    if (!ParsePositiveInt(depth_s, "queue_depth", &depth)) return 2;
    options.max_queue_depth = static_cast<size_t>(depth);
  }
  const std::string deadline_s = FlagValue(args, "deadline_ms");
  if (!deadline_s.empty()) {
    int deadline_ms = 0;
    if (!ParsePositiveInt(deadline_s, "deadline_ms", &deadline_ms)) return 2;
    options.default_deadline = std::chrono::milliseconds(deadline_ms);
  }
  const std::string failpoints = FlagValue(args, "failpoints");
  if (!failpoints.empty()) {
    if (!fault::CompiledIn()) {
      std::fprintf(stderr,
                   "--failpoints requires a build with "
                   "-DGEM_ENABLE_FAILPOINTS=ON (this binary compiled "
                   "them out)\n");
      return 2;
    }
    const Status configured = fault::Configure(failpoints);
    if (!configured.ok()) {
      std::fprintf(stderr, "bad --failpoints spec: %s\n",
                   configured.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "failpoints armed: %s\n", failpoints.c_str());
  }

  serve::FenceRegistry registry;
  for (const std::string& path : snapshot_paths) {
    const std::string fence_id = FenceIdFromPath(path);
    auto generation = registry.InstallFromSnapshot(fence_id, path);
    if (!generation.ok()) {
      std::fprintf(stderr, "cannot load snapshot %s: %s\n", path.c_str(),
                   generation.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded fence '%s' (generation %llu) from %s\n",
                 fence_id.c_str(),
                 static_cast<unsigned long long>(generation.value()),
                 path.c_str());
  }

  auto requests = rf::LoadRecordsCsv(requests_path);
  if (!requests.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", requests_path.c_str(),
                 requests.status().ToString().c_str());
    return 1;
  }

  const std::vector<std::string> fence_ids = registry.FenceIds();
  serve::Engine engine(&registry, options);
  std::unique_ptr<PeriodicMetricsFlusher> flusher;
  if (metrics_every_ms > 0) {
    flusher = std::make_unique<PeriodicMetricsFlusher>(metrics,
                                                       metrics_every_ms);
  }
  std::signal(SIGINT, HandleSigint);
  std::printf("fence_id,timestamp_s,decision,score,generation\n");
  size_t shed = 0;
  size_t failed = 0;
  size_t replayed = 0;
  for (size_t i = 0; i < requests.value().size(); ++i) {
    if (g_interrupted) {
      std::fprintf(stderr,
                   "SIGINT: stopping replay after %zu requests, "
                   "draining engine\n",
                   replayed);
      break;
    }
    ++replayed;
    serve::ServeRequest request;
    request.fence_id = fence_ids[i % fence_ids.size()];
    request.record = requests.value()[i];
    serve::ServeResponse response = engine.InferBlocking(request);
    // The bounded queue sheds under overload; a driver replaying a file
    // just retries after a beat. Admission-failpoint injections also
    // surface as kUnavailable, so cap the retries.
    for (int attempt = 0; response.status.code() == StatusCode::kUnavailable &&
                          attempt < 100 && !g_interrupted;
         ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++shed;
      response = engine.InferBlocking(request);
    }
    if (!response.status.ok()) {
      // Deadline misses and injected faults are per-request outcomes,
      // not driver errors: count them and keep replaying.
      std::fprintf(stderr, "request %zu failed: %s\n", i,
                   response.status.ToString().c_str());
      ++failed;
      continue;
    }
    std::printf("%s,%.1f,%s,%.4f,%llu\n", request.fence_id.c_str(),
                request.record.timestamp_s,
                response.result.decision == core::Decision::kInside
                    ? "inside"
                    : "OUTSIDE",
                response.result.score,
                static_cast<unsigned long long>(response.fence_generation));
  }
  engine.Shutdown();
  flusher.reset();  // last periodic dump wins over the final one below
  std::signal(SIGINT, SIG_DFL);
  std::fprintf(stderr, "served %zu requests across %zu fences (%zu "
               "retried after backpressure, %zu failed)\n",
               replayed - failed, fence_ids.size(), shed, failed);
  // Every request failing means the setup is wrong, not the requests.
  return failed == replayed && failed > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ParsedArgs args = SplitArgs(argc, argv);
  if (args.positional.empty()) return Usage();
  const std::string& command = args.positional[0];

  std::vector<std::string> allowed;
  if (command == "run") {
    allowed = {"threads"};
  } else if (command == "train") {
    allowed = {"snapshot_out", "threads"};
  } else if (command == "serve") {
    allowed = {"snapshots", "requests", "threads", "queue_depth",
               "deadline_ms", "failpoints", "metrics_every_ms"};
  } else if (command != "simulate" && command != "run") {
    return Usage();
  }
  MetricsFlags metrics;
  std::string trace_out;
  if (!CheckFlags(args, allowed, &metrics, &trace_out)) return Usage();
  if (trace_out.empty()) trace_out = obs::TraceOutPathFromEnv();

  std::unique_ptr<obs::ResourceSampler> sampler;
  if (!trace_out.empty()) {
    obs::Timeline::Enable();
    obs::Timeline::SetCurrentThreadName("main");
    sampler = std::make_unique<obs::ResourceSampler>();
  }

  int code;
  if (command == "simulate") {
    code = Simulate(args);
  } else if (command == "run") {
    code = Run(args);
  } else if (command == "train") {
    code = Train(args);
  } else {
    code = Serve(args, metrics);
  }

  if (!trace_out.empty()) {
    sampler->Stop();
    obs::Timeline::Disable();
    const Status written = obs::WriteChromeTrace(trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   written.ToString().c_str());
      if (code == 0) code = 1;
    } else {
      std::fprintf(stderr, "trace written to %s\n", trace_out.c_str());
    }
  }
  const int metrics_code = DumpMetrics(metrics);
  return code != 0 ? code : metrics_code;
}

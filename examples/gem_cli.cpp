// gem_cli — command-line geofencing over CSV scan logs.
//
// Usage:
//   gem_cli simulate <out_train.csv> <out_test.csv> [user 0-9] [seed]
//       Generate a simulated home dataset and write it as CSV.
//   gem_cli run <train.csv> <test.csv>
//       Train GEM on the (in-premises) training records and stream the
//       test records through it, printing one decision per record and
//       summary metrics at the end (when the CSV carries ground truth).
//
// Observability flags (any command):
//   --metrics_out=<path>   Write a gem::obs metrics dump after the run
//                          ("-" = stdout).
//   --metrics_format=FMT   prom | json | table (default: table).
//                          With no --metrics_out the dump goes to
//                          stdout.
//
// The CSV format is rf::SaveRecordsCsv's:
//   record_id,timestamp_s,inside,mac,rss_dbm,band
// so real-device scan logs can be converted and replayed.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/gem.h"
#include "math/metrics.h"
#include "obs/export.h"
#include "rf/dataset.h"
#include "rf/record_io.h"

using namespace gem;  // NOLINT(build/namespaces) CLI binary

namespace {

struct MetricsFlags {
  bool requested = false;
  std::string out = "-";
  obs::ExportFormat format = obs::ExportFormat::kTable;
  bool valid = true;
};

/// Strips --metrics_out / --metrics_format from argv (in place) and
/// returns the parsed flags; positional parsing sees only what's left.
MetricsFlags ExtractMetricsFlags(int& argc, char** argv) {
  MetricsFlags flags;
  int kept = 0;
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--metrics_out=", 14) == 0) {
      flags.requested = true;
      flags.out = arg + 14;
      continue;
    }
    if (std::strncmp(arg, "--metrics_format=", 17) == 0) {
      flags.requested = true;
      const auto format = obs::ParseExportFormat(arg + 17);
      if (!format.has_value()) {
        std::fprintf(stderr,
                     "unknown --metrics_format '%s' (want prom, json or "
                     "table)\n",
                     arg + 17);
        flags.valid = false;
      } else {
        flags.format = *format;
      }
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  return flags;
}

int DumpMetrics(const MetricsFlags& flags) {
  if (!flags.requested) return 0;
  const Status status = obs::WriteMetrics(flags.out, flags.format);
  if (!status.ok()) {
    std::fprintf(stderr, "metrics dump failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

int Simulate(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: gem_cli simulate <train.csv> <test.csv> "
                 "[user 0-9] [seed]\n");
    return 2;
  }
  const int user = argc > 4 ? std::atoi(argv[4]) : 2;
  const uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 7;
  if (user < 0 || user > 9) {
    std::fprintf(stderr, "user must be in [0, 9]\n");
    return 2;
  }
  rf::DatasetOptions options;
  options.seed = seed;
  const rf::Dataset data =
      rf::GenerateScenarioDataset(rf::HomePreset(user), options);
  Status status = rf::SaveRecordsCsv(argv[2], data.train);
  if (status.ok()) status = rf::SaveRecordsCsv(argv[3], data.test);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu training and %zu test records (user %d, seed "
              "%llu)\n",
              data.train.size(), data.test.size(), user,
              static_cast<unsigned long long>(seed));
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: gem_cli run <train.csv> <test.csv>\n");
    return 2;
  }
  auto train = rf::LoadRecordsCsv(argv[2]);
  if (!train.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", argv[2],
                 train.status().ToString().c_str());
    return 1;
  }
  auto test = rf::LoadRecordsCsv(argv[3]);
  if (!test.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", argv[3],
                 test.status().ToString().c_str());
    return 1;
  }

  core::Gem gem{core::GemConfig{}};
  const Status status = gem.Train(train.value());
  if (!status.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "trained on %zu records (%d MACs)\n",
               train.value().size(), gem.embedder().graph().num_macs());

  std::vector<bool> actual, predicted;
  std::printf("timestamp_s,decision,score,updated\n");
  for (const rf::ScanRecord& record : test.value()) {
    const core::InferenceResult result = gem.Infer(record);
    const bool inside = result.decision == core::Decision::kInside;
    std::printf("%.1f,%s,%.4f,%d\n", record.timestamp_s,
                inside ? "inside" : "OUTSIDE", result.score,
                result.model_updated ? 1 : 0);
    actual.push_back(record.inside);
    predicted.push_back(inside);
  }
  const math::InOutMetrics m = math::ComputeInOutMetrics(actual, predicted);
  std::fprintf(stderr,
               "summary (vs CSV ground truth): F_in=%.3f F_out=%.3f "
               "P_in=%.3f R_in=%.3f P_out=%.3f R_out=%.3f\n",
               m.f_in, m.f_out, m.precision_in, m.recall_in,
               m.precision_out, m.recall_out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const MetricsFlags metrics = ExtractMetricsFlags(argc, argv);
  if (!metrics.valid) return 2;
  int code = 2;
  if (argc >= 2 && std::strcmp(argv[1], "simulate") == 0) {
    code = Simulate(argc, argv);
  } else if (argc >= 2 && std::strcmp(argv[1], "run") == 0) {
    code = Run(argc, argv);
  } else {
    std::fprintf(stderr,
                 "gem_cli — geofencing over CSV scan logs\n"
                 "  gem_cli simulate <train.csv> <test.csv> [user] [seed]\n"
                 "  gem_cli run <train.csv> <test.csv>\n"
                 "  flags: --metrics_out=<path|-> "
                 "--metrics_format={prom,json,table}\n");
    return 2;
  }
  const int metrics_code = DumpMetrics(metrics);
  return code != 0 ? code : metrics_code;
}

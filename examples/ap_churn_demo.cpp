// AP-churn demo: ambient access points come and go (reboots, power
// save, new neighbors). This example contrasts GEM with the
// conventional fixed-length "padded matrix" pipeline when a quarter of
// the MACs churn ON/OFF through the session — the exact failure mode
// of missing-value imputation the paper motivates GEM with.

#include <cstdio>

#include "core/embedding_pipeline.h"
#include "core/gem.h"
#include "detect/hbos.h"
#include "embed/matrix_rep.h"
#include "math/metrics.h"
#include "rf/dataset.h"
#include "rf/dynamics.h"

using namespace gem;  // NOLINT(build/namespaces) example binary

namespace {

math::InOutMetrics Run(core::GeofencingSystem& system,
                       const rf::Dataset& data) {
  if (!system.Train(data.train).ok()) return {};
  std::vector<bool> actual, predicted;
  for (const rf::ScanRecord& record : data.test) {
    actual.push_back(record.inside);
    predicted.push_back(system.Infer(record).decision ==
                        core::Decision::kInside);
  }
  return math::ComputeInOutMetrics(actual, predicted);
}

}  // namespace

int main() {
  rf::DatasetOptions options;
  options.seed = 99;
  rf::Dataset data = rf::GenerateScenarioDataset(rf::HomePreset(6), options);

  // Let every MAC flip ON/OFF through the session (two-state Markov,
  // transition every 30 samples).
  math::Rng churn(5);
  rf::ApplyApOnOffDynamics(data.train, 0.15, 0.15, 30, churn);
  rf::ApplyApOnOffDynamics(data.test, 0.15, 0.15, 30, churn);
  std::printf("dataset with AP ON-OFF churn: %zu train, %zu test records\n\n",
              data.train.size(), data.test.size());

  core::Gem gem{core::GemConfig{}};
  const math::InOutMetrics gem_metrics = Run(gem, data);
  std::printf("GEM (bipartite graph + BiSAGE):   F_in=%.3f  F_out=%.3f\n",
              gem_metrics.f_in, gem_metrics.f_out);

  core::EmbeddingPipeline padded(
      "padded matrix + OD", std::make_unique<embed::RawVectorEmbedder>(),
      std::make_unique<detect::EnhancedHbosDetector>());
  const math::InOutMetrics raw_metrics = Run(padded, data);
  std::printf("padded matrix (-120 dBm) + OD:    F_in=%.3f  F_out=%.3f\n",
              raw_metrics.f_in, raw_metrics.f_out);

  std::printf("\nThe graph representation never imputes missing values — a "
              "record is connected only\nto the MACs it actually sensed — "
              "so AP churn degrades it far less.\n");
  return 0;
}

// Lab / office monitoring through a working day: the environment is
// busy (crowds, transient devices, RSS drift), and GEM's online
// self-enhancement keeps the model current from morning to night.
//
// Demonstrates: time-of-day environment dynamics, running one model
// across changing conditions, and tracking how many samples the
// self-enhancement absorbs.

#include <cstdio>

#include "core/gem.h"
#include "rf/dataset.h"
#include "rf/scanner.h"

using namespace gem;  // NOLINT(build/namespaces) example binary

int main() {
  const rf::ScenarioConfig lab = rf::LabPreset();
  const rf::Environment env = rf::BuildEnvironment(lab);
  const rf::PropagationModel model(&env, rf::PropagationConfig{});
  math::Rng rng(2024);

  // Morning training walk at 11 AM.
  rf::Scanner scanner(&env, &model);
  scanner.SetTimeOfDayProfile(rf::ProfileAt11Am());
  std::vector<rf::ScanRecord> train;
  for (const rf::TimedPoint& tp : rf::PerimeterWalk(env, 0.8, 480.0, 2.0)) {
    train.push_back(
        scanner.Scan(tp.position, tp.floor, 11 * 3600 + tp.time_s, rng));
  }

  core::Gem gem{core::GemConfig{}};
  if (!gem.Train(train).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }
  std::printf("trained at 11 AM on %zu records.\n\n", train.size());

  // Run through the day: late morning, busy afternoon, quiet evening.
  // Unlabeled "life happens" phases keep the model adapting between
  // the scored check-ins — the model sees the day change gradually,
  // just like a real deployment.
  const struct {
    const char* label;
    rf::TimeOfDayProfile profile;
    double start_s;
    bool scored;
  } phases[] = {
      {"midday (11:30)", rf::ProfileAt11Am(), 11.5 * 3600, true},
      {"early afternoon (14:00)", rf::ProfileAt11Am(), 14.0 * 3600, false},
      {"busy afternoon (16:00)", rf::ProfileAt4Pm(), 16.0 * 3600, true},
      {"early evening (18:30)", rf::ProfileAt4Pm(), 18.5 * 3600, false},
      {"quiet evening (21:00)", rf::ProfileAt9Pm(), 21.0 * 3600, true},
  };
  for (const auto& phase : phases) {
    scanner.SetTimeOfDayProfile(phase.profile);
    int correct = 0;
    int total = 0;
    int updates = 0;
    // Half the walks stay inside the lab, half wander the corridor.
    for (int walk = 0; walk < 20; ++walk) {
      rf::Trajectory traj =
          walk % 2 == 0
              ? rf::RandomWaypointInside(env, 0.8, 45.0, 3.0, rng)
              : rf::OutsideWalk(env, 0.5, 10.0, 0.8, 45.0, 3.0, rng);
      for (const rf::TimedPoint& tp : traj) {
        const rf::ScanRecord record = scanner.Scan(
            tp.position, tp.floor, phase.start_s + tp.time_s, rng);
        const core::InferenceResult result = gem.Infer(record);
        correct += (result.decision == core::Decision::kInside) ==
                           record.inside
                       ? 1
                       : 0;
        updates += result.model_updated ? 1 : 0;
        ++total;
      }
    }
    if (phase.scored) {
      std::printf("%-24s accuracy %.1f%%  (self-enhancement absorbed %d "
                  "of %d records)\n",
                  phase.label, 100.0 * correct / total, updates, total);
    }
  }
  std::printf("\nThe model keeps working through the busy afternoon "
              "because confident in-premises samples keep refreshing "
              "its histograms.\n");
  return 0;
}

// Reproduces Table IV: RSS statistics (mean, SD, #MACs) of the lab
// environment at 11 AM, 4 PM and 9 PM.

#include <cstdio>
#include <memory>
#include <map>
#include <set>

#include "eval/csv.h"
#include "eval/table.h"
#include "rf/dataset.h"
#include "rf/dynamics.h"

namespace {

using namespace gem;  // NOLINT(build/namespaces) bench binary

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = eval::CsvDirFromArgs(argc, argv);
  std::unique_ptr<eval::CsvWriter> csv;
  if (!csv_dir.empty()) {
    csv = std::make_unique<eval::CsvWriter>(csv_dir + "/table4.csv");
    csv->WriteHeader({"time", "mean_dbm", "sd_dbm", "macs"});
  }

  std::printf("=== Table IV: RSS variation during a day (lab) ===\n\n");
  const rf::ScenarioConfig lab = rf::LabPreset();
  const rf::Environment env = rf::BuildEnvironment(lab);
  const rf::PropagationModel model(&env, rf::PropagationConfig{});

  struct TimeSlot {
    const char* name;
    rf::TimeOfDayProfile profile;
    double t0;
  };
  const TimeSlot slots[] = {
      {"11 AM", rf::ProfileAt11Am(), 11 * 3600.0},
      {"4 PM", rf::ProfileAt4Pm(), 16 * 3600.0},
      {"9 PM", rf::ProfileAt9Pm(), 21 * 3600.0},
  };

  eval::TextTable table({"Time", "Mean (dBm)", "SD (dBm)", "#MACs"});
  for (const TimeSlot& slot : slots) {
    rf::Scanner scanner(&env, &model);
    scanner.SetTimeOfDayProfile(slot.profile);
    math::Rng rng(99);
    math::Vec rss;
    std::map<std::string, math::Vec> per_mac;
    std::set<std::string> macs;
    // Stationary measurement at a desk in the lab during this hour
    // (mirrors the paper's fixed collection point; a walk would fold
    // spatial path-loss spread into the SD column).
    const rf::Point desk{4.0, 3.0};
    for (double t = 0.0; t < 1800.0; t += 3.0) {
      const rf::ScanRecord record =
          scanner.Scan(desk, 0, slot.t0 + t, rng);
      for (const rf::Reading& reading : record.readings) {
        rss.push_back(reading.rss_dbm);
        per_mac[reading.mac].push_back(reading.rss_dbm);
        macs.insert(reading.mac);
      }
    }
    const double mean = math::Mean(rss);
    // SD of the *signal variation*: the mean per-MAC standard
    // deviation (pooling across APs would measure the spread of AP
    // placements, not the temporal variation Table IV reports).
    math::Vec sds;
    for (const auto& [mac, values] : per_mac) {
      // Strong, frequently seen MACs only: readings hovering at the
      // sensitivity floor are censored and understate the variation.
      if (values.size() >= 20 && math::Mean(values) > -82.0) {
        sds.push_back(math::StdDev(values));
      }
    }
    const double sd = math::Mean(sds);
    table.AddRow({slot.name, eval::FormatValue(mean), eval::FormatValue(sd),
                  std::to_string(macs.size())});
    if (csv) {
      csv->WriteRow({slot.name, eval::FormatValue(mean),
                     eval::FormatValue(sd), std::to_string(macs.size())});
    }
  }
  table.Print();
  std::printf("\nExpected shape: 4 PM has the lowest mean and highest SD "
              "and MAC count; 9 PM is quiet with fewer MACs.\n");
  return 0;
}

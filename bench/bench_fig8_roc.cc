// Reproduces Figure 8: ROC curves of GEM's enhanced histogram detector
// vs the original (unenhanced) HBOS, both on the same BiSAGE
// embeddings. Prints TPR at matched FPR points and the AUCs, plus an
// ASCII ROC plot; --csv dumps the full curves.

#include <cstdio>

#include "detect/detector.h"
#include "detect/hbos.h"
#include "embed/bisage.h"
#include "eval/csv.h"
#include "eval/table.h"
#include "math/metrics.h"
#include "rf/dataset.h"

namespace {

using namespace gem;  // NOLINT(build/namespaces) bench binary

/// The unenhanced baseline the paper criticizes: plain HBOS whose
/// normalization and contamination threshold are recomputed as the
/// model absorbs every record it classifies as normal. Its threshold
/// depends on the (growing) data size and it lacks the strict
/// confident-update gate tau_l, so near-boundary outside records leak
/// into the model and the score scale wobbles over the stream.
class NaiveUpdatingHbos {
 public:
  Status Fit(const std::vector<math::Vec>& train) {
    Status status = model_.Fit(train, 10);
    if (!status.ok()) return status;
    Recalibrate();
    return Status::Ok();
  }

  /// Scores x under the current model, then absorbs it if it is
  /// classified normal (the naive update policy).
  double Process(const math::Vec& x) {
    const double raw = model_.RawScore(x);
    const double score = (raw - lo_) / (hi_ - lo_);
    if (score <= threshold_) {
      model_.Add(x);
      Recalibrate();
    }
    return score;
  }

 private:
  void Recalibrate() {
    math::Vec scores;
    scores.reserve(model_.data().size());
    for (const math::Vec& sample : model_.data()) {
      scores.push_back(model_.RawScore(sample));
    }
    lo_ = math::Min(scores);
    hi_ = std::max(math::Max(scores), lo_ + 1e-9);
    for (double& s : scores) s = (s - lo_) / (hi_ - lo_);
    threshold_ = detect::ContaminationThreshold(scores, 0.1);
  }

  detect::HistogramModel model_;
  double lo_ = 0.0;
  double hi_ = 1.0;
  double threshold_ = 1.0;
};

/// Interpolated TPR at a given FPR.
double TprAt(const std::vector<math::RocPoint>& curve, double fpr) {
  double best = 0.0;
  for (const math::RocPoint& p : curve) {
    if (p.fpr <= fpr) best = std::max(best, p.tpr);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = eval::CsvDirFromArgs(argc, argv);
  std::printf("=== Figure 8: ROC of the enhanced (self-updating) vs "
              "original histogram-based detection ===\n");
  std::printf("(positive class: in-premises; scores from three users "
              "pooled)\n\n");

  // Pool scores from several users for a smooth curve.
  math::Vec enhanced_scores, plain_scores;
  std::vector<bool> is_inside;
  for (int user : {0, 2, 5}) {
    rf::DatasetOptions options;
    options.seed = 100 + static_cast<uint64_t>(user);
    // A busy, drifting environment and a long stream: the setting
    // where the self-updating model visibly outperforms a frozen one.
    options.time_of_day = rf::ProfileAt11Am();
    options.test_segments = 10;
    const rf::Dataset data =
        rf::GenerateScenarioDataset(rf::HomePreset(user), options);

    embed::BiSageEmbedder embedder{embed::BiSageConfig{}};
    if (!embedder.Fit(data.train).ok()) continue;
    std::vector<math::Vec> train;
    for (int i = 0; i < embedder.num_train(); ++i) {
      train.push_back(embedder.TrainEmbedding(i));
    }
    detect::EnhancedHbosDetector enhanced;
    NaiveUpdatingHbos plain;
    if (!enhanced.Fit(train).ok() || !plain.Fit(train).ok()) continue;

    for (const rf::ScanRecord& record : data.test) {
      const auto embedding = embedder.EmbedNew(record);
      // The ROC is over "inside" as positive: NEGATE outlier scores.
      // Both arms self-update over the stream: the enhanced detector
      // with the stable rescaling + strict tau_l gate of Section IV-C
      // / V-B, the original with the naive policy whose threshold and
      // normalization drift with the data size.
      if (embedding.ok()) {
        enhanced_scores.push_back(-enhanced.NormalizedScore(*embedding));
        plain_scores.push_back(-plain.Process(*embedding));
        enhanced.MaybeUpdate(*embedding);
      } else {
        enhanced_scores.push_back(-1e9);
        plain_scores.push_back(-1e9);
      }
      is_inside.push_back(record.inside);
    }
    std::fprintf(stderr, "  [fig8] user %d scored\n", user + 1);
  }

  const auto curve_enh = math::RocCurve(enhanced_scores, is_inside);
  const auto curve_pln = math::RocCurve(plain_scores, is_inside);
  const double auc_enh = math::RocAuc(enhanced_scores, is_inside);
  const double auc_pln = math::RocAuc(plain_scores, is_inside);

  eval::TextTable table({"FPR", "TPR (enhanced)", "TPR (original)"});
  for (double fpr : {0.01, 0.02, 0.05, 0.1, 0.2, 0.5}) {
    table.AddRow({eval::FormatValue(fpr),
                  eval::FormatValue(TprAt(curve_enh, fpr)),
                  eval::FormatValue(TprAt(curve_pln, fpr))});
  }
  table.Print();
  std::printf("\nAUC: enhanced = %.4f, original = %.4f\n", auc_enh, auc_pln);
  std::printf("Expected shape: the enhanced curve dominates (higher TPR at "
              "every FPR).\n");

  if (!csv_dir.empty()) {
    eval::CsvWriter csv(csv_dir + "/fig8_roc.csv");
    csv.WriteHeader({"variant", "fpr", "tpr"});
    for (const auto& p : curve_enh) {
      csv.WriteRow({"enhanced", std::to_string(p.fpr),
                    std::to_string(p.tpr)});
    }
    for (const auto& p : curve_pln) {
      csv.WriteRow({"original", std::to_string(p.fpr),
                    std::to_string(p.tpr)});
    }
  }
  return 0;
}

// Reproduces Figure 15: the lab experiments of Section VI-D —
// (b) performance at 11 AM / 4 PM / 9 PM with training data collected
//     at 11 AM; the model lives through the whole day, so its online
//     updates track the gradual environmental change,
// (c) performance vs the walking speed of the initial training walk,
// (d) performance vs available frequency bands (2.4 / 5 / both).

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/gem.h"
#include "eval/csv.h"
#include "eval/evaluate.h"
#include "eval/systems.h"
#include "eval/table.h"
#include "rf/dataset.h"
#include "rf/dynamics.h"

namespace {

using namespace gem;  // NOLINT(build/namespaces) bench binary

/// Piecewise-linear interpolation of the lab profile across the day:
/// anchors at 11 AM, 4 PM and 9 PM (Table IV's time slots).
rf::TimeOfDayProfile ProfileAtHour(double hour) {
  const rf::TimeOfDayProfile a = rf::ProfileAt11Am();
  const rf::TimeOfDayProfile b = rf::ProfileAt4Pm();
  const rf::TimeOfDayProfile c = rf::ProfileAt9Pm();
  auto lerp = [](const rf::TimeOfDayProfile& x,
                 const rf::TimeOfDayProfile& y, double t) {
    rf::TimeOfDayProfile out;
    out.mean_offset_db = x.mean_offset_db * (1 - t) + y.mean_offset_db * t;
    out.extra_noise_sigma_db =
        x.extra_noise_sigma_db * (1 - t) + y.extra_noise_sigma_db * t;
    out.transient_macs_per_scan =
        x.transient_macs_per_scan * (1 - t) + y.transient_macs_per_scan * t;
    out.dropout_probability =
        x.dropout_probability * (1 - t) + y.dropout_probability * t;
    out.transient_pool_size = static_cast<int>(
        x.transient_pool_size * (1 - t) + y.transient_pool_size * t);
    return out;
  };
  if (hour <= 11.0) return a;
  if (hour <= 16.0) return lerp(a, b, (hour - 11.0) / 5.0);
  if (hour <= 21.0) return lerp(b, c, (hour - 16.0) / 5.0);
  return c;
}

/// A short in/out walk block at the given hour; returns labeled
/// records.
std::vector<rf::ScanRecord> WalkBlock(const rf::Environment& env,
                                      const rf::PropagationModel& model,
                                      double hour, int walks,
                                      math::Rng& rng) {
  rf::Scanner scanner(&env, &model);
  scanner.SetTimeOfDayProfile(ProfileAtHour(hour));
  std::vector<rf::ScanRecord> stream;
  const double start_s = hour * 3600.0;
  for (int walk = 0; walk < walks; ++walk) {
    rf::Trajectory traj;
    if (walk % 2 == 0) {
      traj = rf::RandomWaypointInside(env, 0.8, 30.0, 3.0, rng);
    } else {
      traj = rf::OutsideWalk(env, 0.5, 12.0, 0.8, 30.0, 3.0, rng);
    }
    for (const rf::TimedPoint& tp : traj) {
      stream.push_back(scanner.Scan(tp.position, tp.floor,
                                    start_s + walk * 30.0 + tp.time_s, rng));
    }
  }
  return stream;
}

std::vector<rf::ScanRecord> TrainRecords(const rf::Environment& env,
                                         const rf::PropagationModel& model,
                                         double speed, uint64_t seed) {
  math::Rng rng(seed);
  rf::Scanner scanner(&env, &model);
  scanner.SetTimeOfDayProfile(rf::ProfileAt11Am());
  std::vector<rf::ScanRecord> records;
  const rf::Trajectory walk = rf::PerimeterWalk(env, speed, 480.0, 2.0);
  for (const rf::TimedPoint& tp : walk) {
    records.push_back(
        scanner.Scan(tp.position, tp.floor, 11 * 3600.0 + tp.time_s, rng));
  }
  return records;
}

math::InOutMetrics EvaluateStream(core::Gem& gem,
                                  const std::vector<rf::ScanRecord>& stream) {
  std::vector<bool> actual, predicted;
  for (const rf::ScanRecord& record : stream) {
    actual.push_back(record.inside);
    predicted.push_back(gem.Infer(record).decision ==
                        core::Decision::kInside);
  }
  return math::ComputeInOutMetrics(actual, predicted);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = eval::CsvDirFromArgs(argc, argv);
  std::unique_ptr<eval::CsvWriter> csv;
  if (!csv_dir.empty()) {
    csv = std::make_unique<eval::CsvWriter>(csv_dir + "/fig15.csv");
    csv->WriteHeader({"panel", "setting", "f_in", "f_out"});
  }
  constexpr int kSeeds = 3;

  const rf::ScenarioConfig lab = rf::LabPreset();
  const rf::Environment env = rf::BuildEnvironment(lab);
  const rf::PropagationModel model(&env, rf::PropagationConfig{});

  std::printf("=== Figure 15(b): time-of-day (train at 11 AM, live all "
              "day) ===\n\n");
  {
    eval::TextTable table({"Time", "F_in", "F_out"});
    math::Vec f_in[3], f_out[3];
    for (int seed = 0; seed < kSeeds; ++seed) {
      core::Gem gem{core::GemConfig{}};
      if (!gem.Train(TrainRecords(env, model, 0.8, 1 + seed)).ok()) continue;
      math::Rng rng(100 + seed);
      int slot_index = 0;
      // Live through the day: evaluate 50 walks at the three slots and
      // keep the model running (updates on) through intermediate
      // hours.
      for (double hour = 11.2; hour <= 21.01; hour += 0.5) {
        const bool is_slot = std::fabs(hour - 11.2) < 0.01 ||
                             std::fabs(hour - 16.2) < 0.01 ||
                             std::fabs(hour - 20.7) < 0.01;
        if (is_slot) {
          const auto stream = WalkBlock(env, model, hour, 50, rng);
          const math::InOutMetrics m = EvaluateStream(gem, stream);
          f_in[slot_index].push_back(m.f_in);
          f_out[slot_index].push_back(m.f_out);
          ++slot_index;
          std::fprintf(stderr, "  [fig15b] seed %d slot %.1fh done\n", seed,
                       hour);
        } else {
          // Background life between slots: a few in/out walks the
          // model keeps learning from.
          const auto stream = WalkBlock(env, model, hour, 6, rng);
          for (const rf::ScanRecord& record : stream) {
            (void)gem.Infer(record);
          }
        }
      }
    }
    const char* names[3] = {"11 AM", "4 PM", "9 PM"};
    for (int s = 0; s < 3; ++s) {
      if (f_in[s].empty()) continue;
      table.AddRow({names[s], eval::FormatValue(math::Mean(f_in[s])),
                    eval::FormatValue(math::Mean(f_out[s]))});
      if (csv) {
        csv->WriteRow({"b", names[s],
                       eval::FormatValue(math::Mean(f_in[s])),
                       eval::FormatValue(math::Mean(f_out[s]))});
      }
    }
    table.Print();
  }

  std::printf("\n=== Figure 15(c): training walking speed ===\n\n");
  {
    eval::TextTable table({"Speed (m/s)", "F_in", "F_out"});
    for (double speed : {0.4, 0.8, 1.2}) {
      math::Vec f_in, f_out;
      for (int seed = 0; seed < kSeeds; ++seed) {
        core::Gem gem{core::GemConfig{}};
        if (!gem.Train(TrainRecords(env, model, speed, 20 + seed)).ok()) {
          continue;
        }
        math::Rng rng(200 + seed);
        const auto stream = WalkBlock(env, model, 11.2, 50, rng);
        const math::InOutMetrics m = EvaluateStream(gem, stream);
        f_in.push_back(m.f_in);
        f_out.push_back(m.f_out);
      }
      table.AddRow({eval::FormatValue(speed),
                    eval::FormatValue(math::Mean(f_in)),
                    eval::FormatValue(math::Mean(f_out))});
      if (csv) {
        csv->WriteRow({"c", eval::FormatValue(speed),
                       eval::FormatValue(math::Mean(f_in)),
                       eval::FormatValue(math::Mean(f_out))});
      }
      std::fprintf(stderr, "  [fig15c] speed %.1f done\n", speed);
    }
    table.Print();
  }

  std::printf("\n=== Figure 15(d): frequency-band availability ===\n\n");
  {
    eval::TextTable table({"Bands", "F_in", "F_out"});
    const struct {
      const char* name;
      int keep;  // 0 = 2.4 only, 1 = 5 only, 2 = both
    } bands[] = {{"2.4 GHz only", 0}, {"5 GHz only", 1},
                 {"2.4 + 5 GHz", 2}};
    for (const auto& band : bands) {
      math::Vec f_in, f_out;
      for (int seed = 0; seed < kSeeds; ++seed) {
        auto train = TrainRecords(env, model, 0.8, 30 + seed);
        math::Rng rng(300 + seed);
        auto stream = WalkBlock(env, model, 11.2, 50, rng);
        if (band.keep == 0) {
          rf::FilterBand(train, rf::Band::k2_4GHz);
          rf::FilterBand(stream, rf::Band::k2_4GHz);
        } else if (band.keep == 1) {
          rf::FilterBand(train, rf::Band::k5GHz);
          rf::FilterBand(stream, rf::Band::k5GHz);
        }
        core::Gem gem{core::GemConfig{}};
        if (!gem.Train(train).ok()) continue;
        const math::InOutMetrics m = EvaluateStream(gem, stream);
        f_in.push_back(m.f_in);
        f_out.push_back(m.f_out);
      }
      table.AddRow({band.name, eval::FormatValue(math::Mean(f_in)),
                    eval::FormatValue(math::Mean(f_out))});
      if (csv) {
        csv->WriteRow({"d", band.name,
                       eval::FormatValue(math::Mean(f_in)),
                       eval::FormatValue(math::Mean(f_out))});
      }
      std::fprintf(stderr, "  [fig15d] %s done\n", band.name);
    }
    table.Print();
  }
  std::printf("\nExpected shape: robust across times of day and walking "
              "speeds; 2.4+5 GHz >= 5 GHz >= 2.4 GHz.\n");
  return 0;
}

// Microbenchmarks of the dispatched SIMD math kernels (math/kernels.h)
// over the dims the embedding pipeline actually runs: d = 16..256 for
// Dot/AddScaled/WeightedSum and the BiSAGE MatVec shape (d rows x 2d
// cols). Every kernel is measured twice — scalar backend and the
// dispatched backend (AVX2+FMA where the CPU has it) — so the speedup
// is visible directly.
//
// Default mode runs under google-benchmark. CI's perf gate instead uses:
//   bench_kernels --bench_out=BENCH_kernels.json [--min_ms=20]
// which times each (kernel, dim, backend) cell with a calibrated manual
// loop (best of 5 repetitions) and writes
//   {"workload": "kernels", "active_backend": "...",
//    "results": [{"kernel": "dot", "dim": 128, "backend": "avx2",
//                 "ns_per_op": ...}, ...]}
// plus a speedup table on stdout.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "math/kernels.h"
#include "math/rng.h"

namespace {

using namespace gem::math;  // NOLINT(build/namespaces) bench binary

constexpr int kDims[] = {16, 64, 128, 256};
constexpr size_t kWeightedSumInputs = 8;

/// Deterministically filled operand set for one dimension.
struct Operands {
  explicit Operands(int dim) : n(dim) {
    Rng rng(0xBE11C4ULL + static_cast<uint64_t>(dim));
    auto fill = [&rng](kernels::AlignedVec& v, size_t size) {
      v.resize(size);
      for (double& x : v) x = rng.Uniform(-1.0, 1.0);
    };
    fill(a, n);
    fill(b, n);
    fill(out, n);
    fill(matrix, static_cast<size_t>(n) * 2 * n);
    fill(x2, 2 * static_cast<size_t>(n));
    fill(y, n);
    fill(inputs_flat, kWeightedSumInputs * n);
    coeffs.resize(kWeightedSumInputs);
    for (double& c : coeffs) c = rng.Uniform(0.0, 1.0);
    for (size_t k = 0; k < kWeightedSumInputs; ++k) {
      input_ptrs.push_back(inputs_flat.data() + k * n);
    }
  }

  size_t n;
  kernels::AlignedVec a, b, out, matrix, x2, y, inputs_flat;
  std::vector<double> coeffs;
  std::vector<const double*> input_ptrs;
};

Operands& OperandsFor(int dim) {
  static std::vector<Operands>* all = [] {
    auto* v = new std::vector<Operands>();
    for (const int d : kDims) v->emplace_back(d);
    return v;
  }();
  for (Operands& ops : *all) {
    if (static_cast<int>(ops.n) == dim) return ops;
  }
  std::abort();
}

/// One iteration of each measured kernel.
void RunDot(const kernels::Ops& ops, Operands& od) {
  benchmark::DoNotOptimize(ops.dot(od.a.data(), od.b.data(), od.n));
}
void RunAddScaled(const kernels::Ops& ops, Operands& od) {
  ops.add_scaled(od.out.data(), od.b.data(), 1e-9, od.n);
  benchmark::DoNotOptimize(od.out.data());
}
void RunWeightedSum(const kernels::Ops& ops, Operands& od) {
  ops.weighted_sum(od.out.data(), od.input_ptrs.data(), od.coeffs.data(),
                   kWeightedSumInputs, od.n);
  benchmark::DoNotOptimize(od.out.data());
}
void RunMatVec(const kernels::Ops& ops, Operands& od) {
  ops.matvec(od.matrix.data(), static_cast<int>(od.n),
             static_cast<int>(2 * od.n), od.x2.data(), od.y.data());
  benchmark::DoNotOptimize(od.y.data());
}

using KernelFn = void (*)(const kernels::Ops&, Operands&);

struct KernelCase {
  const char* name;
  KernelFn fn;
};

constexpr KernelCase kKernelCases[] = {
    {"dot", RunDot},
    {"add_scaled", RunAddScaled},
    {"weighted_sum", RunWeightedSum},
    {"matvec", RunMatVec},
};

// --------------------------------------------------------------------------
// google-benchmark mode.
// --------------------------------------------------------------------------

void BM_Kernel(benchmark::State& state, KernelFn fn,
               kernels::Backend backend) {
  Operands& od = OperandsFor(static_cast<int>(state.range(0)));
  const kernels::Ops& ops = kernels::OpsFor(backend);
  for (auto _ : state) fn(ops, od);
}

void RegisterAll() {
  std::vector<kernels::Backend> backends = {kernels::Backend::kScalar};
  if (kernels::Avx2Available()) backends.push_back(kernels::Backend::kAvx2);
  for (const KernelCase& kc : kKernelCases) {
    for (const kernels::Backend backend : backends) {
      std::string name = std::string("BM_") + kc.name + "/" +
                         kernels::BackendName(backend);
      auto* bench = benchmark::RegisterBenchmark(
          name.c_str(), BM_Kernel, kc.fn, backend);
      for (const int dim : kDims) bench->Arg(dim);
    }
  }
}

// --------------------------------------------------------------------------
// Manual timing mode (--bench_out=...), used by the CI perf gate.
// --------------------------------------------------------------------------

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-5 ns/op with an iteration count calibrated to min_ms per rep.
double MeasureNsPerOp(KernelFn fn, const kernels::Ops& ops, Operands& od,
                      double min_ms) {
  // Calibrate.
  long iters = 512;
  for (;;) {
    const double start = Now();
    for (long i = 0; i < iters; ++i) fn(ops, od);
    const double elapsed_ms = (Now() - start) * 1e3;
    if (elapsed_ms >= min_ms || iters >= (1L << 30)) break;
    iters *= 4;
  }
  double best_ns = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const double start = Now();
    for (long i = 0; i < iters; ++i) fn(ops, od);
    const double ns =
        (Now() - start) * 1e9 / static_cast<double>(iters);
    if (rep == 0 || ns < best_ns) best_ns = ns;
  }
  return best_ns;
}

int RunManual(const std::string& bench_out, double min_ms) {
  const bool have_avx2 = kernels::Avx2Available();
  std::printf("=== Kernel microbench (ns/op, best of 5) ===\n");
  std::printf("active backend: %s%s\n\n",
              kernels::BackendName(kernels::ActiveBackend()),
              have_avx2 ? "" : " (no AVX2+FMA on this CPU)");
  std::printf("%-14s %5s %12s %12s %9s\n", "kernel", "dim", "scalar",
              have_avx2 ? "avx2" : "-", "speedup");

  struct Row {
    const char* kernel;
    int dim;
    const char* backend;
    double ns;
  };
  std::vector<Row> rows;
  for (const KernelCase& kc : kKernelCases) {
    for (const int dim : kDims) {
      Operands& od = OperandsFor(dim);
      const double scalar_ns = MeasureNsPerOp(
          kc.fn, kernels::OpsFor(kernels::Backend::kScalar), od, min_ms);
      rows.push_back({kc.name, dim, "scalar", scalar_ns});
      if (have_avx2) {
        const double avx2_ns = MeasureNsPerOp(
            kc.fn, kernels::OpsFor(kernels::Backend::kAvx2), od, min_ms);
        rows.push_back({kc.name, dim, "avx2", avx2_ns});
        std::printf("%-14s %5d %12.2f %12.2f %8.2fx\n", kc.name, dim,
                    scalar_ns, avx2_ns, scalar_ns / avx2_ns);
      } else {
        std::printf("%-14s %5d %12.2f %12s %9s\n", kc.name, dim, scalar_ns,
                    "-", "-");
      }
    }
  }

  std::ofstream out(bench_out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", bench_out.c_str());
    return 1;
  }
  out << "{\"workload\": \"kernels\", \"active_backend\": \""
      << kernels::BackendName(kernels::ActiveBackend())
      << "\", \"results\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{\"kernel\": \"" << rows[i].kernel << "\", \"dim\": "
        << rows[i].dim << ", \"backend\": \"" << rows[i].backend
        << "\", \"ns_per_op\": " << rows[i].ns << "}";
  }
  out << "]}\n";
  return out ? 0 : 1;
}

std::string FlagValueFromArgs(int argc, char** argv, const char* prefix) {
  const size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) return argv[i] + len;
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string bench_out = FlagValueFromArgs(argc, argv, "--bench_out=");
  if (!bench_out.empty()) {
    const std::string min_ms_flag =
        FlagValueFromArgs(argc, argv, "--min_ms=");
    double min_ms = 20.0;
    if (!min_ms_flag.empty()) min_ms = std::atof(min_ms_flag.c_str());
    if (min_ms <= 0.0) {
      std::fprintf(stderr, "--min_ms must be > 0\n");
      return 2;
    }
    return RunManual(bench_out, min_ms);
  }
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

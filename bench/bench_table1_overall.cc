// Reproduces Table I: overall comparison of GEM against SignatureHome,
// INOA, and the mixed embedding/detector arms across the ten simulated
// users. Each cell is mean (min, max) over users.
//
// Flags: --csv <dir> dumps per-user rows; --full currently identical
// (Table I is already run at paper scale: all 10 users).

#include <cstdio>
#include <memory>
#include <map>

#include "base/logging.h"
#include "eval/csv.h"
#include "eval/evaluate.h"
#include "eval/systems.h"
#include "eval/table.h"
#include "rf/dataset.h"

namespace {

using namespace gem;  // NOLINT(build/namespaces) bench binary

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = eval::CsvDirFromArgs(argc, argv);

  std::printf("=== Table I: performance comparison with state-of-the-art "
              "algorithms ===\n");
  std::printf("(10 simulated users; entries are mean (min, max))\n\n");

  std::map<eval::AlgorithmId, std::vector<math::InOutMetrics>> runs;
  std::unique_ptr<eval::CsvWriter> csv;
  if (!csv_dir.empty()) {
    csv = std::make_unique<eval::CsvWriter>(csv_dir + "/table1.csv");
    csv->WriteHeader({"algorithm", "user", "p_in", "r_in", "f_in", "p_out",
                      "r_out", "f_out"});
  }

  for (int user = 0; user < 10; ++user) {
    rf::DatasetOptions options;
    options.seed = 100 + static_cast<uint64_t>(user);
    const rf::Dataset data =
        rf::GenerateScenarioDataset(rf::HomePreset(user), options);

    for (const eval::AlgorithmId id : eval::TableOneAlgorithms()) {
      auto system = eval::MakeSystem(id, options.seed);
      auto result = eval::Evaluate(*system, data);
      if (!result.ok()) {
        GEM_LOG(Warning) << eval::AlgorithmName(id) << " failed on user "
                         << user + 1 << ": "
                         << result.status().ToString();
        continue;
      }
      const math::InOutMetrics& m = result.value().metrics;
      runs[id].push_back(m);
      if (csv) {
        csv->WriteRow({eval::AlgorithmName(id), std::to_string(user + 1),
                       eval::FormatValue(m.precision_in),
                       eval::FormatValue(m.recall_in),
                       eval::FormatValue(m.f_in),
                       eval::FormatValue(m.precision_out),
                       eval::FormatValue(m.recall_out),
                       eval::FormatValue(m.f_out)});
      }
    }
    std::fprintf(stderr, "  [table1] user %d/10 done\n", user + 1);
  }

  eval::TextTable table({"Algorithm", "P_in", "R_in", "F_in", "P_out",
                         "R_out", "F_out"});
  for (const eval::AlgorithmId id : eval::TableOneAlgorithms()) {
    if (runs[id].empty()) continue;
    std::vector<std::string> cells{eval::AlgorithmName(id)};
    eval::AppendMetricCells(eval::Aggregate(runs[id]), cells);
    table.AddRow(std::move(cells));
  }
  table.Print();
  return 0;
}

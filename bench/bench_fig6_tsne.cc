// Reproduces Figure 6: a 2-D t-SNE visualization of the learned BiSAGE
// embeddings. Prints an ASCII scatter (record vs MAC nodes) and writes
// coordinates to CSV with --csv <dir> for external plotting.

#include <cstdio>

#include "embed/bisage.h"
#include "eval/csv.h"
#include "math/tsne.h"
#include "rf/dataset.h"

namespace {

using namespace gem;  // NOLINT(build/namespaces) bench binary

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = eval::CsvDirFromArgs(argc, argv);

  std::printf("=== Figure 6: t-SNE visualization of BiSAGE embeddings ===\n\n");
  rf::DatasetOptions options;
  options.seed = 4711;
  const rf::Dataset data =
      rf::GenerateScenarioDataset(rf::HomePreset(2), options);

  embed::BiSageEmbedder embedder{embed::BiSageConfig{}};
  const Status status = embedder.Fit(data.train);
  if (!status.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // Primary embeddings for record nodes and MAC nodes.
  math::Matrix points;
  std::vector<char> kind;  // 'R' record / 'M' mac
  const graph::BipartiteGraph& graph = embedder.graph();
  for (graph::NodeId node = 0; node < graph.num_nodes(); ++node) {
    if (graph.degree(node) == 0) continue;
    points.AppendRow(embedder.model().PrimaryEmbedding(graph, node));
    kind.push_back(graph.type(node) == graph::NodeType::kRecord ? 'R' : 'M');
  }

  math::TsneOptions tsne_options;
  tsne_options.iterations = 350;
  const auto tsne = math::Tsne(points, tsne_options);
  if (!tsne.ok()) {
    std::fprintf(stderr, "t-SNE failed: %s\n",
                 tsne.status().ToString().c_str());
    return 1;
  }
  const math::Matrix& y = tsne.value();

  if (!csv_dir.empty()) {
    eval::CsvWriter csv(csv_dir + "/fig6_tsne.csv");
    csv.WriteHeader({"x", "y", "node_type"});
    for (int i = 0; i < y.rows(); ++i) {
      csv.WriteRow({std::to_string(y.At(i, 0)), std::to_string(y.At(i, 1)),
                    std::string(1, kind[i])});
    }
  }

  // ASCII scatter: R = signal-record node, M = MAC node.
  constexpr int kW = 78;
  constexpr int kH = 30;
  double lo_x = y.At(0, 0), hi_x = lo_x, lo_y = y.At(0, 1), hi_y = lo_y;
  for (int i = 0; i < y.rows(); ++i) {
    lo_x = std::min(lo_x, y.At(i, 0));
    hi_x = std::max(hi_x, y.At(i, 0));
    lo_y = std::min(lo_y, y.At(i, 1));
    hi_y = std::max(hi_y, y.At(i, 1));
  }
  std::vector<std::string> canvas(kH, std::string(kW, ' '));
  for (int i = 0; i < y.rows(); ++i) {
    const int cx = static_cast<int>((y.At(i, 0) - lo_x) /
                                    (hi_x - lo_x + 1e-12) * (kW - 1));
    const int cy = static_cast<int>((y.At(i, 1) - lo_y) /
                                    (hi_y - lo_y + 1e-12) * (kH - 1));
    char& cell = canvas[kH - 1 - cy][cx];
    cell = cell == ' ' || cell == kind[i] ? kind[i] : '*';
  }
  for (const std::string& line : canvas) std::printf("|%s|\n", line.c_str());
  std::printf("\nR = signal-record node, M = MAC node, * = both.\n");
  std::printf("Expected shape: records and MACs occupy separated regions; "
              "records cluster by where they were collected.\n");
  return 0;
}

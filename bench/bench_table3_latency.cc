// Reproduces Table III: the inference-time breakdown of GEM's three
// online stages — (1) embedding generation via BiSAGE, (2) in-out
// detection by the enhanced histogram detector, (3) online model
// update — using google-benchmark, plus a summary row averaging over
// 2000 runs like the paper.

#include <benchmark/benchmark.h>

#include <memory>

#include "base/check.h"
#include "core/gem.h"
#include "rf/dataset.h"

namespace {

using namespace gem;  // NOLINT(build/namespaces) bench binary

/// Shared fixture: one trained GEM and a pool of unseen test records.
struct LatencySetup {
  LatencySetup() {
    rf::DatasetOptions options;
    options.seed = 4242;
    data = rf::GenerateScenarioDataset(rf::HomePreset(2), options);
    core::GemConfig config;
    gem = std::make_unique<core::Gem>(config);
    const Status status = gem->Train(data.train);
    GEM_CHECK(status.ok());
    // Pre-embed one record per stage benchmark that needs an
    // embedding input.
    for (const rf::ScanRecord& record : data.test) {
      auto embedding = gem->EmbedRecord(record);
      if (embedding.ok()) embeddings.push_back(*embedding);
      if (embeddings.size() >= 256) break;
    }
    GEM_CHECK(!embeddings.empty());
  }

  rf::Dataset data;
  std::unique_ptr<core::Gem> gem;
  std::vector<math::Vec> embeddings;
};

LatencySetup& Setup() {
  static LatencySetup* setup = new LatencySetup();
  return *setup;
}

void BM_EmbeddingGeneration(benchmark::State& state) {
  LatencySetup& s = Setup();
  size_t i = 0;
  for (auto _ : state) {
    const rf::ScanRecord& record = s.data.test[i % s.data.test.size()];
    ++i;
    auto embedding = s.gem->EmbedRecord(record);
    benchmark::DoNotOptimize(embedding);
  }
}
BENCHMARK(BM_EmbeddingGeneration)->Unit(benchmark::kMillisecond);

void BM_InOutDetection(benchmark::State& state) {
  LatencySetup& s = Setup();
  size_t i = 0;
  for (auto _ : state) {
    const core::InferenceResult result =
        s.gem->Detect(s.embeddings[i % s.embeddings.size()]);
    ++i;
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_InOutDetection)->Unit(benchmark::kMillisecond);

void BM_ModelUpdate(benchmark::State& state) {
  LatencySetup& s = Setup();
  size_t i = 0;
  for (auto _ : state) {
    const bool updated = s.gem->Update(s.embeddings[i % s.embeddings.size()]);
    ++i;
    benchmark::DoNotOptimize(updated);
  }
}
BENCHMARK(BM_ModelUpdate)->Unit(benchmark::kMillisecond);

void BM_FullInference(benchmark::State& state) {
  LatencySetup& s = Setup();
  size_t i = 0;
  for (auto _ : state) {
    const rf::ScanRecord& record = s.data.test[i % s.data.test.size()];
    ++i;
    const core::InferenceResult result = s.gem->Infer(record);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullInference)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Table III: inference time breakdown (ms) ===\n");
  std::printf("Rows: embedding generation / in-out detection / online "
              "model update / full pipeline.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

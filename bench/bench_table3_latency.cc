// Reproduces Table III: the inference-time breakdown of GEM's three
// online stages — (1) embedding generation via BiSAGE, (2) in-out
// detection by the enhanced histogram detector, (3) online model
// update — using google-benchmark, plus a summary row averaging over
// 2000 runs like the paper.
//
// Serve mode (used by CI's latency smoke step):
//   bench_table3_latency --bench_out=BENCH_serve.json [--requests=N]
//                        [--trace_out=trace.json]
// skips google-benchmark and instead drives the full serving path —
// FenceRegistry lookup, per-fence serialization, Gem::Infer — through
// serve::Engine::InferBlocking, then writes p50/p99/mean request
// latency as JSON. --trace_out (or GEM_PROFILE=<path>) records the
// per-thread timeline to Chrome trace-event JSON and adds a "stages"
// attribution array to the bench JSON.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "base/check.h"
#include "core/gem.h"
#include "obs/attribution.h"
#include "obs/resource_sampler.h"
#include "obs/timeline.h"
#include "rf/dataset.h"
#include "serve/engine.h"
#include "serve/fence_registry.h"

namespace {

using namespace gem;  // NOLINT(build/namespaces) bench binary

/// Shared fixture: one trained GEM and a pool of unseen test records.
struct LatencySetup {
  LatencySetup() {
    rf::DatasetOptions options;
    options.seed = 4242;
    data = rf::GenerateScenarioDataset(rf::HomePreset(2), options);
    core::GemConfig config;
    gem = std::make_unique<core::Gem>(config);
    const Status status = gem->Train(data.train);
    GEM_CHECK(status.ok());
    // Pre-embed one record per stage benchmark that needs an
    // embedding input.
    for (const rf::ScanRecord& record : data.test) {
      auto embedding = gem->EmbedRecord(record);
      if (embedding.ok()) embeddings.push_back(*embedding);
      if (embeddings.size() >= 256) break;
    }
    GEM_CHECK(!embeddings.empty());
  }

  rf::Dataset data;
  std::unique_ptr<core::Gem> gem;
  std::vector<math::Vec> embeddings;
};

LatencySetup& Setup() {
  static LatencySetup* setup = new LatencySetup();
  return *setup;
}

void BM_EmbeddingGeneration(benchmark::State& state) {
  LatencySetup& s = Setup();
  size_t i = 0;
  for (auto _ : state) {
    const rf::ScanRecord& record = s.data.test[i % s.data.test.size()];
    ++i;
    auto embedding = s.gem->EmbedRecord(record);
    benchmark::DoNotOptimize(embedding);
  }
}
BENCHMARK(BM_EmbeddingGeneration)->Unit(benchmark::kMillisecond);

void BM_InOutDetection(benchmark::State& state) {
  LatencySetup& s = Setup();
  size_t i = 0;
  for (auto _ : state) {
    const core::InferenceResult result =
        s.gem->Detect(s.embeddings[i % s.embeddings.size()]);
    ++i;
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_InOutDetection)->Unit(benchmark::kMillisecond);

void BM_ModelUpdate(benchmark::State& state) {
  LatencySetup& s = Setup();
  size_t i = 0;
  for (auto _ : state) {
    const bool updated = s.gem->Update(s.embeddings[i % s.embeddings.size()]);
    ++i;
    benchmark::DoNotOptimize(updated);
  }
}
BENCHMARK(BM_ModelUpdate)->Unit(benchmark::kMillisecond);

void BM_FullInference(benchmark::State& state) {
  LatencySetup& s = Setup();
  size_t i = 0;
  for (auto _ : state) {
    const rf::ScanRecord& record = s.data.test[i % s.data.test.size()];
    ++i;
    const core::InferenceResult result = s.gem->Infer(record);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullInference)->Unit(benchmark::kMillisecond);

std::string FlagValueFromArgs(int argc, char** argv, const char* prefix) {
  const size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) return argv[i] + len;
  }
  return "";
}

double PercentileMs(const std::vector<double>& sorted, double q) {
  const size_t index =
      static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

/// Serves `request_count` single-record queries against one loaded
/// fence via the engine's blocking path and writes the latency
/// distribution to `bench_out` as JSON:
///   {"workload": "serve_latency", "requests": ...,
///    "p50_ms": ..., "p99_ms": ..., "mean_ms": ...}
int RunServeLatency(const std::string& bench_out, int request_count,
                    const std::string& trace_out) {
  LatencySetup setup;
  serve::FenceRegistry registry;
  const auto generation = registry.Install("home", std::move(*setup.gem));
  GEM_CHECK(generation.ok());

  const bool tracing = !trace_out.empty();
  std::unique_ptr<obs::ResourceSampler> sampler;
  if (tracing) {
    obs::Timeline::Enable();
    obs::Timeline::SetCurrentThreadName("main");
    sampler = std::make_unique<obs::ResourceSampler>();
  }

  serve::EngineOptions options;
  serve::Engine engine(&registry, options);

  // Warm up the pool and the fence's inductive caches before timing.
  for (int i = 0; i < 16; ++i) {
    const serve::ServeResponse response = engine.InferBlocking(
        {"home", setup.data.test[i % setup.data.test.size()], {}});
    GEM_CHECK(response.status.ok());
  }

  std::vector<double> latencies_ms;
  latencies_ms.reserve(request_count);
  for (int i = 0; i < request_count; ++i) {
    const rf::ScanRecord& record =
        setup.data.test[i % setup.data.test.size()];
    const auto start = std::chrono::steady_clock::now();
    const serve::ServeResponse response =
        engine.InferBlocking({"home", record, {}});
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (!response.status.ok()) {
      std::fprintf(stderr, "request %d failed: %s\n", i,
                   response.status.ToString().c_str());
      return 1;
    }
    latencies_ms.push_back(ms);
  }
  engine.Shutdown();

  std::string stages_json;
  if (tracing) {
    sampler->Stop();
    obs::Timeline::Disable();
    const obs::AttributionReport report =
        obs::BuildAttribution(obs::Timeline::Snapshot());
    stages_json = obs::AttributionJson(report);
    std::printf("\n=== Stage attribution ===\n\n%s\n",
                obs::AttributionTable(report).c_str());
    const Status written = obs::WriteChromeTrace(trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", trace_out.c_str());
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  double sum = 0.0;
  for (const double ms : latencies_ms) sum += ms;
  const double mean = sum / static_cast<double>(latencies_ms.size());
  const double p50 = PercentileMs(latencies_ms, 0.50);
  const double p99 = PercentileMs(latencies_ms, 0.99);

  std::printf("=== Serve latency (engine InferBlocking, 1 fence) ===\n");
  std::printf("requests %d  p50 %.3f ms  p99 %.3f ms  mean %.3f ms\n",
              request_count, p50, p99, mean);

  std::ofstream out(bench_out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", bench_out.c_str());
    return 1;
  }
  out << "{\"workload\": \"serve_latency\", \"fence\": \"home\", "
      << "\"threads\": " << options.num_threads
      << ", \"requests\": " << request_count << ", \"p50_ms\": " << p50
      << ", \"p99_ms\": " << p99 << ", \"mean_ms\": " << mean;
  if (!stages_json.empty()) out << ", \"stages\": " << stages_json;
  out << "}\n";
  return out ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string bench_out =
      FlagValueFromArgs(argc, argv, "--bench_out=");
  if (!bench_out.empty()) {
    const std::string requests_flag =
        FlagValueFromArgs(argc, argv, "--requests=");
    int requests = 400;
    if (!requests_flag.empty()) requests = std::atoi(requests_flag.c_str());
    if (requests < 1) {
      std::fprintf(stderr, "--requests must be >= 1\n");
      return 2;
    }
    std::string trace_out = FlagValueFromArgs(argc, argv, "--trace_out=");
    if (trace_out.empty()) trace_out = obs::TraceOutPathFromEnv();
    return RunServeLatency(bench_out, requests, trace_out);
  }

  std::printf("=== Table III: inference time breakdown (ms) ===\n");
  std::printf("Rows: embedding generation / in-out detection / online "
              "model update / full pipeline.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

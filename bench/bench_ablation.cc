// Ablation study of GEM's design choices (beyond the paper's figures;
// DESIGN.md's per-design-choice index). Each arm removes exactly one
// ingredient:
//   1. full GEM                      (reference)
//   2. - weighted sampling           (uniform sampling/aggregation/walks,
//                                     bi-level aggregation kept)
//   3. - bi-level aggregation        (GraphSAGE: homogeneous, single
//                                     embedding, uniform sampling)
//   4. - enhanced detector           (plain HBOS with the contamination
//                                     threshold)
//   5. - online self-enhancement     (no model updates on the stream)
//   6. - BiSAGE entirely             (padded matrix representation)

#include <cstdio>
#include <memory>

#include "core/embedding_pipeline.h"
#include "core/gem.h"
#include "detect/hbos.h"
#include "embed/bisage.h"
#include "embed/matrix_rep.h"
#include "eval/csv.h"
#include "eval/evaluate.h"
#include "eval/systems.h"
#include "eval/table.h"
#include "rf/dataset.h"
#include "rf/dynamics.h"

namespace {

using namespace gem;  // NOLINT(build/namespaces) bench binary

std::unique_ptr<core::GeofencingSystem> MakeArm(int arm, uint64_t seed) {
  switch (arm) {
    case 0:
      return eval::MakeSystem(eval::AlgorithmId::kGem, seed);
    case 1: {
      core::GemConfig config;
      config.bisage.use_edge_weights = false;
      return std::make_unique<core::Gem>(config);
    }
    case 2:
      return eval::MakeSystem(eval::AlgorithmId::kGraphSageOd, seed);
    case 3: {
      embed::BiSageConfig bisage;
      bisage.seed ^= seed;
      return std::make_unique<core::EmbeddingPipeline>(
          "plain HBOS", std::make_unique<embed::BiSageEmbedder>(bisage),
          std::make_unique<detect::HbosDetector>());
    }
    case 4: {
      core::GemConfig config;
      config.online_update = false;
      return std::make_unique<core::Gem>(config);
    }
    case 5:
      return eval::MakeSystem(eval::AlgorithmId::kRawOd, seed);
  }
  return nullptr;
}

const char* ArmName(int arm) {
  switch (arm) {
    case 0: return "GEM (full)";
    case 1: return "  - weighted sampling";
    case 2: return "  - bi-level aggregation (GraphSAGE)";
    case 3: return "  - enhanced detector (plain HBOS)";
    case 4: return "  - online self-enhancement";
    case 5: return "  - BiSAGE (padded matrix)";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = eval::CsvDirFromArgs(argc, argv);
  std::unique_ptr<eval::CsvWriter> csv;
  if (!csv_dir.empty()) {
    csv = std::make_unique<eval::CsvWriter>(csv_dir + "/ablation.csv");
    csv->WriteHeader({"arm", "f_in", "f_out"});
  }

  std::printf("=== Ablation: what each GEM ingredient buys ===\n");
  std::printf("(mean over 4 homes with mild AP churn)\n\n");

  eval::TextTable table({"Arm", "F_in", "F_out"});
  for (int arm = 0; arm < 6; ++arm) {
    math::Vec f_in, f_out;
    for (int user : {0, 2, 5, 9}) {
      rf::DatasetOptions options;
      options.seed = 100 + static_cast<uint64_t>(user);
      rf::Dataset data =
          rf::GenerateScenarioDataset(rf::HomePreset(user), options);
      // Mild AP churn: the dynamic regime GEM is designed for (and the
      // one where representation choices actually separate).
      math::Rng churn(777 + static_cast<uint64_t>(user));
      rf::ApplyApOnOffDynamics(data.train, 0.1, 0.1, 30, churn);
      rf::ApplyApOnOffDynamics(data.test, 0.1, 0.1, 30, churn);
      auto system = MakeArm(arm, options.seed);
      auto result = eval::Evaluate(*system, data);
      if (!result.ok()) continue;
      f_in.push_back(result.value().metrics.f_in);
      f_out.push_back(result.value().metrics.f_out);
    }
    if (f_in.empty()) continue;
    table.AddRow({ArmName(arm), eval::FormatValue(math::Mean(f_in)),
                  eval::FormatValue(math::Mean(f_out))});
    if (csv) {
      csv->WriteRow({ArmName(arm), eval::FormatValue(math::Mean(f_in)),
                     eval::FormatValue(math::Mean(f_out))});
    }
    std::fprintf(stderr, "  [ablation] arm %d done\n", arm);
  }
  table.Print();
  std::printf("\nExpected shape: the full system leads; each removal "
              "costs accuracy, with the bipartite/BiSAGE modeling and "
              "the enhanced detector mattering most.\n");
  return 0;
}

// Reproduces Figure 11: F-scores when up to 25% of MACs are removed
// from the testing set (training set untouched).

#include "bench/prune_common.h"

int main(int argc, char** argv) {
  return gem::bench::RunPruneBench(gem::bench::PruneSide::kTest, "fig11",
                                   argc, argv);
}

// Reproduces Figure 10: F-scores when up to 25% of MACs are removed
// from the training set (testing set untouched).

#include "bench/prune_common.h"

int main(int argc, char** argv) {
  return gem::bench::RunPruneBench(gem::bench::PruneSide::kTrain, "fig10",
                                   argc, argv);
}

// Reproduces Figure 13: GEM's average F-score under the AP ON-OFF
// two-state Markov dynamics of Figure 12, over a (p, q) grid. Each
// MAC transitions every 30 samples throughout the training and testing
// sets.

#include <cstdio>
#include <memory>

#include "eval/csv.h"
#include "eval/evaluate.h"
#include "eval/systems.h"
#include "eval/table.h"
#include "rf/dataset.h"
#include "rf/dynamics.h"

namespace {

using namespace gem;  // NOLINT(build/namespaces) bench binary

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = eval::CsvDirFromArgs(argc, argv);
  const bool full = eval::FullScaleFromArgs(argc, argv);
  const int repeats = full ? 30 : 2;
  const std::vector<double> grid =
      full ? std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5,
                                 0.6, 0.7, 0.8, 0.9}
           : std::vector<double>{0.1, 0.3, 0.5, 0.7, 0.9};

  std::printf("=== Figure 13: robustness to AP ON-OFF Markov dynamics ===\n");
  std::printf("(mean of F_in and F_out, %d repeats per cell%s)\n\n", repeats,
              full ? "" : "; --full for the paper's 9x9 grid, 30 repeats");

  std::unique_ptr<eval::CsvWriter> csv;
  if (!csv_dir.empty()) {
    csv = std::make_unique<eval::CsvWriter>(csv_dir + "/fig13.csv");
    csv->WriteHeader({"p", "q", "mean_f"});
  }

  std::vector<std::string> headers{"p \\ q"};
  for (double q : grid) headers.push_back(eval::FormatValue(q));
  eval::TextTable table(headers);

  for (double p : grid) {
    std::vector<std::string> row{eval::FormatValue(p)};
    for (double q : grid) {
      math::Vec f;
      for (int rep = 0; rep < repeats; ++rep) {
        rf::DatasetOptions options;
        options.seed = 102;
        rf::Dataset data =
            rf::GenerateScenarioDataset(rf::HomePreset(2), options);
        math::Rng markov_rng(5000 + 97 * rep);
        rf::ApplyApOnOffDynamics(data.train, p, q, 30, markov_rng);
        rf::ApplyApOnOffDynamics(data.test, p, q, 30, markov_rng);
        auto system = eval::MakeSystem(eval::AlgorithmId::kGem,
                                       options.seed + rep);
        auto result = eval::Evaluate(*system, data);
        if (!result.ok()) continue;
        f.push_back((result.value().metrics.f_in +
                     result.value().metrics.f_out) / 2.0);
      }
      const double mean_f = f.empty() ? 0.0 : math::Mean(f);
      row.push_back(eval::FormatValue(mean_f));
      if (csv) csv->WriteNumericRow({p, q, mean_f});
    }
    table.AddRow(std::move(row));
    std::fprintf(stderr, "  [fig13] p=%.1f row done\n", p);
  }
  table.Print();
  std::printf("\nExpected shape: high F everywhere, with a small dip near "
              "(p, q) = (0.5, 0.5) where the chain's entropy rate peaks.\n");
  return 0;
}

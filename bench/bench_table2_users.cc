// Reproduces Table II: per-user GEM performance together with the MAC
// count and area of each simulated home.

#include <cstdio>
#include <memory>

#include "base/logging.h"
#include "eval/csv.h"
#include "eval/evaluate.h"
#include "eval/systems.h"
#include "eval/table.h"
#include "rf/dataset.h"
#include "rf/dynamics.h"

namespace {

using namespace gem;  // NOLINT(build/namespaces) bench binary

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = eval::CsvDirFromArgs(argc, argv);
  std::unique_ptr<eval::CsvWriter> csv;
  if (!csv_dir.empty()) {
    csv = std::make_unique<eval::CsvWriter>(csv_dir + "/table2.csv");
    csv->WriteHeader({"user", "p_in", "r_in", "f_in", "p_out", "r_out",
                      "f_out", "macs", "area_m2"});
  }

  std::printf("=== Table II: user-level performance of GEM ===\n\n");
  eval::TextTable table({"User", "P_in", "R_in", "F_in", "P_out", "R_out",
                         "F_out", "#MACs", "Area(m^2)"});

  std::vector<math::InOutMetrics> all;
  math::Vec macs_seen;
  math::Vec areas;
  for (int user = 0; user < 10; ++user) {
    const rf::ScenarioConfig scenario = rf::HomePreset(user);
    rf::DatasetOptions options;
    options.seed = 100 + static_cast<uint64_t>(user);
    const rf::Dataset data = rf::GenerateScenarioDataset(scenario, options);

    // #MACs: distinct non-transient MACs actually observed.
    int macs = 0;
    for (const std::string& mac : rf::CollectMacs(data.train)) {
      if (mac.rfind("transient:", 0) != 0) ++macs;
    }
    const double area = scenario.width_m * scenario.height_m *
                        scenario.floors;

    auto system = eval::MakeSystem(eval::AlgorithmId::kGem, options.seed);
    auto result = eval::Evaluate(*system, data);
    if (!result.ok()) {
      GEM_LOG(Warning) << "user " << user + 1
                       << " failed: " << result.status().ToString();
      continue;
    }
    const math::InOutMetrics& m = result.value().metrics;
    all.push_back(m);
    macs_seen.push_back(macs);
    areas.push_back(area);

    table.AddRow({std::to_string(user + 1), eval::FormatValue(m.precision_in),
                  eval::FormatValue(m.recall_in), eval::FormatValue(m.f_in),
                  eval::FormatValue(m.precision_out),
                  eval::FormatValue(m.recall_out),
                  eval::FormatValue(m.f_out), std::to_string(macs),
                  eval::FormatValue(area)});
    if (csv) {
      csv->WriteNumericRow({static_cast<double>(user + 1), m.precision_in,
                            m.recall_in, m.f_in, m.precision_out,
                            m.recall_out, m.f_out,
                            static_cast<double>(macs), area});
    }
    std::fprintf(stderr, "  [table2] user %d/10 done\n", user + 1);
  }

  if (!all.empty()) {
    const eval::AggregateMetrics agg = eval::Aggregate(all);
    table.AddRow({"Avg.", eval::FormatValue(agg.p_in.mean),
                  eval::FormatValue(agg.r_in.mean),
                  eval::FormatValue(agg.f_in.mean),
                  eval::FormatValue(agg.p_out.mean),
                  eval::FormatValue(agg.r_out.mean),
                  eval::FormatValue(agg.f_out.mean),
                  eval::FormatValue(math::Mean(macs_seen)),
                  eval::FormatValue(math::Mean(areas))});
  }
  table.Print();
  return 0;
}

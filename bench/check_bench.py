#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json artifacts.

Compares the wall-time metrics of freshly produced bench JSONs
(BENCH_train.json from bench_fig9_training_update --timing_only,
BENCH_serve.json from bench_table3_latency --bench_out,
BENCH_kernels.json from bench_kernels --bench_out) against the
committed baselines in bench/baselines/.

    python3 bench/check_bench.py --baseline-dir bench/baselines \
        [--current-dir .] [--fail-pct 25] [--warn-pct 10] [NAME.json ...]

With no NAMEs, every *.json in the baseline dir is checked. A metric is
any numeric leaf whose key looks like a timing (``*_seconds``, ``*_ms``,
``ns_per_op``); list entries are keyed by their identifying fields
(threads / kernel / dim / backend / stage) so reordering never
misaligns a comparison. p99 metrics are warn-only: tail latency on
shared CI runners is too noisy to gate merges on. Per-stage
attribution metrics (the ``stages`` arrays emitted under --trace_out)
are also warn-only — including when a baselined stage disappears —
because stage names track the instrumentation, not the contract, and
per-stage exclusive times of sub-millisecond stages are dominated by
scheduler noise.

Exit codes: 0 ok (warnings allowed), 1 regression (or a baselined
metric missing from the current run), 2 usage/IO/parse error.

See bench/README.md for the baseline rebase flow.
"""

import argparse
import json
import os
import re
import sys

# A numeric leaf participates in the comparison iff its key matches.
TIMING_RE = re.compile(r"(_seconds|_ms|ns_per_op)$")
# Metrics that only warn, never fail: tail latency (noisy on shared
# runners) and per-stage attribution rows (stage sets follow the
# instrumentation; tiny stages are scheduler-noise-dominated).
WARN_ONLY_RE = re.compile(r"(^|[._\[])p99|\.stages\[")
# Fields used to key list entries stably.
ID_FIELDS = ("threads", "kernel", "dim", "backend", "workload", "fence",
             "stage")


def flatten(node, prefix=""):
    """Yields (path, value) for every numeric timing leaf under node."""
    if isinstance(node, dict):
        for key in sorted(node):
            path = f"{prefix}.{key}" if prefix else key
            yield from flatten(node[key], path)
    elif isinstance(node, list):
        for index, item in enumerate(node):
            if isinstance(item, dict):
                ids = [f"{f}={item[f]}" for f in ID_FIELDS if f in item]
                tag = ",".join(ids) if ids else str(index)
            else:
                tag = str(index)
            yield from flatten(item, f"{prefix}[{tag}]")
    elif isinstance(node, bool):
        return
    elif isinstance(node, (int, float)):
        key = prefix.rsplit(".", 1)[-1]
        if TIMING_RE.search(key):
            yield prefix, float(node)


def load_metrics(path):
    with open(path, "r", encoding="utf-8") as f:
        return dict(flatten(json.load(f)))


def compare_file(name, baseline_path, current_path, fail_pct, warn_pct):
    """Returns (num_regressions, num_warnings) for one artifact pair."""
    base = load_metrics(baseline_path)
    cur = load_metrics(current_path)
    regressions = 0
    warnings = 0
    for path in sorted(base):
        warn_only = WARN_ONLY_RE.search(path) is not None
        if path not in cur:
            if warn_only:
                print(f"WARN {name}: {path} missing from current run "
                      f"(baseline {base[path]:.6g}) [warn-only]")
                warnings += 1
            else:
                print(f"FAIL {name}: {path} missing from current run "
                      f"(baseline {base[path]:.6g})")
                regressions += 1
            continue
        b, c = base[path], cur[path]
        if b <= 0.0:
            print(f"SKIP {name}: {path} baseline is {b:.6g}")
            continue
        delta_pct = (c - b) / b * 100.0
        line = (f"{name}: {path} baseline={b:.6g} current={c:.6g} "
                f"({delta_pct:+.1f}%)")
        if delta_pct > fail_pct and not warn_only:
            print(f"FAIL {line}")
            regressions += 1
        elif delta_pct > warn_pct:
            print(f"WARN {line}" + (" [warn-only]" if warn_only else ""))
            warnings += 1
        else:
            print(f"  OK {line}")
    for path in sorted(set(cur) - set(base)):
        print(f"NEW  {name}: {path}={cur[path]:.6g} "
              f"(not in baseline; will be gated after the next rebase)")
    return regressions, warnings


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("--current-dir", default=".")
    parser.add_argument("--fail-pct", type=float, default=25.0,
                        help="fail when a metric regresses by more than "
                             "this percentage (default 25)")
    parser.add_argument("--warn-pct", type=float, default=10.0,
                        help="warn above this percentage (default 10)")
    parser.add_argument("names", nargs="*",
                        help="artifact file names (default: every *.json "
                             "in the baseline dir)")
    args = parser.parse_args(argv)
    if args.warn_pct > args.fail_pct:
        print(f"error: --warn-pct ({args.warn_pct}) must be <= --fail-pct "
              f"({args.fail_pct})", file=sys.stderr)
        return 2

    names = args.names
    if not names:
        try:
            names = sorted(n for n in os.listdir(args.baseline_dir)
                           if n.endswith(".json"))
        except OSError as e:
            print(f"error: cannot list {args.baseline_dir}: {e}",
                  file=sys.stderr)
            return 2
    if not names:
        print(f"error: no baseline *.json in {args.baseline_dir}",
              file=sys.stderr)
        return 2

    total_regressions = 0
    total_warnings = 0
    for name in names:
        baseline_path = os.path.join(args.baseline_dir, name)
        current_path = os.path.join(args.current_dir, name)
        try:
            regressions, warnings = compare_file(
                name, baseline_path, current_path, args.fail_pct,
                args.warn_pct)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {name}: {e}", file=sys.stderr)
            return 2
        total_regressions += regressions
        total_warnings += warnings

    verdict = "FAIL" if total_regressions else "OK"
    print(f"{verdict}: {total_regressions} regression(s), "
          f"{total_warnings} warning(s) across {len(names)} artifact(s) "
          f"[fail >{args.fail_pct:g}%, warn >{args.warn_pct:g}%]")
    return 1 if total_regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

// Reproduces Figure 7: GEM with vs without the BiSAGE embeddings. The
// "without" arm feeds the conventional padded matrix representation
// (missing entries = -120 dBm) directly into the same enhanced
// histogram detector.
//
// The workload includes mild AP ON-OFF churn (p = q = 0.15, block 30):
// APs appearing and disappearing across a session is exactly the
// real-world dynamic that makes the padded representation's
// missing-value imputation fail (Section IV-A), and it is why the
// paper observes a large F_out gap for this figure.

#include <cstdio>
#include <map>
#include <memory>

#include "base/logging.h"
#include "eval/csv.h"
#include "eval/evaluate.h"
#include "eval/systems.h"
#include "eval/table.h"
#include "rf/dataset.h"
#include "rf/dynamics.h"

namespace {

using namespace gem;  // NOLINT(build/namespaces) bench binary

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = eval::CsvDirFromArgs(argc, argv);
  std::printf("=== Figure 7: GEM with vs without BiSAGE embeddings ===\n\n");

  const eval::AlgorithmId arms[] = {eval::AlgorithmId::kGem,
                                    eval::AlgorithmId::kRawOd};
  std::map<eval::AlgorithmId, std::vector<math::InOutMetrics>> runs;
  for (int user = 0; user < 10; ++user) {
    rf::DatasetOptions options;
    options.seed = 100 + static_cast<uint64_t>(user);
    rf::Dataset data =
        rf::GenerateScenarioDataset(rf::HomePreset(user), options);
    math::Rng churn_rng(555 + static_cast<uint64_t>(user));
    rf::ApplyApOnOffDynamics(data.train, 0.15, 0.15, 30, churn_rng);
    rf::ApplyApOnOffDynamics(data.test, 0.15, 0.15, 30, churn_rng);
    for (const eval::AlgorithmId id : arms) {
      auto system = eval::MakeSystem(id, options.seed);
      auto result = eval::Evaluate(*system, data);
      if (!result.ok()) {
        GEM_LOG(Warning) << eval::AlgorithmName(id) << " failed on user "
                         << user + 1;
        continue;
      }
      runs[id].push_back(result.value().metrics);
    }
    std::fprintf(stderr, "  [fig7] user %d/10 done\n", user + 1);
  }

  eval::TextTable table({"Variant", "P_in", "R_in", "F_in", "P_out",
                         "R_out", "F_out"});
  std::unique_ptr<eval::CsvWriter> csv;
  if (!csv_dir.empty()) {
    csv = std::make_unique<eval::CsvWriter>(csv_dir + "/fig7.csv");
    csv->WriteHeader({"variant", "f_in_mean", "f_out_mean"});
  }
  double f_in[2] = {0, 0};
  double f_out[2] = {0, 0};
  int idx = 0;
  for (const eval::AlgorithmId id : arms) {
    const eval::AggregateMetrics agg = eval::Aggregate(runs[id]);
    std::vector<std::string> cells{eval::AlgorithmName(id)};
    eval::AppendMetricCells(agg, cells);
    table.AddRow(std::move(cells));
    f_in[idx] = agg.f_in.mean;
    f_out[idx] = agg.f_out.mean;
    if (csv) {
      csv->WriteRow({eval::AlgorithmName(id), eval::FormatValue(f_in[idx]),
                     eval::FormatValue(f_out[idx])});
    }
    ++idx;
  }
  table.Print();
  std::printf(
      "\nImprovement from BiSAGE: %+.0f%% in F_in, %+.0f%% in F_out "
      "(paper: ~14%% and ~54%%).\n",
      (f_in[0] / f_in[1] - 1.0) * 100.0, (f_out[0] / f_out[1] - 1.0) * 100.0);
  return 0;
}

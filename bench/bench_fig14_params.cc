// Reproduces Figure 14: GEM's tolerance to parameter perturbation —
// (a) embedding dimension d, (b) softmax scaling factor T, (c)
// histogram bin count m, (d) the edge-weight function family.

#include <cstdio>
#include <memory>

#include "eval/csv.h"
#include "eval/evaluate.h"
#include "eval/systems.h"
#include "eval/table.h"
#include "rf/dataset.h"

namespace {

using namespace gem;  // NOLINT(build/namespaces) bench binary

math::InOutMetrics RunWith(const core::GemConfig& config,
                           const rf::Dataset& data, uint64_t seed) {
  auto system = eval::MakeSystem(eval::AlgorithmId::kGem, seed, config);
  auto result = eval::Evaluate(*system, data);
  return result.ok() ? result.value().metrics : math::InOutMetrics{};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = eval::CsvDirFromArgs(argc, argv);
  std::unique_ptr<eval::CsvWriter> csv;
  if (!csv_dir.empty()) {
    csv = std::make_unique<eval::CsvWriter>(csv_dir + "/fig14.csv");
    csv->WriteHeader({"panel", "value", "f_in", "f_out"});
  }

  rf::DatasetOptions options;
  options.seed = 102;
  const rf::Dataset data =
      rf::GenerateScenarioDataset(rf::HomePreset(2), options);

  auto report = [&](const char* panel, const std::string& value,
                    const math::InOutMetrics& m, eval::TextTable& table) {
    table.AddRow({value, eval::FormatValue(m.f_in),
                  eval::FormatValue(m.f_out)});
    if (csv) {
      csv->WriteRow({panel, value, eval::FormatValue(m.f_in),
                     eval::FormatValue(m.f_out)});
    }
  };

  std::printf("=== Figure 14(a): embedding dimension d ===\n\n");
  {
    eval::TextTable table({"d", "F_in", "F_out"});
    for (int d : {8, 16, 32, 64, 128}) {
      core::GemConfig config;
      config.bisage.dimension = d;
      report("a", std::to_string(d), RunWith(config, data, options.seed),
             table);
      std::fprintf(stderr, "  [fig14a] d=%d done\n", d);
    }
    table.Print();
  }

  std::printf("\n=== Figure 14(b): scaling factor T ===\n");
  std::printf("(T reshapes the reported S_T score; decisions use the "
              "calibrated threshold, so F is stable by design)\n\n");
  {
    eval::TextTable table({"T", "F_in", "F_out"});
    for (double t : {0.02, 0.06, 0.1, 0.2, 0.5}) {
      core::GemConfig config;
      config.detector.temperature = t;
      report("b", eval::FormatValue(t), RunWith(config, data, options.seed),
             table);
    }
    table.Print();
    std::fprintf(stderr, "  [fig14b] done\n");
  }

  std::printf("\n=== Figure 14(c): histogram bin count m ===\n\n");
  {
    eval::TextTable table({"m", "F_in", "F_out"});
    for (int m : {5, 10, 20, 50, 100}) {
      core::GemConfig config;
      config.detector.bins = m;
      report("c", std::to_string(m), RunWith(config, data, options.seed),
             table);
      std::fprintf(stderr, "  [fig14c] m=%d done\n", m);
    }
    table.Print();
  }

  std::printf("\n=== Figure 14(d): edge-weight function ===\n\n");
  {
    eval::TextTable table({"f(RSS)", "F_in", "F_out"});
    const std::pair<graph::WeightKind, const char*> kinds[] = {
        {graph::WeightKind::kLinearOffset, "RSS + c (paper)"},
        {graph::WeightKind::kExponential, "exp(RSS/20)"},
        {graph::WeightKind::kBinary, "binary"},
        {graph::WeightKind::kSquaredOffset, "(RSS + c)^2"},
    };
    for (const auto& [kind, name] : kinds) {
      core::GemConfig config;
      config.edge_weight.kind = kind;
      report("d", name, RunWith(config, data, options.seed), table);
      std::fprintf(stderr, "  [fig14d] %s done\n", name);
    }
    table.Print();
  }
  std::printf("\nExpected shape: F stays high across every sweep (GEM is "
              "insensitive to these hyperparameters).\n");
  return 0;
}

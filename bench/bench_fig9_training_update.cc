// Reproduces Figure 9: (a) F-score vs fraction of the initial training
// data used; (b) F-score improving as the online update consumes
// successive slices of the test stream.
//
// Timing mode (used by CI and the README's threading numbers):
//   bench_fig9_training_update --timing_only [--threads=1,2,4]
//                              [--bench_out=BENCH_train.json]
//                              [--trace_out=trace.json]
// trains the same workload once per thread count, times Train and the
// batched inference pass, and writes the measurements as JSON.
// --trace_out (or GEM_PROFILE=<path>) additionally records the
// per-thread timeline, writes it as Chrome trace-event JSON, and
// prints a per-stage cost-attribution table per thread count; the
// per-stage exclusive/inclusive seconds also land in the bench JSON
// under "stages".

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/gem.h"
#include "eval/csv.h"
#include "eval/table.h"
#include "math/metrics.h"
#include "obs/attribution.h"
#include "obs/resource_sampler.h"
#include "obs/timeline.h"
#include "rf/dataset.h"

namespace {

using namespace gem;  // NOLINT(build/namespaces) bench binary

std::string FlagValueFromArgs(int argc, char** argv, const char* prefix) {
  const size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) return argv[i] + len;
  }
  return "";
}

std::vector<int> ParseThreadList(const std::string& s) {
  std::vector<int> threads;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) {
      const int t = std::atoi(s.substr(start, end - start).c_str());
      if (t >= 1) threads.push_back(t);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (threads.empty()) threads = {1, 2, 4};
  return threads;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Trains the Figure 9 workload once per thread count and reports the
/// wall time of Train() and of a batched inference pass over the test
/// stream. Returns 0 and writes `bench_out` (when non-empty) as JSON:
///   {"workload": "fig9_train", "train_records": ...,
///    "results": [{"threads": 1, "train_seconds": ..., ...}, ...]}
int RunTimingOnly(const std::vector<int>& thread_counts,
                  const std::string& bench_out,
                  const std::string& trace_out) {
  rf::DatasetOptions options;
  options.seed = 321;
  const rf::Dataset data =
      rf::GenerateScenarioDataset(rf::HomePreset(2), options);

  const bool tracing = !trace_out.empty();
  std::unique_ptr<obs::ResourceSampler> sampler;
  if (tracing) {
    // Training emits a few spans per batch per thread across several
    // runs; size the rings generously so the capture has no holes.
    obs::TimelineOptions timeline_options;
    timeline_options.events_per_thread = 1 << 17;
    obs::Timeline::Enable(timeline_options);
    obs::Timeline::SetCurrentThreadName("main");
    sampler = std::make_unique<obs::ResourceSampler>();
  }

  struct Timing {
    int threads;
    double train_seconds;
    double infer_batch_seconds;
    /// Timeline window of this run, for per-run attribution.
    int64_t window_begin_ns;
    int64_t window_end_ns;
    std::string stages_json;
  };
  std::vector<Timing> timings;
  eval::TextTable table({"Threads", "Train (s)", "InferBatch (s)",
                         "Train speedup"});
  double baseline = 0.0;
  for (const int threads : thread_counts) {
    core::GemConfig config;
    config.bisage.num_threads = threads;
    core::Gem gem(config);

    const int64_t window_begin_ns = obs::Timeline::NowNs();
    const auto train_start = std::chrono::steady_clock::now();
    if (!gem.Train(data.train).ok()) {
      std::fprintf(stderr, "training failed at %d threads\n", threads);
      return 1;
    }
    const double train_s = Seconds(train_start);

    const auto infer_start = std::chrono::steady_clock::now();
    const std::vector<core::InferenceResult> results =
        gem.InferBatch(data.test);
    const double infer_s = Seconds(infer_start);
    if (results.size() != data.test.size()) {
      std::fprintf(stderr, "batch size mismatch at %d threads\n", threads);
      return 1;
    }
    const int64_t window_end_ns = obs::Timeline::NowNs();

    if (baseline == 0.0) baseline = train_s;
    timings.push_back({threads, train_s, infer_s, window_begin_ns,
                       window_end_ns, ""});
    table.AddRow({std::to_string(threads), eval::FormatValue(train_s),
                  eval::FormatValue(infer_s),
                  eval::FormatValue(baseline / train_s)});
    std::fprintf(stderr, "  [timing] %d thread(s): train %.3fs, "
                 "infer-batch %.3fs\n", threads, train_s, infer_s);
  }
  std::printf("=== Training / batched-inference timing ===\n\n");
  table.Print();

  if (tracing) {
    sampler->Stop();
    obs::Timeline::Disable();
    const std::vector<obs::TimelineEventView> events =
        obs::Timeline::Snapshot();
    for (Timing& timing : timings) {
      const obs::AttributionReport report = obs::BuildAttribution(
          events, timing.window_begin_ns, timing.window_end_ns);
      timing.stages_json = obs::AttributionJson(report);
      std::printf("\n=== Stage attribution @ %d thread(s) ===\n\n%s",
                  timing.threads, obs::AttributionTable(report).c_str());
    }
    const Status written = obs::WriteChromeTrace(trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (%llu events, %llu dropped)\n",
                 trace_out.c_str(),
                 static_cast<unsigned long long>(
                     obs::Timeline::RecordedEvents()),
                 static_cast<unsigned long long>(
                     obs::Timeline::DroppedEvents()));
  }

  if (!bench_out.empty()) {
    std::ofstream out(bench_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", bench_out.c_str());
      return 1;
    }
    out << "{\"workload\": \"fig9_train\", \"train_records\": "
        << data.train.size() << ", \"test_records\": " << data.test.size()
        << ", \"results\": [";
    for (size_t i = 0; i < timings.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"threads\": " << timings[i].threads
          << ", \"train_seconds\": " << timings[i].train_seconds
          << ", \"infer_batch_seconds\": " << timings[i].infer_batch_seconds;
      if (!timings[i].stages_json.empty()) {
        out << ", \"stages\": " << timings[i].stages_json;
      }
      out << "}";
    }
    out << "]}\n";
    std::fprintf(stderr, "wrote %s\n", bench_out.c_str());
  }
  return 0;
}

math::InOutMetrics RunGem(const std::vector<rf::ScanRecord>& train,
                          const std::vector<rf::ScanRecord>& test,
                          bool online_update) {
  core::GemConfig config;
  config.online_update = online_update;
  core::Gem gem(config);
  math::InOutMetrics empty;
  if (!gem.Train(train).ok()) return empty;
  std::vector<bool> actual, predicted;
  for (const rf::ScanRecord& record : test) {
    actual.push_back(record.inside);
    predicted.push_back(gem.Infer(record).decision ==
                        core::Decision::kInside);
  }
  return math::ComputeInOutMetrics(actual, predicted);
}

}  // namespace

int main(int argc, char** argv) {
  bool timing_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--timing_only") == 0) timing_only = true;
  }
  if (timing_only) {
    std::string trace_out = FlagValueFromArgs(argc, argv, "--trace_out=");
    if (trace_out.empty()) trace_out = obs::TraceOutPathFromEnv();
    return RunTimingOnly(
        ParseThreadList(FlagValueFromArgs(argc, argv, "--threads=")),
        FlagValueFromArgs(argc, argv, "--bench_out="), trace_out);
  }

  const std::string csv_dir = eval::CsvDirFromArgs(argc, argv);
  std::unique_ptr<eval::CsvWriter> csv;
  if (!csv_dir.empty()) {
    csv = std::make_unique<eval::CsvWriter>(csv_dir + "/fig9.csv");
    csv->WriteHeader({"panel", "ratio", "f_in", "f_out"});
  }

  rf::DatasetOptions options;
  options.seed = 321;
  const rf::Dataset data =
      rf::GenerateScenarioDataset(rf::HomePreset(2), options);

  std::printf("=== Figure 9(a): performance vs training-data ratio ===\n\n");
  eval::TextTable table_a({"Train ratio", "#records", "F_in", "F_out"});
  for (int tenth = 1; tenth <= 10; ++tenth) {
    const size_t count = data.train.size() * tenth / 10;
    const std::vector<rf::ScanRecord> subset(data.train.begin(),
                                             data.train.begin() + count);
    const math::InOutMetrics m = RunGem(subset, data.test, true);
    table_a.AddRow({eval::FormatValue(tenth / 10.0), std::to_string(count),
                    eval::FormatValue(m.f_in), eval::FormatValue(m.f_out)});
    if (csv) {
      csv->WriteRow({"a", eval::FormatValue(tenth / 10.0),
                     eval::FormatValue(m.f_in), eval::FormatValue(m.f_out)});
    }
    std::fprintf(stderr, "  [fig9a] ratio %d/10 done\n", tenth);
  }
  table_a.Print();
  std::printf("\nExpected shape: usable already at small ratios, improving "
              "with more data.\n\n");

  std::printf("=== Figure 9(b): performance vs update ratio ===\n");
  std::printf("(busy drifting environment; the model updates on the first "
              "k/10 of the test stream, then is evaluated frozen on the "
              "final fifth)\n\n");
  // A long stream in a busy environment: the regime where the online
  // update has to track the drift.
  rf::DatasetOptions stream_options = options;
  stream_options.time_of_day = rf::ProfileAt11Am();
  stream_options.test_segments = 12;
  const rf::Dataset stream_data =
      rf::GenerateScenarioDataset(rf::HomePreset(2), stream_options);
  // Hold out the last 20% of the stream as a fixed probe set.
  const size_t probe_begin = stream_data.test.size() * 8 / 10;
  const std::vector<rf::ScanRecord> probe(
      stream_data.test.begin() + probe_begin, stream_data.test.end());
  eval::TextTable table_b({"Update ratio", "F_in", "F_out"});
  for (int tenth = 0; tenth <= 10; tenth += 2) {
    core::GemConfig config;
    core::Gem gem(config);
    if (!gem.Train(stream_data.train).ok()) break;
    const size_t burn = probe_begin * tenth / 10;
    for (size_t i = 0; i < burn; ++i) (void)gem.Infer(stream_data.test[i]);
    // Freeze: evaluate the probe set without further updates.
    std::vector<bool> actual, predicted;
    for (const rf::ScanRecord& record : probe) {
      const auto embedding =
          const_cast<core::Gem&>(gem).EmbedRecord(record);
      bool inside = false;
      if (embedding.ok()) {
        inside = gem.Detect(*embedding).decision == core::Decision::kInside;
      }
      actual.push_back(record.inside);
      predicted.push_back(inside);
    }
    const math::InOutMetrics m = math::ComputeInOutMetrics(actual, predicted);
    table_b.AddRow({eval::FormatValue(tenth / 10.0),
                    eval::FormatValue(m.f_in), eval::FormatValue(m.f_out)});
    if (csv) {
      csv->WriteRow({"b", eval::FormatValue(tenth / 10.0),
                     eval::FormatValue(m.f_in), eval::FormatValue(m.f_out)});
    }
    std::fprintf(stderr, "  [fig9b] ratio %d/10 done\n", tenth);
  }
  table_b.Print();
  std::printf("\nExpected shape: F improves (or holds) as more of the "
              "stream has been absorbed.\n");
  return 0;
}

// Reproduces Figure 9: (a) F-score vs fraction of the initial training
// data used; (b) F-score improving as the online update consumes
// successive slices of the test stream.

#include <cstdio>
#include <memory>

#include "core/gem.h"
#include "eval/csv.h"
#include "eval/table.h"
#include "math/metrics.h"
#include "rf/dataset.h"

namespace {

using namespace gem;  // NOLINT(build/namespaces) bench binary

math::InOutMetrics RunGem(const std::vector<rf::ScanRecord>& train,
                          const std::vector<rf::ScanRecord>& test,
                          bool online_update) {
  core::GemConfig config;
  config.online_update = online_update;
  core::Gem gem(config);
  math::InOutMetrics empty;
  if (!gem.Train(train).ok()) return empty;
  std::vector<bool> actual, predicted;
  for (const rf::ScanRecord& record : test) {
    actual.push_back(record.inside);
    predicted.push_back(gem.Infer(record).decision ==
                        core::Decision::kInside);
  }
  return math::ComputeInOutMetrics(actual, predicted);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv_dir = eval::CsvDirFromArgs(argc, argv);
  std::unique_ptr<eval::CsvWriter> csv;
  if (!csv_dir.empty()) {
    csv = std::make_unique<eval::CsvWriter>(csv_dir + "/fig9.csv");
    csv->WriteHeader({"panel", "ratio", "f_in", "f_out"});
  }

  rf::DatasetOptions options;
  options.seed = 321;
  const rf::Dataset data =
      rf::GenerateScenarioDataset(rf::HomePreset(2), options);

  std::printf("=== Figure 9(a): performance vs training-data ratio ===\n\n");
  eval::TextTable table_a({"Train ratio", "#records", "F_in", "F_out"});
  for (int tenth = 1; tenth <= 10; ++tenth) {
    const size_t count = data.train.size() * tenth / 10;
    const std::vector<rf::ScanRecord> subset(data.train.begin(),
                                             data.train.begin() + count);
    const math::InOutMetrics m = RunGem(subset, data.test, true);
    table_a.AddRow({eval::FormatValue(tenth / 10.0), std::to_string(count),
                    eval::FormatValue(m.f_in), eval::FormatValue(m.f_out)});
    if (csv) {
      csv->WriteRow({"a", eval::FormatValue(tenth / 10.0),
                     eval::FormatValue(m.f_in), eval::FormatValue(m.f_out)});
    }
    std::fprintf(stderr, "  [fig9a] ratio %d/10 done\n", tenth);
  }
  table_a.Print();
  std::printf("\nExpected shape: usable already at small ratios, improving "
              "with more data.\n\n");

  std::printf("=== Figure 9(b): performance vs update ratio ===\n");
  std::printf("(busy drifting environment; the model updates on the first "
              "k/10 of the test stream, then is evaluated frozen on the "
              "final fifth)\n\n");
  // A long stream in a busy environment: the regime where the online
  // update has to track the drift.
  rf::DatasetOptions stream_options = options;
  stream_options.time_of_day = rf::ProfileAt11Am();
  stream_options.test_segments = 12;
  const rf::Dataset stream_data =
      rf::GenerateScenarioDataset(rf::HomePreset(2), stream_options);
  // Hold out the last 20% of the stream as a fixed probe set.
  const size_t probe_begin = stream_data.test.size() * 8 / 10;
  const std::vector<rf::ScanRecord> probe(
      stream_data.test.begin() + probe_begin, stream_data.test.end());
  eval::TextTable table_b({"Update ratio", "F_in", "F_out"});
  for (int tenth = 0; tenth <= 10; tenth += 2) {
    core::GemConfig config;
    core::Gem gem(config);
    if (!gem.Train(stream_data.train).ok()) break;
    const size_t burn = probe_begin * tenth / 10;
    for (size_t i = 0; i < burn; ++i) (void)gem.Infer(stream_data.test[i]);
    // Freeze: evaluate the probe set without further updates.
    std::vector<bool> actual, predicted;
    for (const rf::ScanRecord& record : probe) {
      const auto embedding =
          const_cast<core::Gem&>(gem).EmbedRecord(record);
      bool inside = false;
      if (embedding.has_value()) {
        inside = gem.Detect(*embedding).decision == core::Decision::kInside;
      }
      actual.push_back(record.inside);
      predicted.push_back(inside);
    }
    const math::InOutMetrics m = math::ComputeInOutMetrics(actual, predicted);
    table_b.AddRow({eval::FormatValue(tenth / 10.0),
                    eval::FormatValue(m.f_in), eval::FormatValue(m.f_out)});
    if (csv) {
      csv->WriteRow({"b", eval::FormatValue(tenth / 10.0),
                     eval::FormatValue(m.f_in), eval::FormatValue(m.f_out)});
    }
    std::fprintf(stderr, "  [fig9b] ratio %d/10 done\n", tenth);
  }
  table_b.Print();
  std::printf("\nExpected shape: F improves (or holds) as more of the "
              "stream has been absorbed.\n");
  return 0;
}

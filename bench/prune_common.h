#ifndef GEM_BENCH_PRUNE_COMMON_H_
#define GEM_BENCH_PRUNE_COMMON_H_

// Shared driver for Figures 10 and 11: F-score as a random subset of
// MACs is removed from the training or testing set.

#include <cstdio>
#include <memory>
#include <map>
#include <string>
#include <vector>

#include "base/logging.h"
#include "eval/csv.h"
#include "eval/evaluate.h"
#include "eval/systems.h"
#include "eval/table.h"
#include "rf/dataset.h"
#include "rf/dynamics.h"

namespace gem::bench {

enum class PruneSide { kTrain, kTest };

/// Runs the pruning sweep and prints the figure's series. `repeats`
/// fresh MAC subsets are averaged per level (the paper uses 30; the
/// default here is smaller for runtime, --full restores 30).
inline int RunPruneBench(PruneSide side, const std::string& figure_name,
                         int argc, char** argv) {
  const std::string csv_dir = eval::CsvDirFromArgs(argc, argv);
  const bool full = eval::FullScaleFromArgs(argc, argv);
  const int repeats = full ? 30 : 3;
  const std::vector<int> users = full ? std::vector<int>{0, 2, 5, 9}
                                      : std::vector<int>{2, 9};
  const std::vector<eval::AlgorithmId> algorithms = {
      eval::AlgorithmId::kGem, eval::AlgorithmId::kSignatureHome,
      eval::AlgorithmId::kGraphSageOd};

  std::printf("=== %s: F-score vs %%MACs removed from the %s set ===\n",
              figure_name.c_str(),
              side == PruneSide::kTrain ? "training" : "testing");
  std::printf("(%d repeats x %zu users per point%s)\n\n", repeats,
              users.size(), full ? "" : "; use --full for paper scale");

  std::unique_ptr<eval::CsvWriter> csv;
  if (!csv_dir.empty()) {
    csv = std::make_unique<eval::CsvWriter>(
        csv_dir + "/" + figure_name + ".csv");
    csv->WriteHeader({"algorithm", "prune_fraction", "f_in", "f_out"});
  }

  eval::TextTable table({"Algorithm", "%removed", "F_in", "F_out"});
  for (const eval::AlgorithmId id : algorithms) {
    for (const double fraction : {0.0, 0.05, 0.10, 0.15, 0.20, 0.25}) {
      math::Vec f_in, f_out;
      for (const int user : users) {
        for (int rep = 0; rep < repeats; ++rep) {
          rf::DatasetOptions options;
          options.seed = 100 + static_cast<uint64_t>(user);
          rf::Dataset data =
              rf::GenerateScenarioDataset(rf::HomePreset(user), options);
          math::Rng prune_rng(7000 + 31 * rep + user);
          if (fraction > 0.0) {
            auto& target =
                side == PruneSide::kTrain ? data.train : data.test;
            const auto macs =
                rf::SampleMacSubset(target, fraction, prune_rng);
            rf::RemoveMacs(target, macs);
          }
          auto system = eval::MakeSystem(id, options.seed + rep);
          auto result = eval::Evaluate(*system, data);
          if (!result.ok()) continue;
          f_in.push_back(result.value().metrics.f_in);
          f_out.push_back(result.value().metrics.f_out);
        }
      }
      if (f_in.empty()) continue;
      table.AddRow({eval::AlgorithmName(id),
                    eval::FormatValue(fraction * 100.0),
                    eval::FormatValue(math::Mean(f_in)),
                    eval::FormatValue(math::Mean(f_out))});
      if (csv) {
        csv->WriteRow({eval::AlgorithmName(id), eval::FormatValue(fraction),
                       eval::FormatValue(math::Mean(f_in)),
                       eval::FormatValue(math::Mean(f_out))});
      }
      std::fprintf(stderr, "  [%s] %s @ %.0f%% done\n", figure_name.c_str(),
                   eval::AlgorithmName(id).c_str(), fraction * 100.0);
    }
  }
  table.Print();
  std::printf("\nExpected shape: GEM degrades slowly and stays above the "
              "baselines across the sweep.\n");
  return 0;
}

}  // namespace gem::bench

#endif  // GEM_BENCH_PRUNE_COMMON_H_

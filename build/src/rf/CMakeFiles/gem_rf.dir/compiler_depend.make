# Empty compiler generated dependencies file for gem_rf.
# This may be replaced when dependencies are built.

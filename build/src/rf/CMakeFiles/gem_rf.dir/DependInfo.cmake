
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/dataset.cc" "src/rf/CMakeFiles/gem_rf.dir/dataset.cc.o" "gcc" "src/rf/CMakeFiles/gem_rf.dir/dataset.cc.o.d"
  "/root/repo/src/rf/dynamics.cc" "src/rf/CMakeFiles/gem_rf.dir/dynamics.cc.o" "gcc" "src/rf/CMakeFiles/gem_rf.dir/dynamics.cc.o.d"
  "/root/repo/src/rf/environment.cc" "src/rf/CMakeFiles/gem_rf.dir/environment.cc.o" "gcc" "src/rf/CMakeFiles/gem_rf.dir/environment.cc.o.d"
  "/root/repo/src/rf/propagation.cc" "src/rf/CMakeFiles/gem_rf.dir/propagation.cc.o" "gcc" "src/rf/CMakeFiles/gem_rf.dir/propagation.cc.o.d"
  "/root/repo/src/rf/record_io.cc" "src/rf/CMakeFiles/gem_rf.dir/record_io.cc.o" "gcc" "src/rf/CMakeFiles/gem_rf.dir/record_io.cc.o.d"
  "/root/repo/src/rf/scanner.cc" "src/rf/CMakeFiles/gem_rf.dir/scanner.cc.o" "gcc" "src/rf/CMakeFiles/gem_rf.dir/scanner.cc.o.d"
  "/root/repo/src/rf/scenario.cc" "src/rf/CMakeFiles/gem_rf.dir/scenario.cc.o" "gcc" "src/rf/CMakeFiles/gem_rf.dir/scenario.cc.o.d"
  "/root/repo/src/rf/trajectory.cc" "src/rf/CMakeFiles/gem_rf.dir/trajectory.cc.o" "gcc" "src/rf/CMakeFiles/gem_rf.dir/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/gem_base.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/gem_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/gem_rf.dir/dataset.cc.o"
  "CMakeFiles/gem_rf.dir/dataset.cc.o.d"
  "CMakeFiles/gem_rf.dir/dynamics.cc.o"
  "CMakeFiles/gem_rf.dir/dynamics.cc.o.d"
  "CMakeFiles/gem_rf.dir/environment.cc.o"
  "CMakeFiles/gem_rf.dir/environment.cc.o.d"
  "CMakeFiles/gem_rf.dir/propagation.cc.o"
  "CMakeFiles/gem_rf.dir/propagation.cc.o.d"
  "CMakeFiles/gem_rf.dir/record_io.cc.o"
  "CMakeFiles/gem_rf.dir/record_io.cc.o.d"
  "CMakeFiles/gem_rf.dir/scanner.cc.o"
  "CMakeFiles/gem_rf.dir/scanner.cc.o.d"
  "CMakeFiles/gem_rf.dir/scenario.cc.o"
  "CMakeFiles/gem_rf.dir/scenario.cc.o.d"
  "CMakeFiles/gem_rf.dir/trajectory.cc.o"
  "CMakeFiles/gem_rf.dir/trajectory.cc.o.d"
  "libgem_rf.a"
  "libgem_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

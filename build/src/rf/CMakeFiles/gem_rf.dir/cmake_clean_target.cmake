file(REMOVE_RECURSE
  "libgem_rf.a"
)

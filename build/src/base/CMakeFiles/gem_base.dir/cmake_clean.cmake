file(REMOVE_RECURSE
  "CMakeFiles/gem_base.dir/logging.cc.o"
  "CMakeFiles/gem_base.dir/logging.cc.o.d"
  "CMakeFiles/gem_base.dir/status.cc.o"
  "CMakeFiles/gem_base.dir/status.cc.o.d"
  "libgem_base.a"
  "libgem_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for gem_base.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgem_base.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/embedding_pipeline.cc" "src/core/CMakeFiles/gem_core.dir/embedding_pipeline.cc.o" "gcc" "src/core/CMakeFiles/gem_core.dir/embedding_pipeline.cc.o.d"
  "/root/repo/src/core/gem.cc" "src/core/CMakeFiles/gem_core.dir/gem.cc.o" "gcc" "src/core/CMakeFiles/gem_core.dir/gem.cc.o.d"
  "/root/repo/src/core/inoa.cc" "src/core/CMakeFiles/gem_core.dir/inoa.cc.o" "gcc" "src/core/CMakeFiles/gem_core.dir/inoa.cc.o.d"
  "/root/repo/src/core/signature_home.cc" "src/core/CMakeFiles/gem_core.dir/signature_home.cc.o" "gcc" "src/core/CMakeFiles/gem_core.dir/signature_home.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/gem_base.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/gem_math.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/gem_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gem_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/gem_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/gem_detect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

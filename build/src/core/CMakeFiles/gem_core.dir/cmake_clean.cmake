file(REMOVE_RECURSE
  "CMakeFiles/gem_core.dir/embedding_pipeline.cc.o"
  "CMakeFiles/gem_core.dir/embedding_pipeline.cc.o.d"
  "CMakeFiles/gem_core.dir/gem.cc.o"
  "CMakeFiles/gem_core.dir/gem.cc.o.d"
  "CMakeFiles/gem_core.dir/inoa.cc.o"
  "CMakeFiles/gem_core.dir/inoa.cc.o.d"
  "CMakeFiles/gem_core.dir/signature_home.cc.o"
  "CMakeFiles/gem_core.dir/signature_home.cc.o.d"
  "libgem_core.a"
  "libgem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

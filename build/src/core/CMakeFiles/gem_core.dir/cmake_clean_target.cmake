file(REMOVE_RECURSE
  "libgem_core.a"
)

# Empty compiler generated dependencies file for gem_core.
# This may be replaced when dependencies are built.

# Empty dependencies file for gem_embed.
# This may be replaced when dependencies are built.

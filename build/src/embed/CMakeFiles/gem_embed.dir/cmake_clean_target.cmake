file(REMOVE_RECURSE
  "libgem_embed.a"
)

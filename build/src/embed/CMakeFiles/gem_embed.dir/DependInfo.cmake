
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/autoencoder.cc" "src/embed/CMakeFiles/gem_embed.dir/autoencoder.cc.o" "gcc" "src/embed/CMakeFiles/gem_embed.dir/autoencoder.cc.o.d"
  "/root/repo/src/embed/bisage.cc" "src/embed/CMakeFiles/gem_embed.dir/bisage.cc.o" "gcc" "src/embed/CMakeFiles/gem_embed.dir/bisage.cc.o.d"
  "/root/repo/src/embed/graphsage.cc" "src/embed/CMakeFiles/gem_embed.dir/graphsage.cc.o" "gcc" "src/embed/CMakeFiles/gem_embed.dir/graphsage.cc.o.d"
  "/root/repo/src/embed/matrix_rep.cc" "src/embed/CMakeFiles/gem_embed.dir/matrix_rep.cc.o" "gcc" "src/embed/CMakeFiles/gem_embed.dir/matrix_rep.cc.o.d"
  "/root/repo/src/embed/mds.cc" "src/embed/CMakeFiles/gem_embed.dir/mds.cc.o" "gcc" "src/embed/CMakeFiles/gem_embed.dir/mds.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/gem_base.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/gem_math.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gem_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/gem_rf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/gem_embed.dir/autoencoder.cc.o"
  "CMakeFiles/gem_embed.dir/autoencoder.cc.o.d"
  "CMakeFiles/gem_embed.dir/bisage.cc.o"
  "CMakeFiles/gem_embed.dir/bisage.cc.o.d"
  "CMakeFiles/gem_embed.dir/graphsage.cc.o"
  "CMakeFiles/gem_embed.dir/graphsage.cc.o.d"
  "CMakeFiles/gem_embed.dir/matrix_rep.cc.o"
  "CMakeFiles/gem_embed.dir/matrix_rep.cc.o.d"
  "CMakeFiles/gem_embed.dir/mds.cc.o"
  "CMakeFiles/gem_embed.dir/mds.cc.o.d"
  "libgem_embed.a"
  "libgem_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

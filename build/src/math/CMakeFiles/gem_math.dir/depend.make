# Empty dependencies file for gem_math.
# This may be replaced when dependencies are built.

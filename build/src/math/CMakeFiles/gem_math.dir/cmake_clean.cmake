file(REMOVE_RECURSE
  "CMakeFiles/gem_math.dir/alias_sampler.cc.o"
  "CMakeFiles/gem_math.dir/alias_sampler.cc.o.d"
  "CMakeFiles/gem_math.dir/autograd.cc.o"
  "CMakeFiles/gem_math.dir/autograd.cc.o.d"
  "CMakeFiles/gem_math.dir/eigen.cc.o"
  "CMakeFiles/gem_math.dir/eigen.cc.o.d"
  "CMakeFiles/gem_math.dir/matrix.cc.o"
  "CMakeFiles/gem_math.dir/matrix.cc.o.d"
  "CMakeFiles/gem_math.dir/metrics.cc.o"
  "CMakeFiles/gem_math.dir/metrics.cc.o.d"
  "CMakeFiles/gem_math.dir/optimizer.cc.o"
  "CMakeFiles/gem_math.dir/optimizer.cc.o.d"
  "CMakeFiles/gem_math.dir/rng.cc.o"
  "CMakeFiles/gem_math.dir/rng.cc.o.d"
  "CMakeFiles/gem_math.dir/stats.cc.o"
  "CMakeFiles/gem_math.dir/stats.cc.o.d"
  "CMakeFiles/gem_math.dir/tsne.cc.o"
  "CMakeFiles/gem_math.dir/tsne.cc.o.d"
  "CMakeFiles/gem_math.dir/vec.cc.o"
  "CMakeFiles/gem_math.dir/vec.cc.o.d"
  "libgem_math.a"
  "libgem_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgem_math.a"
)

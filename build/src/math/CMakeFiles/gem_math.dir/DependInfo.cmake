
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/alias_sampler.cc" "src/math/CMakeFiles/gem_math.dir/alias_sampler.cc.o" "gcc" "src/math/CMakeFiles/gem_math.dir/alias_sampler.cc.o.d"
  "/root/repo/src/math/autograd.cc" "src/math/CMakeFiles/gem_math.dir/autograd.cc.o" "gcc" "src/math/CMakeFiles/gem_math.dir/autograd.cc.o.d"
  "/root/repo/src/math/eigen.cc" "src/math/CMakeFiles/gem_math.dir/eigen.cc.o" "gcc" "src/math/CMakeFiles/gem_math.dir/eigen.cc.o.d"
  "/root/repo/src/math/matrix.cc" "src/math/CMakeFiles/gem_math.dir/matrix.cc.o" "gcc" "src/math/CMakeFiles/gem_math.dir/matrix.cc.o.d"
  "/root/repo/src/math/metrics.cc" "src/math/CMakeFiles/gem_math.dir/metrics.cc.o" "gcc" "src/math/CMakeFiles/gem_math.dir/metrics.cc.o.d"
  "/root/repo/src/math/optimizer.cc" "src/math/CMakeFiles/gem_math.dir/optimizer.cc.o" "gcc" "src/math/CMakeFiles/gem_math.dir/optimizer.cc.o.d"
  "/root/repo/src/math/rng.cc" "src/math/CMakeFiles/gem_math.dir/rng.cc.o" "gcc" "src/math/CMakeFiles/gem_math.dir/rng.cc.o.d"
  "/root/repo/src/math/stats.cc" "src/math/CMakeFiles/gem_math.dir/stats.cc.o" "gcc" "src/math/CMakeFiles/gem_math.dir/stats.cc.o.d"
  "/root/repo/src/math/tsne.cc" "src/math/CMakeFiles/gem_math.dir/tsne.cc.o" "gcc" "src/math/CMakeFiles/gem_math.dir/tsne.cc.o.d"
  "/root/repo/src/math/vec.cc" "src/math/CMakeFiles/gem_math.dir/vec.cc.o" "gcc" "src/math/CMakeFiles/gem_math.dir/vec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/gem_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

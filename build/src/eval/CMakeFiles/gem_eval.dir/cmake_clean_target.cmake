file(REMOVE_RECURSE
  "libgem_eval.a"
)

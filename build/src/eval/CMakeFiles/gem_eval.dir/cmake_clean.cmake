file(REMOVE_RECURSE
  "CMakeFiles/gem_eval.dir/csv.cc.o"
  "CMakeFiles/gem_eval.dir/csv.cc.o.d"
  "CMakeFiles/gem_eval.dir/evaluate.cc.o"
  "CMakeFiles/gem_eval.dir/evaluate.cc.o.d"
  "CMakeFiles/gem_eval.dir/systems.cc.o"
  "CMakeFiles/gem_eval.dir/systems.cc.o.d"
  "CMakeFiles/gem_eval.dir/table.cc.o"
  "CMakeFiles/gem_eval.dir/table.cc.o.d"
  "libgem_eval.a"
  "libgem_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for gem_eval.
# This may be replaced when dependencies are built.

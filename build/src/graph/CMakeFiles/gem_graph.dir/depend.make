# Empty dependencies file for gem_graph.
# This may be replaced when dependencies are built.

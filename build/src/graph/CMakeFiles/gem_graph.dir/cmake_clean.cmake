file(REMOVE_RECURSE
  "CMakeFiles/gem_graph.dir/bipartite_graph.cc.o"
  "CMakeFiles/gem_graph.dir/bipartite_graph.cc.o.d"
  "CMakeFiles/gem_graph.dir/edge_weight.cc.o"
  "CMakeFiles/gem_graph.dir/edge_weight.cc.o.d"
  "libgem_graph.a"
  "libgem_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgem_graph.a"
)

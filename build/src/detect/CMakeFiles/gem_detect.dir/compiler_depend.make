# Empty compiler generated dependencies file for gem_detect.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgem_detect.a"
)

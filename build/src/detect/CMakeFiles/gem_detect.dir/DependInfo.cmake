
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/detector.cc" "src/detect/CMakeFiles/gem_detect.dir/detector.cc.o" "gcc" "src/detect/CMakeFiles/gem_detect.dir/detector.cc.o.d"
  "/root/repo/src/detect/feature_bagging.cc" "src/detect/CMakeFiles/gem_detect.dir/feature_bagging.cc.o" "gcc" "src/detect/CMakeFiles/gem_detect.dir/feature_bagging.cc.o.d"
  "/root/repo/src/detect/hbos.cc" "src/detect/CMakeFiles/gem_detect.dir/hbos.cc.o" "gcc" "src/detect/CMakeFiles/gem_detect.dir/hbos.cc.o.d"
  "/root/repo/src/detect/iforest.cc" "src/detect/CMakeFiles/gem_detect.dir/iforest.cc.o" "gcc" "src/detect/CMakeFiles/gem_detect.dir/iforest.cc.o.d"
  "/root/repo/src/detect/lof.cc" "src/detect/CMakeFiles/gem_detect.dir/lof.cc.o" "gcc" "src/detect/CMakeFiles/gem_detect.dir/lof.cc.o.d"
  "/root/repo/src/detect/svdd.cc" "src/detect/CMakeFiles/gem_detect.dir/svdd.cc.o" "gcc" "src/detect/CMakeFiles/gem_detect.dir/svdd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/gem_base.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/gem_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

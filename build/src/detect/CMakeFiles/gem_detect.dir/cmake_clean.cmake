file(REMOVE_RECURSE
  "CMakeFiles/gem_detect.dir/detector.cc.o"
  "CMakeFiles/gem_detect.dir/detector.cc.o.d"
  "CMakeFiles/gem_detect.dir/feature_bagging.cc.o"
  "CMakeFiles/gem_detect.dir/feature_bagging.cc.o.d"
  "CMakeFiles/gem_detect.dir/hbos.cc.o"
  "CMakeFiles/gem_detect.dir/hbos.cc.o.d"
  "CMakeFiles/gem_detect.dir/iforest.cc.o"
  "CMakeFiles/gem_detect.dir/iforest.cc.o.d"
  "CMakeFiles/gem_detect.dir/lof.cc.o"
  "CMakeFiles/gem_detect.dir/lof.cc.o.d"
  "CMakeFiles/gem_detect.dir/svdd.cc.o"
  "CMakeFiles/gem_detect.dir/svdd.cc.o.d"
  "libgem_detect.a"
  "libgem_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

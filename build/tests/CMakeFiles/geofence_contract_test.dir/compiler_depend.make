# Empty compiler generated dependencies file for geofence_contract_test.
# This may be replaced when dependencies are built.

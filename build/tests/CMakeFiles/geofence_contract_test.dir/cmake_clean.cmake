file(REMOVE_RECURSE
  "CMakeFiles/geofence_contract_test.dir/properties/geofence_contract_test.cc.o"
  "CMakeFiles/geofence_contract_test.dir/properties/geofence_contract_test.cc.o.d"
  "geofence_contract_test"
  "geofence_contract_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geofence_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

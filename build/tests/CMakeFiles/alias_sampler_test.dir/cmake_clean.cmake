file(REMOVE_RECURSE
  "CMakeFiles/alias_sampler_test.dir/math/alias_sampler_test.cc.o"
  "CMakeFiles/alias_sampler_test.dir/math/alias_sampler_test.cc.o.d"
  "alias_sampler_test"
  "alias_sampler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alias_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for iforest_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/record_io_test.dir/rf/record_io_test.cc.o"
  "CMakeFiles/record_io_test.dir/rf/record_io_test.cc.o.d"
  "record_io_test"
  "record_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

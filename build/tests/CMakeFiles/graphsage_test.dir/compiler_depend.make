# Empty compiler generated dependencies file for graphsage_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/graphsage_test.dir/embed/graphsage_test.cc.o"
  "CMakeFiles/graphsage_test.dir/embed/graphsage_test.cc.o.d"
  "graphsage_test"
  "graphsage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphsage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bipartite_graph_test.dir/graph/bipartite_graph_test.cc.o"
  "CMakeFiles/bipartite_graph_test.dir/graph/bipartite_graph_test.cc.o.d"
  "bipartite_graph_test"
  "bipartite_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bipartite_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

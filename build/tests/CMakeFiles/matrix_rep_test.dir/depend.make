# Empty dependencies file for matrix_rep_test.
# This may be replaced when dependencies are built.

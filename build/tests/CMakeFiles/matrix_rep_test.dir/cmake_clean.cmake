file(REMOVE_RECURSE
  "CMakeFiles/matrix_rep_test.dir/embed/matrix_rep_test.cc.o"
  "CMakeFiles/matrix_rep_test.dir/embed/matrix_rep_test.cc.o.d"
  "matrix_rep_test"
  "matrix_rep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_rep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

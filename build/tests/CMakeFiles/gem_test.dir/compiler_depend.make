# Empty compiler generated dependencies file for gem_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gem_test.dir/core/gem_test.cc.o"
  "CMakeFiles/gem_test.dir/core/gem_test.cc.o.d"
  "gem_test"
  "gem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bisage_ablation_test.

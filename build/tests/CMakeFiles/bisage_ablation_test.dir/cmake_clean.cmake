file(REMOVE_RECURSE
  "CMakeFiles/bisage_ablation_test.dir/embed/bisage_ablation_test.cc.o"
  "CMakeFiles/bisage_ablation_test.dir/embed/bisage_ablation_test.cc.o.d"
  "bisage_ablation_test"
  "bisage_ablation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bisage_ablation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

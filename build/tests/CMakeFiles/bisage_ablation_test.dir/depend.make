# Empty dependencies file for bisage_ablation_test.
# This may be replaced when dependencies are built.

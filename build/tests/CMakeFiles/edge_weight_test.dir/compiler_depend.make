# Empty compiler generated dependencies file for edge_weight_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/edge_weight_test.dir/graph/edge_weight_test.cc.o"
  "CMakeFiles/edge_weight_test.dir/graph/edge_weight_test.cc.o.d"
  "edge_weight_test"
  "edge_weight_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_weight_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

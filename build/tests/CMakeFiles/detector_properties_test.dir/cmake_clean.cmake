file(REMOVE_RECURSE
  "CMakeFiles/detector_properties_test.dir/properties/detector_properties_test.cc.o"
  "CMakeFiles/detector_properties_test.dir/properties/detector_properties_test.cc.o.d"
  "detector_properties_test"
  "detector_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for simulator_properties_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/simulator_properties_test.dir/properties/simulator_properties_test.cc.o"
  "CMakeFiles/simulator_properties_test.dir/properties/simulator_properties_test.cc.o.d"
  "simulator_properties_test"
  "simulator_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hbos_test.dir/detect/hbos_test.cc.o"
  "CMakeFiles/hbos_test.dir/detect/hbos_test.cc.o.d"
  "hbos_test"
  "hbos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

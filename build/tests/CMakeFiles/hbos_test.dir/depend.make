# Empty dependencies file for hbos_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/svdd_test.dir/detect/svdd_test.cc.o"
  "CMakeFiles/svdd_test.dir/detect/svdd_test.cc.o.d"
  "svdd_test"
  "svdd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svdd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

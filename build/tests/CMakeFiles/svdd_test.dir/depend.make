# Empty dependencies file for svdd_test.
# This may be replaced when dependencies are built.

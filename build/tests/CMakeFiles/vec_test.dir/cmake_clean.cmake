file(REMOVE_RECURSE
  "CMakeFiles/vec_test.dir/math/vec_test.cc.o"
  "CMakeFiles/vec_test.dir/math/vec_test.cc.o.d"
  "vec_test"
  "vec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/pipeline_properties_test.dir/properties/pipeline_properties_test.cc.o"
  "CMakeFiles/pipeline_properties_test.dir/properties/pipeline_properties_test.cc.o.d"
  "pipeline_properties_test"
  "pipeline_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bisage_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bisage_test.dir/embed/bisage_test.cc.o"
  "CMakeFiles/bisage_test.dir/embed/bisage_test.cc.o.d"
  "bisage_test"
  "bisage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bisage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

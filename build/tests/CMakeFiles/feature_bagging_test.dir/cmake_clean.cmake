file(REMOVE_RECURSE
  "CMakeFiles/feature_bagging_test.dir/detect/feature_bagging_test.cc.o"
  "CMakeFiles/feature_bagging_test.dir/detect/feature_bagging_test.cc.o.d"
  "feature_bagging_test"
  "feature_bagging_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_bagging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

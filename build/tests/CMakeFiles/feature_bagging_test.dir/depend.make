# Empty dependencies file for feature_bagging_test.
# This may be replaced when dependencies are built.

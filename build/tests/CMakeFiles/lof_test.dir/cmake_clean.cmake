file(REMOVE_RECURSE
  "CMakeFiles/lof_test.dir/detect/lof_test.cc.o"
  "CMakeFiles/lof_test.dir/detect/lof_test.cc.o.d"
  "lof_test"
  "lof_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lof_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

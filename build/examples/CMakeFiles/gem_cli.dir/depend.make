# Empty dependencies file for gem_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gem_cli.dir/gem_cli.cpp.o"
  "CMakeFiles/gem_cli.dir/gem_cli.cpp.o.d"
  "gem_cli"
  "gem_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for elderly_care.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/elderly_care.dir/elderly_care.cpp.o"
  "CMakeFiles/elderly_care.dir/elderly_care.cpp.o.d"
  "elderly_care"
  "elderly_care.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elderly_care.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ap_churn_demo.dir/ap_churn_demo.cpp.o"
  "CMakeFiles/ap_churn_demo.dir/ap_churn_demo.cpp.o.d"
  "ap_churn_demo"
  "ap_churn_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_churn_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ap_churn_demo.
# This may be replaced when dependencies are built.

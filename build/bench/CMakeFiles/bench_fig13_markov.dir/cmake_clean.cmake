file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_markov.dir/bench_fig13_markov.cc.o"
  "CMakeFiles/bench_fig13_markov.dir/bench_fig13_markov.cc.o.d"
  "bench_fig13_markov"
  "bench_fig13_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

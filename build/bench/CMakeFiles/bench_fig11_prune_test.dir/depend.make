# Empty dependencies file for bench_fig11_prune_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig14_params.
# This may be replaced when dependencies are built.

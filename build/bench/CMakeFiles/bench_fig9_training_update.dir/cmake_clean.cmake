file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_training_update.dir/bench_fig9_training_update.cc.o"
  "CMakeFiles/bench_fig9_training_update.dir/bench_fig9_training_update.cc.o.d"
  "bench_fig9_training_update"
  "bench_fig9_training_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_training_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_users.dir/bench_table2_users.cc.o"
  "CMakeFiles/bench_table2_users.dir/bench_table2_users.cc.o.d"
  "bench_table2_users"
  "bench_table2_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

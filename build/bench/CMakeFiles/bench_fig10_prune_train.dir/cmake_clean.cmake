file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_prune_train.dir/bench_fig10_prune_train.cc.o"
  "CMakeFiles/bench_fig10_prune_train.dir/bench_fig10_prune_train.cc.o.d"
  "bench_fig10_prune_train"
  "bench_fig10_prune_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_prune_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig10_prune_train.
# This may be replaced when dependencies are built.

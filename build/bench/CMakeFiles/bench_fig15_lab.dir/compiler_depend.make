# Empty compiler generated dependencies file for bench_fig15_lab.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_no_bisage.dir/bench_fig7_no_bisage.cc.o"
  "CMakeFiles/bench_fig7_no_bisage.dir/bench_fig7_no_bisage.cc.o.d"
  "bench_fig7_no_bisage"
  "bench_fig7_no_bisage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_no_bisage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

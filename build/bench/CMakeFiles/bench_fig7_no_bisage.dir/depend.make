# Empty dependencies file for bench_fig7_no_bisage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_roc.dir/bench_fig8_roc.cc.o"
  "CMakeFiles/bench_fig8_roc.dir/bench_fig8_roc.cc.o.d"
  "bench_fig8_roc"
  "bench_fig8_roc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig8_roc.
# This may be replaced when dependencies are built.

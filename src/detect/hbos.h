#ifndef GEM_DETECT_HBOS_H_
#define GEM_DETECT_HBOS_H_

#include <vector>

#include "base/statusor.h"
#include "detect/detector.h"
#include "math/matrix.h"
#include "math/rng.h"

namespace gem::detect {

/// Per-dimension histogram density model (the core of HBOS,
/// Section IV-C). Samples added after Fit (GEM's online update,
/// Section V-B) "recalculate the d histograms": a value outside a
/// dimension's current range widens that range and rebuilds its bin
/// counts from the retained samples, so the model's support can grow
/// with confidently-normal data.
class HistogramModel {
 public:
  HistogramModel() = default;

  /// Builds m-bin histograms per dimension from the data rows.
  /// `max_retained` > 0 bounds the retained-sample buffer (see below);
  /// 0 retains every sample forever (the historical behavior).
  Status Fit(const std::vector<math::Vec>& data, int bins,
             long max_retained = 0);

  /// Adds one sample (Equation (9)'s hist_j counts grow). In-range
  /// values are a cheap increment; out-of-range values trigger a
  /// per-dimension range expansion + recount.
  void Add(const math::Vec& x);

  /// Raw HBOS score (Equation (9)): sum_j log(1 / p_j(x_j)) with
  /// Laplace-smoothed relative bin frequencies; out-of-range values
  /// score as empty bins.
  double RawScore(const math::Vec& x) const;

  int dimensions() const { return static_cast<int>(lo_.size()); }
  int bins() const { return bins_; }
  long samples() const { return samples_; }
  /// Samples retained for range-expanding recounts. With an unlimited
  /// buffer this is every sample the model has seen (training +
  /// absorbed updates); with `max_retained` set it is a deterministic
  /// uniform reservoir over them, and recounts scale the reservoir back
  /// up to `samples()` total mass.
  const std::vector<math::Vec>& data() const { return data_; }
  long max_retained() const { return max_retained_; }

  /// Snapshot support (serve/snapshot.cc): the full mutable state, so a
  /// fitted model round-trips bit-identically through the wire format.
  struct PersistedState {
    int bins = 0;
    long samples = 0;
    long max_retained = 0;
    math::Vec lo;
    math::Vec hi;
    math::Matrix counts;
    std::vector<math::Vec> data;
    math::Rng::State reservoir_rng;
  };
  PersistedState ExportState() const;
  static Result<HistogramModel> FromState(PersistedState state);

 private:
  int BinIndex(int dim, double value) const;  // -1 when out of range
  void RebuildDimension(int dim);
  /// Reservoir-samples x into data_ (Algorithm R on the stream of all
  /// Add()ed samples); returns whether a retained sample was evicted
  /// (or x itself dropped) to honor max_retained_.
  bool Retain(const math::Vec& x);

  int bins_ = 0;
  long samples_ = 0;
  long max_retained_ = 0;         // 0 = unlimited
  math::Vec lo_;
  math::Vec hi_;
  math::Matrix counts_;           // dimensions x bins
  std::vector<math::Vec> data_;   // retained for range-expanding recounts
  math::Rng reservoir_rng_{0x9E5E7401Dull};
};

/// The original histogram-based outlier score detector (HBOS,
/// Goldstein & Dengel) with the contamination-based threshold the
/// paper starts from: normalized training scores sorted, threshold at
/// index n * gamma.
struct HbosOptions {
  int bins = 10;
  double contamination = 0.1;
  /// Upper bound on samples the histogram model retains for its
  /// range-expanding recounts (0 = unlimited). A long-lived server
  /// absorbing confident normals otherwise grows without bound.
  long max_retained_samples = 0;
};

class HbosDetector : public OutlierDetector {
 public:
  explicit HbosDetector(HbosOptions options = HbosOptions()) : options_(options) {}

  Status Fit(const std::vector<math::Vec>& normal) override;
  /// Min-max-normalized raw score (normalization frozen from training).
  double Score(const math::Vec& x) const override;
  bool IsOutlier(const math::Vec& x) const override;

  double threshold() const { return threshold_; }
  double score_lo() const { return score_lo_; }
  double score_hi() const { return score_hi_; }
  const HistogramModel& model() const { return model_; }

 protected:
  /// Normalizes a raw score with the frozen training min/max.
  double Normalize(double raw) const;

  HbosOptions options_;
  HistogramModel model_;
  double score_lo_ = 0.0;
  double score_hi_ = 1.0;
  double threshold_ = 1.0;
};

/// GEM's enhanced detector ("OD", Section IV-C + V-B): the normalized
/// HBOS score is pushed through the Boltzmann rescaling S_T
/// (Equation (10)), the decision threshold tau_u replaces the
/// data-size-dependent contamination threshold (Equation (11)), and
/// highly confident normal samples (S_T < tau_l) are folded back into
/// the histograms online.
struct EnhancedHbosOptions {
  int bins = 10;
  /// Scaling factor T of Equation (10).
  double temperature = 0.06;
  /// In-out decision threshold tau_u.
  double tau_upper = 0.005;
  /// Confident-update threshold tau_l (< tau_u).
  double tau_lower = 0.001;
  /// The paper treats T, tau_u and tau_l as "hyperparameters to be
  /// optimized in the learning process". With auto_calibrate (the
  /// default) Fit() estimates how *fresh* in-premises samples score —
  /// k-fold cross-scoring: each fold is scored by a model fitted on
  /// the other folds — and places tau_u just above that distribution
  /// and tau_l inside its bulk. Set false to use the fixed
  /// tau_upper / tau_lower literally.
  bool auto_calibrate = true;
  int calibration_folds = 5;
  /// tau_u = P_u + spread_factor * (P_u - P50), where P_u is this
  /// percentile of the cross-validated fresh-sample scores. The spread
  /// term buys headroom proportional to how heavy the score tail is.
  double calibration_upper_percentile = 90.0;
  double calibration_spread_factor = 0.5;
  double calibration_lower_percentile = 50.0;
  /// Bound on retained samples in the histogram model (0 = unlimited);
  /// see HbosOptions::max_retained_samples.
  long max_retained_samples = 0;

  /// kInvalidArgument describing the first out-of-range knob, Ok
  /// otherwise. Checked by Gem/serve config validation.
  Status Validate() const;
};

class EnhancedHbosDetector : public HbosDetector {
 public:
  explicit EnhancedHbosDetector(
      EnhancedHbosOptions options = EnhancedHbosOptions());

  Status Fit(const std::vector<math::Vec>& normal) override;
  /// S_T of Equation (10) — already in (0, 1). Note that far outliers
  /// saturate to 1.0 in double precision; use NormalizedScore for
  /// full-resolution ROC curves.
  double Score(const math::Vec& x) const override;
  bool IsOutlier(const math::Vec& x) const override;
  /// Absorbs x into the histograms iff its score is below tau_l.
  /// Returns whether the model was updated.
  bool MaybeUpdate(const math::Vec& x) override;

  /// The min-max normalized HBOS score Hbar (0..1 on training data;
  /// may exceed 1 for new samples). Monotonically equivalent to
  /// Score() but free of softmax saturation.
  double NormalizedScore(const math::Vec& x) const;

  /// Decision thresholds in Hbar space actually in force (after
  /// calibration, or converted from tau_u/tau_l).
  double hbar_tau_upper() const { return hbar_tau_upper_; }
  double hbar_tau_lower() const { return hbar_tau_lower_; }

  const EnhancedHbosOptions& enhanced_options() const {
    return enhanced_options_;
  }

  /// Snapshot support (serve/snapshot.cc): everything Fit() derived,
  /// so a fitted detector round-trips without refitting.
  struct PersistedState {
    HistogramModel::PersistedState model;
    double score_lo = 0.0;
    double score_hi = 1.0;
    double threshold = 1.0;
    double hbar_tau_upper = 0.5;
    double hbar_tau_lower = 0.3;
  };
  PersistedState ExportState() const;
  static Result<EnhancedHbosDetector> FromState(EnhancedHbosOptions options,
                                                PersistedState state);

 private:
  EnhancedHbosOptions enhanced_options_;
  // Decisions compare Hbar against these (mathematically identical to
  // comparing S_T against tau_u/tau_l, but immune to the softmax's
  // double-precision saturation plateau).
  double hbar_tau_upper_ = 0.5;
  double hbar_tau_lower_ = 0.3;
};

}  // namespace gem::detect

#endif  // GEM_DETECT_HBOS_H_

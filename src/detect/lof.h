#ifndef GEM_DETECT_LOF_H_
#define GEM_DETECT_LOF_H_

#include <vector>

#include "detect/detector.h"

namespace gem::detect {

/// Local outlier factor (Breunig et al., SIGMOD'00), the "BiSAGE +
/// LOF" baseline: a point is an outlier when its local density is much
/// lower than its neighbors'. Also reused as the base detector inside
/// feature bagging.
struct LofOptions {
  int k = 20;
  double contamination = 0.1;
};

class LofDetector : public OutlierDetector {
 public:
  explicit LofDetector(LofOptions options = LofOptions()) : options_(options) {}

  Status Fit(const std::vector<math::Vec>& normal) override;
  /// LOF score of a query point w.r.t. the training set (~1 for
  /// inliers, larger for outliers).
  double Score(const math::Vec& x) const override;
  bool IsOutlier(const math::Vec& x) const override;

  double threshold() const { return threshold_; }

 private:
  struct KnnResult {
    std::vector<int> indices;   // the k nearest training points
    std::vector<double> dists;  // their distances, ascending
  };

  /// k-NN among training points; `exclude` skips one index (used for
  /// leave-one-out scoring of the training points themselves).
  KnnResult Knn(const math::Vec& x, int exclude) const;
  double ReachabilityDensity(const KnnResult& knn) const;

  LofOptions options_;
  std::vector<math::Vec> data_;
  math::Vec k_distance_;  // per training point
  math::Vec lrd_;         // local reachability density per training point
  double threshold_ = 1.5;
};

}  // namespace gem::detect

#endif  // GEM_DETECT_LOF_H_

#include "detect/feature_bagging.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace gem::detect {

math::Vec FeatureBagging::Project(const math::Vec& x,
                                  const std::vector<int>& dims) const {
  math::Vec out(dims.size());
  for (size_t i = 0; i < dims.size(); ++i) out[i] = x[dims[i]];
  return out;
}

Status FeatureBagging::Fit(const std::vector<math::Vec>& normal) {
  if (normal.empty()) {
    return Status::InvalidArgument("no training data");
  }
  const int d = static_cast<int>(normal[0].size());
  if (d < 2) {
    return Status::InvalidArgument("feature bagging needs >= 2 dimensions");
  }
  math::Rng rng(options_.seed);
  feature_sets_.clear();
  detectors_.clear();

  for (int round = 0; round < options_.rounds; ++round) {
    // Subset size uniform in [d/2, d-1] (original paper).
    const int size = rng.UniformIntRange(std::max(d / 2, 1), d - 1);
    std::vector<int> dims(d);
    std::iota(dims.begin(), dims.end(), 0);
    rng.Shuffle(dims);
    dims.resize(size);
    std::sort(dims.begin(), dims.end());

    std::vector<math::Vec> projected;
    projected.reserve(normal.size());
    for (const math::Vec& x : normal) projected.push_back(Project(x, dims));

    auto detector = std::make_unique<LofDetector>(options_.base);
    Status status = detector->Fit(projected);
    if (!status.ok()) return status;
    feature_sets_.push_back(std::move(dims));
    detectors_.push_back(std::move(detector));
  }

  math::Vec scores;
  scores.reserve(normal.size());
  for (const math::Vec& x : normal) scores.push_back(Score(x));
  threshold_ = ContaminationThreshold(scores, options_.contamination);
  return Status::Ok();
}

double FeatureBagging::Score(const math::Vec& x) const {
  GEM_CHECK(!detectors_.empty());
  // Cumulative-sum combination.
  double total = 0.0;
  for (size_t r = 0; r < detectors_.size(); ++r) {
    total += detectors_[r]->Score(Project(x, feature_sets_[r]));
  }
  return total;
}

bool FeatureBagging::IsOutlier(const math::Vec& x) const {
  return Score(x) > threshold_;
}

}  // namespace gem::detect

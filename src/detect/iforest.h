#ifndef GEM_DETECT_IFOREST_H_
#define GEM_DETECT_IFOREST_H_

#include <memory>
#include <vector>

#include "detect/detector.h"
#include "math/rng.h"

namespace gem::detect {

/// Isolation forest (Liu, Ting & Zhou, ICDM'08), the "BiSAGE +
/// iForest" baseline of Table I. Outliers are isolated by fewer random
/// axis-aligned splits; the anomaly score is 2^{-E[h(x)] / c(psi)}.
struct IForestOptions {
  int num_trees = 100;
  int subsample = 256;
  double contamination = 0.1;
  uint64_t seed = 31;
};

class IsolationForest : public OutlierDetector {
 public:
  explicit IsolationForest(IForestOptions options = IForestOptions()) : options_(options) {}

  Status Fit(const std::vector<math::Vec>& normal) override;
  double Score(const math::Vec& x) const override;
  bool IsOutlier(const math::Vec& x) const override;

  double threshold() const { return threshold_; }

 private:
  struct Node {
    int split_dim = -1;        // -1 marks a leaf
    double split_value = 0.0;
    int left = -1;
    int right = -1;
    int size = 0;              // leaf: samples that ended here
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  int BuildNode(Tree& tree, std::vector<int>& indices, int begin, int end,
                int depth, int height_limit,
                const std::vector<math::Vec>& data, math::Rng& rng);
  double PathLength(const Tree& tree, const math::Vec& x) const;

  IForestOptions options_;
  std::vector<Tree> trees_;
  double c_psi_ = 1.0;  // average path length normalizer c(psi)
  double threshold_ = 0.5;
};

}  // namespace gem::detect

#endif  // GEM_DETECT_IFOREST_H_

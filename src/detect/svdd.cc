#include "detect/svdd.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "math/matrix.h"
#include "math/stats.h"

namespace gem::detect {
namespace {

/// Projects v onto {0 <= a_i <= C, sum a = 1} by bisection on the
/// shift theta in a_i = clamp(v_i - theta, 0, C).
math::Vec ProjectBoxSimplex(const math::Vec& v, double cap) {
  const auto mass = [&](double theta) {
    double total = 0.0;
    for (double x : v) total += std::clamp(x - theta, 0.0, cap);
    return total;
  };
  double lo = -1.0;
  double hi = 1.0;
  for (double x : v) {
    lo = std::min(lo, x - cap);
    hi = std::max(hi, x);
  }
  // mass(lo) >= n*cap >= 1 (feasible), mass(hi) = 0.
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (mass(mid) > 1.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double theta = 0.5 * (lo + hi);
  math::Vec out(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    out[i] = std::clamp(v[i] - theta, 0.0, cap);
  }
  return out;
}

}  // namespace

double SvddDetector::Kernel(const math::Vec& a, const math::Vec& b) const {
  return std::exp(-gamma_used_ * math::SquaredDistance(a, b));
}

Status SvddDetector::Fit(const std::vector<math::Vec>& normal) {
  if (normal.size() < 2) {
    return Status::InvalidArgument("SVDD needs at least 2 samples");
  }
  data_ = normal;
  const int n = static_cast<int>(data_.size());
  const double cap = std::max(1.0 / (options_.nu * n), 1.0 / n);

  // Median-distance heuristic for the kernel width.
  if (options_.gamma > 0.0) {
    gamma_used_ = options_.gamma;
  } else {
    math::Vec dists;
    const int stride = std::max(1, n / 64);
    for (int i = 0; i < n; i += stride) {
      for (int j = i + stride; j < n; j += stride) {
        dists.push_back(math::SquaredDistance(data_[i], data_[j]));
      }
    }
    const double med = dists.empty() ? 1.0 : math::Percentile(dists, 50.0);
    gamma_used_ = 1.0 / std::max(med, 1e-9);
  }

  // Gram matrix (n is a few hundred at most in GEM's pipelines).
  math::Matrix k(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    k.At(i, i) = 1.0;
    for (int j = i + 1; j < n; ++j) {
      const double v = Kernel(data_[i], data_[j]);
      k.At(i, j) = v;
      k.At(j, i) = v;
    }
  }

  alpha_.assign(n, 1.0 / n);
  for (int iter = 0; iter < options_.iterations; ++iter) {
    // gradient of a'Ka - sum a_i (K_ii = 1): 2Ka - 1.
    math::Vec grad = k.MatVec(alpha_);
    for (double& g : grad) g = 2.0 * g - 1.0;
    math::Vec next(n);
    const double step = options_.step / (1.0 + 0.05 * iter);
    for (int i = 0; i < n; ++i) next[i] = alpha_[i] - step * grad[i];
    alpha_ = ProjectBoxSimplex(next, cap);
  }

  const math::Vec k_alpha = k.MatVec(alpha_);
  alpha_k_alpha_ = math::Dot(alpha_, k_alpha);

  // R^2 such that a nu-fraction of the training data falls outside
  // the sphere. (The textbook estimate — the distance of a boundary
  // support vector with 0 < a < C — is exact only at the optimum; the
  // quantile form gives the same sphere there and stays calibrated
  // under finite-iteration solves.)
  math::Vec dist2(n);
  for (int i = 0; i < n; ++i) {
    dist2[i] = 1.0 - 2.0 * k_alpha[i] + alpha_k_alpha_;
  }
  r2_ = math::Percentile(dist2, 100.0 * (1.0 - options_.nu));
  return Status::Ok();
}

double SvddDetector::CenterDistanceSquared(const math::Vec& x) const {
  double cross = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (alpha_[i] <= 1e-10) continue;
    cross += alpha_[i] * Kernel(x, data_[i]);
  }
  return 1.0 - 2.0 * cross + alpha_k_alpha_;
}

double SvddDetector::Score(const math::Vec& x) const {
  GEM_CHECK(!data_.empty());
  return CenterDistanceSquared(x) - r2_;
}

bool SvddDetector::IsOutlier(const math::Vec& x) const {
  return Score(x) > 0.0;
}

int SvddDetector::num_support_vectors() const {
  int count = 0;
  for (double a : alpha_) count += a > 1e-8 ? 1 : 0;
  return count;
}

}  // namespace gem::detect

#include "detect/hbos.h"

#include <algorithm>
#include <cmath>

#include "math/stats.h"

#include "base/check.h"
#include "obs/metrics.h"

namespace gem::detect {
namespace {

constexpr double kLaplace = 0.5;

}  // namespace

Status HistogramModel::Fit(const std::vector<math::Vec>& data, int bins) {
  if (data.empty()) {
    return Status::InvalidArgument("no training data for histograms");
  }
  if (bins < 1) {
    return Status::InvalidArgument("bin count must be >= 1");
  }
  bins_ = bins;
  const int d = static_cast<int>(data[0].size());
  lo_.assign(d, 0.0);
  hi_.assign(d, 0.0);
  for (int j = 0; j < d; ++j) {
    double lo = data[0][j];
    double hi = data[0][j];
    for (const math::Vec& row : data) {
      GEM_CHECK(static_cast<int>(row.size()) == d);
      lo = std::min(lo, row[j]);
      hi = std::max(hi, row[j]);
    }
    // Degenerate dimension: widen slightly so the single bin catches it.
    if (hi <= lo) hi = lo + 1e-9;
    lo_[j] = lo;
    hi_[j] = hi;
  }
  counts_ = math::Matrix(d, bins_, 0.0);
  data_ = data;
  samples_ = 0;
  for (const math::Vec& row : data) {
    for (int j = 0; j < d; ++j) {
      const int bin = BinIndex(j, row[j]);
      GEM_DCHECK(bin >= 0);
      counts_.At(j, bin) += 1.0;
    }
    ++samples_;
  }
  return Status::Ok();
}

void HistogramModel::RebuildDimension(int dim) {
  for (int b = 0; b < bins_; ++b) counts_.At(dim, b) = 0.0;
  for (const math::Vec& row : data_) {
    const int bin = BinIndex(dim, row[dim]);
    GEM_DCHECK(bin >= 0);
    counts_.At(dim, bin) += 1.0;
  }
}

int HistogramModel::BinIndex(int dim, double value) const {
  if (value < lo_[dim] || value > hi_[dim]) return -1;
  const double width = (hi_[dim] - lo_[dim]) / bins_;
  int bin = static_cast<int>((value - lo_[dim]) / width);
  return std::min(bin, bins_ - 1);
}

void HistogramModel::Add(const math::Vec& x) {
  GEM_CHECK(static_cast<int>(x.size()) == dimensions());
  data_.push_back(x);
  ++samples_;
  for (int j = 0; j < dimensions(); ++j) {
    const int bin = BinIndex(j, x[j]);
    if (bin >= 0) {
      counts_.At(j, bin) += 1.0;
    } else {
      // Recalculate this dimension's histogram over the widened range
      // (Section V-B: the new embedding recalculates the histograms).
      static obs::Counter& rebuilds = obs::MetricsRegistry::Get().GetCounter(
          "gem_hbos_rebuild_total");
      rebuilds.Increment();
      lo_[j] = std::min(lo_[j], x[j]);
      hi_[j] = std::max(hi_[j], x[j]);
      RebuildDimension(j);
    }
  }
}

double HistogramModel::RawScore(const math::Vec& x) const {
  GEM_CHECK(static_cast<int>(x.size()) == dimensions());
  GEM_CHECK(samples_ > 0);
  const double denom =
      static_cast<double>(samples_) + kLaplace * bins_;
  double score = 0.0;
  for (int j = 0; j < dimensions(); ++j) {
    const int bin = BinIndex(j, x[j]);
    const double count = bin < 0 ? 0.0 : counts_.At(j, bin);
    const double p = (count + kLaplace) / denom;
    score += std::log(1.0 / p);
  }
  return score;
}

Status HbosDetector::Fit(const std::vector<math::Vec>& normal) {
  Status status = model_.Fit(normal, options_.bins);
  if (!status.ok()) return status;

  math::Vec scores;
  scores.reserve(normal.size());
  for (const math::Vec& x : normal) scores.push_back(model_.RawScore(x));
  score_lo_ = *std::min_element(scores.begin(), scores.end());
  score_hi_ = *std::max_element(scores.begin(), scores.end());
  if (score_hi_ <= score_lo_) score_hi_ = score_lo_ + 1e-9;

  for (double& s : scores) s = Normalize(s);
  threshold_ = ContaminationThreshold(scores, options_.contamination);
  return Status::Ok();
}

double HbosDetector::Normalize(double raw) const {
  return (raw - score_lo_) / (score_hi_ - score_lo_);
}

double HbosDetector::Score(const math::Vec& x) const {
  return Normalize(model_.RawScore(x));
}

bool HbosDetector::IsOutlier(const math::Vec& x) const {
  return Score(x) > threshold_;
}

namespace {

double Logit(double p) { return std::log(p / (1.0 - p)); }

}  // namespace

EnhancedHbosDetector::EnhancedHbosDetector(EnhancedHbosOptions options)
    : HbosDetector(HbosOptions{options.bins, 0.1}),
      enhanced_options_(options) {
  GEM_CHECK(options.temperature > 0.0);
  GEM_CHECK(options.tau_lower <= options.tau_upper);
  GEM_CHECK(options.tau_lower > 0.0 && options.tau_upper < 1.0);
}

Status EnhancedHbosDetector::Fit(const std::vector<math::Vec>& normal) {
  Status status = HbosDetector::Fit(normal);
  if (!status.ok()) return status;

  if (enhanced_options_.auto_calibrate) {
    // Estimate the normalized-score distribution of FRESH in-premises
    // samples by k-fold cross-scoring: each contiguous fold (the data
    // is time-ordered) is scored by an HBOS model fitted on the other
    // folds, under that model's own min-max normalization. This
    // captures the generalization gap that the training scores (which
    // are at most 1 by construction) cannot show, and adapts to noisy
    // or drifting environments where the gap is larger.
    const int folds = std::min<int>(enhanced_options_.calibration_folds,
                                    static_cast<int>(normal.size()));
    const size_t n = normal.size();
    // Two fold layouts bracket the failure modes: contiguous folds
    // capture slow temporal drift (a fold is a stretch of time the
    // other folds have not seen), strided folds capture regime
    // switching (every fold model sees every regime). Each yields a
    // tau estimate; their average is robust to both.
    auto cv_tau = [&](bool contiguous, double* tau_low) {
      math::Vec cv_scores;
      cv_scores.reserve(n);
      if (folds >= 2) {
        for (int f = 0; f < folds; ++f) {
          std::vector<math::Vec> rest;
          std::vector<size_t> held;
          for (size_t i = 0; i < n; ++i) {
            const bool in_fold =
                contiguous ? (i >= n * f / folds && i < n * (f + 1) / folds)
                           : (i % folds == static_cast<size_t>(f));
            if (in_fold) {
              held.push_back(i);
            } else {
              rest.push_back(normal[i]);
            }
          }
          HbosDetector fold_model(
              HbosOptions{enhanced_options_.bins, 0.1});
          if (!fold_model.Fit(rest).ok()) continue;
          for (size_t i : held) {
            cv_scores.push_back(fold_model.Score(normal[i]));
          }
        }
      }
      if (cv_scores.empty()) {
        for (const math::Vec& x : normal) {
          cv_scores.push_back(NormalizedScore(x));
        }
      }
      const double p_up = math::Percentile(
          cv_scores, enhanced_options_.calibration_upper_percentile);
      const double p_mid = math::Percentile(cv_scores, 50.0);
      *tau_low = math::Percentile(
          cv_scores, enhanced_options_.calibration_lower_percentile);
      return p_up + enhanced_options_.calibration_spread_factor *
                        (p_up - p_mid);
    };
    double low_contig = 0.0;
    double low_stride = 0.0;
    const double tau_contig = cv_tau(true, &low_contig);
    const double tau_stride = cv_tau(false, &low_stride);
    hbar_tau_upper_ = 0.5 * (tau_contig + tau_stride);
    hbar_tau_lower_ = 0.5 * (low_contig + low_stride);
  } else {
    // Invert Equation (10): S_T = sigmoid((2 Hbar - 1) / T).
    hbar_tau_upper_ =
        (1.0 + enhanced_options_.temperature *
                   Logit(enhanced_options_.tau_upper)) / 2.0;
    hbar_tau_lower_ =
        (1.0 + enhanced_options_.temperature *
                   Logit(enhanced_options_.tau_lower)) / 2.0;
  }
  return Status::Ok();
}

double EnhancedHbosDetector::NormalizedScore(const math::Vec& x) const {
  return Normalize(model_.RawScore(x));
}

double EnhancedHbosDetector::Score(const math::Vec& x) const {
  // Equation (10): S_T = exp(Hbar/T) / (exp(Hbar/T) + exp((1-Hbar)/T))
  //              = sigmoid((2 Hbar - 1) / T).
  const double hbar = Normalize(model_.RawScore(x));
  const double z = (2.0 * hbar - 1.0) / enhanced_options_.temperature;
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

bool EnhancedHbosDetector::IsOutlier(const math::Vec& x) const {
  // Equation (11), evaluated in Hbar space (identical decision).
  return NormalizedScore(x) > hbar_tau_upper_;
}

bool EnhancedHbosDetector::MaybeUpdate(const math::Vec& x) {
  // Section V-B self-enhancement accounting: how many confidently
  // normal embeddings the detector absorbed vs. declined.
  static obs::Counter& absorbed =
      obs::MetricsRegistry::Get().GetCounter("gem_od_absorbed_total");
  static obs::Counter& declined =
      obs::MetricsRegistry::Get().GetCounter("gem_od_declined_total");
  if (NormalizedScore(x) >= hbar_tau_lower_) {
    declined.Increment();
    return false;
  }
  absorbed.Increment();
  model_.Add(x);
  // The normalization anchors stay frozen at their initial-training
  // values: this is what makes the enhanced score independent of the
  // growing data size (Section IV-C's criticism of the original
  // threshold). Re-deriving min/max after each update would let the
  // ever-densifying core stretch the scale and push fresh samples'
  // scores upward.
  return true;
}

}  // namespace gem::detect

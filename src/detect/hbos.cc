#include "detect/hbos.h"

#include <algorithm>
#include <cmath>

#include "math/stats.h"

#include "base/check.h"
#include "obs/metrics.h"

namespace gem::detect {
namespace {

constexpr double kLaplace = 0.5;

/// Fixed seed for the retention reservoir: downsampling is part of the
/// model's deterministic state, not an experiment knob.
constexpr uint64_t kReservoirSeed = 0x9E5E7401Dull;

obs::Counter& EvictionCounter() {
  static obs::Counter& evicted =
      obs::MetricsRegistry::Get().GetCounter("gem_hbos_evicted_total");
  return evicted;
}

}  // namespace

Status HistogramModel::Fit(const std::vector<math::Vec>& data, int bins,
                           long max_retained) {
  if (data.empty()) {
    return Status::InvalidArgument("no training data for histograms");
  }
  if (bins < 1) {
    return Status::InvalidArgument("bin count must be >= 1");
  }
  if (max_retained < 0) {
    return Status::InvalidArgument("max_retained must be >= 0");
  }
  bins_ = bins;
  max_retained_ = max_retained;
  reservoir_rng_ = math::Rng(kReservoirSeed);
  const int d = static_cast<int>(data[0].size());
  lo_.assign(d, 0.0);
  hi_.assign(d, 0.0);
  for (int j = 0; j < d; ++j) {
    double lo = data[0][j];
    double hi = data[0][j];
    for (const math::Vec& row : data) {
      GEM_CHECK(static_cast<int>(row.size()) == d);
      lo = std::min(lo, row[j]);
      hi = std::max(hi, row[j]);
    }
    // Degenerate dimension: widen slightly so the single bin catches it.
    if (hi <= lo) hi = lo + 1e-9;
    lo_[j] = lo;
    hi_[j] = hi;
  }
  counts_ = math::Matrix(d, bins_, 0.0);
  data_.clear();
  samples_ = 0;
  for (const math::Vec& row : data) {
    for (int j = 0; j < d; ++j) {
      const int bin = BinIndex(j, row[j]);
      GEM_DCHECK(bin >= 0);
      counts_.At(j, bin) += 1.0;
    }
    ++samples_;
    Retain(row);
  }
  return Status::Ok();
}

bool HistogramModel::Retain(const math::Vec& x) {
  if (max_retained_ <= 0 ||
      static_cast<long>(data_.size()) < max_retained_) {
    data_.push_back(x);
    return false;
  }
  // Algorithm R over the stream of all samples seen: the x-th arrival
  // replaces a uniformly random reservoir slot with probability
  // max_retained / samples, so the reservoir stays a uniform sample.
  const uint64_t slot =
      reservoir_rng_.Next() % static_cast<uint64_t>(samples_);
  if (slot < static_cast<uint64_t>(max_retained_)) {
    data_[static_cast<size_t>(slot)] = x;
  }
  EvictionCounter().Increment();
  return true;
}

void HistogramModel::RebuildDimension(int dim) {
  // With a bounded reservoir the retained rows stand in for all
  // samples_ observations: scale the recount so the dimension's total
  // mass stays samples_ (exactly 1.0 when retention is unlimited).
  const double scale =
      static_cast<double>(samples_) / static_cast<double>(data_.size());
  for (int b = 0; b < bins_; ++b) counts_.At(dim, b) = 0.0;
  for (const math::Vec& row : data_) {
    const int bin = BinIndex(dim, row[dim]);
    GEM_DCHECK(bin >= 0);
    counts_.At(dim, bin) += scale;
  }
}

int HistogramModel::BinIndex(int dim, double value) const {
  if (value < lo_[dim] || value > hi_[dim]) return -1;
  const double width = (hi_[dim] - lo_[dim]) / bins_;
  int bin = static_cast<int>((value - lo_[dim]) / width);
  return std::min(bin, bins_ - 1);
}

void HistogramModel::Add(const math::Vec& x) {
  GEM_CHECK(static_cast<int>(x.size()) == dimensions());
  ++samples_;
  Retain(x);
  for (int j = 0; j < dimensions(); ++j) {
    const int bin = BinIndex(j, x[j]);
    if (bin >= 0) {
      counts_.At(j, bin) += 1.0;
    } else {
      // Recalculate this dimension's histogram over the widened range
      // (Section V-B: the new embedding recalculates the histograms).
      static obs::Counter& rebuilds = obs::MetricsRegistry::Get().GetCounter(
          "gem_hbos_rebuild_total");
      rebuilds.Increment();
      lo_[j] = std::min(lo_[j], x[j]);
      hi_[j] = std::max(hi_[j], x[j]);
      RebuildDimension(j);
    }
  }
}

double HistogramModel::RawScore(const math::Vec& x) const {
  GEM_CHECK(static_cast<int>(x.size()) == dimensions());
  GEM_CHECK(samples_ > 0);
  const double denom =
      static_cast<double>(samples_) + kLaplace * bins_;
  double score = 0.0;
  for (int j = 0; j < dimensions(); ++j) {
    const int bin = BinIndex(j, x[j]);
    const double count = bin < 0 ? 0.0 : counts_.At(j, bin);
    const double p = (count + kLaplace) / denom;
    score += std::log(1.0 / p);
  }
  return score;
}

HistogramModel::PersistedState HistogramModel::ExportState() const {
  PersistedState state;
  state.bins = bins_;
  state.samples = samples_;
  state.max_retained = max_retained_;
  state.lo = lo_;
  state.hi = hi_;
  state.counts = counts_;
  state.data = data_;
  state.reservoir_rng = reservoir_rng_.SaveState();
  return state;
}

Result<HistogramModel> HistogramModel::FromState(PersistedState state) {
  const int d = static_cast<int>(state.lo.size());
  if (state.bins < 1 || state.samples < 1 || d < 1) {
    return Status::InvalidArgument("histogram state: empty model");
  }
  if (state.hi.size() != state.lo.size()) {
    return Status::InvalidArgument("histogram state: lo/hi size mismatch");
  }
  if (state.counts.rows() != d || state.counts.cols() != state.bins) {
    return Status::InvalidArgument("histogram state: counts shape mismatch");
  }
  if (state.max_retained < 0 ||
      state.data.size() > static_cast<size_t>(state.samples)) {
    return Status::InvalidArgument("histogram state: bad retention counts");
  }
  if (state.max_retained > 0 &&
      state.data.size() > static_cast<size_t>(state.max_retained)) {
    return Status::InvalidArgument("histogram state: reservoir overflow");
  }
  if (state.data.empty()) {
    return Status::InvalidArgument("histogram state: no retained samples");
  }
  for (const math::Vec& row : state.data) {
    if (static_cast<int>(row.size()) != d) {
      return Status::InvalidArgument("histogram state: ragged data row");
    }
  }
  HistogramModel model;
  model.bins_ = state.bins;
  model.samples_ = state.samples;
  model.max_retained_ = state.max_retained;
  model.lo_ = std::move(state.lo);
  model.hi_ = std::move(state.hi);
  model.counts_ = std::move(state.counts);
  model.data_ = std::move(state.data);
  model.reservoir_rng_.RestoreState(state.reservoir_rng);
  return model;
}

Status HbosDetector::Fit(const std::vector<math::Vec>& normal) {
  Status status =
      model_.Fit(normal, options_.bins, options_.max_retained_samples);
  if (!status.ok()) return status;

  math::Vec scores;
  scores.reserve(normal.size());
  for (const math::Vec& x : normal) scores.push_back(model_.RawScore(x));
  score_lo_ = *std::min_element(scores.begin(), scores.end());
  score_hi_ = *std::max_element(scores.begin(), scores.end());
  if (score_hi_ <= score_lo_) score_hi_ = score_lo_ + 1e-9;

  for (double& s : scores) s = Normalize(s);
  threshold_ = ContaminationThreshold(scores, options_.contamination);
  return Status::Ok();
}

double HbosDetector::Normalize(double raw) const {
  return (raw - score_lo_) / (score_hi_ - score_lo_);
}

double HbosDetector::Score(const math::Vec& x) const {
  return Normalize(model_.RawScore(x));
}

bool HbosDetector::IsOutlier(const math::Vec& x) const {
  return Score(x) > threshold_;
}

namespace {

double Logit(double p) { return std::log(p / (1.0 - p)); }

}  // namespace

Status EnhancedHbosOptions::Validate() const {
  if (bins < 1) {
    return Status::InvalidArgument("detector: bins must be >= 1, got " +
                                   std::to_string(bins));
  }
  if (!(temperature > 0.0) || !std::isfinite(temperature)) {
    return Status::InvalidArgument(
        "detector: temperature must be positive and finite");
  }
  if (!(tau_upper > 0.0 && tau_upper < 1.0)) {
    return Status::InvalidArgument(
        "detector: tau_upper must be in (0, 1), got " +
        std::to_string(tau_upper));
  }
  if (!(tau_lower > 0.0 && tau_lower < tau_upper)) {
    return Status::InvalidArgument(
        "detector: tau_lower must be in (0, tau_upper), got " +
        std::to_string(tau_lower));
  }
  if (auto_calibrate && calibration_folds < 2) {
    return Status::InvalidArgument(
        "detector: calibration needs >= 2 folds, got " +
        std::to_string(calibration_folds));
  }
  if (!(calibration_upper_percentile > 0.0 &&
        calibration_upper_percentile <= 100.0) ||
      !(calibration_lower_percentile >= 0.0 &&
        calibration_lower_percentile < calibration_upper_percentile)) {
    return Status::InvalidArgument(
        "detector: calibration percentiles must satisfy 0 <= lower < "
        "upper <= 100");
  }
  if (!(calibration_spread_factor >= 0.0) ||
      !std::isfinite(calibration_spread_factor)) {
    return Status::InvalidArgument(
        "detector: calibration_spread_factor must be >= 0 and finite");
  }
  if (max_retained_samples < 0) {
    return Status::InvalidArgument(
        "detector: max_retained_samples must be >= 0 (0 = unlimited)");
  }
  return Status::Ok();
}

EnhancedHbosDetector::EnhancedHbosDetector(EnhancedHbosOptions options)
    : HbosDetector(
          HbosOptions{options.bins, 0.1, options.max_retained_samples}),
      enhanced_options_(options) {
  GEM_CHECK(options.temperature > 0.0);
  GEM_CHECK(options.tau_lower <= options.tau_upper);
  GEM_CHECK(options.tau_lower > 0.0 && options.tau_upper < 1.0);
}

Status EnhancedHbosDetector::Fit(const std::vector<math::Vec>& normal) {
  Status status = HbosDetector::Fit(normal);
  if (!status.ok()) return status;

  if (enhanced_options_.auto_calibrate) {
    // Estimate the normalized-score distribution of FRESH in-premises
    // samples by k-fold cross-scoring: each contiguous fold (the data
    // is time-ordered) is scored by an HBOS model fitted on the other
    // folds, under that model's own min-max normalization. This
    // captures the generalization gap that the training scores (which
    // are at most 1 by construction) cannot show, and adapts to noisy
    // or drifting environments where the gap is larger.
    const int folds = std::min<int>(enhanced_options_.calibration_folds,
                                    static_cast<int>(normal.size()));
    const size_t n = normal.size();
    // Two fold layouts bracket the failure modes: contiguous folds
    // capture slow temporal drift (a fold is a stretch of time the
    // other folds have not seen), strided folds capture regime
    // switching (every fold model sees every regime). Each yields a
    // tau estimate; their average is robust to both.
    auto cv_tau = [&](bool contiguous, double* tau_low) {
      math::Vec cv_scores;
      cv_scores.reserve(n);
      if (folds >= 2) {
        for (int f = 0; f < folds; ++f) {
          std::vector<math::Vec> rest;
          std::vector<size_t> held;
          for (size_t i = 0; i < n; ++i) {
            const bool in_fold =
                contiguous ? (i >= n * f / folds && i < n * (f + 1) / folds)
                           : (i % folds == static_cast<size_t>(f));
            if (in_fold) {
              held.push_back(i);
            } else {
              rest.push_back(normal[i]);
            }
          }
          HbosDetector fold_model(
              HbosOptions{enhanced_options_.bins, 0.1});
          if (!fold_model.Fit(rest).ok()) continue;
          for (size_t i : held) {
            cv_scores.push_back(fold_model.Score(normal[i]));
          }
        }
      }
      if (cv_scores.empty()) {
        for (const math::Vec& x : normal) {
          cv_scores.push_back(NormalizedScore(x));
        }
      }
      const double p_up = math::Percentile(
          cv_scores, enhanced_options_.calibration_upper_percentile);
      const double p_mid = math::Percentile(cv_scores, 50.0);
      *tau_low = math::Percentile(
          cv_scores, enhanced_options_.calibration_lower_percentile);
      return p_up + enhanced_options_.calibration_spread_factor *
                        (p_up - p_mid);
    };
    double low_contig = 0.0;
    double low_stride = 0.0;
    const double tau_contig = cv_tau(true, &low_contig);
    const double tau_stride = cv_tau(false, &low_stride);
    hbar_tau_upper_ = 0.5 * (tau_contig + tau_stride);
    hbar_tau_lower_ = 0.5 * (low_contig + low_stride);
  } else {
    // Invert Equation (10): S_T = sigmoid((2 Hbar - 1) / T).
    hbar_tau_upper_ =
        (1.0 + enhanced_options_.temperature *
                   Logit(enhanced_options_.tau_upper)) / 2.0;
    hbar_tau_lower_ =
        (1.0 + enhanced_options_.temperature *
                   Logit(enhanced_options_.tau_lower)) / 2.0;
  }
  return Status::Ok();
}

EnhancedHbosDetector::PersistedState EnhancedHbosDetector::ExportState()
    const {
  PersistedState state;
  state.model = model_.ExportState();
  state.score_lo = score_lo_;
  state.score_hi = score_hi_;
  state.threshold = threshold_;
  state.hbar_tau_upper = hbar_tau_upper_;
  state.hbar_tau_lower = hbar_tau_lower_;
  return state;
}

Result<EnhancedHbosDetector> EnhancedHbosDetector::FromState(
    EnhancedHbosOptions options, PersistedState state) {
  if (!(options.temperature > 0.0) ||
      !(options.tau_lower <= options.tau_upper) ||
      !(options.tau_lower > 0.0 && options.tau_upper < 1.0)) {
    return Status::InvalidArgument("detector state: invalid thresholds");
  }
  if (!(state.score_hi > state.score_lo)) {
    return Status::InvalidArgument(
        "detector state: degenerate score normalization range");
  }
  Result<HistogramModel> model = HistogramModel::FromState(std::move(state.model));
  if (!model.ok()) return model.status();
  EnhancedHbosDetector detector(options);
  detector.model_ = std::move(model).value();
  detector.score_lo_ = state.score_lo;
  detector.score_hi_ = state.score_hi;
  detector.threshold_ = state.threshold;
  detector.hbar_tau_upper_ = state.hbar_tau_upper;
  detector.hbar_tau_lower_ = state.hbar_tau_lower;
  return detector;
}

double EnhancedHbosDetector::NormalizedScore(const math::Vec& x) const {
  return Normalize(model_.RawScore(x));
}

double EnhancedHbosDetector::Score(const math::Vec& x) const {
  // Equation (10): S_T = exp(Hbar/T) / (exp(Hbar/T) + exp((1-Hbar)/T))
  //              = sigmoid((2 Hbar - 1) / T).
  const double hbar = Normalize(model_.RawScore(x));
  const double z = (2.0 * hbar - 1.0) / enhanced_options_.temperature;
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

bool EnhancedHbosDetector::IsOutlier(const math::Vec& x) const {
  // Equation (11), evaluated in Hbar space (identical decision).
  return NormalizedScore(x) > hbar_tau_upper_;
}

bool EnhancedHbosDetector::MaybeUpdate(const math::Vec& x) {
  // Section V-B self-enhancement accounting: how many confidently
  // normal embeddings the detector absorbed vs. declined.
  static obs::Counter& absorbed =
      obs::MetricsRegistry::Get().GetCounter("gem_od_absorbed_total");
  static obs::Counter& declined =
      obs::MetricsRegistry::Get().GetCounter("gem_od_declined_total");
  if (NormalizedScore(x) >= hbar_tau_lower_) {
    declined.Increment();
    return false;
  }
  absorbed.Increment();
  model_.Add(x);
  // The normalization anchors stay frozen at their initial-training
  // values: this is what makes the enhanced score independent of the
  // growing data size (Section IV-C's criticism of the original
  // threshold). Re-deriving min/max after each update would let the
  // ever-densifying core stretch the scale and push fresh samples'
  // scores upward.
  return true;
}

}  // namespace gem::detect

#ifndef GEM_DETECT_DETECTOR_H_
#define GEM_DETECT_DETECTOR_H_

#include <vector>

#include "base/status.h"
#include "math/vec.h"

namespace gem::detect {

/// One-class outlier detector over fixed-length feature vectors
/// (record embeddings in GEM). Fit on "normal" (in-premises) samples
/// only; Score/IsOutlier classify new samples.
class OutlierDetector {
 public:
  virtual ~OutlierDetector() = default;

  /// Trains on normal samples. Must be called once before scoring.
  virtual Status Fit(const std::vector<math::Vec>& normal) = 0;

  /// Outlier score; HIGHER means more likely an outlier. Scales are
  /// detector-specific (use IsOutlier for calibrated decisions, and
  /// Score for ROC curves).
  virtual double Score(const math::Vec& x) const = 0;

  /// Calibrated decision at the detector's fitted threshold.
  virtual bool IsOutlier(const math::Vec& x) const = 0;

  /// Offers a sample for unsupervised model refinement. Returns true
  /// if the detector absorbed it (only GEM's enhanced histogram
  /// detector does; others are static and return false).
  virtual bool MaybeUpdate(const math::Vec& x) {
    (void)x;
    return false;
  }
};

/// Fits `threshold` such that about `contamination` of the training
/// scores exceed it (the classic contamination calibration used by
/// HBOS/iForest/LOF). Scores must be non-empty.
double ContaminationThreshold(const math::Vec& scores, double contamination);

}  // namespace gem::detect

#endif  // GEM_DETECT_DETECTOR_H_

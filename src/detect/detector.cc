#include "detect/detector.h"

#include <algorithm>

#include "base/check.h"

namespace gem::detect {

double ContaminationThreshold(const math::Vec& scores, double contamination) {
  GEM_CHECK(!scores.empty());
  GEM_CHECK(contamination >= 0.0 && contamination <= 1.0);
  math::Vec sorted = scores;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(contamination * static_cast<double>(sorted.size())));
  return sorted[index];
}

}  // namespace gem::detect

#include "detect/lof.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace gem::detect {

Status LofDetector::Fit(const std::vector<math::Vec>& normal) {
  if (static_cast<int>(normal.size()) < 3) {
    return Status::InvalidArgument("LOF needs at least 3 training samples");
  }
  data_ = normal;
  const int n = static_cast<int>(data_.size());
  // k must leave at least one other point.
  options_.k = std::min(options_.k, n - 1);

  // k-distance and k-NN per training point (leave-one-out).
  std::vector<KnnResult> knns(n);
  k_distance_.assign(n, 0.0);
  for (int i = 0; i < n; ++i) {
    knns[i] = Knn(data_[i], i);
    k_distance_[i] = knns[i].dists.back();
  }

  // Local reachability density per training point.
  lrd_.assign(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double reach_sum = 0.0;
    for (size_t j = 0; j < knns[i].indices.size(); ++j) {
      const int nb = knns[i].indices[j];
      reach_sum += std::max(knns[i].dists[j], k_distance_[nb]);
    }
    lrd_[i] = knns[i].indices.size() / std::max(reach_sum, 1e-12);
  }

  // LOF of the training points themselves calibrates the threshold.
  math::Vec scores(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double ratio_sum = 0.0;
    for (const int nb : knns[i].indices) ratio_sum += lrd_[nb];
    scores[i] = ratio_sum / (knns[i].indices.size() * lrd_[i]);
  }
  threshold_ = ContaminationThreshold(scores, options_.contamination);
  return Status::Ok();
}

LofDetector::KnnResult LofDetector::Knn(const math::Vec& x,
                                        int exclude) const {
  const int n = static_cast<int>(data_.size());
  std::vector<std::pair<double, int>> dists;
  dists.reserve(n);
  for (int i = 0; i < n; ++i) {
    if (i == exclude) continue;
    dists.emplace_back(math::Distance(x, data_[i]), i);
  }
  const int k = std::min(options_.k, static_cast<int>(dists.size()));
  std::partial_sort(dists.begin(), dists.begin() + k, dists.end());
  KnnResult result;
  result.indices.reserve(k);
  result.dists.reserve(k);
  for (int i = 0; i < k; ++i) {
    result.dists.push_back(dists[i].first);
    result.indices.push_back(dists[i].second);
  }
  return result;
}

double LofDetector::ReachabilityDensity(const KnnResult& knn) const {
  double reach_sum = 0.0;
  for (size_t j = 0; j < knn.indices.size(); ++j) {
    reach_sum += std::max(knn.dists[j], k_distance_[knn.indices[j]]);
  }
  return knn.indices.size() / std::max(reach_sum, 1e-12);
}

double LofDetector::Score(const math::Vec& x) const {
  GEM_CHECK(!data_.empty());
  const KnnResult knn = Knn(x, -1);
  const double lrd_x = ReachabilityDensity(knn);
  double ratio_sum = 0.0;
  for (const int nb : knn.indices) ratio_sum += lrd_[nb];
  return ratio_sum / (knn.indices.size() * std::max(lrd_x, 1e-12));
}

bool LofDetector::IsOutlier(const math::Vec& x) const {
  return Score(x) > threshold_;
}

}  // namespace gem::detect

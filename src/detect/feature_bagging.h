#ifndef GEM_DETECT_FEATURE_BAGGING_H_
#define GEM_DETECT_FEATURE_BAGGING_H_

#include <memory>
#include <vector>

#include "detect/detector.h"
#include "detect/lof.h"
#include "math/rng.h"

namespace gem::detect {

/// Feature bagging (Lazarevic & Kumar, KDD'05): R rounds of a base
/// outlier detector (LOF, as in the original paper) on random feature
/// subsets of size in [d/2, d-1]; final score is the cumulative sum of
/// the per-round scores. The "BiSAGE + Feature bagging" baseline of
/// Table I.
struct FeatureBaggingOptions {
  int rounds = 10;
  LofOptions base;
  double contamination = 0.1;
  uint64_t seed = 37;
};

class FeatureBagging : public OutlierDetector {
 public:
  explicit FeatureBagging(FeatureBaggingOptions options = FeatureBaggingOptions()) : options_(options) {}

  Status Fit(const std::vector<math::Vec>& normal) override;
  double Score(const math::Vec& x) const override;
  bool IsOutlier(const math::Vec& x) const override;

  int rounds_used() const { return static_cast<int>(detectors_.size()); }
  double threshold() const { return threshold_; }

 private:
  math::Vec Project(const math::Vec& x, const std::vector<int>& dims) const;

  FeatureBaggingOptions options_;
  std::vector<std::vector<int>> feature_sets_;
  std::vector<std::unique_ptr<LofDetector>> detectors_;
  double threshold_ = 0.0;
};

}  // namespace gem::detect

#endif  // GEM_DETECT_FEATURE_BAGGING_H_

#include "detect/iforest.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/check.h"

namespace gem::detect {
namespace {

/// Average path length of unsuccessful BST search over n points
/// (the c(n) normalizer from the iForest paper).
double AveragePathLength(int n) {
  if (n <= 1) return 0.0;
  if (n == 2) return 1.0;
  const double h = std::log(n - 1.0) + 0.5772156649015329;  // harmonic approx
  return 2.0 * h - 2.0 * (n - 1.0) / n;
}

}  // namespace

int IsolationForest::BuildNode(Tree& tree, std::vector<int>& indices,
                               int begin, int end, int depth,
                               int height_limit,
                               const std::vector<math::Vec>& data,
                               math::Rng& rng) {
  const int node_id = static_cast<int>(tree.nodes.size());
  tree.nodes.push_back(Node{});
  const int count = end - begin;
  if (count <= 1 || depth >= height_limit) {
    tree.nodes[node_id].size = count;
    return node_id;
  }
  const int d = static_cast<int>(data[indices[begin]].size());

  // Pick a dimension with spread; give up after a few attempts (all
  // duplicates -> leaf).
  int split_dim = -1;
  double lo = 0.0;
  double hi = 0.0;
  for (int attempt = 0; attempt < 8 && split_dim < 0; ++attempt) {
    const int dim = rng.UniformInt(d);
    lo = data[indices[begin]][dim];
    hi = lo;
    for (int i = begin; i < end; ++i) {
      lo = std::min(lo, data[indices[i]][dim]);
      hi = std::max(hi, data[indices[i]][dim]);
    }
    if (hi > lo) split_dim = dim;
  }
  if (split_dim < 0) {
    tree.nodes[node_id].size = count;
    return node_id;
  }
  const double split_value = rng.Uniform(lo, hi);
  const auto middle = std::partition(
      indices.begin() + begin, indices.begin() + end,
      [&](int i) { return data[i][split_dim] < split_value; });
  int mid = static_cast<int>(middle - indices.begin());
  // A degenerate partition (all on one side) becomes a leaf.
  if (mid == begin || mid == end) {
    tree.nodes[node_id].size = count;
    return node_id;
  }
  tree.nodes[node_id].split_dim = split_dim;
  tree.nodes[node_id].split_value = split_value;
  const int left = BuildNode(tree, indices, begin, mid, depth + 1,
                             height_limit, data, rng);
  const int right = BuildNode(tree, indices, mid, end, depth + 1,
                              height_limit, data, rng);
  tree.nodes[node_id].left = left;
  tree.nodes[node_id].right = right;
  return node_id;
}

Status IsolationForest::Fit(const std::vector<math::Vec>& normal) {
  if (normal.empty()) {
    return Status::InvalidArgument("no training data");
  }
  const int n = static_cast<int>(normal.size());
  const int psi = std::min(options_.subsample, n);
  const int height_limit =
      static_cast<int>(std::ceil(std::log2(std::max(psi, 2))));
  c_psi_ = AveragePathLength(psi);
  math::Rng rng(options_.seed);

  trees_.clear();
  trees_.resize(options_.num_trees);
  std::vector<int> all(n);
  std::iota(all.begin(), all.end(), 0);
  for (Tree& tree : trees_) {
    std::vector<int> sample = all;
    rng.Shuffle(sample);
    sample.resize(psi);
    BuildNode(tree, sample, 0, psi, 0, height_limit, normal, rng);
  }

  math::Vec scores;
  scores.reserve(normal.size());
  for (const math::Vec& x : normal) scores.push_back(Score(x));
  threshold_ = ContaminationThreshold(scores, options_.contamination);
  return Status::Ok();
}

double IsolationForest::PathLength(const Tree& tree,
                                   const math::Vec& x) const {
  int node_id = 0;
  double depth = 0.0;
  while (true) {
    const Node& node = tree.nodes[node_id];
    if (node.split_dim < 0) {
      return depth + AveragePathLength(node.size);
    }
    node_id = x[node.split_dim] < node.split_value ? node.left : node.right;
    depth += 1.0;
  }
}

double IsolationForest::Score(const math::Vec& x) const {
  GEM_CHECK(!trees_.empty());
  double mean_path = 0.0;
  for (const Tree& tree : trees_) mean_path += PathLength(tree, x);
  mean_path /= static_cast<double>(trees_.size());
  return std::pow(2.0, -mean_path / std::max(c_psi_, 1e-12));
}

bool IsolationForest::IsOutlier(const math::Vec& x) const {
  return Score(x) > threshold_;
}

}  // namespace gem::detect

#ifndef GEM_DETECT_SVDD_H_
#define GEM_DETECT_SVDD_H_

#include <vector>

#include "detect/detector.h"

namespace gem::detect {

/// Support vector data description (Tax & Duin, 2004): the minimum
/// enclosing hypersphere in RBF feature space. The core of the INOA
/// baseline. Solved in the dual by projected gradient descent on
///   min_a a' K a - sum_i a_i K_ii   s.t. 0 <= a_i <= C, sum a = 1,
/// with C = 1 / (nu * n).
struct SvddOptions {
  /// RBF kernel width: K(x,y) = exp(-gamma ||x-y||^2). gamma <= 0
  /// selects the median-distance heuristic.
  double gamma = -1.0;
  /// Fraction of training samples allowed outside the sphere.
  double nu = 0.1;
  int iterations = 300;
  double step = 0.5;
};

class SvddDetector : public OutlierDetector {
 public:
  explicit SvddDetector(SvddOptions options = SvddOptions()) : options_(options) {}

  Status Fit(const std::vector<math::Vec>& normal) override;
  /// Squared feature-space distance to the center minus R^2
  /// (positive outside the sphere).
  double Score(const math::Vec& x) const override;
  bool IsOutlier(const math::Vec& x) const override;

  int num_support_vectors() const;
  double radius_squared() const { return r2_; }

 private:
  double Kernel(const math::Vec& a, const math::Vec& b) const;
  /// Squared distance to the sphere center in feature space.
  double CenterDistanceSquared(const math::Vec& x) const;

  SvddOptions options_;
  double gamma_used_ = 1.0;
  std::vector<math::Vec> data_;
  math::Vec alpha_;
  double alpha_k_alpha_ = 0.0;  // a' K a, cached
  double r2_ = 0.0;
};

}  // namespace gem::detect

#endif  // GEM_DETECT_SVDD_H_

#include "math/vec.h"

#include <cmath>

#include "base/check.h"
#include "math/kernels.h"

namespace gem::math {

// Every O(n) loop below routes through the dispatched kernel table
// (math/kernels.h) — the Vec functions are the single entry points the
// rest of the codebase uses, so vectorizing here covers tape ops,
// inference, detectors, and eval alike.

double Dot(const Vec& a, const Vec& b) {
  GEM_DCHECK(a.size() == b.size());
  return kernels::Active().dot(a.data(), b.data(), a.size());
}

double Norm2(const Vec& a) { return std::sqrt(Dot(a, a)); }

double SquaredDistance(const Vec& a, const Vec& b) {
  GEM_DCHECK(a.size() == b.size());
  return kernels::Active().squared_distance(a.data(), b.data(), a.size());
}

double Distance(const Vec& a, const Vec& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double CosineDistance(const Vec& a, const Vec& b) {
  GEM_DCHECK(a.size() == b.size());
  // One pass per reduction via the shared dot kernel (the norms are
  // dot(x, x) — no separate re-implementation of the sum loops).
  const kernels::Ops& ops = kernels::Active();
  const double na2 = ops.dot(a.data(), a.data(), a.size());
  const double nb2 = ops.dot(b.data(), b.data(), b.size());
  if (na2 == 0.0 || nb2 == 0.0) return 1.0;
  return 1.0 - ops.dot(a.data(), b.data(), a.size()) /
                   (std::sqrt(na2) * std::sqrt(nb2));
}

void AddScaled(Vec& a, const Vec& b, double scale) {
  GEM_DCHECK(a.size() == b.size());
  kernels::Active().add_scaled(a.data(), b.data(), scale, a.size());
}

void Scale(Vec& a, double scale) {
  kernels::Active().scale(a.data(), scale, a.size());
}

void NormalizeL2(Vec& a) {
  const double norm = Norm2(a);
  if (norm > 0.0) Scale(a, 1.0 / norm);
}

Vec Concat(const Vec& a, const Vec& b) {
  Vec out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Vec Sub(const Vec& a, const Vec& b) {
  GEM_DCHECK(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec MeanRows(const std::vector<Vec>& rows) {
  if (rows.empty()) return {};
  Vec out(rows[0].size(), 0.0);
  for (const Vec& row : rows) AddScaled(out, row, 1.0);
  Scale(out, 1.0 / static_cast<double>(rows.size()));
  return out;
}

}  // namespace gem::math

#include "math/vec.h"

#include <cmath>

#include "base/check.h"

namespace gem::math {

double Dot(const Vec& a, const Vec& b) {
  GEM_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm2(const Vec& a) { return std::sqrt(Dot(a, a)); }

double SquaredDistance(const Vec& a, const Vec& b) {
  GEM_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double Distance(const Vec& a, const Vec& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double CosineDistance(const Vec& a, const Vec& b) {
  const double na = Norm2(a);
  const double nb = Norm2(b);
  if (na == 0.0 || nb == 0.0) return 1.0;
  return 1.0 - Dot(a, b) / (na * nb);
}

void AddScaled(Vec& a, const Vec& b, double scale) {
  GEM_DCHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += scale * b[i];
}

void Scale(Vec& a, double scale) {
  for (double& x : a) x *= scale;
}

void NormalizeL2(Vec& a) {
  const double norm = Norm2(a);
  if (norm > 0.0) Scale(a, 1.0 / norm);
}

Vec Concat(const Vec& a, const Vec& b) {
  Vec out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Vec Sub(const Vec& a, const Vec& b) {
  GEM_DCHECK(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec MeanRows(const std::vector<Vec>& rows) {
  if (rows.empty()) return {};
  Vec out(rows[0].size(), 0.0);
  for (const Vec& row : rows) AddScaled(out, row, 1.0);
  Scale(out, 1.0 / static_cast<double>(rows.size()));
  return out;
}

}  // namespace gem::math

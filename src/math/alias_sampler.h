#ifndef GEM_MATH_ALIAS_SAMPLER_H_
#define GEM_MATH_ALIAS_SAMPLER_H_

#include <vector>

#include "math/rng.h"
#include "math/vec.h"

namespace gem::math {

/// Walker's alias method: O(n) construction, O(1) sampling from a fixed
/// discrete distribution. Used for edge-weight-proportional neighbor
/// sampling and the degree^{3/4} negative sampler.
class AliasSampler {
 public:
  AliasSampler() = default;

  /// Builds the tables from non-negative weights (need not be
  /// normalized). At least one weight must be positive.
  explicit AliasSampler(const Vec& weights);

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight.
  int Sample(Rng& rng) const;

  int size() const { return static_cast<int>(prob_.size()); }
  bool empty() const { return prob_.empty(); }

 private:
  std::vector<double> prob_;
  std::vector<int> alias_;
};

/// Samples an index proportional to weights without preprocessing
/// (O(n) per draw). Preferable for one-shot draws on small supports.
int SampleProportional(const Vec& weights, Rng& rng);

}  // namespace gem::math

#endif  // GEM_MATH_ALIAS_SAMPLER_H_

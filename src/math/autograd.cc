#include "math/autograd.h"

#include <cmath>

#include "base/check.h"
#include "math/kernels.h"

namespace gem::math {
namespace {

/// Numerically stable log(sigmoid(z)) = -softplus(-z).
double LogSigmoid(double z) {
  if (z >= 0.0) return -std::log1p(std::exp(-z));
  return z - std::log1p(std::exp(z));
}

double SigmoidScalar(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Matrix& ParamGradSink::GradFor(Parameter* param) {
  for (auto& [p, grad] : grads_) {
    if (p == param) return grad;
  }
  grads_.emplace_back(param, Matrix(param->value.rows(), param->value.cols()));
  return grads_.back().second;
}

void ParamGradSink::FlushToParams() const {
  for (const auto& [param, grad] : grads_) {
    param->grad.AddScaled(grad, 1.0);
  }
}

void Tape::Clear() {
  nodes_.clear();
  log_sigmoid_terms_.clear();
  mse_terms_.clear();
  loss_ = 0.0;
}

VarId Tape::Push(Node node) {
  node.grad.assign(node.value.size(), 0.0);
  nodes_.push_back(std::move(node));
  return static_cast<VarId>(nodes_.size()) - 1;
}

VarId Tape::Leaf(Vec v) {
  Node n;
  n.op = Op::kLeaf;
  n.value = std::move(v);
  return Push(std::move(n));
}

VarId Tape::MatVec(Parameter* param, VarId x) {
  GEM_DCHECK(param != nullptr);
  Node n;
  n.op = Op::kMatVec;
  n.a = x;
  n.param = param;
  n.value = param->value.MatVec(value(x));
  return Push(std::move(n));
}

VarId Tape::Concat(VarId a, VarId b) {
  Node n;
  n.op = Op::kConcat;
  n.a = a;
  n.b = b;
  n.value = math::Concat(value(a), value(b));
  return Push(std::move(n));
}

VarId Tape::WeightedSum(const std::vector<VarId>& inputs, const Vec& coeffs) {
  GEM_CHECK(!inputs.empty());
  GEM_CHECK(inputs.size() == coeffs.size());
  Node n;
  n.op = Op::kWeightedSum;
  n.inputs = inputs;
  n.coeffs = coeffs;
  n.value.assign(value(inputs[0]).size(), 0.0);
  std::vector<const double*> input_ptrs;
  input_ptrs.reserve(inputs.size());
  for (const VarId input : inputs) input_ptrs.push_back(value(input).data());
  kernels::Active().weighted_sum(n.value.data(), input_ptrs.data(),
                                 n.coeffs.data(), input_ptrs.size(),
                                 n.value.size());
  return Push(std::move(n));
}

VarId Tape::Add(VarId a, VarId b) {
  Node n;
  n.op = Op::kAdd;
  n.a = a;
  n.b = b;
  n.value = value(a);
  AddScaled(n.value, value(b), 1.0);
  return Push(std::move(n));
}

VarId Tape::Sub(VarId a, VarId b) {
  Node n;
  n.op = Op::kSub;
  n.a = a;
  n.b = b;
  n.value = math::Sub(value(a), value(b));
  return Push(std::move(n));
}

VarId Tape::Relu(VarId x) {
  Node n;
  n.op = Op::kRelu;
  n.a = x;
  n.value = value(x);
  for (double& v : n.value) v = v > 0.0 ? v : 0.0;
  return Push(std::move(n));
}

VarId Tape::Tanh(VarId x) {
  Node n;
  n.op = Op::kTanh;
  n.a = x;
  n.value = value(x);
  for (double& v : n.value) v = std::tanh(v);
  return Push(std::move(n));
}

VarId Tape::Sigmoid(VarId x) {
  Node n;
  n.op = Op::kSigmoid;
  n.a = x;
  n.value = value(x);
  for (double& v : n.value) v = SigmoidScalar(v);
  return Push(std::move(n));
}

VarId Tape::L2Normalize(VarId x) {
  Node n;
  n.op = Op::kL2Normalize;
  n.a = x;
  n.value = value(x);
  const double norm = Norm2(n.value);
  if (norm > kNormEps) Scale(n.value, 1.0 / norm);
  return Push(std::move(n));
}

VarId Tape::Dot(VarId a, VarId b) {
  Node n;
  n.op = Op::kDot;
  n.a = a;
  n.b = b;
  n.value = {math::Dot(value(a), value(b))};
  return Push(std::move(n));
}

double Tape::AddLogSigmoidLoss(VarId dot_var, double sign, double weight) {
  GEM_CHECK(value(dot_var).size() == 1);
  const double s = value(dot_var)[0];
  const double term = -weight * LogSigmoid(sign * s);
  log_sigmoid_terms_.push_back(LogSigmoidTerm{dot_var, sign, weight});
  loss_ += term;
  return term;
}

double Tape::AddMseLoss(VarId v, const Vec& target, double weight) {
  GEM_CHECK(value(v).size() == target.size());
  const double term = 0.5 * weight * SquaredDistance(value(v), target);
  mse_terms_.push_back(MseTerm{v, target, weight});
  loss_ += term;
  return term;
}

const Vec& Tape::value(VarId id) const {
  GEM_DCHECK(id >= 0 && id < size());
  return nodes_[id].value;
}

const Vec& Tape::grad(VarId id) const {
  GEM_DCHECK(id >= 0 && id < size());
  return nodes_[id].grad;
}

void Tape::Backward(ParamGradSink* sink) {
  // Seed gradients from the loss terms.
  for (const LogSigmoidTerm& t : log_sigmoid_terms_) {
    const double s = nodes_[t.var].value[0];
    // d/ds [-w log sigmoid(sign*s)] = w * sign * (sigmoid(sign*s) - 1).
    nodes_[t.var].grad[0] +=
        t.weight * t.sign * (SigmoidScalar(t.sign * s) - 1.0);
  }
  for (const MseTerm& t : mse_terms_) {
    Node& node = nodes_[t.var];
    for (size_t i = 0; i < t.target.size(); ++i) {
      node.grad[i] += t.weight * (node.value[i] - t.target[i]);
    }
  }

  // Reverse topological order == reverse creation order.
  for (int id = size() - 1; id >= 0; --id) {
    Node& n = nodes_[id];
    bool all_zero = true;
    for (double g : n.grad) {
      if (g != 0.0) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) continue;

    switch (n.op) {
      case Op::kLeaf:
        break;
      case Op::kMatVec: {
        // y = W x:  dW += g outer x,  dx += W^T g.
        const Vec& x = nodes_[n.a].value;
        Matrix& dw = sink ? sink->GradFor(n.param) : n.param->grad;
        dw.AddOuter(n.grad, x, 1.0);
        const Vec gx = n.param->value.MatTVec(n.grad);
        AddScaled(nodes_[n.a].grad, gx, 1.0);
        break;
      }
      case Op::kConcat: {
        Vec& ga = nodes_[n.a].grad;
        Vec& gb = nodes_[n.b].grad;
        const kernels::Ops& ops = kernels::Active();
        ops.add_scaled(ga.data(), n.grad.data(), 1.0, ga.size());
        ops.add_scaled(gb.data(), n.grad.data() + ga.size(), 1.0, gb.size());
        break;
      }
      case Op::kWeightedSum:
        for (size_t i = 0; i < n.inputs.size(); ++i) {
          AddScaled(nodes_[n.inputs[i]].grad, n.grad, n.coeffs[i]);
        }
        break;
      case Op::kAdd:
        AddScaled(nodes_[n.a].grad, n.grad, 1.0);
        AddScaled(nodes_[n.b].grad, n.grad, 1.0);
        break;
      case Op::kSub:
        AddScaled(nodes_[n.a].grad, n.grad, 1.0);
        AddScaled(nodes_[n.b].grad, n.grad, -1.0);
        break;
      case Op::kRelu: {
        const Vec& x = nodes_[n.a].value;
        Vec& gx = nodes_[n.a].grad;
        for (size_t i = 0; i < x.size(); ++i) {
          if (x[i] > 0.0) gx[i] += n.grad[i];
        }
        break;
      }
      case Op::kTanh: {
        Vec& gx = nodes_[n.a].grad;
        for (size_t i = 0; i < n.value.size(); ++i) {
          gx[i] += n.grad[i] * (1.0 - n.value[i] * n.value[i]);
        }
        break;
      }
      case Op::kSigmoid: {
        Vec& gx = nodes_[n.a].grad;
        for (size_t i = 0; i < n.value.size(); ++i) {
          gx[i] += n.grad[i] * n.value[i] * (1.0 - n.value[i]);
        }
        break;
      }
      case Op::kL2Normalize: {
        // y = x / ||x||:  dx = (g - y (y . g)) / ||x||.
        const Vec& x = nodes_[n.a].value;
        const double norm = Norm2(x);
        if (norm <= kNormEps) {
          AddScaled(nodes_[n.a].grad, n.grad, 1.0);
          break;
        }
        const double yg = math::Dot(n.value, n.grad);
        Vec& gx = nodes_[n.a].grad;
        for (size_t i = 0; i < x.size(); ++i) {
          gx[i] += (n.grad[i] - n.value[i] * yg) / norm;
        }
        break;
      }
      case Op::kDot: {
        const double g = n.grad[0];
        AddScaled(nodes_[n.a].grad, nodes_[n.b].value, g);
        AddScaled(nodes_[n.b].grad, nodes_[n.a].value, g);
        break;
      }
    }
  }
}

}  // namespace gem::math

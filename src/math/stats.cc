#include "math/stats.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace gem::math {

double Mean(const Vec& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const Vec& values) {
  const size_t n = values.size();
  if (n < 2) return 0.0;
  const double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) {
    const double d = v - mean;
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(n - 1));
}

double Min(const Vec& values) {
  GEM_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double Max(const Vec& values) {
  GEM_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

double Percentile(const Vec& values, double p) {
  GEM_CHECK(!values.empty());
  GEM_CHECK(p >= 0.0 && p <= 100.0);
  Vec sorted = values;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void MinMaxNormalize(Vec& values) {
  if (values.empty()) return;
  const double lo = Min(values);
  const double hi = Max(values);
  const double range = hi - lo;
  if (range <= 0.0) {
    std::fill(values.begin(), values.end(), 0.0);
    return;
  }
  for (double& v : values) v = (v - lo) / range;
}

Summary Summarize(const Vec& values) {
  GEM_CHECK(!values.empty());
  return Summary{Mean(values), Min(values), Max(values)};
}

}  // namespace gem::math

#include "math/optimizer.h"

#include <cmath>

#include "base/check.h"

namespace gem::math {

void Adam::Register(Parameter* param) {
  GEM_CHECK(param != nullptr);
  Slot slot;
  slot.param = param;
  slot.m = Matrix(param->value.rows(), param->value.cols());
  slot.v = Matrix(param->value.rows(), param->value.cols());
  slots_.push_back(std::move(slot));
}

void Adam::Step() {
  ++step_;
  const double bc1 = 1.0 - std::pow(options_.beta1, step_);
  const double bc2 = 1.0 - std::pow(options_.beta2, step_);
  for (Slot& slot : slots_) {
    auto& value = slot.param->value.data();
    auto& grad = slot.param->grad.data();
    auto& m = slot.m.data();
    auto& v = slot.v.data();
    for (size_t i = 0; i < value.size(); ++i) {
      const double g = grad[i];
      m[i] = options_.beta1 * m[i] + (1.0 - options_.beta1) * g;
      v[i] = options_.beta2 * v[i] + (1.0 - options_.beta2) * g * g;
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      value[i] -=
          options_.learning_rate * mhat / (std::sqrt(vhat) + options_.epsilon);
    }
    slot.param->ZeroGrad();
  }
}

RowAdam::RowAdam(int rows, int dim, AdamOptions options)
    : options_(options), m_(rows, dim), v_(rows, dim), step_(rows, 0) {}

void RowAdam::Update(Matrix& table, int row, const Vec& g) {
  GEM_CHECK(row >= 0 && row < m_.rows());
  GEM_CHECK(static_cast<int>(g.size()) == m_.cols());
  const long t = ++step_[row];
  const double bc1 = 1.0 - std::pow(options_.beta1, t);
  const double bc2 = 1.0 - std::pow(options_.beta2, t);
  double* value = table.RowPtr(row);
  double* m = m_.RowPtr(row);
  double* v = v_.RowPtr(row);
  for (int i = 0; i < m_.cols(); ++i) {
    m[i] = options_.beta1 * m[i] + (1.0 - options_.beta1) * g[i];
    v[i] = options_.beta2 * v[i] + (1.0 - options_.beta2) * g[i] * g[i];
    const double mhat = m[i] / bc1;
    const double vhat = v[i] / bc2;
    value[i] -=
        options_.learning_rate * mhat / (std::sqrt(vhat) + options_.epsilon);
  }
}

void RowAdam::Resize(int rows) {
  GEM_CHECK(rows >= m_.rows());
  while (m_.rows() < rows) {
    m_.AppendRow(Vec(m_.cols() == 0 ? 0 : m_.cols(), 0.0));
    v_.AppendRow(Vec(v_.cols() == 0 ? 0 : v_.cols(), 0.0));
    step_.push_back(0);
  }
}

}  // namespace gem::math

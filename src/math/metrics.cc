#include "math/metrics.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace gem::math {

void ConfusionCounts::Add(bool actual_positive, bool predicted_positive) {
  if (actual_positive) {
    predicted_positive ? ++tp : ++fn;
  } else {
    predicted_positive ? ++fp : ++tn;
  }
}

double ConfusionCounts::Precision() const {
  const long denom = tp + fp;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / denom;
}

double ConfusionCounts::Recall() const {
  const long denom = tp + fn;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / denom;
}

double ConfusionCounts::F1() const {
  const double p = Precision();
  const double r = Recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionCounts::FalsePositiveRate() const {
  const long denom = fp + tn;
  return denom == 0 ? 0.0 : static_cast<double>(fp) / denom;
}

InOutMetrics ComputeInOutMetrics(const std::vector<bool>& actual_inside,
                                 const std::vector<bool>& predicted_inside) {
  GEM_CHECK(actual_inside.size() == predicted_inside.size());
  ConfusionCounts in;   // positive = inside
  ConfusionCounts out;  // positive = outside
  for (size_t i = 0; i < actual_inside.size(); ++i) {
    in.Add(actual_inside[i], predicted_inside[i]);
    out.Add(!actual_inside[i], !predicted_inside[i]);
  }
  InOutMetrics m;
  m.precision_in = in.Precision();
  m.recall_in = in.Recall();
  m.f_in = in.F1();
  m.precision_out = out.Precision();
  m.recall_out = out.Recall();
  m.f_out = out.F1();
  return m;
}

std::vector<RocPoint> RocCurve(const Vec& scores,
                               const std::vector<bool>& is_positive) {
  GEM_CHECK(scores.size() == is_positive.size());
  long num_pos = 0;
  long num_neg = 0;
  for (bool p : is_positive) (p ? num_pos : num_neg)++;

  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });

  std::vector<RocPoint> curve;
  curve.push_back(RocPoint{scores.empty() ? 0.0 : scores[order[0]] + 1.0,
                           0.0, 0.0});
  long tp = 0;
  long fp = 0;
  size_t i = 0;
  while (i < order.size()) {
    const double threshold = scores[order[i]];
    // Consume all samples tied at this threshold before emitting a point.
    while (i < order.size() && scores[order[i]] == threshold) {
      (is_positive[order[i]] ? tp : fp)++;
      ++i;
    }
    RocPoint pt;
    pt.threshold = threshold;
    pt.tpr = num_pos == 0 ? 0.0 : static_cast<double>(tp) / num_pos;
    pt.fpr = num_neg == 0 ? 0.0 : static_cast<double>(fp) / num_neg;
    curve.push_back(pt);
  }
  return curve;
}

double RocAuc(const Vec& scores, const std::vector<bool>& is_positive) {
  GEM_CHECK(scores.size() == is_positive.size());
  // Mann-Whitney U: average rank of positives.
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  long num_pos = 0;
  long num_neg = 0;
  for (bool p : is_positive) (p ? num_pos : num_neg)++;
  if (num_pos == 0 || num_neg == 0) return 0.5;

  // Ranks with ties averaged.
  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) ++j;
    // Positions i..j-1 share the average 1-based rank.
    const double avg_rank = (static_cast<double>(i + 1) +
                             static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (is_positive[order[k]]) rank_sum_pos += avg_rank;
    }
    i = j;
  }
  const double u = rank_sum_pos -
                   static_cast<double>(num_pos) * (num_pos + 1) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

}  // namespace gem::math

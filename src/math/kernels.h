#ifndef GEM_MATH_KERNELS_H_
#define GEM_MATH_KERNELS_H_

#include <cstddef>
#include <new>
#include <vector>

namespace gem::math::kernels {

/// Which implementation family the process dispatches to. Selected
/// exactly once, at first use: AVX2+FMA when the CPU supports both,
/// overridable with GEM_KERNELS=scalar|avx2 (differential testing,
/// reproducing scalar-seed numerics). All kernels use a FIXED
/// lane-reduction order, so for a given backend results are identical
/// run-to-run and machine-to-machine; across backends results may
/// differ by summation order / FMA rounding (see DESIGN.md §10 for the
/// determinism-vs-bit-exactness contract).
enum class Backend { kScalar, kAvx2 };

/// "scalar" / "avx2" (matches the GEM_KERNELS values and the golden
/// fixture suffixes).
const char* BackendName(Backend backend);

/// True when this CPU can run the AVX2+FMA kernels.
bool Avx2Available();

/// The backend the process-wide dispatch resolved to.
Backend ActiveBackend();

/// Flat table of kernel entry points; one instance per backend. All
/// pointers may alias-free overlap only as documented per kernel; n is
/// the element count. None of the kernels require aligned pointers
/// (unaligned loads are used throughout); 32-byte alignment of the
/// underlying buffers is a throughput nicety, not a contract.
struct Ops {
  /// sum_i a[i] * b[i]; 0.0 when n == 0.
  double (*dot)(const double* a, const double* b, size_t n);
  /// sum_i (a[i] - b[i])^2.
  double (*squared_distance)(const double* a, const double* b, size_t n);
  /// a[i] += scale * b[i].
  void (*add_scaled)(double* a, const double* b, double scale, size_t n);
  /// a[i] *= scale.
  void (*scale)(double* a, double scale, size_t n);
  /// out[j] = sum_k coeffs[k] * inputs[k][j], accumulated in ascending
  /// k for every j (the aggregation order of Equations (3)/(5)).
  /// Overwrites out; inputs must not alias out.
  void (*weighted_sum)(double* out, const double* const* inputs,
                       const double* coeffs, size_t k, size_t n);
  /// y[r] = dot(m + r*cols, x) for r in [0, rows) — row-major
  /// matrix-vector product. y must not alias m or x.
  void (*matvec)(const double* m, int rows, int cols, const double* x,
                 double* y);
  /// y[c] += sum_r m[r*cols + c] * x[r] — transposed product,
  /// ACCUMULATING into y. y must not alias m or x.
  void (*mattvec)(const double* m, int rows, int cols, const double* x,
                  double* y);
};

/// The dispatched table (resolved once; see Backend).
const Ops& Active();

/// A specific backend's table, for differential tests and benchmarks.
/// Requesting kAvx2 on a CPU without AVX2 is a programming error
/// (check Avx2Available() first).
const Ops& OpsFor(Backend backend);

/// Test hook: repoints Active() (and ActiveBackend()) at `backend`.
/// Not thread-safe — call only from single-threaded test setup, and
/// restore the previous value afterwards.
Backend ForceBackendForTest(Backend backend);

/// Minimal C++17 aligned allocator so hot flat buffers (node tables,
/// inference scratch arenas) start on a 32-byte boundary.
template <typename T, size_t kAlign>
struct AlignedAllocator {
  using value_type = T;
  // The non-type alignment parameter defeats std::allocator_traits'
  // default rebind deduction; spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, kAlign>;
  };
  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, kAlign>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kAlign)));
  }
  void deallocate(T* p, size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(kAlign));
  }
  template <typename U>
  bool operator==(const AlignedAllocator<U, kAlign>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U, kAlign>&) const noexcept {
    return false;
  }
};

/// 32-byte-aligned double buffer (one AVX2 register row).
using AlignedVec = std::vector<double, AlignedAllocator<double, 32>>;

}  // namespace gem::math::kernels

#endif  // GEM_MATH_KERNELS_H_

#include "math/matrix.h"

#include <cmath>

#include "base/check.h"
#include "math/rng.h"

namespace gem::math {

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
  GEM_CHECK(rows >= 0 && cols >= 0);
}

Vec Matrix::Row(int r) const {
  GEM_DCHECK(r >= 0 && r < rows_);
  return Vec(RowPtr(r), RowPtr(r) + cols_);
}

void Matrix::SetRow(int r, const Vec& v) {
  GEM_DCHECK(r >= 0 && r < rows_);
  GEM_CHECK(static_cast<int>(v.size()) == cols_);
  std::copy(v.begin(), v.end(), RowPtr(r));
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::FillUniform(Rng& rng, double scale) {
  for (double& x : data_) x = rng.Uniform(-scale, scale);
}

void Matrix::FillGlorot(Rng& rng) {
  const double scale = std::sqrt(6.0 / (rows_ + cols_));
  FillUniform(rng, scale);
}

Vec Matrix::MatVec(const Vec& x) const {
  GEM_CHECK(static_cast<int>(x.size()) == cols_);
  Vec y(rows_);
  kernels::Active().matvec(data_.data(), rows_, cols_, x.data(), y.data());
  return y;
}

Vec Matrix::MatTVec(const Vec& x) const {
  GEM_CHECK(static_cast<int>(x.size()) == rows_);
  Vec y(cols_, 0.0);
  kernels::Active().mattvec(data_.data(), rows_, cols_, x.data(), y.data());
  return y;
}

void Matrix::AddOuter(const Vec& a, const Vec& b, double scale) {
  GEM_CHECK(static_cast<int>(a.size()) == rows_);
  GEM_CHECK(static_cast<int>(b.size()) == cols_);
  const kernels::Ops& ops = kernels::Active();
  for (int r = 0; r < rows_; ++r) {
    ops.add_scaled(RowPtr(r), b.data(), scale * a[r], cols_);
  }
}

void Matrix::AddScaled(const Matrix& other, double scale) {
  GEM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  kernels::Active().add_scaled(data_.data(), other.data_.data(), scale,
                               data_.size());
}

void Matrix::AppendRow(const Vec& v) {
  if (rows_ == 0 && cols_ == 0) cols_ = static_cast<int>(v.size());
  GEM_CHECK(static_cast<int>(v.size()) == cols_);
  data_.insert(data_.end(), v.begin(), v.end());
  ++rows_;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  GEM_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols(), 0.0);
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a.At(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.RowPtr(k);
      double* crow = c.RowPtr(i);
      for (int j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

}  // namespace gem::math

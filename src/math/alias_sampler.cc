#include "math/alias_sampler.h"

#include <numeric>

#include "base/check.h"

namespace gem::math {

AliasSampler::AliasSampler(const Vec& weights) {
  const int n = static_cast<int>(weights.size());
  GEM_CHECK(n > 0);
  double total = 0.0;
  for (double w : weights) {
    GEM_CHECK(w >= 0.0);
    total += w;
  }
  GEM_CHECK_MSG(total > 0.0, "all weights are zero");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  // Scaled probabilities; average is 1.
  std::vector<double> scaled(n);
  for (int i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<int> small, large;
  small.reserve(n);
  large.reserve(n);
  for (int i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const int s = small.back();
    small.pop_back();
    const int l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (int i : large) prob_[i] = 1.0;
  for (int i : small) prob_[i] = 1.0;  // numerical leftovers
}

int AliasSampler::Sample(Rng& rng) const {
  GEM_DCHECK(!prob_.empty());
  const int i = rng.UniformInt(size());
  return rng.UniformUnit() < prob_[i] ? i : alias_[i];
}

int SampleProportional(const Vec& weights, Rng& rng) {
  GEM_CHECK(!weights.empty());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  GEM_CHECK_MSG(total > 0.0, "all weights are zero");
  double target = rng.UniformUnit() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace gem::math

#include "math/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/check.h"

// The AVX2+FMA kernels are compiled with per-function target attributes
// so the translation unit itself needs no -mavx2 (the binary still runs
// on plain SSE2 hardware; dispatch just resolves to scalar there).
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define GEM_KERNELS_HAVE_AVX2 1
#include <immintrin.h>
#else
#define GEM_KERNELS_HAVE_AVX2 0
#endif

namespace gem::math::kernels {
namespace {

// ---------------------------------------------------------------------------
// Scalar backend. These loops are the seed's original numerics:
// strictly sequential left-to-right accumulation, separate multiply and
// add roundings. GEM_KERNELS=scalar therefore reproduces pre-kernel
// results bit-for-bit.
// ---------------------------------------------------------------------------

double DotScalar(const double* a, const double* b, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double SquaredDistanceScalar(const double* a, const double* b, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

void AddScaledScalar(double* a, const double* b, double scale, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] += scale * b[i];
}

void ScaleScalar(double* a, double scale, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] *= scale;
}

void WeightedSumScalar(double* out, const double* const* inputs,
                       const double* coeffs, size_t k, size_t n) {
  if (n == 0) return;  // out may be null; memset is declared nonnull
  std::memset(out, 0, n * sizeof(double));
  for (size_t i = 0; i < k; ++i) {
    const double c = coeffs[i];
    const double* in = inputs[i];
    for (size_t j = 0; j < n; ++j) out[j] += c * in[j];
  }
}

void MatVecScalar(const double* m, int rows, int cols, const double* x,
                  double* y) {
  for (int r = 0; r < rows; ++r) {
    y[r] = DotScalar(m + static_cast<size_t>(r) * cols, x, cols);
  }
}

void MatTVecScalar(const double* m, int rows, int cols, const double* x,
                   double* y) {
  for (int r = 0; r < rows; ++r) {
    const double* row = m + static_cast<size_t>(r) * cols;
    const double xr = x[r];
    for (int c = 0; c < cols; ++c) y[c] += row[c] * xr;
  }
}

constexpr Ops kScalarOps = {
    DotScalar,        SquaredDistanceScalar, AddScaledScalar, ScaleScalar,
    WeightedSumScalar, MatVecScalar,         MatTVecScalar,
};

// ---------------------------------------------------------------------------
// AVX2+FMA backend. Reductions use a FIXED shape — two 4-lane
// accumulators, folded acc0+acc1, then lanes as (l0+l1)+(l2+l3), then
// the sequential scalar tail — so a given (backend, n) always sums in
// the same order: deterministic run-to-run, but a different order (and
// single-rounding FMA) vs. the scalar backend. Unaligned loads
// throughout: callers owe no alignment.
// ---------------------------------------------------------------------------

#if GEM_KERNELS_HAVE_AVX2

__attribute__((target("avx2,fma"))) inline double HSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);   // l0 l1
  const __m128d hi = _mm256_extractf128_pd(v, 1); // l2 l3
  const double l0 = _mm_cvtsd_f64(lo);
  const double l1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
  const double l2 = _mm_cvtsd_f64(hi);
  const double l3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
  return (l0 + l1) + (l2 + l3);
}

__attribute__((target("avx2,fma")))
double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  if (i + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    i += 4;
  }
  double sum = HSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2,fma")))
double SquaredDistanceAvx2(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(a + i + 4),
                                     _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  if (i + 4 <= n) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    i += 4;
  }
  double sum = HSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

__attribute__((target("avx2,fma")))
void AddScaledAvx2(double* a, const double* b, double scale, size_t n) {
  const __m256d s = _mm256_set1_pd(scale);
  size_t i = 0;
  // Two independent 4-lane streams per iteration; element-wise, so
  // unrolling changes no result bits (unlike the reductions).
  for (; i + 8 <= n; i += 8) {
    const __m256d r0 = _mm256_fmadd_pd(s, _mm256_loadu_pd(b + i),
                                       _mm256_loadu_pd(a + i));
    const __m256d r1 = _mm256_fmadd_pd(s, _mm256_loadu_pd(b + i + 4),
                                       _mm256_loadu_pd(a + i + 4));
    _mm256_storeu_pd(a + i, r0);
    _mm256_storeu_pd(a + i + 4, r1);
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        a + i, _mm256_fmadd_pd(s, _mm256_loadu_pd(b + i),
                               _mm256_loadu_pd(a + i)));
  }
  for (; i < n; ++i) a[i] += scale * b[i];
}

__attribute__((target("avx2,fma")))
void ScaleAvx2(double* a, double scale, size_t n) {
  const __m256d s = _mm256_set1_pd(scale);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(a + i, _mm256_mul_pd(s, _mm256_loadu_pd(a + i)));
  }
  for (; i < n; ++i) a[i] *= scale;
}

__attribute__((target("avx2,fma")))
void WeightedSumAvx2(double* out, const double* const* inputs,
                     const double* coeffs, size_t k, size_t n) {
  // Block over the output so each 4-wide chunk stays in a register
  // across ALL k inputs (one store per chunk instead of k). Per output
  // element the accumulation order is still ascending k, matching the
  // scalar backend's order (only FMA rounding differs).
  size_t j = 0;
  // 8-wide blocks: two independent accumulator chains per k-sweep so
  // the FMA latency of one hides behind the other. Each output element
  // still accumulates in ascending k.
  for (; j + 8 <= n; j += 8) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (size_t i = 0; i < k; ++i) {
      const __m256d c = _mm256_set1_pd(coeffs[i]);
      acc0 = _mm256_fmadd_pd(c, _mm256_loadu_pd(inputs[i] + j), acc0);
      acc1 = _mm256_fmadd_pd(c, _mm256_loadu_pd(inputs[i] + j + 4), acc1);
    }
    _mm256_storeu_pd(out + j, acc0);
    _mm256_storeu_pd(out + j + 4, acc1);
  }
  for (; j + 4 <= n; j += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (size_t i = 0; i < k; ++i) {
      acc = _mm256_fmadd_pd(_mm256_set1_pd(coeffs[i]),
                            _mm256_loadu_pd(inputs[i] + j), acc);
    }
    _mm256_storeu_pd(out + j, acc);
  }
  for (; j < n; ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < k; ++i) sum += coeffs[i] * inputs[i][j];
    out[j] = sum;
  }
}

__attribute__((target("avx2,fma")))
void MatVecAvx2(const double* m, int rows, int cols, const double* x,
                double* y) {
  for (int r = 0; r < rows; ++r) {
    y[r] = DotAvx2(m + static_cast<size_t>(r) * cols, x, cols);
  }
}

__attribute__((target("avx2,fma")))
void MatTVecAvx2(const double* m, int rows, int cols, const double* x,
                 double* y) {
  for (int r = 0; r < rows; ++r) {
    const double* row = m + static_cast<size_t>(r) * cols;
    const __m256d xr = _mm256_set1_pd(x[r]);
    int c = 0;
    for (; c + 4 <= cols; c += 4) {
      _mm256_storeu_pd(
          y + c, _mm256_fmadd_pd(xr, _mm256_loadu_pd(row + c),
                                 _mm256_loadu_pd(y + c)));
    }
    for (; c < cols; ++c) y[c] += row[c] * x[r];
  }
}

constexpr Ops kAvx2Ops = {
    DotAvx2,        SquaredDistanceAvx2, AddScaledAvx2, ScaleAvx2,
    WeightedSumAvx2, MatVecAvx2,         MatTVecAvx2,
};

#endif  // GEM_KERNELS_HAVE_AVX2

// ---------------------------------------------------------------------------
// Dispatch. Resolved exactly once at first use (thread-safe local
// static); GEM_KERNELS overrides the CPU probe, with a downgrade (and
// stderr warning) when avx2 is requested on hardware without it.
// ---------------------------------------------------------------------------

struct Dispatch {
  Backend backend;
  const Ops* ops;
};

Dispatch MakeDispatch(Backend backend) {
#if GEM_KERNELS_HAVE_AVX2
  if (backend == Backend::kAvx2) return {Backend::kAvx2, &kAvx2Ops};
#endif
  return {Backend::kScalar, &kScalarOps};
}

Dispatch Resolve() {
  const char* env = std::getenv("GEM_KERNELS");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) {
      return MakeDispatch(Backend::kScalar);
    }
    if (std::strcmp(env, "avx2") == 0) {
      if (Avx2Available()) return MakeDispatch(Backend::kAvx2);
      std::fprintf(stderr,
                   "gem: GEM_KERNELS=avx2 but CPU lacks AVX2+FMA; "
                   "falling back to scalar kernels\n");
      return MakeDispatch(Backend::kScalar);
    }
    std::fprintf(stderr,
                 "gem: unknown GEM_KERNELS=\"%s\" (want scalar|avx2); "
                 "using CPU auto-detection\n",
                 env);
  }
  return MakeDispatch(Avx2Available() ? Backend::kAvx2 : Backend::kScalar);
}

Dispatch& ActiveDispatch() {
  static Dispatch dispatch = Resolve();
  return dispatch;
}

}  // namespace

const char* BackendName(Backend backend) {
  return backend == Backend::kAvx2 ? "avx2" : "scalar";
}

bool Avx2Available() {
#if GEM_KERNELS_HAVE_AVX2
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Backend ActiveBackend() { return ActiveDispatch().backend; }

const Ops& Active() { return *ActiveDispatch().ops; }

const Ops& OpsFor(Backend backend) {
  if (backend == Backend::kAvx2) {
    GEM_CHECK(Avx2Available());
#if GEM_KERNELS_HAVE_AVX2
    return kAvx2Ops;
#endif
  }
  return kScalarOps;
}

Backend ForceBackendForTest(Backend backend) {
  const Backend previous = ActiveDispatch().backend;
  ActiveDispatch() = MakeDispatch(backend);
  return previous;
}

}  // namespace gem::math::kernels

#include "math/tsne.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace gem::math {
namespace {

/// Finds, per point, the Gaussian bandwidth whose conditional
/// distribution has the requested perplexity (binary search on
/// precision beta = 1/(2 sigma^2)), and returns the conditional
/// similarity matrix P(j|i).
Matrix ConditionalAffinities(const Matrix& sqdist, double perplexity) {
  const int n = sqdist.rows();
  const double target_entropy = std::log(perplexity);
  Matrix p(n, n, 0.0);

  for (int i = 0; i < n; ++i) {
    double beta = 1.0;
    double beta_lo = 0.0;
    double beta_hi = std::numeric_limits<double>::infinity();

    Vec row(n, 0.0);
    for (int iter = 0; iter < 60; ++iter) {
      double sum = 0.0;
      for (int j = 0; j < n; ++j) {
        row[j] = (j == i) ? 0.0 : std::exp(-beta * sqdist.At(i, j));
        sum += row[j];
      }
      if (sum <= 0.0) sum = 1e-300;
      double entropy = 0.0;
      for (int j = 0; j < n; ++j) {
        if (row[j] > 0.0) {
          const double pj = row[j] / sum;
          entropy -= pj * std::log(pj);
        }
      }
      const double diff = entropy - target_entropy;
      if (std::fabs(diff) < 1e-5) break;
      if (diff > 0.0) {  // entropy too high -> sharpen
        beta_lo = beta;
        beta = std::isinf(beta_hi) ? beta * 2.0 : (beta + beta_hi) / 2.0;
      } else {
        beta_hi = beta;
        beta = (beta + beta_lo) / 2.0;
      }
      for (int j = 0; j < n; ++j) {
        row[j] = (j == i) ? 0.0 : std::exp(-beta * sqdist.At(i, j));
      }
    }
    double sum = 0.0;
    for (int j = 0; j < n; ++j) sum += row[j];
    if (sum <= 0.0) sum = 1e-300;
    for (int j = 0; j < n; ++j) p.At(i, j) = row[j] / sum;
  }
  return p;
}

}  // namespace

Result<Matrix> Tsne(const Matrix& points, const TsneOptions& options) {
  const int n = points.rows();
  if (n < 3) return Status::InvalidArgument("t-SNE needs at least 3 points");
  const double perplexity =
      std::min(options.perplexity, (n - 1) / 3.0);
  if (perplexity < 1.0) {
    return Status::InvalidArgument("perplexity infeasible for point count");
  }

  // Pairwise squared distances.
  Matrix sqdist(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    const Vec ri = points.Row(i);
    for (int j = i + 1; j < n; ++j) {
      const double d = SquaredDistance(ri, points.Row(j));
      sqdist.At(i, j) = d;
      sqdist.At(j, i) = d;
    }
  }

  // Symmetrized joint probabilities.
  Matrix p_cond = ConditionalAffinities(sqdist, perplexity);
  Matrix p(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      p.At(i, j) =
          std::max((p_cond.At(i, j) + p_cond.At(j, i)) / (2.0 * n), 1e-12);
    }
  }

  Rng rng(options.seed);
  const int d = options.output_dim;
  Matrix y(n, d, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < d; ++k) y.At(i, k) = rng.Normal(0.0, 1e-4);
  }
  Matrix velocity(n, d, 0.0);
  Matrix gains(n, d, 1.0);

  for (int iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < options.exaggeration_iters ? options.early_exaggeration : 1.0;
    const double momentum = iter < options.momentum_switch_iter
                                ? options.initial_momentum
                                : options.final_momentum;

    // Student-t affinities in the embedding.
    Matrix num(n, n, 0.0);
    double q_sum = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        double sq = 0.0;
        for (int k = 0; k < d; ++k) {
          const double diff = y.At(i, k) - y.At(j, k);
          sq += diff * diff;
        }
        const double v = 1.0 / (1.0 + sq);
        num.At(i, j) = v;
        num.At(j, i) = v;
        q_sum += 2.0 * v;
      }
    }
    if (q_sum <= 0.0) q_sum = 1e-300;

    // Gradient: 4 * sum_j (p_ij*ex - q_ij) * num_ij * (y_i - y_j).
    Matrix grad(n, d, 0.0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const double q = std::max(num.At(i, j) / q_sum, 1e-12);
        const double mult =
            4.0 * (exaggeration * p.At(i, j) - q) * num.At(i, j);
        for (int k = 0; k < d; ++k) {
          grad.At(i, k) += mult * (y.At(i, k) - y.At(j, k));
        }
      }
    }

    // Delta-bar-delta gains + momentum update.
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < d; ++k) {
        const bool same_sign =
            (grad.At(i, k) > 0.0) == (velocity.At(i, k) > 0.0);
        double& gain = gains.At(i, k);
        gain = same_sign ? std::max(gain * 0.8, 0.01) : gain + 0.2;
        velocity.At(i, k) = momentum * velocity.At(i, k) -
                            options.learning_rate * gain * grad.At(i, k);
        y.At(i, k) += velocity.At(i, k);
      }
    }

    // Recentre.
    for (int k = 0; k < d; ++k) {
      double mean = 0.0;
      for (int i = 0; i < n; ++i) mean += y.At(i, k);
      mean /= n;
      for (int i = 0; i < n; ++i) y.At(i, k) -= mean;
    }
  }
  return y;
}

}  // namespace gem::math

#ifndef GEM_MATH_EIGEN_H_
#define GEM_MATH_EIGEN_H_

#include "base/status.h"
#include "base/statusor.h"
#include "math/matrix.h"
#include "math/vec.h"

namespace gem::math {

/// Eigendecomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in descending order.
  Vec values;
  /// eigenvectors.Row(i) is the unit eigenvector for values[i].
  Matrix vectors;
};

/// Cyclic Jacobi eigensolver for a symmetric matrix. Used by classical
/// MDS. O(n^3) per sweep; fine for the few-hundred-point matrices GEM
/// produces. Returns InvalidArgument for a non-square input.
Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                int max_sweeps = 50,
                                                double tol = 1e-10);

}  // namespace gem::math

#endif  // GEM_MATH_EIGEN_H_

#ifndef GEM_MATH_METRICS_H_
#define GEM_MATH_METRICS_H_

#include <vector>

#include "math/vec.h"

namespace gem::math {

/// Binary confusion counts. "Positive" is whatever class the caller
/// designates: the paper reports both orientations (in-premises as
/// positive, and outside as positive).
struct ConfusionCounts {
  long tp = 0;
  long fp = 0;
  long tn = 0;
  long fn = 0;

  void Add(bool actual_positive, bool predicted_positive);

  /// TP / (TP + FP); 0 if the denominator is 0.
  double Precision() const;
  /// TP / (TP + FN); 0 if the denominator is 0.
  double Recall() const;
  /// Harmonic mean of precision and recall; 0 if both are 0.
  double F1() const;
  /// FP / (FP + TN); 0 if the denominator is 0.
  double FalsePositiveRate() const;
};

/// Precision/recall/F for both orientations, as reported in Tables I-II.
struct InOutMetrics {
  double precision_in = 0.0;
  double recall_in = 0.0;
  double f_in = 0.0;
  double precision_out = 0.0;
  double recall_out = 0.0;
  double f_out = 0.0;
};

/// Computes the six metrics from per-sample truths and predictions,
/// where true/predicted "true" means *inside* the geofence.
InOutMetrics ComputeInOutMetrics(const std::vector<bool>& actual_inside,
                                 const std::vector<bool>& predicted_inside);

/// One point on a ROC curve.
struct RocPoint {
  double threshold = 0.0;
  double tpr = 0.0;
  double fpr = 0.0;
};

/// Builds the ROC curve for scores where HIGHER score means MORE likely
/// positive. `is_positive[i]` labels scores[i]. Points are ordered from
/// (0,0) towards (1,1).
std::vector<RocPoint> RocCurve(const Vec& scores,
                               const std::vector<bool>& is_positive);

/// Area under the ROC curve via the Mann-Whitney statistic (ties count
/// half). Returns 0.5 when either class is empty.
double RocAuc(const Vec& scores, const std::vector<bool>& is_positive);

}  // namespace gem::math

#endif  // GEM_MATH_METRICS_H_

#ifndef GEM_MATH_RNG_H_
#define GEM_MATH_RNG_H_

#include <cstdint>
#include <vector>

namespace gem::math {

/// Deterministic pseudo-random number generator (xoshiro256++).
///
/// Every stochastic component in GEM takes an explicit Rng (or seed) so
/// experiments are reproducible run-to-run; nothing reads global entropy.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double UniformUnit();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be > 0.
  int UniformInt(int n);

  /// Uniform integer in [lo, hi] inclusive.
  int UniformIntRange(int lo, int hi);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Normal with given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
      const int j = UniformInt(i + 1);
      std::swap(v[i], v[j]);
    }
  }

  /// Spawns an independent child generator (useful to give each
  /// simulated user / repeat its own deterministic stream).
  Rng Split();

  /// Derives the seed of an independent stream `stream` of a logical
  /// generator family rooted at `seed` — the stream-splitting scheme
  /// parallel code uses to give each chunk / node / example its own
  /// deterministic generator without sharing any mutable state
  /// (an Rng(StreamSeed(s, a)) never correlates with
  /// Rng(StreamSeed(s, b)) for a != b: both words pass through
  /// SplitMix64's full avalanche).
  static uint64_t StreamSeed(uint64_t seed, uint64_t stream);

  /// Complete generator state, exposed so model snapshots can persist
  /// mid-stream generators and resume them bit-identically.
  struct State {
    uint64_t words[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State SaveState() const;
  void RestoreState(const State& state);

 private:
  uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace gem::math

#endif  // GEM_MATH_RNG_H_

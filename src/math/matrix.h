#ifndef GEM_MATH_MATRIX_H_
#define GEM_MATH_MATRIX_H_

#include <cstddef>
#include <vector>

#include "math/kernels.h"
#include "math/vec.h"

namespace gem::math {

class Rng;

/// Dense row-major matrix of doubles. Storage is a flat 32-byte-aligned
/// buffer (kernels::AlignedVec) so the SIMD kernels stream it from an
/// aligned base; the products below route through the dispatched
/// kernels in math/kernels.h.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& At(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  double At(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Pointer to the start of row r.
  double* RowPtr(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const double* RowPtr(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  /// Copies row r into a Vec.
  Vec Row(int r) const;

  /// Overwrites row r from v (v.size() must equal cols()).
  void SetRow(int r, const Vec& v);

  /// Sets all entries to value.
  void Fill(double value);

  /// Fills with i.i.d. uniform values in [-scale, scale].
  void FillUniform(Rng& rng, double scale);

  /// Fills with Glorot/Xavier uniform init: scale = sqrt(6/(rows+cols)).
  void FillGlorot(Rng& rng);

  /// y = M x  (x.size() == cols; returns size rows).
  Vec MatVec(const Vec& x) const;

  /// y = M^T x  (x.size() == rows; returns size cols).
  Vec MatTVec(const Vec& x) const;

  /// M += scale * (a outer b), with a.size()==rows, b.size()==cols.
  void AddOuter(const Vec& a, const Vec& b, double scale);

  /// M += scale * other (same shape).
  void AddScaled(const Matrix& other, double scale);

  /// Appends a row (v.size() must equal cols(); for an empty matrix the
  /// column count is taken from v).
  void AppendRow(const Vec& v);

  const kernels::AlignedVec& data() const { return data_; }
  kernels::AlignedVec& data() { return data_; }

 private:
  int rows_;
  int cols_;
  kernels::AlignedVec data_;
};

/// Returns C = A * B.
Matrix MatMul(const Matrix& a, const Matrix& b);

}  // namespace gem::math

#endif  // GEM_MATH_MATRIX_H_

#include "math/rng.h"

#include <cmath>

#include "base/check.h"

namespace gem::math {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

/// SplitMix64, used to seed the xoshiro state from a single value.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::UniformUnit() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformUnit();
}

int Rng::UniformInt(int n) {
  GEM_DCHECK(n > 0);
  return static_cast<int>(Next() % static_cast<uint64_t>(n));
}

int Rng::UniformIntRange(int lo, int hi) {
  GEM_DCHECK(hi >= lo);
  return lo + UniformInt(hi - lo + 1);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformUnit();
  while (u1 <= 1e-300) u1 = UniformUnit();
  const double u2 = UniformUnit();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformUnit() < p; }

Rng Rng::Split() { return Rng(Next()); }

uint64_t Rng::StreamSeed(uint64_t seed, uint64_t stream) {
  // Mix the stream id through one SplitMix64 round keyed off the root
  // seed; the golden-ratio multiplier decorrelates consecutive stream
  // ids before the avalanche.
  uint64_t state = seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0x6A09E667F3BCC909ULL);
  return SplitMix64(state);
}

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.words[i] = state_[i];
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

void Rng::RestoreState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace gem::math

#ifndef GEM_MATH_OPTIMIZER_H_
#define GEM_MATH_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "math/autograd.h"
#include "math/matrix.h"

namespace gem::math {

/// Adam hyperparameters (defaults follow the usual convention; the
/// paper's learning rate of 0.003 is plumbed through model configs).
struct AdamOptions {
  double learning_rate = 0.003;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// Adam over dense Parameters. Register every Parameter once; Step()
/// applies the update from accumulated gradients and zeroes them.
class Adam {
 public:
  explicit Adam(AdamOptions options = {}) : options_(options) {}

  /// Registers a parameter; the pointer must outlive the optimizer.
  void Register(Parameter* param);

  /// Applies one Adam update to all registered parameters, then zeroes
  /// their gradients.
  void Step();

  const AdamOptions& options() const { return options_; }

 private:
  struct Slot {
    Parameter* param;
    Matrix m;
    Matrix v;
  };

  AdamOptions options_;
  std::vector<Slot> slots_;
  long step_ = 0;
};

/// Sparse, per-row Adam for embedding tables: each row keeps its own
/// moment vectors and step counter so untouched rows are never scanned.
class RowAdam {
 public:
  RowAdam(int rows, int dim, AdamOptions options = {});

  /// Applies one Adam update to table row `row` from gradient g.
  void Update(Matrix& table, int row, const Vec& g);

  /// Extends the state for newly appended table rows.
  void Resize(int rows);

  int rows() const { return m_.rows(); }

 private:
  AdamOptions options_;
  Matrix m_;
  Matrix v_;
  std::vector<long> step_;
};

}  // namespace gem::math

#endif  // GEM_MATH_OPTIMIZER_H_

#include "math/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gem::math {

Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a_in,
                                                int max_sweeps, double tol) {
  if (a_in.rows() != a_in.cols()) {
    return Status::InvalidArgument("matrix must be square");
  }
  const int n = a_in.rows();
  Matrix a = a_in;                 // working copy, becomes diagonal
  Matrix v(n, n, 0.0);             // accumulated rotations (columns = vectors)
  for (int i = 0; i < n; ++i) v.At(i, i) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += a.At(p, q) * a.At(p, q);
    }
    if (off < tol * tol) break;

    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = a.At(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a.At(p, p);
        const double aqq = a.At(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (int k = 0; k < n; ++k) {
          const double akp = a.At(k, p);
          const double akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = a.At(p, k);
          const double aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        for (int k = 0; k < n; ++k) {
          const double vkp = v.At(k, p);
          const double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort by descending eigenvalue.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return a.At(x, x) > a.At(y, y); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    out.values[i] = a.At(order[i], order[i]);
    for (int k = 0; k < n; ++k) out.vectors.At(i, k) = v.At(k, order[i]);
  }
  return out;
}

}  // namespace gem::math

#ifndef GEM_MATH_AUTOGRAD_H_
#define GEM_MATH_AUTOGRAD_H_

#include <vector>

#include "math/matrix.h"
#include "math/vec.h"

namespace gem::math {

/// A trainable dense matrix with a gradient buffer. Shared across tapes;
/// gradients accumulate until ZeroGrad() (typically via an optimizer
/// step).
class Parameter {
 public:
  Parameter(int rows, int cols) : value(rows, cols), grad(rows, cols) {}

  void ZeroGrad() { grad.Fill(0.0); }

  Matrix value;
  Matrix grad;
};

/// Handle to a vector-valued node on a Tape.
using VarId = int;

/// Private gradient accumulator for Parameters. Backward(&sink) writes
/// parameter gradients here instead of the shared Parameter::grad, so
/// several threads can each run Backward on their own Tape + sink with
/// no write to shared state; the caller then folds the sinks into
/// Parameter::grad serially, in a fixed order, via FlushToParams()
/// (floating-point addition is not associative, so the fold order is
/// what makes the parallel loss gradient deterministic).
class ParamGradSink {
 public:
  /// This sink's buffer for param, zero-initialized to param's shape on
  /// first use.
  Matrix& GradFor(Parameter* param);

  /// Adds every buffered gradient into its Parameter::grad, in the
  /// order the parameters were first seen by this sink.
  void FlushToParams() const;

  /// Drops all buffers (keeps nothing allocated).
  void Clear() { grads_.clear(); }

  bool empty() const { return grads_.empty(); }

 private:
  std::vector<std::pair<Parameter*, Matrix>> grads_;
};

/// Minimal reverse-mode automatic differentiation over vector-valued
/// nodes. Supports exactly the operations the GEM models need: matrix-
/// vector products against Parameters, concatenation, convex/weighted
/// sums (neighborhood aggregation), ReLU/tanh, l2-normalization, inner
/// products, and two terminal losses (negative-sampling log-sigmoid and
/// MSE). Build a fresh graph per minibatch with Clear() + forward ops,
/// attach losses, then call Backward().
///
/// Gradients flow into Parameter::grad and into every node; leaf
/// gradients are read back via grad() (used for the per-node embedding
/// tables in BiSAGE/GraphSAGE).
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Drops all nodes and pending losses (Parameters are untouched).
  void Clear();

  /// Creates a leaf holding a copy of v.
  VarId Leaf(Vec v);

  /// y = param.value * x.
  VarId MatVec(Parameter* param, VarId x);

  /// y = [a; b].
  VarId Concat(VarId a, VarId b);

  /// y = sum_i coeffs[i] * inputs[i]. Coefficients are treated as
  /// constants (no gradient to coeffs), matching the paper's
  /// weight-proportional aggregator.
  VarId WeightedSum(const std::vector<VarId>& inputs, const Vec& coeffs);

  VarId Add(VarId a, VarId b);
  VarId Sub(VarId a, VarId b);
  VarId Relu(VarId x);
  VarId Tanh(VarId x);
  VarId Sigmoid(VarId x);

  /// y = x / max(||x||, eps). A zero vector passes through unchanged.
  VarId L2Normalize(VarId x);

  /// Size-1 node holding a . b.
  VarId Dot(VarId a, VarId b);

  /// Adds the loss term  -weight * log(sigmoid(sign * s))  where s is the
  /// (size-1) value of dot_var. Returns the term's value.
  double AddLogSigmoidLoss(VarId dot_var, double sign, double weight = 1.0);

  /// Adds the loss term  weight * 0.5 * ||value(v) - target||^2.
  /// Returns the term's value.
  double AddMseLoss(VarId v, const Vec& target, double weight = 1.0);

  /// Total of the loss terms added since the last Clear().
  double loss() const { return loss_; }

  /// Runs reverse-mode accumulation from all attached loss terms.
  /// With a sink, parameter gradients go to sink->GradFor(param)
  /// instead of Parameter::grad (Parameter::value is only read), which
  /// is what makes concurrent Backward calls over shared Parameters
  /// safe; node gradients always stay on this tape either way.
  void Backward() { Backward(nullptr); }
  void Backward(ParamGradSink* sink);

  const Vec& value(VarId id) const;
  const Vec& grad(VarId id) const;

  int size() const { return static_cast<int>(nodes_.size()); }

 private:
  enum class Op {
    kLeaf,
    kMatVec,
    kConcat,
    kWeightedSum,
    kAdd,
    kSub,
    kRelu,
    kTanh,
    kSigmoid,
    kL2Normalize,
    kDot,
  };

  struct Node {
    Op op;
    VarId a = -1;
    VarId b = -1;
    std::vector<VarId> inputs;  // kWeightedSum only
    Vec coeffs;                 // kWeightedSum only
    Parameter* param = nullptr; // kMatVec only
    Vec value;
    Vec grad;
  };

  struct LogSigmoidTerm {
    VarId var;
    double sign;
    double weight;
  };

  struct MseTerm {
    VarId var;
    Vec target;
    double weight;
  };

  VarId Push(Node node);

  std::vector<Node> nodes_;
  std::vector<LogSigmoidTerm> log_sigmoid_terms_;
  std::vector<MseTerm> mse_terms_;
  double loss_ = 0.0;

  static constexpr double kNormEps = 1e-12;
};

}  // namespace gem::math

#endif  // GEM_MATH_AUTOGRAD_H_

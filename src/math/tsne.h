#ifndef GEM_MATH_TSNE_H_
#define GEM_MATH_TSNE_H_

#include <vector>

#include "base/status.h"
#include "base/statusor.h"
#include "math/matrix.h"
#include "math/rng.h"
#include "math/vec.h"

namespace gem::math {

/// Options for the exact (O(n^2)) t-SNE used to reproduce Figure 6.
struct TsneOptions {
  int output_dim = 2;
  double perplexity = 30.0;
  int iterations = 500;
  double learning_rate = 100.0;
  double early_exaggeration = 12.0;
  int exaggeration_iters = 100;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  int momentum_switch_iter = 250;
  uint64_t seed = 7;
};

/// Embeds `points` (rows) into options.output_dim dimensions with
/// van der Maaten & Hinton's t-SNE (exact pairwise version, suitable
/// for the few hundred embeddings GEM visualizes). Returns a matrix
/// with one low-dimensional row per input row.
///
/// Returns InvalidArgument when there are fewer than 3 points or the
/// perplexity is infeasible for the point count.
Result<Matrix> Tsne(const Matrix& points, const TsneOptions& options = {});

}  // namespace gem::math

#endif  // GEM_MATH_TSNE_H_

#ifndef GEM_MATH_VEC_H_
#define GEM_MATH_VEC_H_

#include <cstddef>
#include <vector>

namespace gem::math {

/// Dense vector of doubles. All GEM numeric code uses double precision;
/// embedding dimensions are small (<= a few hundred) so the simplicity
/// outweighs any float savings.
using Vec = std::vector<double>;

/// Returns the inner product a . b. Sizes must match.
double Dot(const Vec& a, const Vec& b);

/// Returns the l2 norm ||a||.
double Norm2(const Vec& a);

/// Returns the squared l2 distance ||a - b||^2.
double SquaredDistance(const Vec& a, const Vec& b);

/// Returns the l2 distance ||a - b||.
double Distance(const Vec& a, const Vec& b);

/// Cosine distance 1 - (a.b)/(||a|| ||b||); returns 1 when either norm
/// is zero (maximally dissimilar by convention).
double CosineDistance(const Vec& a, const Vec& b);

/// a += scale * b (in place). Sizes must match.
void AddScaled(Vec& a, const Vec& b, double scale);

/// a *= scale (in place).
void Scale(Vec& a, double scale);

/// Normalizes a to unit l2 norm in place; leaves a zero vector untouched.
void NormalizeL2(Vec& a);

/// Returns {a; b} concatenated.
Vec Concat(const Vec& a, const Vec& b);

/// Returns a - b.
Vec Sub(const Vec& a, const Vec& b);

/// Returns element-wise mean of rows; all rows must share a size.
/// Returns an empty Vec when rows is empty.
Vec MeanRows(const std::vector<Vec>& rows);

}  // namespace gem::math

#endif  // GEM_MATH_VEC_H_

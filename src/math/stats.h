#ifndef GEM_MATH_STATS_H_
#define GEM_MATH_STATS_H_

#include <vector>

#include "math/vec.h"

namespace gem::math {

/// Arithmetic mean; 0 for an empty input.
double Mean(const Vec& values);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double StdDev(const Vec& values);

/// Minimum; values must be non-empty.
double Min(const Vec& values);

/// Maximum; values must be non-empty.
double Max(const Vec& values);

/// Linear-interpolated percentile, p in [0, 100]; values must be
/// non-empty (input copied and sorted internally).
double Percentile(const Vec& values, double p);

/// Min-max normalizes values into [0, 1] in place, using the range of
/// the input itself. If all values are equal they all map to 0.
void MinMaxNormalize(Vec& values);

/// Summary used for mean (min, max) table cells.
struct Summary {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes mean/min/max of values; values must be non-empty.
Summary Summarize(const Vec& values);

}  // namespace gem::math

#endif  // GEM_MATH_STATS_H_

#ifndef GEM_FAULT_FAILPOINT_H_
#define GEM_FAULT_FAILPOINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

/// gem::fault — deterministic failpoint injection.
///
/// A failpoint is a named hook (`GEM_FAILPOINT("serve.snapshot.read")`)
/// compiled into a fallible code path. In a normal build the macros
/// expand to nothing — release binaries carry no failpoint branches.
/// When the tree is configured with -DGEM_ENABLE_FAILPOINTS=ON (the CI
/// test builds), each hook consults a process-wide registry: a point
/// whose policy fires optionally sleeps (latency injection) and then
/// yields an error Status that the enclosing function returns, exactly
/// as if the real operation had failed. Chaos tests use this to
/// provoke the failure paths production will eventually hit — torn
/// snapshot reads, overloaded queues, slow workers, corrupt CSV rows —
/// on a deterministic, seeded schedule.
///
/// Point naming scheme: `<layer>.<component>.<operation>`, e.g.
/// `serve.snapshot.read`, `serve.engine.admit`, `base.thread_pool.task`,
/// `rf.record_io.row` (see DESIGN.md §9 for the full inventory).
///
/// Policy grammar (Configure):
///
///   spec    := entry { ';' entry }
///   entry   := point '=' policy
///   policy  := 'off' | trigger { '/' arg }
///   trigger := 'once' | 'always' | 'every=' N | 'prob=' P [ '@' SEED ]
///   arg     := code | 'delay=' MS
///   code    := 'ok' | 'invalid_argument' | 'not_found'
///            | 'failed_precondition' | 'out_of_range' | 'internal'
///            | 'unavailable' | 'data_loss' | 'deadline_exceeded'
///
/// The default payload is `internal` with no delay; `ok` makes a point
/// inject latency only. `every=N` fires on the Nth, 2Nth, ... hit;
/// `prob=P@SEED` flips a deterministic seeded coin per hit, so a chaos
/// schedule replays bit-identically for a fixed seed. Examples:
///
///   serve.snapshot.read=once/unavailable
///   serve.engine.process=prob=0.05@42/unavailable/delay=2
///   base.thread_pool.task=every=100/delay=5/ok

namespace gem::fault {

/// True when the library was built with GEM_ENABLE_FAILPOINTS. The
/// runtime API below still exists in a release build, but Configure
/// refuses (kFailedPrecondition) so a --failpoints flag cannot
/// silently do nothing.
bool CompiledIn();

/// Parses `spec` (grammar above) and installs the policies, replacing
/// any previous policy for the named points. kInvalidArgument pinpoints
/// the first malformed entry; kFailedPrecondition when failpoints are
/// compiled out.
Status Configure(const std::string& spec);

/// Every point back to off; hit/trigger counters cleared.
void Reset();

/// Evaluates a point: returns Ok when the point is unconfigured or its
/// policy does not fire; otherwise sleeps the configured delay and
/// returns the configured payload (Ok for delay-only points). Called
/// via the GEM_FAILPOINT* macros — instrumented code should not call
/// this directly, or the site survives in release builds.
Status Evaluate(std::string_view point);

/// Times a configured point was evaluated / fired (0 for unknown
/// points). Test-only introspection.
uint64_t HitCount(const std::string& point);
uint64_t TriggerCount(const std::string& point);

/// Sorted names of the currently configured (non-off) points.
std::vector<std::string> ConfiguredPoints();

}  // namespace gem::fault

#if defined(GEM_ENABLE_FAILPOINTS) && GEM_ENABLE_FAILPOINTS

/// Evaluates the point and, when it fires, runs `body` with the
/// injected error bound to `failpoint_status`. `body` decides how the
/// failure surfaces (assign it to a response, return it, ...).
#define GEM_FAILPOINT_ON(point, body)                              \
  if (const ::gem::Status failpoint_status =                       \
          ::gem::fault::Evaluate(point);                           \
      !failpoint_status.ok())                                      \
  body

/// The common case: return the injected Status from the enclosing
/// function (which must return Status or StatusOr<T>).
#define GEM_FAILPOINT(point) \
  GEM_FAILPOINT_ON(point, { return failpoint_status; })

/// Evaluate for side effects only (latency injection); any error
/// payload is ignored. For sites that cannot fail, like the thread
/// pool's task dispatch.
#define GEM_FAILPOINT_EVAL(point)                \
  do {                                           \
    (void)::gem::fault::Evaluate(point);         \
  } while (0)

#else

#define GEM_FAILPOINT_ON(point, body)
#define GEM_FAILPOINT(point) \
  do {                       \
  } while (0)
#define GEM_FAILPOINT_EVAL(point) \
  do {                            \
  } while (0)

#endif  // GEM_ENABLE_FAILPOINTS

#endif  // GEM_FAULT_FAILPOINT_H_

#include "fault/failpoint.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

namespace gem::fault {
namespace {

#if defined(GEM_ENABLE_FAILPOINTS) && GEM_ENABLE_FAILPOINTS
constexpr bool kCompiledIn = true;
#else
constexpr bool kCompiledIn = false;
#endif

enum class Trigger { kOnce, kAlways, kEveryNth, kProbability };

struct Policy {
  Trigger trigger = Trigger::kAlways;
  uint64_t every_n = 1;
  double probability = 0.0;
  uint64_t seed = 0;
  /// kOk = delay-only injection.
  StatusCode code = StatusCode::kInternal;
  long delay_ms = 0;
};

struct PointState {
  Policy policy;
  uint64_t hits = 0;
  uint64_t triggers = 0;
  /// splitmix64 stream for kProbability, seeded at Configure time so a
  /// fixed seed replays the exact same fire schedule.
  uint64_t rng_state = 0;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, PointState> points;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Lock-free guard consulted on every Evaluate: instrumented hot paths
/// (thread-pool dispatch, per-row parsing) pay one relaxed load until a
/// chaos schedule is actually installed.
std::atomic<int>& ConfiguredCount() {
  static std::atomic<int> count{0};
  return count;
}

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

const std::pair<const char*, StatusCode> kCodeNames[] = {
    {"ok", StatusCode::kOk},
    {"invalid_argument", StatusCode::kInvalidArgument},
    {"not_found", StatusCode::kNotFound},
    {"failed_precondition", StatusCode::kFailedPrecondition},
    {"out_of_range", StatusCode::kOutOfRange},
    {"internal", StatusCode::kInternal},
    {"unavailable", StatusCode::kUnavailable},
    {"data_loss", StatusCode::kDataLoss},
    {"deadline_exceeded", StatusCode::kDeadlineExceeded},
};

std::optional<StatusCode> CodeFromName(const std::string& name) {
  for (const auto& [text, code] : kCodeNames) {
    if (name == text) return code;
  }
  return std::nullopt;
}

/// Full-string numeric parses, mirroring rf::LoadRecordsCsv: trailing
/// garbage in a spec is a configuration error, not a truncated value.
bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t pos = s.find(sep, start);
    const size_t end = pos == std::string::npos ? s.size() : pos;
    parts.push_back(s.substr(start, end - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return parts;
}

Status BadEntry(const std::string& entry, const std::string& why) {
  return Status::InvalidArgument("failpoint spec '" + entry + "': " + why);
}

/// Parses the policy half of an entry ("off" is handled by the
/// caller): trigger token first, then code / delay args in any order.
Status ParsePolicy(const std::string& entry,
                   const std::vector<std::string>& tokens, Policy* out) {
  const std::string& trigger = tokens[0];
  if (trigger == "once") {
    out->trigger = Trigger::kOnce;
  } else if (trigger == "always") {
    out->trigger = Trigger::kAlways;
  } else if (trigger.rfind("every=", 0) == 0) {
    out->trigger = Trigger::kEveryNth;
    if (!ParseU64(trigger.substr(6), &out->every_n) || out->every_n < 1) {
      return BadEntry(entry, "every= needs a positive integer");
    }
  } else if (trigger.rfind("prob=", 0) == 0) {
    out->trigger = Trigger::kProbability;
    std::string prob = trigger.substr(5);
    const size_t at = prob.find('@');
    if (at != std::string::npos) {
      if (!ParseU64(prob.substr(at + 1), &out->seed)) {
        return BadEntry(entry, "prob=P@SEED needs an integer seed");
      }
      prob.resize(at);
    }
    if (!ParseDouble(prob, &out->probability) || out->probability < 0.0 ||
        out->probability > 1.0) {
      return BadEntry(entry, "prob= needs a probability in [0, 1]");
    }
  } else {
    return BadEntry(entry, "unknown trigger '" + trigger +
                               "' (want off, once, always, every=N or "
                               "prob=P[@SEED])");
  }

  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& arg = tokens[i];
    if (arg.rfind("delay=", 0) == 0) {
      uint64_t ms = 0;
      if (!ParseU64(arg.substr(6), &ms) || ms > 60'000) {
        return BadEntry(entry, "delay= needs milliseconds in [0, 60000]");
      }
      out->delay_ms = static_cast<long>(ms);
      continue;
    }
    const std::optional<StatusCode> code = CodeFromName(arg);
    if (!code.has_value()) {
      return BadEntry(entry, "unknown status code '" + arg + "'");
    }
    out->code = *code;
  }
  return Status::Ok();
}

const char* CodeLabel(StatusCode code) {
  for (const auto& [text, named] : kCodeNames) {
    if (named == code) return text;
  }
  return "internal";
}

}  // namespace

bool CompiledIn() { return kCompiledIn; }

Status Configure(const std::string& spec) {
  if (!kCompiledIn) {
    return Status::FailedPrecondition(
        "failpoints are compiled out; rebuild with "
        "-DGEM_ENABLE_FAILPOINTS=ON");
  }
  // Parse the whole spec before touching the registry, so a malformed
  // tail never leaves a half-installed schedule.
  std::vector<std::pair<std::string, std::optional<Policy>>> parsed;
  for (const std::string& entry : Split(spec, ';')) {
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return BadEntry(entry, "want point=policy");
    }
    const std::string point = entry.substr(0, eq);
    const std::vector<std::string> tokens = Split(entry.substr(eq + 1), '/');
    if (tokens[0].empty()) return BadEntry(entry, "missing policy");
    if (tokens[0] == "off") {
      if (tokens.size() > 1) return BadEntry(entry, "off takes no arguments");
      parsed.emplace_back(point, std::nullopt);
      continue;
    }
    Policy policy;
    const Status status = ParsePolicy(entry, tokens, &policy);
    if (!status.ok()) return status;
    parsed.emplace_back(point, policy);
  }

  Registry& registry = GetRegistry();
  std::lock_guard lock(registry.mutex);
  for (auto& [point, policy] : parsed) {
    if (!policy.has_value()) {
      registry.points.erase(point);
      continue;
    }
    PointState state;
    state.policy = *policy;
    state.rng_state = policy->seed;
    registry.points[point] = state;
  }
  ConfiguredCount().store(static_cast<int>(registry.points.size()),
                          std::memory_order_relaxed);
  return Status::Ok();
}

void Reset() {
  Registry& registry = GetRegistry();
  std::lock_guard lock(registry.mutex);
  registry.points.clear();
  ConfiguredCount().store(0, std::memory_order_relaxed);
}

Status Evaluate(std::string_view point) {
  if (ConfiguredCount().load(std::memory_order_relaxed) == 0) {
    return Status::Ok();
  }
  Policy fired;
  bool fire = false;
  {
    Registry& registry = GetRegistry();
    std::lock_guard lock(registry.mutex);
    const auto it = registry.points.find(std::string(point));
    if (it == registry.points.end()) return Status::Ok();
    PointState& state = it->second;
    ++state.hits;
    switch (state.policy.trigger) {
      case Trigger::kOnce:
        fire = state.triggers == 0;
        break;
      case Trigger::kAlways:
        fire = true;
        break;
      case Trigger::kEveryNth:
        fire = state.hits % state.policy.every_n == 0;
        break;
      case Trigger::kProbability:
        fire = static_cast<double>(SplitMix64(state.rng_state) >> 11) *
                   0x1.0p-53 <
               state.policy.probability;
        break;
    }
    if (fire) {
      ++state.triggers;
      fired = state.policy;
    }
  }
  if (!fire) return Status::Ok();
  // Sleep outside the registry lock so one slow point never stalls
  // evaluation of the others.
  if (fired.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fired.delay_ms));
  }
  if (fired.code == StatusCode::kOk) return Status::Ok();
  return Status(fired.code, "injected by failpoint '" + std::string(point) +
                                "' (" + CodeLabel(fired.code) + ")");
}

uint64_t HitCount(const std::string& point) {
  Registry& registry = GetRegistry();
  std::lock_guard lock(registry.mutex);
  const auto it = registry.points.find(point);
  return it == registry.points.end() ? 0 : it->second.hits;
}

uint64_t TriggerCount(const std::string& point) {
  Registry& registry = GetRegistry();
  std::lock_guard lock(registry.mutex);
  const auto it = registry.points.find(point);
  return it == registry.points.end() ? 0 : it->second.triggers;
}

std::vector<std::string> ConfiguredPoints() {
  std::vector<std::string> names;
  Registry& registry = GetRegistry();
  std::lock_guard lock(registry.mutex);
  names.reserve(registry.points.size());
  for (const auto& [name, state] : registry.points) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace gem::fault

#ifndef GEM_SERVE_WIRE_H_
#define GEM_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "math/matrix.h"
#include "math/vec.h"

namespace gem::serve {

/// Endian-stable binary primitives for the snapshot format
/// (serve/snapshot.cc). Everything is encoded little-endian byte by
/// byte, so snapshots written on any host read back on any other;
/// doubles travel as their IEEE-754 bit pattern (bit-exact round
/// trips, the contract the snapshot property tests assert).

/// Appends primitives to a growing byte buffer.
class WireWriter {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF64(double v);
  /// u64 length + raw bytes.
  void PutString(std::string_view s);
  /// u64 length + f64 elements.
  void PutVec(const math::Vec& v);
  /// u32 rows, u32 cols, row-major f64 elements.
  void PutMatrix(const math::Matrix& m);

  const std::string& bytes() const { return bytes_; }
  std::string TakeBytes() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Bounds-checked sequential reader over a byte buffer. Every read
/// returns a Status instead of touching out-of-range memory, so a
/// truncated or bit-flipped snapshot fails cleanly (never UB).
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  Status GetU8(uint8_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetI32(int32_t* out);
  Status GetI64(int64_t* out);
  Status GetF64(double* out);
  Status GetString(std::string* out);
  Status GetVec(math::Vec* out);
  Status GetMatrix(math::Matrix* out);

  size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  Status Need(size_t n);

  std::string_view bytes_;
  size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib one) of a byte span. Each
/// snapshot section carries one so a flipped payload byte is detected
/// before any state is rebuilt from it.
uint32_t Crc32(std::string_view bytes);

}  // namespace gem::serve

#endif  // GEM_SERVE_WIRE_H_

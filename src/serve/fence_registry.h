#ifndef GEM_SERVE_FENCE_REGISTRY_H_
#define GEM_SERVE_FENCE_REGISTRY_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"
#include "core/gem.h"
#include "serve/snapshot.h"

namespace gem::serve {

/// One loaded fence: a tenant's trained model plus the mutex that
/// serializes access to it. core::Gem::Infer mutates shared state on
/// every call — the bipartite graph grows inductively and the detector
/// may absorb the embedding — so ALL model calls must hold `mutex`;
/// concurrency in the serving engine comes from running many fences in
/// parallel, not from sharing one.
struct Fence {
  Fence(std::string id_in, uint64_t generation_in, core::Gem gem_in)
      : id(std::move(id_in)),
        generation(generation_in),
        gem(std::move(gem_in)) {}

  const std::string id;
  /// Bumped each time the fence id is (re)installed; lets callers
  /// observe that a live reload swapped the model under them.
  const uint64_t generation;
  std::mutex mutex;
  core::Gem gem;
};

/// Sharded fence-id -> model registry. Lookups take a shard-local
/// shared lock (concurrent readers never contend across shards);
/// install/unload take the shard's exclusive lock. Entries are handed
/// out as shared_ptr so an in-flight request keeps serving against the
/// model it resolved even while a reload replaces or removes it — a
/// live reload never blocks on draining traffic.
class FenceRegistry {
 public:
  explicit FenceRegistry(int num_shards = 16);

  /// Inserts or replaces (live reload) the fence. The model must be
  /// trained. Returns the installed generation (1 for a first install).
  Result<uint64_t> Install(const std::string& fence_id, core::Gem gem);

  /// Loads a snapshot file (retrying transient failures per `retry` —
  /// see LoadSnapshotWithRetry) and installs it under `fence_id`.
  /// Degrades gracefully: when the load fails for good, the previously
  /// installed generation (if any) keeps serving untouched and
  /// gem_serve_reload_failures_total is incremented.
  Result<uint64_t> InstallFromSnapshot(const std::string& fence_id,
                                       const std::string& path,
                                       const RetryOptions& retry = {});

  /// Removes the fence; in-flight holders finish undisturbed.
  Status Unload(const std::string& fence_id);

  /// nullptr when the fence is not loaded.
  std::shared_ptr<Fence> Find(const std::string& fence_id) const;

  /// Sorted ids of all loaded fences.
  std::vector<std::string> FenceIds() const;

  size_t size() const;

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::string, std::shared_ptr<Fence>> fences;
  };

  Shard& ShardFor(const std::string& fence_id) const;

  /// Fixed at construction; never resized (Shard is not movable).
  mutable std::vector<Shard> shards_;
};

}  // namespace gem::serve

#endif  // GEM_SERVE_FENCE_REGISTRY_H_

#include "serve/fence_registry.h"

#include <algorithm>
#include <functional>

#include "base/check.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "serve/snapshot.h"

namespace gem::serve {
namespace {

obs::Gauge& FenceGauge() {
  static obs::Gauge& fences =
      obs::MetricsRegistry::Get().GetGauge("gem_serve_fences");
  return fences;
}

obs::Counter& InstallCounter() {
  static obs::Counter& installs =
      obs::MetricsRegistry::Get().GetCounter("gem_serve_installs_total");
  return installs;
}

/// phase = "reload" when the fence id was already serving (the failure
/// left an old generation up), "initial" for a first install.
obs::Counter& ReloadFailureCounter(const char* phase) {
  return obs::MetricsRegistry::Get().GetCounter(
      "gem_serve_reload_failures_total", {{"phase", phase}});
}

}  // namespace

FenceRegistry::FenceRegistry(int num_shards)
    : shards_(static_cast<size_t>(num_shards)) {
  GEM_CHECK(num_shards >= 1);
}

FenceRegistry::Shard& FenceRegistry::ShardFor(
    const std::string& fence_id) const {
  return shards_[std::hash<std::string>{}(fence_id) % shards_.size()];
}

Result<uint64_t> FenceRegistry::Install(const std::string& fence_id,
                                        core::Gem gem) {
  if (fence_id.empty()) {
    return Status::InvalidArgument("fence id must be non-empty");
  }
  if (!gem.trained()) {
    return Status::FailedPrecondition("cannot install an untrained model");
  }
  Shard& shard = ShardFor(fence_id);
  std::shared_ptr<Fence> replaced;  // destroyed outside the lock
  uint64_t generation = 1;
  {
    std::unique_lock lock(shard.mutex);
    auto it = shard.fences.find(fence_id);
    if (it != shard.fences.end()) {
      generation = it->second->generation + 1;
      replaced = std::move(it->second);
      it->second =
          std::make_shared<Fence>(fence_id, generation, std::move(gem));
    } else {
      shard.fences.emplace(fence_id, std::make_shared<Fence>(
                                         fence_id, generation,
                                         std::move(gem)));
    }
  }
  InstallCounter().Increment();
  FenceGauge().Set(static_cast<double>(size()));
  return generation;
}

Result<uint64_t> FenceRegistry::InstallFromSnapshot(
    const std::string& fence_id, const std::string& path,
    const RetryOptions& retry) {
  const char* phase = Find(fence_id) != nullptr ? "reload" : "initial";
  StatusOr<core::Gem> gem = [&]() -> StatusOr<core::Gem> {
    GEM_FAILPOINT("serve.registry.reload");
    return LoadSnapshotWithRetry(path, retry);
  }();
  if (!gem.ok()) {
    // Graceful degradation: the map is untouched, so an existing
    // generation keeps serving; only the metric records the failure.
    ReloadFailureCounter(phase).Increment();
    return gem.status();
  }
  return Install(fence_id, std::move(gem).value());
}

Status FenceRegistry::Unload(const std::string& fence_id) {
  Shard& shard = ShardFor(fence_id);
  std::shared_ptr<Fence> removed;  // destroyed outside the lock
  {
    std::unique_lock lock(shard.mutex);
    auto it = shard.fences.find(fence_id);
    if (it == shard.fences.end()) {
      return Status::NotFound("fence '" + fence_id + "' is not loaded");
    }
    removed = std::move(it->second);
    shard.fences.erase(it);
  }
  FenceGauge().Set(static_cast<double>(size()));
  return Status::Ok();
}

std::shared_ptr<Fence> FenceRegistry::Find(const std::string& fence_id) const {
  const Shard& shard = ShardFor(fence_id);
  std::shared_lock lock(shard.mutex);
  const auto it = shard.fences.find(fence_id);
  return it == shard.fences.end() ? nullptr : it->second;
}

std::vector<std::string> FenceRegistry::FenceIds() const {
  std::vector<std::string> ids;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    for (const auto& [id, fence] : shard.fences) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t FenceRegistry::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    total += shard.fences.size();
  }
  return total;
}

}  // namespace gem::serve

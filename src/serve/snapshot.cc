#include "serve/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "serve/wire.h"

namespace gem::serve {
namespace {

constexpr char kMagic[8] = {'G', 'E', 'M', 'S', 'N', 'A', 'P', '\0'};

enum SectionTag : uint32_t {
  kConfigTag = 1,
  kGraphTag = 2,
  kEmbedderTag = 3,
  kDetectorTag = 4,
};

void PutRngState(WireWriter& w, const math::Rng::State& state) {
  for (const uint64_t word : state.words) w.PutU64(word);
  w.PutF64(state.cached_normal);
  w.PutU8(state.has_cached_normal ? 1 : 0);
}

Status GetRngState(WireReader& r, math::Rng::State* out) {
  for (uint64_t& word : out->words) {
    Status status = r.GetU64(&word);
    if (!status.ok()) return status;
  }
  Status status = r.GetF64(&out->cached_normal);
  if (!status.ok()) return status;
  uint8_t flag;
  status = r.GetU8(&flag);
  if (!status.ok()) return status;
  out->has_cached_normal = flag != 0;
  return Status::Ok();
}

void PutIntVec(WireWriter& w, const std::vector<int>& v) {
  w.PutU64(v.size());
  for (const int x : v) w.PutI32(x);
}

Status GetIntVec(WireReader& r, std::vector<int>* out) {
  uint64_t n;
  Status status = r.GetU64(&n);
  if (!status.ok()) return status;
  if (n > r.remaining() / 4) {
    return Status::DataLoss("int vector length exceeds payload");
  }
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    int32_t x;
    status = r.GetI32(&x);
    if (!status.ok()) return status;
    out->push_back(x);
  }
  return Status::Ok();
}

// --- Config section -------------------------------------------------

std::string EncodeConfig(const core::GemConfig& config) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(config.edge_weight.kind));
  w.PutF64(config.edge_weight.offset_c);
  w.PutF64(config.edge_weight.exp_scale);

  const embed::BiSageConfig& b = config.bisage;
  w.PutI32(b.dimension);
  w.PutI32(b.num_layers);
  PutIntVec(w, b.fanouts);
  w.PutI32(b.walks_per_node);
  w.PutI32(b.walk_length);
  w.PutI32(b.epochs);
  w.PutI32(b.num_negatives);
  w.PutF64(b.learning_rate);
  w.PutI32(b.batch_pairs);
  PutIntVec(w, b.inference_fanouts);
  w.PutU8(b.use_edge_weights ? 1 : 0);
  w.PutI32(b.min_mac_degree);
  w.PutU64(b.seed);

  const detect::EnhancedHbosOptions& d = config.detector;
  w.PutI32(d.bins);
  w.PutF64(d.temperature);
  w.PutF64(d.tau_upper);
  w.PutF64(d.tau_lower);
  w.PutU8(d.auto_calibrate ? 1 : 0);
  w.PutI32(d.calibration_folds);
  w.PutF64(d.calibration_upper_percentile);
  w.PutF64(d.calibration_spread_factor);
  w.PutF64(d.calibration_lower_percentile);
  w.PutI64(d.max_retained_samples);

  w.PutU8(config.online_update ? 1 : 0);
  return w.TakeBytes();
}

Status DecodeConfig(std::string_view payload, core::GemConfig* out) {
  WireReader r(payload);
  uint32_t kind;
  uint8_t flag;
  Status status = r.GetU32(&kind);
  if (!status.ok()) return status;
  if (kind > static_cast<uint32_t>(graph::WeightKind::kSquaredOffset)) {
    return Status::InvalidArgument("config: unknown edge-weight kind");
  }
  out->edge_weight.kind = static_cast<graph::WeightKind>(kind);
  if (!(status = r.GetF64(&out->edge_weight.offset_c)).ok()) return status;
  if (!(status = r.GetF64(&out->edge_weight.exp_scale)).ok()) return status;

  embed::BiSageConfig& b = out->bisage;
  if (!(status = r.GetI32(&b.dimension)).ok()) return status;
  if (!(status = r.GetI32(&b.num_layers)).ok()) return status;
  if (!(status = GetIntVec(r, &b.fanouts)).ok()) return status;
  if (!(status = r.GetI32(&b.walks_per_node)).ok()) return status;
  if (!(status = r.GetI32(&b.walk_length)).ok()) return status;
  if (!(status = r.GetI32(&b.epochs)).ok()) return status;
  if (!(status = r.GetI32(&b.num_negatives)).ok()) return status;
  if (!(status = r.GetF64(&b.learning_rate)).ok()) return status;
  if (!(status = r.GetI32(&b.batch_pairs)).ok()) return status;
  if (!(status = GetIntVec(r, &b.inference_fanouts)).ok()) return status;
  if (!(status = r.GetU8(&flag)).ok()) return status;
  b.use_edge_weights = flag != 0;
  if (!(status = r.GetI32(&b.min_mac_degree)).ok()) return status;
  if (!(status = r.GetU64(&b.seed)).ok()) return status;
  // Basic plausibility bounds on persisted bytes; full semantic
  // validation (BiSageConfig::Validate) runs in Gem::FromParts.
  if (b.dimension < 1 || b.dimension > 65536) {
    return Status::InvalidArgument("config: implausible embedding dimension");
  }
  if (b.num_layers < 1 || b.num_layers > 64 ||
      static_cast<int>(b.fanouts.size()) != b.num_layers ||
      (!b.inference_fanouts.empty() &&
       static_cast<int>(b.inference_fanouts.size()) != b.num_layers)) {
    return Status::InvalidArgument("config: inconsistent layer layout");
  }

  detect::EnhancedHbosOptions& d = out->detector;
  if (!(status = r.GetI32(&d.bins)).ok()) return status;
  if (!(status = r.GetF64(&d.temperature)).ok()) return status;
  if (!(status = r.GetF64(&d.tau_upper)).ok()) return status;
  if (!(status = r.GetF64(&d.tau_lower)).ok()) return status;
  if (!(status = r.GetU8(&flag)).ok()) return status;
  d.auto_calibrate = flag != 0;
  if (!(status = r.GetI32(&d.calibration_folds)).ok()) return status;
  if (!(status = r.GetF64(&d.calibration_upper_percentile)).ok()) {
    return status;
  }
  if (!(status = r.GetF64(&d.calibration_spread_factor)).ok()) return status;
  if (!(status = r.GetF64(&d.calibration_lower_percentile)).ok()) {
    return status;
  }
  int64_t max_retained;
  if (!(status = r.GetI64(&max_retained)).ok()) return status;
  d.max_retained_samples = static_cast<long>(max_retained);

  if (!(status = r.GetU8(&flag)).ok()) return status;
  out->online_update = flag != 0;
  return Status::Ok();
}

// --- Graph section --------------------------------------------------

std::string EncodeGraph(const graph::BipartiteGraph& g) {
  WireWriter w;
  const int n = g.num_nodes();
  w.PutU32(static_cast<uint32_t>(n));
  for (graph::NodeId id = 0; id < n; ++id) {
    w.PutU8(g.type(id) == graph::NodeType::kMac ? 1 : 0);
  }
  for (graph::NodeId id = 0; id < n; ++id) {
    const auto& neighbors = g.neighbors(id);
    w.PutU64(neighbors.size());
    for (const graph::Neighbor& nb : neighbors) {
      w.PutU32(static_cast<uint32_t>(nb.node));
      w.PutF64(nb.weight);
    }
  }
  // Canonical order (by node id) so identical models always encode to
  // identical bytes — unordered_map iteration order is not stable
  // across rebuilds of the index.
  std::vector<std::pair<graph::NodeId, std::string>> macs;
  macs.reserve(g.mac_index().size());
  for (const auto& [mac, id] : g.mac_index()) macs.emplace_back(id, mac);
  std::sort(macs.begin(), macs.end());
  w.PutU64(macs.size());
  for (const auto& [id, mac] : macs) {
    w.PutString(mac);
    w.PutU32(static_cast<uint32_t>(id));
  }
  return w.TakeBytes();
}

Status DecodeGraph(std::string_view payload,
                   const graph::EdgeWeightConfig& weight_config,
                   Result<graph::BipartiteGraph>* out) {
  WireReader r(payload);
  uint32_t n;
  Status status = r.GetU32(&n);
  if (!status.ok()) return status;
  if (n > r.remaining()) {
    return Status::DataLoss("graph: node count exceeds payload");
  }
  std::vector<graph::NodeType> types;
  types.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t t;
    if (!(status = r.GetU8(&t)).ok()) return status;
    if (t > 1) return Status::InvalidArgument("graph: unknown node type");
    types.push_back(t == 1 ? graph::NodeType::kMac
                           : graph::NodeType::kRecord);
  }
  std::vector<std::vector<graph::Neighbor>> adjacency(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t degree;
    if (!(status = r.GetU64(&degree)).ok()) return status;
    if (degree > r.remaining() / 12) {
      return Status::DataLoss("graph: degree exceeds payload");
    }
    adjacency[i].reserve(degree);
    for (uint64_t e = 0; e < degree; ++e) {
      uint32_t node;
      double weight;
      if (!(status = r.GetU32(&node)).ok()) return status;
      if (!(status = r.GetF64(&weight)).ok()) return status;
      adjacency[i].push_back(
          graph::Neighbor{static_cast<graph::NodeId>(node), weight});
    }
  }
  uint64_t num_macs;
  if (!(status = r.GetU64(&num_macs)).ok()) return status;
  if (num_macs > r.remaining() / 12) {
    return Status::DataLoss("graph: mac count exceeds payload");
  }
  std::vector<std::pair<std::string, graph::NodeId>> macs;
  macs.reserve(num_macs);
  for (uint64_t i = 0; i < num_macs; ++i) {
    std::string mac;
    uint32_t id;
    if (!(status = r.GetString(&mac)).ok()) return status;
    if (!(status = r.GetU32(&id)).ok()) return status;
    macs.emplace_back(std::move(mac), static_cast<graph::NodeId>(id));
  }
  *out = graph::BipartiteGraph::FromParts(weight_config, std::move(types),
                                          std::move(adjacency),
                                          std::move(macs));
  return Status::Ok();
}

// --- Embedder section -----------------------------------------------

std::string EncodeEmbedder(const embed::BiSageEmbedder& embedder) {
  WireWriter w;
  PutIntVec(w, embedder.train_nodes());
  const embed::BiSage::TrainedState state = embedder.model().ExportTrained();
  w.PutMatrix(state.h_table);
  w.PutMatrix(state.l_table);
  w.PutU32(static_cast<uint32_t>(state.w_h.size()));
  for (const math::Matrix& m : state.w_h) w.PutMatrix(m);
  for (const math::Matrix& m : state.w_l) w.PutMatrix(m);
  PutRngState(w, state.init_rng);
  w.PutI32(state.trained_nodes);
  w.PutF64(state.last_epoch_loss);
  return w.TakeBytes();
}

Status DecodeEmbedder(std::string_view payload,
                      std::vector<graph::NodeId>* train_nodes,
                      embed::BiSage::TrainedState* state) {
  WireReader r(payload);
  Status status = GetIntVec(r, train_nodes);
  if (!status.ok()) return status;
  if (!(status = r.GetMatrix(&state->h_table)).ok()) return status;
  if (!(status = r.GetMatrix(&state->l_table)).ok()) return status;
  uint32_t layers;
  if (!(status = r.GetU32(&layers)).ok()) return status;
  if (layers > 64) {
    return Status::InvalidArgument("embedder: implausible layer count");
  }
  state->w_h.resize(layers);
  state->w_l.resize(layers);
  for (math::Matrix& m : state->w_h) {
    if (!(status = r.GetMatrix(&m)).ok()) return status;
  }
  for (math::Matrix& m : state->w_l) {
    if (!(status = r.GetMatrix(&m)).ok()) return status;
  }
  if (!(status = GetRngState(r, &state->init_rng)).ok()) return status;
  if (!(status = r.GetI32(&state->trained_nodes)).ok()) return status;
  if (!(status = r.GetF64(&state->last_epoch_loss)).ok()) return status;
  return Status::Ok();
}

// --- Detector section -----------------------------------------------

std::string EncodeDetector(const detect::EnhancedHbosDetector& detector) {
  WireWriter w;
  const detect::EnhancedHbosDetector::PersistedState state =
      detector.ExportState();
  w.PutI32(state.model.bins);
  w.PutI64(state.model.samples);
  w.PutI64(state.model.max_retained);
  w.PutVec(state.model.lo);
  w.PutVec(state.model.hi);
  w.PutMatrix(state.model.counts);
  w.PutU64(state.model.data.size());
  for (const math::Vec& row : state.model.data) w.PutVec(row);
  PutRngState(w, state.model.reservoir_rng);
  w.PutF64(state.score_lo);
  w.PutF64(state.score_hi);
  w.PutF64(state.threshold);
  w.PutF64(state.hbar_tau_upper);
  w.PutF64(state.hbar_tau_lower);
  return w.TakeBytes();
}

Status DecodeDetector(std::string_view payload,
                      detect::EnhancedHbosDetector::PersistedState* state) {
  WireReader r(payload);
  int32_t bins;
  int64_t samples;
  int64_t max_retained;
  Status status = r.GetI32(&bins);
  if (!status.ok()) return status;
  if (!(status = r.GetI64(&samples)).ok()) return status;
  if (!(status = r.GetI64(&max_retained)).ok()) return status;
  state->model.bins = bins;
  state->model.samples = static_cast<long>(samples);
  state->model.max_retained = static_cast<long>(max_retained);
  if (!(status = r.GetVec(&state->model.lo)).ok()) return status;
  if (!(status = r.GetVec(&state->model.hi)).ok()) return status;
  if (!(status = r.GetMatrix(&state->model.counts)).ok()) return status;
  uint64_t rows;
  if (!(status = r.GetU64(&rows)).ok()) return status;
  if (rows > r.remaining() / 8) {
    return Status::DataLoss("detector: retained-sample count exceeds payload");
  }
  state->model.data.resize(rows);
  for (math::Vec& row : state->model.data) {
    if (!(status = r.GetVec(&row)).ok()) return status;
  }
  if (!(status = GetRngState(r, &state->model.reservoir_rng)).ok()) {
    return status;
  }
  if (!(status = r.GetF64(&state->score_lo)).ok()) return status;
  if (!(status = r.GetF64(&state->score_hi)).ok()) return status;
  if (!(status = r.GetF64(&state->threshold)).ok()) return status;
  if (!(status = r.GetF64(&state->hbar_tau_upper)).ok()) return status;
  if (!(status = r.GetF64(&state->hbar_tau_lower)).ok()) return status;
  return Status::Ok();
}

}  // namespace

Status SaveSnapshot(const std::string& path, const core::Gem& gem) {
  if (!gem.trained()) {
    return Status::FailedPrecondition("cannot snapshot an untrained model");
  }
  GEM_FAILPOINT("serve.snapshot.write");
  const std::vector<std::pair<uint32_t, std::string>> sections = {
      {kConfigTag, EncodeConfig(gem.config())},
      {kGraphTag, EncodeGraph(gem.embedder().graph())},
      {kEmbedderTag, EncodeEmbedder(gem.embedder())},
      {kDetectorTag, EncodeDetector(gem.detector())},
  };

  std::string bytes(kMagic, sizeof(kMagic));
  {
    WireWriter header;
    header.PutU32(kSnapshotFormatVersion);
    header.PutU32(static_cast<uint32_t>(sections.size()));
    bytes += header.bytes();
  }
  for (const auto& [tag, payload] : sections) {
    WireWriter frame;
    frame.PutU32(tag);
    frame.PutU64(payload.size());
    bytes += frame.bytes();
    bytes += payload;
    WireWriter crc;
    crc.PutU32(Crc32(payload));
    bytes += crc.bytes();
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      return Status::InvalidArgument("cannot open " + tmp + " for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      return Status::Internal("write to " + tmp + " failed");
    }
  }
  // An injected rename failure must behave like the real one: the temp
  // file is cleaned up and the final name is never left torn.
  GEM_FAILPOINT_ON("serve.snapshot.rename", {
    std::remove(tmp.c_str());
    return failpoint_status;
  });
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename " + tmp + " -> " + path + " failed");
  }
  return Status::Ok();
}

StatusOr<core::Gem> LoadSnapshot(const std::string& path) {
  GEM_FAILPOINT("serve.snapshot.open");
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::Internal("read from " + path + " failed");
  }
  GEM_FAILPOINT("serve.snapshot.read");
  const std::string bytes = buffer.str();

  const std::string_view view(bytes);
  if (bytes.size() < sizeof(kMagic) ||
      bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss(path + ": not a GEM snapshot (bad magic)");
  }
  size_t pos = sizeof(kMagic);
  const auto read_u32 = [&](uint32_t* out) {
    WireReader r(view.substr(pos));
    const Status status = r.GetU32(out);
    if (status.ok()) pos += 4;
    return status;
  };
  const auto read_u64 = [&](uint64_t* out) {
    WireReader r(view.substr(pos));
    const Status status = r.GetU64(out);
    if (status.ok()) pos += 8;
    return status;
  };

  uint32_t version;
  uint32_t section_count;
  Status status = read_u32(&version);
  if (!status.ok()) return status;
  if (version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        path + ": snapshot format version " + std::to_string(version) +
        " is newer than this binary supports (" +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  if (version == 0) {
    return Status::DataLoss(path + ": invalid snapshot version 0");
  }
  if (!(status = read_u32(&section_count)).ok()) return status;
  if (section_count > 1024) {
    return Status::DataLoss(path + ": implausible section count");
  }

  std::map<uint32_t, std::string_view> payloads;
  for (uint32_t s = 0; s < section_count; ++s) {
    uint32_t tag;
    uint64_t size;
    if (!(status = read_u32(&tag)).ok()) return status;
    if (!(status = read_u64(&size)).ok()) return status;
    if (size > bytes.size() - pos) {
      return Status::DataLoss(path + ": truncated section payload");
    }
    const std::string_view payload = view.substr(pos, size);
    pos += size;
    uint32_t stored_crc;
    if (!(status = read_u32(&stored_crc)).ok()) return status;
    // Fires as if this section's checksum mismatched (a flipped bit the
    // corruption sweeps cannot place deterministically).
    GEM_FAILPOINT("serve.snapshot.crc");
    if (Crc32(payload) != stored_crc) {
      return Status::DataLoss(path + ": section " + std::to_string(tag) +
                              " checksum mismatch");
    }
    // Duplicate tags keep the first occurrence; unknown tags are
    // skipped for forward compatibility within a format version.
    payloads.emplace(tag, payload);
  }
  if (pos != bytes.size()) {
    return Status::DataLoss(path + ": trailing bytes after last section");
  }

  for (const uint32_t required :
       {kConfigTag, kGraphTag, kEmbedderTag, kDetectorTag}) {
    if (payloads.find(required) == payloads.end()) {
      return Status::DataLoss(path + ": missing section " +
                              std::to_string(required));
    }
  }

  core::GemConfig config;
  if (!(status = DecodeConfig(payloads[kConfigTag], &config)).ok()) {
    return status;
  }

  Result<graph::BipartiteGraph> graph = Status::Internal("unset");
  if (!(status = DecodeGraph(payloads[kGraphTag], config.edge_weight,
                             &graph))
           .ok()) {
    return status;
  }
  if (!graph.ok()) return graph.status();

  std::vector<graph::NodeId> train_nodes;
  embed::BiSage::TrainedState embed_state;
  if (!(status = DecodeEmbedder(payloads[kEmbedderTag], &train_nodes,
                                &embed_state))
           .ok()) {
    return status;
  }

  detect::EnhancedHbosDetector::PersistedState detect_state;
  if (!(status = DecodeDetector(payloads[kDetectorTag], &detect_state))
           .ok()) {
    return status;
  }

  embed::BiSageEmbedder embedder(config.bisage, config.edge_weight);
  status = embedder.RestoreFitted(std::move(graph).value(),
                                  std::move(train_nodes),
                                  std::move(embed_state));
  if (!status.ok()) return status;

  Result<detect::EnhancedHbosDetector> detector =
      detect::EnhancedHbosDetector::FromState(config.detector,
                                              std::move(detect_state));
  if (!detector.ok()) return detector.status();

  return core::Gem::FromParts(std::move(config), std::move(embedder),
                              std::move(detector).value());
}

Status RetryOptions::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument("retry max_attempts must be >= 1, got " +
                                   std::to_string(max_attempts));
  }
  if (initial_backoff.count() < 0) {
    return Status::InvalidArgument("retry initial_backoff must be >= 0");
  }
  if (backoff_multiplier < 1.0) {
    return Status::InvalidArgument("retry backoff_multiplier must be >= 1");
  }
  return Status::Ok();
}

namespace {

bool IsTransient(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kInternal;
}

}  // namespace

StatusOr<core::Gem> LoadSnapshotWithRetry(const std::string& path,
                                          const RetryOptions& retry) {
  const Status valid = retry.Validate();
  if (!valid.ok()) return valid;
  static obs::Counter& retries =
      obs::MetricsRegistry::Get().GetCounter(
          "gem_serve_snapshot_retries_total");
  std::chrono::duration<double, std::milli> backoff = retry.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    StatusOr<core::Gem> gem = LoadSnapshot(path);
    if (gem.ok() || !IsTransient(gem.code()) ||
        attempt >= retry.max_attempts) {
      return gem;
    }
    retries.Increment();
    if (backoff.count() > 0) {
      std::this_thread::sleep_for(backoff);
    }
    backoff *= retry.backoff_multiplier;
  }
}

}  // namespace gem::serve

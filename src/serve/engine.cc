#include "serve/engine.h"

#include <future>
#include <utility>

#include "base/check.h"
#include "fault/failpoint.h"
#include "math/kernels.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace gem::serve {
namespace {

struct EngineMetrics {
  obs::Gauge& queue_depth;
  obs::Counter& admitted;
  obs::Counter& rejected_full;
  obs::Counter& rejected_shutdown;
  obs::Counter& fence_not_found;
  obs::Counter& deadline_exceeded;
  obs::Counter& absorbed;
  obs::Histogram& queue_wait_seconds;
  obs::Histogram& infer_seconds;

  static EngineMetrics& Get() {
    static EngineMetrics metrics{
        obs::MetricsRegistry::Get().GetGauge("gem_serve_queue_depth"),
        obs::MetricsRegistry::Get().GetCounter(
            "gem_serve_requests_total", {{"outcome", "admitted"}}),
        obs::MetricsRegistry::Get().GetCounter(
            "gem_serve_requests_total", {{"outcome", "rejected_queue_full"}}),
        obs::MetricsRegistry::Get().GetCounter(
            "gem_serve_requests_total", {{"outcome", "rejected_shutdown"}}),
        obs::MetricsRegistry::Get().GetCounter(
            "gem_serve_responses_total", {{"result", "fence_not_found"}}),
        obs::MetricsRegistry::Get().GetCounter(
            "gem_serve_responses_total", {{"result", "deadline_exceeded"}}),
        obs::MetricsRegistry::Get().GetCounter("gem_serve_absorbed_total"),
        obs::MetricsRegistry::Get().GetHistogram(
            "gem_serve_queue_wait_seconds", obs::LatencyBuckets()),
        obs::MetricsRegistry::Get().GetHistogram("gem_serve_infer_seconds",
                                                 obs::LatencyBuckets()),
    };
    return metrics;
  }
};

}  // namespace

Status EngineOptions::Validate() const {
  const Status pool_status = ThreadPoolOptions{num_threads}.Validate();
  if (!pool_status.ok()) return pool_status;
  if (max_queue_depth < 1) {
    return Status::InvalidArgument("engine max_queue_depth must be >= 1");
  }
  if (default_deadline.count() < 0) {
    return Status::InvalidArgument("engine default_deadline must be >= 0");
  }
  return Status::Ok();
}

Engine::Engine(FenceRegistry* registry, EngineOptions options)
    : registry_(registry), options_(options) {
  GEM_CHECK(registry_ != nullptr);
  GEM_CHECK(options_.Validate().ok());
  EngineMetrics::Get();  // resolve metric handles off the hot path
  // Serving latency depends heavily on the dispatched kernel family;
  // record it where latency dashboards can join on it.
  obs::MetricsRegistry::Get()
      .GetGauge("gem_kernel_backend_active",
                {{"backend", math::kernels::BackendName(
                                 math::kernels::ActiveBackend())}})
      .Set(1.0);
  workers_.reserve(options_.num_threads);
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this, i] {
      obs::Timeline::SetCurrentThreadName("serve-worker-" +
                                          std::to_string(i + 1));
      WorkerLoop();
    });
  }
}

Engine::~Engine() { Shutdown(); }

StatusOr<std::unique_ptr<Engine>> Engine::Create(FenceRegistry* registry,
                                                 EngineOptions options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("engine needs a fence registry");
  }
  const Status status = options.Validate();
  if (!status.ok()) return status;
  return std::make_unique<Engine>(registry, options);
}

Status Engine::Submit(ServeRequest request, Callback done) {
  EngineMetrics& metrics = EngineMetrics::Get();
  // Chaos schedules fire here to model admission failures the queue
  // bound alone cannot produce on demand (overload, shedding tiers).
  GEM_FAILPOINT("serve.engine.admit");
  if (request.deadline.count() < 0) {
    return Status::InvalidArgument("request deadline must be >= 0");
  }
  const std::chrono::milliseconds deadline =
      request.deadline.count() > 0 ? request.deadline
                                   : options_.default_deadline;
  const auto now = std::chrono::steady_clock::now();
  const auto deadline_at =
      deadline.count() > 0 ? now + deadline
                           : std::chrono::steady_clock::time_point::max();
  {
    std::lock_guard lock(mutex_);
    if (shutting_down_) {
      metrics.rejected_shutdown.Increment();
      return Status::FailedPrecondition("engine is shut down");
    }
    if (queue_.size() >= options_.max_queue_depth) {
      metrics.rejected_full.Increment();
      return Status::Unavailable("request queue is full (" +
                                 std::to_string(options_.max_queue_depth) +
                                 " pending)");
    }
    obs::TraceContext context;  // {0,0} when the profiler is off
    if (obs::Timeline::IsEnabled()) {
      // Inherit the submitter's trace (a traced caller span) or start
      // a fresh one per request; the span id stays 0 so the worker's
      // serve.request span becomes the request's root.
      context.trace_id = obs::CurrentTraceContext().trace_id;
      if (context.trace_id == 0) context.trace_id = obs::NewTraceId();
      context.span_id = obs::CurrentTraceContext().span_id;
    }
    queue_.push_back(Job{std::move(request), std::move(done), now,
                         deadline_at, context});
    metrics.queue_depth.Set(static_cast<double>(queue_.size()));
  }
  metrics.admitted.Increment();
  work_available_.notify_one();
  return Status::Ok();
}

ServeResponse Engine::InferBlocking(ServeRequest request) {
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  const Status submitted = Submit(
      std::move(request),
      [&promise](ServeResponse response) {
        promise.set_value(std::move(response));
      });
  if (!submitted.ok()) {
    ServeResponse response;
    response.status = submitted;
    return response;
  }
  return future.get();
}

BatchServeResponse Engine::InferBatch(
    const std::string& fence_id, const std::vector<rf::ScanRecord>& records) {
  GEM_TRACE_SPAN("serve.infer_batch");
  EngineMetrics& metrics = EngineMetrics::Get();
  BatchServeResponse response;
  {
    std::lock_guard lock(mutex_);
    if (shutting_down_) {
      metrics.rejected_shutdown.Increment();
      response.status = Status::FailedPrecondition("engine is shut down");
      return response;
    }
  }

  std::shared_ptr<Fence> fence = registry_->Find(fence_id);
  if (!fence) {
    metrics.fence_not_found.Increment();
    response.status =
        Status::NotFound("fence '" + fence_id + "' is not loaded");
    return response;
  }

  const auto start = std::chrono::steady_clock::now();
  {
    // One fence-serialized section for the whole batch; the embedding
    // stage inside fans out on the model's own thread pool.
    std::unique_lock model_lock(fence->mutex, std::defer_lock);
    {
      GEM_TRACE_SPAN("serve.fence_wait");
      model_lock.lock();
    }
    response.results = fence->gem.InferBatch(records);
  }
  metrics.infer_seconds.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  for (const core::InferenceResult& result : response.results) {
    if (result.model_updated) metrics.absorbed.Increment();
  }
  response.status = Status::Ok();
  response.fence_generation = fence->generation;
  return response;
}

void Engine::Shutdown() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
    to_join.swap(workers_);  // claimed by exactly one Shutdown caller
  }
  work_available_.notify_all();
  for (std::thread& worker : to_join) worker.join();
}

size_t Engine::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void Engine::WorkerLoop() {
  EngineMetrics& metrics = EngineMetrics::Get();
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down, queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
      metrics.queue_depth.Set(static_cast<double>(queue_.size()));
    }
    const auto dequeued_at = std::chrono::steady_clock::now();
    metrics.queue_wait_seconds.Observe(
        std::chrono::duration<double>(dequeued_at - job.enqueued_at)
            .count());
    if (job.context.trace_id != 0) {
      obs::Timeline::RecordAsyncSpan("serve.queue_wait", job.enqueued_at,
                                     dequeued_at, job.context.trace_id,
                                     obs::NewSpanId(), job.context.span_id);
    }
    obs::TraceContextScope trace_scope(job.context);
    ServeResponse response = Process(job.request, job.deadline_at);
    if (job.done) job.done(std::move(response));
  }
}

ServeResponse Engine::Process(
    const ServeRequest& request,
    std::chrono::steady_clock::time_point deadline_at) {
  GEM_TRACE_SPAN("serve.request");
  EngineMetrics& metrics = EngineMetrics::Get();
  ServeResponse response;

  // Worker-side injection point: an error here answers the request
  // with a definite Status exactly like a real execution failure.
  GEM_FAILPOINT_ON("serve.engine.process", {
    response.status = failpoint_status;
    return response;
  });

  // Queue-side deadline check: the request may have expired while it
  // sat behind slower work.
  if (std::chrono::steady_clock::now() >= deadline_at) {
    metrics.deadline_exceeded.Increment();
    response.status =
        Status::DeadlineExceeded("request deadline passed in queue");
    return response;
  }

  std::shared_ptr<Fence> fence;
  {
    GEM_TRACE_SPAN("serve.lookup");
    fence = registry_->Find(request.fence_id);
  }
  if (!fence) {
    metrics.fence_not_found.Increment();
    response.status =
        Status::NotFound("fence '" + request.fence_id + "' is not loaded");
    return response;
  }

  const auto start = std::chrono::steady_clock::now();
  {
    // Fence-serialized section: Infer embeds (growing the graph),
    // detects, and — when confidently inside — absorbs the embedding
    // into the detector (Section V-B self-enhancement). The fence
    // mutex is what keeps racing updates to one tenant's model sound
    // while other tenants proceed in parallel.
    GEM_TRACE_SPAN("serve.infer");
    std::unique_lock model_lock(fence->mutex, std::defer_lock);
    {
      // Time spent BLOCKED on the tenant's serialization mutex, split
      // out from execution so traces show contention directly.
      GEM_TRACE_SPAN("serve.fence_wait");
      model_lock.lock();
    }
    // Fence-side deadline check: waiting on a busy tenant's mutex can
    // outlive the deadline just like queueing does.
    if (std::chrono::steady_clock::now() >= deadline_at) {
      metrics.deadline_exceeded.Increment();
      response.status = Status::DeadlineExceeded(
          "request deadline passed waiting for fence '" + request.fence_id +
          "'");
      return response;
    }
    response.result = fence->gem.Infer(request.record);
  }
  metrics.infer_seconds.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  if (response.result.model_updated) metrics.absorbed.Increment();
  response.status = Status::Ok();
  response.fence_generation = fence->generation;
  return response;
}

}  // namespace gem::serve

#include "serve/wire.h"

#include <cstring>

namespace gem::serve {
namespace {

/// Sanity cap on decoded container lengths: no legitimate snapshot
/// section holds more elements than it has payload bytes, so a
/// bit-flipped length field fails fast instead of driving a huge
/// allocation.
Status CheckedLength(uint64_t n, size_t remaining, size_t element_bytes,
                     uint64_t* out) {
  if (element_bytes > 0 && n > remaining / element_bytes) {
    return Status::DataLoss("wire: declared length exceeds payload");
  }
  *out = n;
  return Status::Ok();
}

uint64_t F64Bits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsF64(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

void WireWriter::PutU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }

void WireWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void WireWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void WireWriter::PutF64(double v) { PutU64(F64Bits(v)); }

void WireWriter::PutString(std::string_view s) {
  PutU64(s.size());
  bytes_.append(s.data(), s.size());
}

void WireWriter::PutVec(const math::Vec& v) {
  PutU64(v.size());
  for (const double x : v) PutF64(x);
}

void WireWriter::PutMatrix(const math::Matrix& m) {
  PutU32(static_cast<uint32_t>(m.rows()));
  PutU32(static_cast<uint32_t>(m.cols()));
  for (const double x : m.data()) PutF64(x);
}

Status WireReader::Need(size_t n) {
  if (bytes_.size() - pos_ < n) {
    return Status::DataLoss("wire: truncated (need " + std::to_string(n) +
                            " bytes, have " +
                            std::to_string(bytes_.size() - pos_) + ")");
  }
  return Status::Ok();
}

Status WireReader::GetU8(uint8_t* out) {
  Status status = Need(1);
  if (!status.ok()) return status;
  *out = static_cast<uint8_t>(bytes_[pos_++]);
  return Status::Ok();
}

Status WireReader::GetU32(uint32_t* out) {
  Status status = Need(4);
  if (!status.ok()) return status;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::Ok();
}

Status WireReader::GetU64(uint64_t* out) {
  Status status = Need(8);
  if (!status.ok()) return status;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::Ok();
}

Status WireReader::GetI32(int32_t* out) {
  uint32_t v;
  Status status = GetU32(&v);
  if (!status.ok()) return status;
  *out = static_cast<int32_t>(v);
  return Status::Ok();
}

Status WireReader::GetI64(int64_t* out) {
  uint64_t v;
  Status status = GetU64(&v);
  if (!status.ok()) return status;
  *out = static_cast<int64_t>(v);
  return Status::Ok();
}

Status WireReader::GetF64(double* out) {
  uint64_t bits;
  Status status = GetU64(&bits);
  if (!status.ok()) return status;
  *out = BitsF64(bits);
  return Status::Ok();
}

Status WireReader::GetString(std::string* out) {
  uint64_t declared;
  Status status = GetU64(&declared);
  if (!status.ok()) return status;
  uint64_t n;
  status = CheckedLength(declared, remaining(), 1, &n);
  if (!status.ok()) return status;
  status = Need(n);
  if (!status.ok()) return status;
  out->assign(bytes_.data() + pos_, n);
  pos_ += n;
  return Status::Ok();
}

Status WireReader::GetVec(math::Vec* out) {
  uint64_t declared;
  Status status = GetU64(&declared);
  if (!status.ok()) return status;
  uint64_t n;
  status = CheckedLength(declared, remaining(), 8, &n);
  if (!status.ok()) return status;
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    double v = 0.0;
    status = GetF64(&v);
    if (!status.ok()) return status;
    out->push_back(v);
  }
  return Status::Ok();
}

Status WireReader::GetMatrix(math::Matrix* out) {
  uint32_t rows;
  uint32_t cols;
  Status status = GetU32(&rows);
  if (!status.ok()) return status;
  status = GetU32(&cols);
  if (!status.ok()) return status;
  if (rows > (1u << 30) || cols > (1u << 30)) {
    return Status::DataLoss("wire: implausible matrix shape");
  }
  const uint64_t elems = static_cast<uint64_t>(rows) * cols;
  uint64_t checked;
  status = CheckedLength(elems, remaining(), 8, &checked);
  if (!status.ok()) return status;
  math::Matrix m(static_cast<int>(rows), static_cast<int>(cols));
  for (double& x : m.data()) {
    status = GetF64(&x);
    if (!status.ok()) return status;
  }
  *out = std::move(m);
  return Status::Ok();
}

uint32_t Crc32(std::string_view bytes) {
  // Table-driven CRC-32 (reflected 0xEDB88320); table built on first use.
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace gem::serve

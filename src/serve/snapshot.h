#ifndef GEM_SERVE_SNAPSHOT_H_
#define GEM_SERVE_SNAPSHOT_H_

#include <chrono>
#include <string>

#include "base/status.h"
#include "base/statusor.h"
#include "core/gem.h"

namespace gem::serve {

/// Versioned, self-describing binary snapshot of a trained core::Gem:
/// the full GemConfig, the bipartite graph, the BiSAGE node tables and
/// layer weights (plus the init-RNG stream), and the enhanced HBOS
/// detector's histograms / retained samples / normalization anchors /
/// thresholds. A loaded snapshot produces bit-identical Infer() scores
/// to the process that saved it.
///
/// File layout (all little-endian; see DESIGN.md "Snapshot wire
/// format"):
///   8-byte magic "GEMSNAP\0" | u32 format version | u32 section count
///   then per section: u32 tag | u64 payload size | payload | u32 CRC-32
///
/// Versioning rules: the loader accepts versions <= its own and rejects
/// future versions; unknown section tags are skipped (so minor additive
/// changes need no version bump). Every payload byte is covered by the
/// section CRC — a flipped bit anywhere yields a clean DataLoss error,
/// never a crash or a silently different model.

inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Atomically writes `gem` (which must be trained) to `path` via a
/// temp file + rename, so a crash mid-write never leaves a torn
/// snapshot under the final name.
Status SaveSnapshot(const std::string& path, const core::Gem& gem);

/// Loads a snapshot written by SaveSnapshot. Returns NotFound when the
/// file is missing, DataLoss on truncation/corruption, and
/// InvalidArgument on future versions or semantically inconsistent
/// state; never crashes on hostile bytes.
StatusOr<core::Gem> LoadSnapshot(const std::string& path);

/// Bounded exponential-backoff retry for snapshot loads (live reloads
/// in a long-running server hit transient I/O failures; a reload that
/// gives up must not take the previous generation down with it).
struct RetryOptions {
  /// Total attempts, including the first (1 = no retry).
  int max_attempts = 3;
  /// Sleep before attempt 2; doubles (backoff_multiplier) per attempt.
  std::chrono::milliseconds initial_backoff{5};
  double backoff_multiplier = 2.0;

  /// kInvalidArgument unless max_attempts >= 1, initial_backoff >= 0
  /// and backoff_multiplier >= 1.
  Status Validate() const;
};

/// LoadSnapshot with RetryOptions semantics. Only transient codes
/// (kUnavailable, kInternal) are retried — kNotFound, kDataLoss and
/// kInvalidArgument are terminal and return immediately. Each retry
/// increments gem_serve_snapshot_retries_total.
StatusOr<core::Gem> LoadSnapshotWithRetry(const std::string& path,
                                          const RetryOptions& retry);

}  // namespace gem::serve

#endif  // GEM_SERVE_SNAPSHOT_H_

#ifndef GEM_SERVE_ENGINE_H_
#define GEM_SERVE_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"
#include "base/thread_pool.h"
#include "core/geofence.h"
#include "obs/trace_context.h"
#include "rf/types.h"
#include "serve/fence_registry.h"

namespace gem::serve {

struct EngineOptions {
  /// Fixed worker-pool size.
  int num_threads = 4;
  /// Bounded request queue; a Submit against a full queue is rejected
  /// immediately with kUnavailable (backpressure — the caller sheds or
  /// retries, the server never buffers unboundedly).
  size_t max_queue_depth = 256;
  /// Default per-request deadline, measured from Submit; zero means no
  /// deadline. A request whose deadline passes while it queues, or
  /// while it waits on its fence's serialization mutex, is answered
  /// kDeadlineExceeded without running the model (the caller already
  /// gave up — spending fence time on it only delays live requests).
  /// ServeRequest::deadline overrides per request.
  std::chrono::milliseconds default_deadline{0};

  /// kInvalidArgument unless 1 <= num_threads <= the thread-pool
  /// maximum, max_queue_depth >= 1 and default_deadline >= 0.
  Status Validate() const;
};

/// One in-out query against a loaded fence.
struct ServeRequest {
  std::string fence_id;
  rf::ScanRecord record;
  /// Per-request deadline measured from Submit; zero falls back to
  /// EngineOptions::default_deadline (whose zero means unlimited).
  std::chrono::milliseconds deadline{0};
};

struct ServeResponse {
  /// kOk with `result` filled, kNotFound (fence not loaded),
  /// kDeadlineExceeded (deadline passed before the model ran), or
  /// kUnavailable (shut down while queued).
  Status status;
  core::InferenceResult result;
  /// Registry generation of the model that served the request (0 when
  /// status is not OK) — lets callers observe live reloads.
  uint64_t fence_generation = 0;
};

/// Response of a batched query: `results[i]` answers `records[i]`.
struct BatchServeResponse {
  Status status;
  std::vector<core::InferenceResult> results;
  uint64_t fence_generation = 0;
};

/// Multi-tenant serving engine: a fixed thread pool draining a bounded
/// request queue against a FenceRegistry.
///
/// Threading model (see DESIGN.md "Serving"):
///  - Registry lookups are sharded-shared-lock reads — concurrent.
///  - Per fence, model access is serialized under Fence::mutex, because
///    Gem::Infer both grows the graph and (self-enhancement) updates
///    the detector. Requests for DIFFERENT fences run fully in
///    parallel across the pool.
///  - Backpressure triggers at Submit time when the queue is full.
/// Fully instrumented via gem::obs: queue-depth gauge, admitted /
/// rejected / absorbed counters, queue-wait and per-stage latency
/// histograms.
class Engine {
 public:
  using Callback = std::function<void(ServeResponse)>;

  /// The options must be valid (GEM_CHECKed); use Create() to surface
  /// user-supplied sizes softly.
  explicit Engine(FenceRegistry* registry, EngineOptions options = {});
  /// Drains the queue and joins the workers.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Validates the options and builds the engine (kInvalidArgument on
  /// a bad --threads / queue-depth value instead of crashing).
  static StatusOr<std::unique_ptr<Engine>> Create(FenceRegistry* registry,
                                                  EngineOptions options);

  /// Enqueues the request; `done` runs on a worker thread. Returns
  /// kUnavailable when the queue is full and kFailedPrecondition after
  /// Shutdown; `done` is NOT invoked when Submit fails.
  Status Submit(ServeRequest request, Callback done);

  /// Submit + block for the response (CLI / test convenience).
  ServeResponse InferBlocking(ServeRequest request);

  /// Batched inference against one fence, run synchronously on the
  /// calling thread (it does not pass through the request queue). The
  /// fence is locked once for the whole batch — one tenant's batch is
  /// a single serialized unit, exactly like a run of queued requests —
  /// and the model parallelizes the embedding stage internally on its
  /// own pool (see Gem::InferBatch). kNotFound when the fence is not
  /// loaded, kFailedPrecondition after Shutdown.
  BatchServeResponse InferBatch(const std::string& fence_id,
                                const std::vector<rf::ScanRecord>& records);

  /// Stops intake, drains already-admitted requests, joins workers.
  /// Idempotent.
  void Shutdown();

  size_t queue_depth() const;
  const EngineOptions& options() const { return options_; }

 private:
  struct Job {
    ServeRequest request;
    Callback done;
    std::chrono::steady_clock::time_point enqueued_at;
    /// Absolute deadline (time_point::max() when none applies).
    std::chrono::steady_clock::time_point deadline_at;
    /// Trace identity minted at Submit when the timeline profiler is
    /// on ({0,0} otherwise): the worker re-installs it before Process
    /// so the request's spans attach to the submitter's trace across
    /// the queue hop, and the enqueue->dequeue gap becomes a
    /// "serve.queue_wait" interval under the same trace.
    obs::TraceContext context;
  };

  void WorkerLoop();
  ServeResponse Process(const ServeRequest& request,
                        std::chrono::steady_clock::time_point deadline_at);

  FenceRegistry* const registry_;
  const EngineOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<Job> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gem::serve

#endif  // GEM_SERVE_ENGINE_H_

#ifndef GEM_EVAL_SYSTEMS_H_
#define GEM_EVAL_SYSTEMS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/geofence.h"
#include "core/gem.h"

namespace gem::eval {

/// Every geofencing algorithm evaluated in the paper (Table I rows
/// plus the Figure 7 "GEM without BiSAGE" arm).
enum class AlgorithmId {
  kGem,                   // GEM (BiSAGE + OD)
  kSignatureHome,         // SignatureHome
  kInoa,                  // INOA
  kGraphSageOd,           // GraphSAGE + OD
  kAutoencoderOd,         // Autoencoder + OD
  kMdsOd,                 // MDS + OD
  kBiSageFeatureBagging,  // BiSAGE + feature bagging
  kBiSageIForest,         // BiSAGE + iForest
  kBiSageLof,             // BiSAGE + LOF
  kRawOd,                 // padded matrix + OD (Figure 7, "w/o BiSAGE")
};

/// The nine Table I rows, paper order.
std::vector<AlgorithmId> TableOneAlgorithms();

/// Display name matching the paper's row labels.
std::string AlgorithmName(AlgorithmId id);

/// Instantiates a fresh system. `seed` decorrelates stochastic
/// components across repeats; `gem_config` customizes the GEM arm (and
/// the BiSAGE/OD components reused by the mixed arms).
std::unique_ptr<core::GeofencingSystem> MakeSystem(
    AlgorithmId id, uint64_t seed = 13,
    const core::GemConfig& gem_config = core::GemConfig());

}  // namespace gem::eval

#endif  // GEM_EVAL_SYSTEMS_H_

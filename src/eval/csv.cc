#include "eval/csv.h"

#include <cstdio>
#include <cstring>

namespace gem::eval {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    const std::string& cell = cells[i];
    if (cell.find_first_of(",\"\n") != std::string::npos) {
      out_ << '"';
      for (char c : cell) {
        if (c == '"') out_ << '"';
        out_ << c;
      }
      out_ << '"';
    } else {
      out_ << cell;
    }
  }
  out_ << '\n';
}

void CsvWriter::WriteNumericRow(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    cells.emplace_back(buf);
  }
  WriteRow(cells);
}

std::string CsvDirFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return argv[i + 1];
  }
  return "";
}

bool FullScaleFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) return true;
  }
  return false;
}

}  // namespace gem::eval

#include "eval/table.h"

#include <cstdio>

namespace gem::eval {

std::string FormatSummary(const math::Summary& summary) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f (%.2f, %.2f)", summary.mean,
                summary.min, summary.max);
  return buf;
}

std::string FormatValue(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

void AppendMetricCells(const AggregateMetrics& aggregate,
                       std::vector<std::string>& cells) {
  cells.push_back(FormatSummary(aggregate.p_in));
  cells.push_back(FormatSummary(aggregate.r_in));
  cells.push_back(FormatSummary(aggregate.f_in));
  cells.push_back(FormatSummary(aggregate.p_out));
  cells.push_back(FormatSummary(aggregate.r_out));
  cells.push_back(FormatSummary(aggregate.f_out));
}

}  // namespace gem::eval

#include "eval/evaluate.h"

#include <chrono>

#include "base/check.h"

namespace gem::eval {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

Result<EvalResult> Evaluate(core::GeofencingSystem& system,
                            const rf::Dataset& data) {
  EvalResult result;
  const auto t0 = Clock::now();
  Status status = system.Train(data.train);
  if (!status.ok()) return status;
  const auto t1 = Clock::now();
  result.train_seconds = Seconds(t0, t1);

  std::vector<bool> actual;
  std::vector<bool> predicted;
  actual.reserve(data.test.size());
  predicted.reserve(data.test.size());
  for (const rf::ScanRecord& record : data.test) {
    const core::InferenceResult inference = system.Infer(record);
    actual.push_back(record.inside);
    predicted.push_back(inference.decision == core::Decision::kInside);
    result.scores.push_back(inference.score);
    result.is_outside.push_back(!record.inside);
    result.updates += inference.model_updated ? 1 : 0;
  }
  result.infer_seconds = Seconds(t1, Clock::now());
  result.metrics = math::ComputeInOutMetrics(actual, predicted);
  return result;
}

AggregateMetrics Aggregate(const std::vector<math::InOutMetrics>& runs) {
  GEM_CHECK(!runs.empty());
  math::Vec p_in, r_in, f_in, p_out, r_out, f_out;
  for (const math::InOutMetrics& m : runs) {
    p_in.push_back(m.precision_in);
    r_in.push_back(m.recall_in);
    f_in.push_back(m.f_in);
    p_out.push_back(m.precision_out);
    r_out.push_back(m.recall_out);
    f_out.push_back(m.f_out);
  }
  AggregateMetrics out;
  out.p_in = math::Summarize(p_in);
  out.r_in = math::Summarize(r_in);
  out.f_in = math::Summarize(f_in);
  out.p_out = math::Summarize(p_out);
  out.r_out = math::Summarize(r_out);
  out.f_out = math::Summarize(f_out);
  return out;
}

}  // namespace gem::eval

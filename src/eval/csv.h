#ifndef GEM_EVAL_CSV_H_
#define GEM_EVAL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "base/status.h"

namespace gem::eval {

/// Minimal CSV writer used by the bench binaries to dump series for
/// external plotting. Values containing commas/quotes are quoted.
class CsvWriter {
 public:
  /// Opens (truncates) the file; check ok() before writing.
  explicit CsvWriter(const std::string& path);

  bool ok() const { return out_.good(); }

  void WriteRow(const std::vector<std::string>& cells);

  /// Convenience: header + typed numeric rows.
  void WriteHeader(const std::vector<std::string>& names) {
    WriteRow(names);
  }
  void WriteNumericRow(const std::vector<double>& values);

 private:
  std::ofstream out_;
};

/// Parses "--csv <dir>" style flags shared by the bench binaries.
/// Returns the directory or an empty string when the flag is absent.
std::string CsvDirFromArgs(int argc, char** argv);

/// True when "--full" was passed (paper-scale repeats instead of the
/// fast defaults).
bool FullScaleFromArgs(int argc, char** argv);

}  // namespace gem::eval

#endif  // GEM_EVAL_CSV_H_

#ifndef GEM_EVAL_EVALUATE_H_
#define GEM_EVAL_EVALUATE_H_

#include <vector>

#include "base/statusor.h"
#include "core/geofence.h"
#include "math/metrics.h"
#include "math/stats.h"
#include "rf/dataset.h"

namespace gem::eval {

/// Outcome of streaming one dataset's test records through a system.
struct EvalResult {
  math::InOutMetrics metrics;
  /// Per-record outlier scores + ground truth, for ROC analysis.
  math::Vec scores;
  std::vector<bool> is_outside;
  /// Self-enhancement absorption count.
  int updates = 0;
  double train_seconds = 0.0;
  double infer_seconds = 0.0;
};

/// Trains `system` on data.train and streams data.test through it in
/// order. The system must be freshly constructed (stateful online
/// updates). Train failures surface as a Status.
Result<EvalResult> Evaluate(core::GeofencingSystem& system,
                            const rf::Dataset& data);

/// mean (min, max) across users/repeats for the six Table I metrics.
struct AggregateMetrics {
  math::Summary p_in, r_in, f_in, p_out, r_out, f_out;
};

/// Aggregates per-run metrics; runs must be non-empty.
AggregateMetrics Aggregate(const std::vector<math::InOutMetrics>& runs);

}  // namespace gem::eval

#endif  // GEM_EVAL_EVALUATE_H_

#include "eval/systems.h"

#include "base/check.h"
#include "core/embedding_pipeline.h"
#include "core/inoa.h"
#include "core/signature_home.h"
#include "detect/feature_bagging.h"
#include "detect/iforest.h"
#include "detect/lof.h"
#include "embed/autoencoder.h"
#include "embed/bisage.h"
#include "embed/graphsage.h"
#include "embed/matrix_rep.h"
#include "embed/mds.h"

namespace gem::eval {

std::vector<AlgorithmId> TableOneAlgorithms() {
  return {AlgorithmId::kGem,
          AlgorithmId::kSignatureHome,
          AlgorithmId::kInoa,
          AlgorithmId::kGraphSageOd,
          AlgorithmId::kAutoencoderOd,
          AlgorithmId::kMdsOd,
          AlgorithmId::kBiSageFeatureBagging,
          AlgorithmId::kBiSageIForest,
          AlgorithmId::kBiSageLof};
}

std::string AlgorithmName(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kGem:
      return "GEM (BiSAGE + OD)";
    case AlgorithmId::kSignatureHome:
      return "SignatureHome";
    case AlgorithmId::kInoa:
      return "INOA";
    case AlgorithmId::kGraphSageOd:
      return "GraphSAGE + OD";
    case AlgorithmId::kAutoencoderOd:
      return "Autoencoder + OD";
    case AlgorithmId::kMdsOd:
      return "MDS + OD";
    case AlgorithmId::kBiSageFeatureBagging:
      return "BiSAGE + Feature bagging";
    case AlgorithmId::kBiSageIForest:
      return "BiSAGE + iForest";
    case AlgorithmId::kBiSageLof:
      return "BiSAGE + LOF";
    case AlgorithmId::kRawOd:
      return "Matrix (w/o BiSAGE) + OD";
  }
  return "unknown";
}

std::unique_ptr<core::GeofencingSystem> MakeSystem(
    AlgorithmId id, uint64_t seed, const core::GemConfig& gem_config) {
  embed::BiSageConfig bisage = gem_config.bisage;
  bisage.seed ^= seed;
  detect::EnhancedHbosOptions od = gem_config.detector;

  switch (id) {
    case AlgorithmId::kGem: {
      core::GemConfig config = gem_config;
      config.bisage = bisage;
      return std::make_unique<core::Gem>(config);
    }
    case AlgorithmId::kSignatureHome:
      return std::make_unique<core::SignatureHome>();
    case AlgorithmId::kInoa:
      return std::make_unique<core::Inoa>();
    case AlgorithmId::kGraphSageOd: {
      embed::GraphSageConfig config;
      config.dimension = bisage.dimension;
      config.seed = 17 ^ seed;
      return std::make_unique<core::EmbeddingPipeline>(
          AlgorithmName(id),
          std::make_unique<embed::GraphSageEmbedder>(config,
                                                     gem_config.edge_weight),
          std::make_unique<detect::EnhancedHbosDetector>(od));
    }
    case AlgorithmId::kAutoencoderOd: {
      embed::AutoencoderConfig config;
      config.bottleneck = bisage.dimension;
      config.seed = 23 ^ seed;
      return std::make_unique<core::EmbeddingPipeline>(
          AlgorithmName(id),
          std::make_unique<embed::AutoencoderEmbedder>(config),
          std::make_unique<detect::EnhancedHbosDetector>(od));
    }
    case AlgorithmId::kMdsOd: {
      embed::MdsConfig config;
      config.components = bisage.dimension;
      return std::make_unique<core::EmbeddingPipeline>(
          AlgorithmName(id), std::make_unique<embed::MdsEmbedder>(config),
          std::make_unique<detect::EnhancedHbosDetector>(od));
    }
    case AlgorithmId::kBiSageFeatureBagging: {
      detect::FeatureBaggingOptions options;
      options.seed = 37 ^ seed;
      return std::make_unique<core::EmbeddingPipeline>(
          AlgorithmName(id),
          std::make_unique<embed::BiSageEmbedder>(bisage,
                                                  gem_config.edge_weight),
          std::make_unique<detect::FeatureBagging>(options));
    }
    case AlgorithmId::kBiSageIForest: {
      detect::IForestOptions options;
      options.seed = 31 ^ seed;
      return std::make_unique<core::EmbeddingPipeline>(
          AlgorithmName(id),
          std::make_unique<embed::BiSageEmbedder>(bisage,
                                                  gem_config.edge_weight),
          std::make_unique<detect::IsolationForest>(options));
    }
    case AlgorithmId::kBiSageLof:
      return std::make_unique<core::EmbeddingPipeline>(
          AlgorithmName(id),
          std::make_unique<embed::BiSageEmbedder>(bisage,
                                                  gem_config.edge_weight),
          std::make_unique<detect::LofDetector>());
    case AlgorithmId::kRawOd:
      return std::make_unique<core::EmbeddingPipeline>(
          AlgorithmName(id), std::make_unique<embed::RawVectorEmbedder>(),
          std::make_unique<detect::EnhancedHbosDetector>(od));
  }
  GEM_CHECK_MSG(false, "unhandled algorithm id");
  return nullptr;
}

}  // namespace gem::eval

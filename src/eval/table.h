#ifndef GEM_EVAL_TABLE_H_
#define GEM_EVAL_TABLE_H_

#include <string>
#include <vector>

#include "base/text_table.h"
#include "eval/evaluate.h"

namespace gem::eval {

/// Formats "0.98 (0.94, 1.00)" table cells.
std::string FormatSummary(const math::Summary& summary);

/// Formats a plain "0.98" cell.
std::string FormatValue(double value);

/// The table writer now lives in base/ (shared with the obs metrics
/// exporter); this alias keeps the historical eval::TextTable name.
using TextTable = ::gem::TextTable;

/// Appends the six aggregate metric cells in Table I order
/// (P_in R_in F_in P_out R_out F_out).
void AppendMetricCells(const AggregateMetrics& aggregate,
                       std::vector<std::string>& cells);

}  // namespace gem::eval

#endif  // GEM_EVAL_TABLE_H_

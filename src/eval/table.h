#ifndef GEM_EVAL_TABLE_H_
#define GEM_EVAL_TABLE_H_

#include <string>
#include <vector>

#include "eval/evaluate.h"

namespace gem::eval {

/// Formats "0.98 (0.94, 1.00)" table cells.
std::string FormatSummary(const math::Summary& summary);

/// Formats a plain "0.98" cell.
std::string FormatValue(double value);

/// Simple fixed-width text table writer for bench output.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with column auto-sizing.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Appends the six aggregate metric cells in Table I order
/// (P_in R_in F_in P_out R_out F_out).
void AppendMetricCells(const AggregateMetrics& aggregate,
                       std::vector<std::string>& cells);

}  // namespace gem::eval

#endif  // GEM_EVAL_TABLE_H_

#include "rf/propagation.h"

#include <cmath>

#include "base/check.h"

namespace gem::rf {
namespace {

uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

PropagationModel::PropagationModel(const Environment* env,
                                   PropagationConfig config)
    : env_(env), config_(config) {
  GEM_CHECK(env != nullptr);
}

double PropagationModel::SpatialShadowingDb(const std::string& mac,
                                            Point rx) const {
  if (config_.shadowing_sigma_db <= 0.0) return 0.0;
  const long cx = std::lround(std::floor(rx.x / config_.shadowing_cell_m));
  const long cy = std::lround(std::floor(rx.y / config_.shadowing_cell_m));
  uint64_t h = config_.shadowing_seed;
  h = HashCombine(h, HashString(mac));
  h = HashCombine(h, static_cast<uint64_t>(cx + (1L << 31)));
  h = HashCombine(h, static_cast<uint64_t>(cy + (1L << 31)));
  // A single deterministic normal draw seeded by the hash.
  math::Rng rng(h);
  return rng.Normal(0.0, config_.shadowing_sigma_db);
}

double PropagationModel::DriftDb(const std::string& mac,
                                 double time_s) const {
  if (config_.drift_amplitude_db <= 0.0) return 0.0;
  const uint64_t h = HashCombine(config_.shadowing_seed ^ 0xD21F7ULL,
                                 HashString(mac));
  math::Rng rng(h);
  const double phase = rng.Uniform(0.0, 2.0 * M_PI);
  const double period = config_.drift_period_s * rng.Uniform(0.7, 1.4);
  const double amplitude = config_.drift_amplitude_db * rng.Uniform(0.5, 1.5);
  return amplitude * std::sin(2.0 * M_PI * time_s / period + phase);
}

double PropagationModel::CommonDriftDb(double time_s) const {
  if (config_.common_drift_amplitude_db <= 0.0) return 0.0;
  math::Rng rng(config_.shadowing_seed ^ 0xC033D41FULL);
  const double phase = rng.Uniform(0.0, 2.0 * M_PI);
  return config_.common_drift_amplitude_db *
         std::sin(2.0 * M_PI * time_s / config_.common_drift_period_s +
                  phase);
}

double PropagationModel::MeanRssDbm(const AccessPoint& ap, Point rx,
                                    int rx_floor, double time_s) const {
  const double dx = ap.position.x - rx.x;
  const double dy = ap.position.y - rx.y;
  const double d = std::max(std::sqrt(dx * dx + dy * dy), 0.5);

  double rss = ap.ref_rss_1m_dbm -
               10.0 * config_.path_loss_exponent * std::log10(d);
  if (ap.band == Band::k5GHz) rss -= config_.extra_5ghz_path_db;

  // Walls are evaluated on the receiver's floor: signals from another
  // floor additionally pay the slab attenuation.
  rss -= env_->WallAttenuationDb(ap.position, rx, rx_floor, ap.band);
  rss -= std::abs(ap.floor - rx_floor) * config_.floor_attenuation_db;
  rss += SpatialShadowingDb(ap.mac, rx);
  rss += DriftDb(ap.mac, time_s);
  return rss;
}

double PropagationModel::SampleRssDbm(const AccessPoint& ap, Point rx,
                                      int rx_floor, math::Rng& rng,
                                      double time_s) const {
  return MeanRssDbm(ap, rx, rx_floor, time_s) +
         rng.Normal(0.0, config_.noise_sigma_db);
}

double PropagationModel::DetectionProbability(double mean_rss_dbm) const {
  if (mean_rss_dbm >= config_.sensitivity_dbm) return 1.0;
  const double below = config_.sensitivity_dbm - mean_rss_dbm;
  if (below >= config_.detection_softness_db) return 0.0;
  return 1.0 - below / config_.detection_softness_db;
}

}  // namespace gem::rf

#ifndef GEM_RF_TRAJECTORY_H_
#define GEM_RF_TRAJECTORY_H_

#include <vector>

#include "math/rng.h"
#include "rf/environment.h"
#include "rf/types.h"

namespace gem::rf {

/// A position at a time, on a floor.
struct TimedPoint {
  Point position;
  int floor = 0;
  double time_s = 0.0;
};

/// A timed sequence of positions; the scanner samples one record per
/// point.
using Trajectory = std::vector<TimedPoint>;

/// Walks the inner perimeter of the fence (inset by `margin_m`) at
/// `speed_mps`, looping until `duration_s` elapses, emitting a point
/// every `scan_interval_s`. Multi-floor fences alternate floors between
/// laps (the paper's user walks both stories). This reproduces the
/// paper's initial training procedure.
Trajectory PerimeterWalk(const Environment& env, double speed_mps,
                         double duration_s, double scan_interval_s,
                         double margin_m = 0.5);

/// Random-waypoint movement inside the fence: pick a uniform target,
/// walk to it at `speed_mps`, repeat; one point per scan interval.
/// Models the user "living as usual" inside.
Trajectory RandomWaypointInside(const Environment& env, double speed_mps,
                                double duration_s, double scan_interval_s,
                                math::Rng& rng);

/// Positions outside the fence in a ring at distances
/// [min_distance_m, max_distance_m] from the fence boundary, moving
/// around the premises. Includes positions just past the boundary
/// (near-outside, the hard cases) when min_distance_m is small.
Trajectory OutsideWalk(const Environment& env, double min_distance_m,
                       double max_distance_m, double speed_mps,
                       double duration_s, double scan_interval_s,
                       math::Rng& rng);

}  // namespace gem::rf

#endif  // GEM_RF_TRAJECTORY_H_

#include "rf/scenario.h"

#include <cmath>
#include <set>

#include "base/check.h"
#include "math/rng.h"

namespace gem::rf {
namespace {

std::string MakeMac(int index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "02:00:%02x:%02x:%02x:%02x",
                (index >> 24) & 0xff, (index >> 16) & 0xff,
                (index >> 8) & 0xff, index & 0xff);
  return std::string(buf);
}

/// Places one AP (possibly dual-band, i.e., two MACs) at `pos`.
void PlaceAp(Environment& env, int& mac_counter, Point pos, int floor,
             bool dual_band, math::Rng& rng) {
  AccessPoint ap;
  ap.position = pos;
  ap.floor = floor;
  ap.ref_rss_1m_dbm = rng.Uniform(-45.0, -38.0);
  if (dual_band) {
    ap.mac = MakeMac(mac_counter++);
    ap.band = Band::k2_4GHz;
    env.AddAccessPoint(ap);
    ap.mac = MakeMac(mac_counter++);
    ap.band = Band::k5GHz;
    env.AddAccessPoint(ap);
  } else {
    ap.mac = MakeMac(mac_counter++);
    ap.band = rng.Bernoulli(0.7) ? Band::k2_4GHz : Band::k5GHz;
    env.AddAccessPoint(ap);
  }
}

/// Uniform point in a ring at [min_d, max_d] outside the fence
/// rectangle (offset-rectangle parameterization).
Point RingPoint(const Environment& env, double min_d, double max_d,
                math::Rng& rng) {
  const double d = rng.Uniform(min_d, max_d);
  const double w = env.fence_width() + 2.0 * d;
  const double h = env.fence_height() + 2.0 * d;
  const double perim = 2.0 * (w + h);
  double s = rng.Uniform(0.0, perim);
  const double x0 = -d;
  const double y0 = -d;
  if (s < w) return Point{x0 + s, y0};
  s -= w;
  if (s < h) return Point{x0 + w, y0 + s};
  s -= h;
  if (s < w) return Point{x0 + w - s, y0 + h};
  s -= w;
  return Point{x0, y0 + h - s};
}

}  // namespace

Environment BuildEnvironment(const ScenarioConfig& config) {
  GEM_CHECK(config.width_m > 0 && config.height_m > 0);
  math::Rng rng(config.seed);
  Environment env;
  env.SetFence(config.width_m, config.height_m, config.floors);
  env.AddExteriorWalls(config.exterior_wall_db);

  // Interior partitions: alternating vertical/horizontal segments.
  for (int i = 0; i < config.interior_walls; ++i) {
    Wall wall;
    wall.attenuation_db = config.interior_wall_db;
    wall.extra_5ghz_db = 2.0;
    wall.floor = config.floors > 1 ? i % config.floors : 0;
    if (i % 2 == 0) {
      const double x = rng.Uniform(0.25, 0.75) * config.width_m;
      wall.a = Point{x, 0.0};
      wall.b = Point{x, rng.Uniform(0.5, 0.9) * config.height_m};
    } else {
      const double y = rng.Uniform(0.25, 0.75) * config.height_m;
      wall.a = Point{0.0, y};
      wall.b = Point{rng.Uniform(0.5, 0.9) * config.width_m, y};
    }
    env.AddWall(wall);
  }

  int mac_counter = static_cast<int>(config.seed % 1000) * 1000;
  for (int i = 0; i < config.inside_aps; ++i) {
    const Point pos{rng.Uniform(0.15, 0.85) * config.width_m,
                    rng.Uniform(0.15, 0.85) * config.height_m};
    const int floor = config.floors > 1 ? i % config.floors : 0;
    PlaceAp(env, mac_counter, pos, floor,
            rng.Bernoulli(config.dual_band_fraction), rng);
  }
  for (int i = 0; i < config.near_aps; ++i) {
    PlaceAp(env, mac_counter, RingPoint(env, 2.0, 12.0, rng),
            config.floors > 1 ? rng.UniformInt(config.floors) : 0,
            rng.Bernoulli(config.dual_band_fraction), rng);
  }
  for (int i = 0; i < config.far_aps; ++i) {
    PlaceAp(env, mac_counter, RingPoint(env, 12.0, 30.0, rng),
            0, rng.Bernoulli(config.dual_band_fraction), rng);
  }
  return env;
}

ScenarioConfig HomePreset(int user_index) {
  GEM_CHECK(user_index >= 0 && user_index < 10);
  // Mirrors Table II: {area m^2, target MAC count}. AP counts below are
  // chosen so the emitted MAC count (with the dual-band fraction)
  // roughly matches the paper's per-user #MACs column.
  ScenarioConfig c;
  c.seed = 1000 + static_cast<uint64_t>(user_index);
  switch (user_index) {
    case 0:  // ~10 m^2 dorm, 20 MACs
      c = {"user1_dorm", 4.0, 2.5, 1, 1, 8, 5, 0.4, 1, 3.0, 8.0, c.seed};
      break;
    case 1:  // ~10 m^2 dorm, 26 MACs
      c = {"user2_dorm", 3.5, 3.0, 1, 1, 10, 7, 0.4, 1, 3.0, 8.0, c.seed};
      break;
    case 2:  // ~50 m^2 apartment, 33 MACs
      c = {"user3_apt", 8.0, 6.0, 1, 2, 13, 8, 0.4, 2, 3.0, 8.0, c.seed};
      break;
    case 3:  // ~50 m^2 apartment, 16 MACs
      c = {"user4_apt", 8.0, 6.5, 1, 1, 6, 4, 0.4, 2, 3.0, 8.0, c.seed};
      break;
    case 4:  // ~50 m^2 apartment, 20 MACs
      c = {"user5_apt", 7.0, 7.0, 1, 1, 8, 5, 0.4, 2, 3.0, 8.0, c.seed};
      break;
    case 5:  // ~100 m^2 apartment, 65 MACs
      c = {"user6_apt", 12.0, 8.5, 1, 2, 26, 18, 0.4, 3, 3.0, 8.0, c.seed};
      break;
    case 6:  // ~100 m^2 apartment, 45 MACs
      c = {"user7_apt", 11.0, 9.0, 1, 2, 18, 12, 0.4, 3, 3.0, 8.0, c.seed};
      break;
    case 7:  // ~100 m^2 apartment, 73 MACs
      c = {"user8_apt", 12.5, 8.0, 1, 2, 30, 20, 0.4, 3, 3.0, 8.0, c.seed};
      break;
    case 8:  // ~100 m^2 apartment, 57 MACs
      c = {"user9_apt", 10.0, 10.0, 1, 2, 22, 16, 0.4, 3, 3.0, 8.0, c.seed};
      break;
    case 9:  // ~200 m^2 detached two-story house, 12 MACs
      c = {"user10_house", 12.0, 8.5, 2, 2, 4, 2, 0.4, 2, 3.0, 9.0,
           c.seed};
      break;
  }
  return c;
}

ScenarioConfig LabPreset() {
  ScenarioConfig c;
  c.name = "lab";
  c.width_m = 12.0;
  c.height_m = 8.5;
  c.floors = 1;
  c.inside_aps = 8;  // an office floor is dense with managed APs
  c.near_aps = 20;
  c.far_aps = 14;
  c.dual_band_fraction = 0.5;
  c.interior_walls = 3;
  c.exterior_wall_db = 6.0;  // office drywall + glass
  c.seed = 4242;
  return c;
}

int TotalMacs(const Environment& env) {
  std::set<std::string> macs;
  for (const AccessPoint& ap : env.access_points()) macs.insert(ap.mac);
  return static_cast<int>(macs.size());
}

}  // namespace gem::rf

#include "rf/dataset.h"

#include <algorithm>

#include "base/check.h"
#include "base/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gem::rf {
namespace {

void AppendScans(const Scanner& scanner, const Trajectory& traj,
                 double time_offset_s, math::Rng& rng,
                 std::vector<ScanRecord>& out) {
  for (const TimedPoint& tp : traj) {
    out.push_back(
        scanner.Scan(tp.position, tp.floor, time_offset_s + tp.time_s, rng));
  }
}

}  // namespace

Dataset GenerateDataset(const Environment& env, const PropagationModel& model,
                        const DatasetOptions& options) {
  GEM_TRACE_SPAN("rf.generate_dataset");
  math::Rng rng(options.seed);
  Scanner scanner(&env, &model);
  scanner.SetTimeOfDayProfile(options.time_of_day);

  Dataset dataset;

  // Initial training: the perimeter walk inside the premises,
  // followed by a short stretch of ordinary indoor movement.
  const double perimeter_s =
      options.train_perimeter_fraction * options.train_duration_s;
  const Trajectory train_walk = PerimeterWalk(
      env, options.walk_speed_mps, perimeter_s,
      options.train_scan_interval_s);
  AppendScans(scanner, train_walk, 0.0, rng, dataset.train);
  const double interior_s = options.train_duration_s - perimeter_s;
  if (interior_s > options.train_scan_interval_s) {
    const Trajectory interior_walk = RandomWaypointInside(
        env, options.walk_speed_mps, interior_s,
        options.train_scan_interval_s, rng);
    AppendScans(scanner, interior_walk, perimeter_s, rng, dataset.train);
  }

  // Test stream: alternating inside / outside segments, time-ordered.
  double t = options.train_duration_s;
  for (int seg = 0; seg < options.test_segments; ++seg) {
    Trajectory traj;
    if (seg % 2 == 0) {
      traj = RandomWaypointInside(env, options.walk_speed_mps,
                                  options.test_segment_duration_s,
                                  options.test_scan_interval_s, rng);
    } else {
      traj = OutsideWalk(env, options.outside_min_m, options.outside_max_m,
                         options.walk_speed_mps,
                         options.test_segment_duration_s,
                         options.test_scan_interval_s, rng);
    }
    AppendScans(scanner, traj, t, rng, dataset.test);
    t += options.test_segment_duration_s;
  }

  static obs::Counter& train_records = obs::MetricsRegistry::Get().GetCounter(
      "gem_dataset_records_total", {{"split", "train"}});
  static obs::Counter& test_records = obs::MetricsRegistry::Get().GetCounter(
      "gem_dataset_records_total", {{"split", "test"}});
  static obs::Gauge& ap_gauge =
      obs::MetricsRegistry::Get().GetGauge("gem_dataset_aps");
  train_records.Increment(dataset.train.size());
  test_records.Increment(dataset.test.size());
  ap_gauge.Set(static_cast<double>(env.access_points().size()));
  return dataset;
}

Dataset GenerateScenarioDataset(const ScenarioConfig& scenario,
                                const DatasetOptions& options,
                                PropagationConfig prop) {
  const Environment env = BuildEnvironment(scenario);
  const PropagationModel model(&env, prop);
  return GenerateDataset(env, model, options);
}

std::vector<Dataset> GenerateScenarioDatasets(
    const std::vector<ScenarioJob>& jobs, int num_threads) {
  GEM_TRACE_SPAN("rf.generate_batch");
  std::vector<Dataset> datasets(jobs.size());
  ThreadPool pool(std::max(1, num_threads));
  // Each job owns its environment, model, and RNG (seeded from its
  // options), so parallel jobs share nothing and slot i is the same
  // dataset the sequential loop would produce.
  pool.ParallelFor(static_cast<long>(jobs.size()),
                   [&](int, long begin, long end) {
                     for (long i = begin; i < end; ++i) {
                       datasets[i] = GenerateScenarioDataset(
                           jobs[i].scenario, jobs[i].options, jobs[i].prop);
                     }
                   });
  return datasets;
}

}  // namespace gem::rf

#include "rf/dynamics.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "base/check.h"

namespace gem::rf {

std::vector<std::string> CollectMacs(const std::vector<ScanRecord>& records) {
  std::vector<std::string> macs;
  std::unordered_set<std::string> seen;
  for (const ScanRecord& record : records) {
    for (const Reading& reading : record.readings) {
      if (seen.insert(reading.mac).second) macs.push_back(reading.mac);
    }
  }
  return macs;
}

void RemoveMacs(std::vector<ScanRecord>& records,
                const std::vector<std::string>& macs) {
  const std::unordered_set<std::string> to_remove(macs.begin(), macs.end());
  for (ScanRecord& record : records) {
    auto& r = record.readings;
    r.erase(std::remove_if(r.begin(), r.end(),
                           [&](const Reading& reading) {
                             return to_remove.count(reading.mac) > 0;
                           }),
            r.end());
  }
}

std::vector<std::string> SampleMacSubset(
    const std::vector<ScanRecord>& records, double fraction,
    math::Rng& rng) {
  GEM_CHECK(fraction >= 0.0 && fraction <= 1.0);
  std::vector<std::string> macs = CollectMacs(records);
  rng.Shuffle(macs);
  const size_t count = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(macs.size())));
  macs.resize(std::min(count, macs.size()));
  return macs;
}

void ApplyApOnOffDynamics(std::vector<ScanRecord>& records, double p,
                          double q, int block_size, math::Rng& rng) {
  GEM_CHECK(p >= 0.0 && p <= 1.0 && q >= 0.0 && q <= 1.0);
  GEM_CHECK(block_size > 0);
  std::unordered_map<std::string, bool> on;  // state per MAC; default ON
  for (const std::string& mac : CollectMacs(records)) on[mac] = true;

  for (size_t start = 0; start < records.size();
       start += static_cast<size_t>(block_size)) {
    // Transition every MAC at the block boundary (including the first
    // block: the paper's process transitions every 30 samples
    // throughout the whole stream, self-transitions included).
    if (start > 0) {
      for (auto& [mac, state] : on) {
        if (state) {
          if (rng.Bernoulli(p)) state = false;
        } else {
          if (rng.Bernoulli(q)) state = true;
        }
      }
    }
    const size_t end =
        std::min(records.size(), start + static_cast<size_t>(block_size));
    for (size_t i = start; i < end; ++i) {
      auto& r = records[i].readings;
      r.erase(std::remove_if(r.begin(), r.end(),
                             [&](const Reading& reading) {
                               const auto it = on.find(reading.mac);
                               return it != on.end() && !it->second;
                             }),
              r.end());
    }
  }
}

void FilterBand(std::vector<ScanRecord>& records, Band band) {
  for (ScanRecord& record : records) {
    auto& r = record.readings;
    r.erase(std::remove_if(
                r.begin(), r.end(),
                [&](const Reading& reading) { return reading.band != band; }),
            r.end());
  }
}

}  // namespace gem::rf

#ifndef GEM_RF_SCENARIO_H_
#define GEM_RF_SCENARIO_H_

#include <string>

#include "rf/environment.h"
#include "rf/propagation.h"

namespace gem::rf {

/// Declarative description of a simulated premises and its ambient RF
/// neighborhood; BuildEnvironment turns it into a concrete Environment
/// with deterministic (seeded) AP/wall placement.
struct ScenarioConfig {
  std::string name = "home";
  double width_m = 8.0;
  double height_m = 6.0;
  int floors = 1;

  /// APs physically inside the fence (the home's own router(s)).
  int inside_aps = 1;
  /// Neighbor APs in a near ring just outside (2-12 m from boundary).
  int near_aps = 8;
  /// Distant ambient APs (12-30 m).
  int far_aps = 6;
  /// Fraction of APs that are dual-band (emit a 2.4 GHz MAC and a
  /// 5 GHz MAC from the same position).
  double dual_band_fraction = 0.4;

  /// Interior partitions (count) splitting the premises.
  int interior_walls = 2;
  double interior_wall_db = 3.0;
  /// Exterior (boundary) wall attenuation; brick ~8-10 dB.
  double exterior_wall_db = 9.0;

  uint64_t seed = 1;
};

/// Materializes the scenario: fence + walls + deterministic AP layout.
Environment BuildEnvironment(const ScenarioConfig& config);

/// The ten home presets of Table II (areas ~10 to ~200 m^2, MAC counts
/// from ~12 to ~73). `user_index` in [0, 10).
ScenarioConfig HomePreset(int user_index);

/// The ~100 m^2 lab with a busy corridor used in Section VI-D.
ScenarioConfig LabPreset();

/// Number of distinct MACs the scenario's environment emits.
int TotalMacs(const Environment& env);

}  // namespace gem::rf

#endif  // GEM_RF_SCENARIO_H_

#ifndef GEM_RF_DYNAMICS_H_
#define GEM_RF_DYNAMICS_H_

#include <string>
#include <vector>

#include "math/rng.h"
#include "rf/types.h"

namespace gem::rf {

/// All distinct MACs appearing in `records`, in first-seen order.
std::vector<std::string> CollectMacs(const std::vector<ScanRecord>& records);

/// Removes every reading whose MAC is in `macs` (Figures 10-11's MAC
/// pruning). Records may become empty; they are kept (an empty record
/// is itself a realistic degenerate case the pipeline must handle).
void RemoveMacs(std::vector<ScanRecord>& records,
                const std::vector<std::string>& macs);

/// Samples ceil(fraction * #macs) distinct MACs uniformly at random.
std::vector<std::string> SampleMacSubset(const std::vector<ScanRecord>& records,
                                         double fraction, math::Rng& rng);

/// Applies the two-state Markov ON/OFF process of Figure 12 to a
/// time-ordered record stream: every MAC starts ON; every `block_size`
/// consecutive records each MAC transitions ON->OFF with probability p
/// and OFF->ON with probability q (self-transitions otherwise). While a
/// MAC is OFF its readings are dropped from the records in that block.
void ApplyApOnOffDynamics(std::vector<ScanRecord>& records, double p,
                          double q, int block_size, math::Rng& rng);

/// Keeps only readings in the given band (Figure 15(d)).
void FilterBand(std::vector<ScanRecord>& records, Band band);

}  // namespace gem::rf

#endif  // GEM_RF_DYNAMICS_H_

#ifndef GEM_RF_RECORD_IO_H_
#define GEM_RF_RECORD_IO_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"
#include "rf/types.h"

namespace gem::rf {

/// Persists scan records as CSV so real-device scan logs can be fed to
/// the library and simulated datasets can be exported for inspection.
///
/// Format (one row per reading, records grouped by record_id):
///   record_id,timestamp_s,inside,mac,rss_dbm,band
/// `inside` is 1/0 ground truth (use 0 when unknown); band is "2.4" or
/// "5". A record with no readings is not representable and is skipped
/// on save.
Status SaveRecordsCsv(const std::string& path,
                      const std::vector<ScanRecord>& records);

/// Loads records saved by SaveRecordsCsv (or hand-written in the same
/// format). Rows sharing a record_id are grouped into one record, in
/// file order. Returns InvalidArgument on malformed rows.
Result<std::vector<ScanRecord>> LoadRecordsCsv(const std::string& path);

}  // namespace gem::rf

#endif  // GEM_RF_RECORD_IO_H_

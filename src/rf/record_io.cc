#include "rf/record_io.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace gem::rf {

Status SaveRecordsCsv(const std::string& path,
                      const std::vector<ScanRecord>& records) {
  std::ofstream out(path);
  if (!out.good()) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  out << "record_id,timestamp_s,inside,mac,rss_dbm,band\n";
  long id = 0;
  for (const ScanRecord& record : records) {
    for (const Reading& reading : record.readings) {
      out << id << ',' << record.timestamp_s << ','
          << (record.inside ? 1 : 0) << ',' << reading.mac << ','
          << reading.rss_dbm << ','
          << (reading.band == Band::k5GHz ? "5" : "2.4") << '\n';
    }
    ++id;
  }
  if (!out.good()) return Status::Internal("write to " + path + " failed");
  return Status::Ok();
}

Result<std::vector<ScanRecord>> LoadRecordsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::NotFound("cannot open " + path);
  }
  std::vector<ScanRecord> records;
  long current_id = -1;
  std::string line;
  bool first = true;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (first) {  // header
      first = false;
      continue;
    }
    std::istringstream row(line);
    std::string id_s, ts_s, inside_s, mac, rss_s, band_s;
    if (!std::getline(row, id_s, ',') || !std::getline(row, ts_s, ',') ||
        !std::getline(row, inside_s, ',') || !std::getline(row, mac, ',') ||
        !std::getline(row, rss_s, ',') || !std::getline(row, band_s)) {
      return Status::InvalidArgument("malformed row at line " +
                                     std::to_string(line_no));
    }
    char* end = nullptr;
    const long id = std::strtol(id_s.c_str(), &end, 10);
    if (end == id_s.c_str()) {
      return Status::InvalidArgument("bad record_id at line " +
                                     std::to_string(line_no));
    }
    const double ts = std::strtod(ts_s.c_str(), &end);
    const double rss = std::strtod(rss_s.c_str(), &end);
    if (end == rss_s.c_str()) {
      return Status::InvalidArgument("bad rss at line " +
                                     std::to_string(line_no));
    }
    if (id != current_id) {
      records.emplace_back();
      records.back().timestamp_s = ts;
      records.back().inside = inside_s == "1";
      current_id = id;
    }
    Reading reading;
    reading.mac = mac;
    reading.rss_dbm = rss;
    reading.band = band_s.rfind('5', 0) == 0 ? Band::k5GHz : Band::k2_4GHz;
    records.back().readings.push_back(std::move(reading));
  }
  return records;
}

}  // namespace gem::rf

#include "rf/record_io.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "fault/failpoint.h"

namespace gem::rf {

Status SaveRecordsCsv(const std::string& path,
                      const std::vector<ScanRecord>& records) {
  std::ofstream out(path);
  if (!out.good()) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  out << "record_id,timestamp_s,inside,mac,rss_dbm,band\n";
  long id = 0;
  for (const ScanRecord& record : records) {
    for (const Reading& reading : record.readings) {
      out << id << ',' << record.timestamp_s << ','
          << (record.inside ? 1 : 0) << ',' << reading.mac << ','
          << reading.rss_dbm << ','
          << (reading.band == Band::k5GHz ? "5" : "2.4") << '\n';
    }
    ++id;
  }
  if (!out.good()) return Status::Internal("write to " + path + " failed");
  return Status::Ok();
}

namespace {

/// Strips the trailing '\r' of CRLF files (scan logs exported from
/// Windows tools are common in practice).
void StripCr(std::string& s) {
  if (!s.empty() && s.back() == '\r') s.pop_back();
}

/// Full-string numeric parses: trailing garbage ("12abc", "-50dBm") is
/// a malformed row, not a silently truncated value.
bool ParseLong(const std::string& s, long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

Result<std::vector<ScanRecord>> LoadRecordsCsv(const std::string& path) {
  GEM_FAILPOINT("rf.record_io.open");
  std::ifstream in(path);
  if (!in.good()) {
    return Status::NotFound("cannot open " + path);
  }
  std::vector<ScanRecord> records;
  // record_id -> index in `records`: rows sharing an id group into one
  // record even when another id's rows interleave (multi-device logs
  // merged by timestamp do this); first-seen order is kept.
  std::map<long, size_t> index_by_id;
  std::string line;
  bool saw_header = false;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    StripCr(line);
    if (line.empty()) continue;
    if (!saw_header) {
      saw_header = true;
      continue;
    }
    // Models a read error / hostile row surfacing mid-file: the loader
    // must abandon the parse with a definite Status, never return a
    // partially-grouped record set.
    GEM_FAILPOINT("rf.record_io.row");
    std::istringstream row(line);
    std::string id_s, ts_s, inside_s, mac, rss_s, band_s;
    if (!std::getline(row, id_s, ',') || !std::getline(row, ts_s, ',') ||
        !std::getline(row, inside_s, ',') || !std::getline(row, mac, ',') ||
        !std::getline(row, rss_s, ',') || !std::getline(row, band_s)) {
      return Status::InvalidArgument("malformed row at line " +
                                     std::to_string(line_no) + " of " + path);
    }
    long id = 0;
    if (!ParseLong(id_s, &id)) {
      return Status::InvalidArgument("bad record_id '" + id_s + "' at line " +
                                     std::to_string(line_no));
    }
    double ts = 0.0;
    if (!ParseDouble(ts_s, &ts)) {
      return Status::InvalidArgument("bad timestamp_s '" + ts_s +
                                     "' at line " + std::to_string(line_no));
    }
    if (inside_s != "0" && inside_s != "1") {
      return Status::InvalidArgument("bad inside flag '" + inside_s +
                                     "' (want 0 or 1) at line " +
                                     std::to_string(line_no));
    }
    if (mac.empty()) {
      return Status::InvalidArgument("empty mac at line " +
                                     std::to_string(line_no));
    }
    double rss = 0.0;
    if (!ParseDouble(rss_s, &rss)) {
      return Status::InvalidArgument("bad rss '" + rss_s + "' at line " +
                                     std::to_string(line_no));
    }
    Band band;
    if (band_s == "5") {
      band = Band::k5GHz;
    } else if (band_s == "2.4") {
      band = Band::k2_4GHz;
    } else {
      return Status::InvalidArgument("unknown band '" + band_s +
                                     "' (want 2.4 or 5) at line " +
                                     std::to_string(line_no));
    }

    const auto [it, inserted] =
        index_by_id.emplace(id, records.size());
    if (inserted) {
      records.emplace_back();
      records.back().timestamp_s = ts;
      records.back().inside = inside_s == "1";
    }
    Reading reading;
    reading.mac = std::move(mac);
    reading.rss_dbm = rss;
    reading.band = band;
    records[it->second].readings.push_back(std::move(reading));
  }
  if (!saw_header) {
    return Status::InvalidArgument(path + ": empty file (missing header)");
  }
  return records;
}

}  // namespace gem::rf

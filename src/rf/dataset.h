#ifndef GEM_RF_DATASET_H_
#define GEM_RF_DATASET_H_

#include <vector>

#include "math/rng.h"
#include "rf/propagation.h"
#include "rf/scanner.h"
#include "rf/scenario.h"
#include "rf/trajectory.h"
#include "rf/types.h"

namespace gem::rf {

/// A simulated user's data: the initial in-premises training walk and a
/// time-ordered, labeled test stream mixing inside and outside periods.
struct Dataset {
  std::vector<ScanRecord> train;
  std::vector<ScanRecord> test;
};

/// Knobs for dataset generation; defaults mirror the paper's protocol
/// (a 5-10 minute perimeter walk for training, then hours of normal
/// life alternating inside and outside) scaled down to keep experiment
/// runtime reasonable.
struct DatasetOptions {
  double walk_speed_mps = 0.8;
  double train_duration_s = 480.0;
  double train_scan_interval_s = 2.0;
  /// Fraction of the training window spent on the perimeter walk; the
  /// rest is ordinary indoor movement (the paper's user walks the
  /// perimeter for a few minutes and then lives as usual — the first
  /// interior minutes are also in-premises training data).
  double train_perimeter_fraction = 1.0;

  /// The test stream alternates inside/outside segments of this length.
  int test_segments = 6;
  double test_segment_duration_s = 150.0;
  double test_scan_interval_s = 3.0;

  /// Outside positions range from just past the boundary (hard cases)
  /// to clearly away.
  double outside_min_m = 0.5;
  double outside_max_m = 15.0;

  /// Environment busyness; defaults to a typical quiet home.
  TimeOfDayProfile time_of_day = ProfileQuietHome();
  uint64_t seed = 7;
};

/// Simulates one user in `env`: perimeter-walk training records plus a
/// time-ordered test stream with ground-truth inside labels.
Dataset GenerateDataset(const Environment& env, const PropagationModel& model,
                        const DatasetOptions& options);

/// Convenience: builds the environment and model for a scenario, then
/// generates the dataset.
Dataset GenerateScenarioDataset(const ScenarioConfig& scenario,
                                const DatasetOptions& options,
                                PropagationConfig prop = {});

/// Generates one dataset per (scenario, options) job on `num_threads`
/// workers. Each job is independent and fully seeded by its own
/// options, so the output is bit-identical to the sequential
/// GenerateScenarioDataset loop at any thread count; slot i holds
/// job i's dataset. The multi-home benchmarks use this to amortize
/// simulation across cores.
struct ScenarioJob {
  ScenarioConfig scenario;
  DatasetOptions options;
  PropagationConfig prop;
};
std::vector<Dataset> GenerateScenarioDatasets(
    const std::vector<ScenarioJob>& jobs, int num_threads = 1);

}  // namespace gem::rf

#endif  // GEM_RF_DATASET_H_

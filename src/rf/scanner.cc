#include "rf/scanner.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "base/check.h"

namespace gem::rf {

TimeOfDayProfile ProfileAt11Am() {
  TimeOfDayProfile p;
  p.mean_offset_db = 0.0;
  p.extra_noise_sigma_db = 1.5;
  p.transient_macs_per_scan = 2.0;
  p.dropout_probability = 0.05;
  p.transient_pool_size = 40;
  return p;
}

TimeOfDayProfile ProfileAt4Pm() {
  // The busy hour: the paper's Table IV shows MORE MACs at 4 PM with a
  // LOWER mean RSS — the mean drop is composition (a crowd of weak
  // transient devices), not attenuation of the fixed APs, which only
  // lose a few dB to body absorption.
  TimeOfDayProfile p;
  p.mean_offset_db = -4.0;
  p.extra_noise_sigma_db = 7.0;
  p.transient_macs_per_scan = 7.0;
  p.dropout_probability = 0.10;
  p.transient_pool_size = 140;
  return p;
}

TimeOfDayProfile ProfileAt9Pm() {
  TimeOfDayProfile p;
  p.mean_offset_db = -3.0;
  p.extra_noise_sigma_db = 4.0;
  p.transient_macs_per_scan = 0.5;
  p.dropout_probability = 0.03;
  p.transient_pool_size = 12;
  return p;
}

TimeOfDayProfile ProfileQuietHome() {
  TimeOfDayProfile p;
  p.mean_offset_db = 0.0;
  p.extra_noise_sigma_db = 1.0;
  p.transient_macs_per_scan = 0.3;
  p.dropout_probability = 0.02;
  return p;
}

Scanner::Scanner(const Environment* env, const PropagationModel* model)
    : env_(env), model_(model) {
  GEM_CHECK(env != nullptr && model != nullptr);
}

ScanRecord Scanner::Scan(Point position, int floor, double timestamp_s,
                         math::Rng& rng) const {
  ScanRecord record;
  record.timestamp_s = timestamp_s;
  record.position = position;
  record.floor = floor;
  record.inside = env_->InsideFence(position);

  const double common_drift = model_->CommonDriftDb(timestamp_s);
  for (const AccessPoint& ap : env_->access_points()) {
    const double mean = model_->MeanRssDbm(ap, position, floor, timestamp_s) +
                        profile_.mean_offset_db + common_drift;
    const double p_detect = model_->DetectionProbability(mean);
    if (p_detect <= 0.0 || !rng.Bernoulli(p_detect)) continue;
    if (profile_.dropout_probability > 0.0) {
      // Scan misses are SNR-driven: a strong AP is almost never
      // dropped, one near the sensitivity floor frequently is.
      const double strong_rss = -50.0;
      const double span = strong_rss - model_->config().sensitivity_dbm;
      const double factor =
          std::clamp((strong_rss - mean) / span, 0.05, 1.0);
      if (rng.Bernoulli(profile_.dropout_probability * factor)) continue;
    }
    const double sigma =
        std::sqrt(model_->config().noise_sigma_db *
                      model_->config().noise_sigma_db +
                  profile_.extra_noise_sigma_db *
                      profile_.extra_noise_sigma_db);
    double rss = mean + rng.Normal(0.0, sigma);
    // Physical floor: a detected reading cannot be far below the
    // sensitivity of the radio.
    rss = std::max(rss, model_->config().sensitivity_dbm - 6.0);
    record.readings.push_back(Reading{ap.mac, rss, ap.band});
  }

  // Transient MACs (phones/hotspots of passers-by): weak, short-lived,
  // each with a unique never-repeating MAC.
  if (profile_.transient_macs_per_scan > 0.0) {
    // Poisson via repeated Bernoulli thinning would be overkill; a
    // simple geometric-ish draw around the mean suffices here.
    const int count = static_cast<int>(std::floor(
        profile_.transient_macs_per_scan + rng.Normal(0.0, 1.0) + 0.5));
    // People dwell for tens of minutes: transient MACs recur within a
    // half-hour window, then the crowd rotates.
    const long epoch = static_cast<long>(timestamp_s / 1800.0);
    for (int i = 0; i < std::max(count, 0); ++i) {
      Reading r;
      const long id = profile_.transient_pool_size > 0
                          ? rng.UniformInt(profile_.transient_pool_size)
                          : ++transient_counter_;
      r.mac = "transient:" + std::to_string(epoch) + ":" +
              std::to_string(id);
      r.rss_dbm = rng.Uniform(-92.0, -82.0);
      r.band = rng.Bernoulli(0.5) ? Band::k2_4GHz : Band::k5GHz;
      record.readings.push_back(std::move(r));
    }
  }
  return record;
}

}  // namespace gem::rf

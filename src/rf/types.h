#ifndef GEM_RF_TYPES_H_
#define GEM_RF_TYPES_H_

#include <string>
#include <vector>

namespace gem::rf {

/// 2-D position in meters (per-floor coordinates).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// WiFi frequency band of a transmitter. Higher bands attenuate more
/// through walls, which the paper's Figure 15(d) exploits: 5 GHz signals
/// are better confined to the premises.
enum class Band { k2_4GHz, k5GHz };

/// One sensed (MAC, RSS) pair inside a scan record. The band is known
/// from the scanned channel on real hardware and is carried here so the
/// band-availability experiment can filter records.
struct Reading {
  std::string mac;
  double rss_dbm = -100.0;
  Band band = Band::k2_4GHz;
};

/// A single RF signal record: the variable-length list of APs (by MAC)
/// a scan sensed, with their RSS values. Ground-truth fields are filled
/// by the simulator and used only for evaluation, never by the
/// algorithms.
struct ScanRecord {
  std::vector<Reading> readings;
  double timestamp_s = 0.0;

  // Ground truth (simulator-only).
  Point position;
  int floor = 0;
  bool inside = false;
};

}  // namespace gem::rf

#endif  // GEM_RF_TYPES_H_

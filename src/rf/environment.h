#ifndef GEM_RF_ENVIRONMENT_H_
#define GEM_RF_ENVIRONMENT_H_

#include <string>
#include <vector>

#include "rf/types.h"

namespace gem::rf {

/// A wall segment with a band-dependent attenuation. Exterior walls of
/// a premises (brick, ~8-10 dB) are what make inside/outside signal
/// characteristics differ; interior partitions (drywall, ~3 dB) create
/// the multimodal in-premises RSS structure the paper's histogram
/// detector is designed for.
struct Wall {
  Point a;
  Point b;
  int floor = 0;
  double attenuation_db = 3.0;
  /// Extra attenuation applied on top for 5 GHz signals.
  double extra_5ghz_db = 2.0;
};

/// A WiFi access point (transceiver). One MAC per transceiver; an AP
/// with dual-band radios appears as two entries sharing a position.
struct AccessPoint {
  std::string mac;
  Point position;
  int floor = 0;
  Band band = Band::k2_4GHz;
  /// Mean RSS measured at the 1 m reference distance.
  double ref_rss_1m_dbm = -40.0;
};

/// The simulated world: a rectangular geofenced premises (possibly
/// multiple floors), wall segments, and ambient APs both inside and
/// around the premises.
class Environment {
 public:
  Environment() = default;

  /// Defines the geofence as the axis-aligned rectangle
  /// [0, width] x [0, height] spanning `floors` floors.
  void SetFence(double width_m, double height_m, int floors = 1);

  void AddWall(Wall wall) { walls_.push_back(wall); }
  void AddAccessPoint(AccessPoint ap) { aps_.push_back(std::move(ap)); }

  double fence_width() const { return width_; }
  double fence_height() const { return height_; }
  int floors() const { return floors_; }
  const std::vector<Wall>& walls() const { return walls_; }
  const std::vector<AccessPoint>& access_points() const { return aps_; }
  std::vector<AccessPoint>& mutable_access_points() { return aps_; }

  /// True when p (on any floor) lies within the geofenced rectangle.
  bool InsideFence(Point p) const;

  /// Sum of wall attenuations (dB) along the straight segment from
  /// `from` to `to` on floor `floor`, for the given band.
  double WallAttenuationDb(Point from, Point to, int floor, Band band) const;

  /// Number of wall segments the straight path crosses on this floor.
  int CountWallCrossings(Point from, Point to, int floor) const;

  /// Adds the four exterior walls of the fence rectangle on every
  /// floor with the given attenuation.
  void AddExteriorWalls(double attenuation_db, double extra_5ghz_db = 3.0);

 private:
  double width_ = 0.0;
  double height_ = 0.0;
  int floors_ = 1;
  std::vector<Wall> walls_;
  std::vector<AccessPoint> aps_;
};

/// True when segments (p1,p2) and (q1,q2) properly intersect.
bool SegmentsIntersect(Point p1, Point p2, Point q1, Point q2);

}  // namespace gem::rf

#endif  // GEM_RF_ENVIRONMENT_H_

#include "rf/trajectory.h"

#include <cmath>

#include "base/check.h"

namespace gem::rf {
namespace {

/// Position along the rectangle perimeter (counterclockwise from the
/// bottom-left corner), parameterized by arc length s in [0, perim).
Point PerimeterPoint(double x0, double y0, double w, double h, double s) {
  const double perim = 2.0 * (w + h);
  s = std::fmod(s, perim);
  if (s < 0.0) s += perim;
  if (s < w) return Point{x0 + s, y0};
  s -= w;
  if (s < h) return Point{x0 + w, y0 + s};
  s -= h;
  if (s < w) return Point{x0 + w - s, y0 + h};
  s -= w;
  return Point{x0, y0 + h - s};
}

}  // namespace

Trajectory PerimeterWalk(const Environment& env, double speed_mps,
                         double duration_s, double scan_interval_s,
                         double margin_m) {
  GEM_CHECK(speed_mps > 0.0 && duration_s > 0.0 && scan_interval_s > 0.0);
  const double w = std::max(env.fence_width() - 2.0 * margin_m, 0.1);
  const double h = std::max(env.fence_height() - 2.0 * margin_m, 0.1);
  const double perim = 2.0 * (w + h);
  const double lap_time = perim / speed_mps;

  Trajectory traj;
  for (double t = 0.0; t < duration_s; t += scan_interval_s) {
    const double s = speed_mps * t;
    TimedPoint tp;
    tp.position = PerimeterPoint(margin_m, margin_m, w, h, s);
    tp.time_s = t;
    // Alternate floors per lap on multi-story premises.
    if (env.floors() > 1) {
      tp.floor = static_cast<int>(std::floor(t / lap_time)) % env.floors();
    }
    traj.push_back(tp);
  }
  return traj;
}

Trajectory RandomWaypointInside(const Environment& env, double speed_mps,
                                double duration_s, double scan_interval_s,
                                math::Rng& rng) {
  GEM_CHECK(speed_mps > 0.0 && duration_s > 0.0 && scan_interval_s > 0.0);
  Trajectory traj;
  Point pos{env.fence_width() / 2.0, env.fence_height() / 2.0};
  int floor = 0;
  Point target{rng.Uniform(0.0, env.fence_width()),
               rng.Uniform(0.0, env.fence_height())};
  for (double t = 0.0; t < duration_s; t += scan_interval_s) {
    traj.push_back(TimedPoint{pos, floor, t});
    double remaining = speed_mps * scan_interval_s;
    while (remaining > 0.0) {
      const double dx = target.x - pos.x;
      const double dy = target.y - pos.y;
      const double dist = std::sqrt(dx * dx + dy * dy);
      if (dist <= remaining) {
        pos = target;
        remaining -= dist;
        target = Point{rng.Uniform(0.0, env.fence_width()),
                       rng.Uniform(0.0, env.fence_height())};
        if (env.floors() > 1 && rng.Bernoulli(0.1)) {
          floor = rng.UniformInt(env.floors());
        }
      } else {
        pos.x += dx / dist * remaining;
        pos.y += dy / dist * remaining;
        remaining = 0.0;
      }
    }
  }
  return traj;
}

Trajectory OutsideWalk(const Environment& env, double min_distance_m,
                       double max_distance_m, double speed_mps,
                       double duration_s, double scan_interval_s,
                       math::Rng& rng) {
  GEM_CHECK(max_distance_m >= min_distance_m && min_distance_m >= 0.0);
  GEM_CHECK(speed_mps > 0.0 && duration_s > 0.0 && scan_interval_s > 0.0);
  Trajectory traj;
  // Walk rings around the fence: each segment follows an offset
  // rectangle at a random distance within [min, max].
  double t = 0.0;
  while (t < duration_s) {
    const double d = rng.Uniform(min_distance_m, max_distance_m);
    const double x0 = -d;
    const double y0 = -d;
    const double w = env.fence_width() + 2.0 * d;
    const double h = env.fence_height() + 2.0 * d;
    const double perim = 2.0 * (w + h);
    const double start = rng.Uniform(0.0, perim);
    // One partial lap per ring, then re-randomize the distance.
    const double lap_duration =
        std::min(perim / speed_mps, duration_s - t);
    for (double u = 0.0; u < lap_duration; u += scan_interval_s) {
      TimedPoint tp;
      tp.position = PerimeterPoint(x0, y0, w, h, start + speed_mps * u);
      tp.time_s = t + u;
      traj.push_back(tp);
    }
    t += lap_duration;
  }
  return traj;
}

}  // namespace gem::rf

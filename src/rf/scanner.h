#ifndef GEM_RF_SCANNER_H_
#define GEM_RF_SCANNER_H_

#include <vector>

#include "math/rng.h"
#include "rf/propagation.h"
#include "rf/types.h"

namespace gem::rf {

/// Crowd/time-of-day modulation of the RF environment (Section VI-D,
/// Table IV): busy hours raise measurement variance, shift mean RSS
/// (bodies absorb signal), and add transient MACs from people's
/// devices.
struct TimeOfDayProfile {
  /// Added to every mean RSS (negative during busy hours).
  double mean_offset_db = 0.0;
  /// Added in quadrature to the temporal noise sigma.
  double extra_noise_sigma_db = 0.0;
  /// Expected number of transient device MACs visible per scan.
  double transient_macs_per_scan = 0.0;
  /// Probability that an otherwise-detected AP is missed (body
  /// blocking / channel congestion).
  double dropout_probability = 0.0;
  /// Size of the pool transient MACs are drawn from. People linger, so
  /// their devices reappear across nearby scans; 0 makes every
  /// transient MAC unique (worst case).
  int transient_pool_size = 0;
};

/// Busy midday, moderately busy afternoon, quiet evening — the LAB
/// environment of Section VI-D. Matches the qualitative regime of
/// Table IV: 4 PM shows the lowest mean RSS and the highest SD and MAC
/// count; 9 PM is quiet with fewer MACs.
TimeOfDayProfile ProfileAt11Am();
TimeOfDayProfile ProfileAt4Pm();
TimeOfDayProfile ProfileAt9Pm();

/// A typical quiet home (the Table I/II setting): light measurement
/// noise, rare passers-by, small scan-miss rate.
TimeOfDayProfile ProfileQuietHome();

/// Produces variable-length scan records at given positions. Each scan
/// samples every AP's RSS, applies the soft detection threshold, crowd
/// dropout, and appends transient MACs, yielding exactly the
/// variable-length `(MAC, RSS)` lists the paper's pipeline consumes.
class Scanner {
 public:
  Scanner(const Environment* env, const PropagationModel* model);

  void SetTimeOfDayProfile(TimeOfDayProfile profile) { profile_ = profile; }
  const TimeOfDayProfile& profile() const { return profile_; }

  /// One scan at position/floor; `timestamp_s` is recorded verbatim.
  ScanRecord Scan(Point position, int floor, double timestamp_s,
                  math::Rng& rng) const;

 private:
  const Environment* env_;
  const PropagationModel* model_;
  TimeOfDayProfile profile_;
  mutable long transient_counter_ = 0;
};

}  // namespace gem::rf

#endif  // GEM_RF_SCANNER_H_

#include "rf/environment.h"

#include <algorithm>

#include "base/check.h"

namespace gem::rf {
namespace {

double Cross(Point o, Point a, Point b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

int Sign(double v) {
  if (v > 0.0) return 1;
  if (v < 0.0) return -1;
  return 0;
}

}  // namespace

bool SegmentsIntersect(Point p1, Point p2, Point q1, Point q2) {
  const int d1 = Sign(Cross(q1, q2, p1));
  const int d2 = Sign(Cross(q1, q2, p2));
  const int d3 = Sign(Cross(p1, p2, q1));
  const int d4 = Sign(Cross(p1, p2, q2));
  // Proper intersection only; touching endpoints (collinear cases) do
  // not count as a wall crossing, which keeps paths that skim a wall
  // from double-counting.
  return d1 * d2 < 0 && d3 * d4 < 0;
}

void Environment::SetFence(double width_m, double height_m, int floors) {
  GEM_CHECK(width_m > 0.0 && height_m > 0.0 && floors >= 1);
  width_ = width_m;
  height_ = height_m;
  floors_ = floors;
}

bool Environment::InsideFence(Point p) const {
  return p.x >= 0.0 && p.x <= width_ && p.y >= 0.0 && p.y <= height_;
}

double Environment::WallAttenuationDb(Point from, Point to, int floor,
                                      Band band) const {
  double total = 0.0;
  for (const Wall& wall : walls_) {
    if (wall.floor != floor) continue;
    if (SegmentsIntersect(from, to, wall.a, wall.b)) {
      total += wall.attenuation_db;
      if (band == Band::k5GHz) total += wall.extra_5ghz_db;
    }
  }
  return total;
}

int Environment::CountWallCrossings(Point from, Point to, int floor) const {
  int count = 0;
  for (const Wall& wall : walls_) {
    if (wall.floor != floor) continue;
    if (SegmentsIntersect(from, to, wall.a, wall.b)) ++count;
  }
  return count;
}

void Environment::AddExteriorWalls(double attenuation_db,
                                   double extra_5ghz_db) {
  GEM_CHECK(width_ > 0.0 && height_ > 0.0);
  const Point bl{0, 0};
  const Point br{width_, 0};
  const Point tr{width_, height_};
  const Point tl{0, height_};
  for (int f = 0; f < floors_; ++f) {
    AddWall(Wall{bl, br, f, attenuation_db, extra_5ghz_db});
    AddWall(Wall{br, tr, f, attenuation_db, extra_5ghz_db});
    AddWall(Wall{tr, tl, f, attenuation_db, extra_5ghz_db});
    AddWall(Wall{tl, bl, f, attenuation_db, extra_5ghz_db});
  }
}

}  // namespace gem::rf

#ifndef GEM_RF_PROPAGATION_H_
#define GEM_RF_PROPAGATION_H_

#include "math/rng.h"
#include "rf/environment.h"
#include "rf/types.h"

namespace gem::rf {

/// Parameters of the log-distance path loss model with wall attenuation
/// and log-normal shadowing:
///
///   RSS = ref_rss_1m - 10 * n * log10(max(d, 0.5))
///         - walls(from, to) - floor_gap * floor_attenuation
///         + spatial_shadowing(mac, cell)   (deterministic per location)
///         + temporal_noise                 (fresh per measurement)
struct PropagationConfig {
  double path_loss_exponent = 2.8;
  /// 5 GHz free-space loss is higher; this offset is added to the
  /// distance term for 5 GHz APs (on top of their ref RSS).
  double extra_5ghz_path_db = 6.0;
  double floor_attenuation_db = 15.0;
  /// Std-dev of the frozen spatial shadowing field.
  double shadowing_sigma_db = 3.0;
  /// Grid cell size (m) over which the shadowing field is constant.
  double shadowing_cell_m = 2.0;
  /// Std-dev of per-measurement temporal noise.
  double noise_sigma_db = 2.0;
  /// Receiver sensitivity: mean RSS below this is undetectable.
  double sensitivity_dbm = -92.0;
  /// Width of the soft detection edge: detection probability falls
  /// linearly from 1 to 0 across [sensitivity, sensitivity - softness].
  double detection_softness_db = 6.0;
  /// Slow per-AP temporal drift (an interferer near one AP, a door
  /// opening): each AP's RSS oscillates with this amplitude around its
  /// static mean, with a per-AP phase and a period jittered around
  /// drift_period_s.
  double drift_amplitude_db = 1.0;
  double drift_period_s = 3000.0;
  /// Slow COMMON-MODE drift: receiver-side effects (body absorption,
  /// device orientation, crowd density) shift every AP's RSS in a scan
  /// together. This is the dominant real-world drift — Table IV's
  /// hour-scale mean-RSS swing — and it is what punishes absolute-RSS
  /// methods while leaving relative signal structure intact.
  double common_drift_amplitude_db = 3.0;
  double common_drift_period_s = 4000.0;
  /// Seed of the frozen shadowing field (part of the world, not of any
  /// one measurement stream).
  uint64_t shadowing_seed = 0xC0FFEE;
};

/// Deterministic-world propagation model. Mean RSS at a point is a pure
/// function of the environment (so repeated visits to the same spot see
/// the same spatial texture); measurement noise is drawn by the caller's
/// Rng.
class PropagationModel {
 public:
  PropagationModel(const Environment* env, PropagationConfig config);

  /// Mean (noise-free) RSS of `ap` at receiver position/floor and
  /// time, including path loss, walls, floors, the frozen shadowing
  /// field, and the slow per-AP drift. Does not include per-
  /// measurement noise.
  double MeanRssDbm(const AccessPoint& ap, Point rx, int rx_floor,
                    double time_s = 0.0) const;

  /// One noisy measurement: MeanRss + Gaussian temporal noise.
  double SampleRssDbm(const AccessPoint& ap, Point rx, int rx_floor,
                      math::Rng& rng, double time_s = 0.0) const;

  /// Probability that a signal with this mean RSS is detected by a
  /// scan (soft threshold around the sensitivity floor).
  double DetectionProbability(double mean_rss_dbm) const;

  const PropagationConfig& config() const { return config_; }

 private:
  /// Frozen shadowing: hash (mac, cell) -> N(0, sigma), stable across
  /// calls.
  double SpatialShadowingDb(const std::string& mac, Point rx) const;

  /// Slow sinusoidal drift of this AP at time t (deterministic per
  /// MAC).
  double DriftDb(const std::string& mac, double time_s) const;

 public:
  /// Common-mode (receiver-side) drift at time t, added to every AP of
  /// a scan by the Scanner.
  double CommonDriftDb(double time_s) const;

 private:

  const Environment* env_;
  PropagationConfig config_;
};

}  // namespace gem::rf

#endif  // GEM_RF_PROPAGATION_H_

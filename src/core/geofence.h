#ifndef GEM_CORE_GEOFENCE_H_
#define GEM_CORE_GEOFENCE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "rf/types.h"

namespace gem::core {

/// The in-out decision for one RF signal record.
enum class Decision { kInside, kOutside };

/// Result of processing one streaming record.
struct InferenceResult {
  Decision decision = Decision::kOutside;
  /// Algorithm-specific outlier score (higher = more likely outside).
  double score = 0.0;
  /// Whether the self-enhancement absorbed the record (GEM only).
  bool model_updated = false;
};

/// A complete geofencing system: trained once on in-premises records,
/// then fed the streaming records one at a time (stateful — GEM grows
/// its graph and detector online). Implemented by Gem, the generic
/// embedder+detector pipelines, SignatureHome, and Inoa.
class GeofencingSystem {
 public:
  virtual ~GeofencingSystem() = default;

  /// Trains on the initial in-premises records.
  virtual Status Train(const std::vector<rf::ScanRecord>& inside_records) = 0;

  /// Processes one new record in stream order.
  virtual InferenceResult Infer(const rf::ScanRecord& record) = 0;

  /// Short display name used in result tables.
  virtual std::string name() const = 0;
};

}  // namespace gem::core

#endif  // GEM_CORE_GEOFENCE_H_

#include "core/embedding_pipeline.h"

#include "base/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gem::core {

EmbeddingPipeline::EmbeddingPipeline(
    std::string name, std::unique_ptr<embed::RecordEmbedder> embedder,
    std::unique_ptr<detect::OutlierDetector> detector, bool online_update)
    : name_(std::move(name)),
      embedder_(std::move(embedder)),
      detector_(std::move(detector)),
      online_update_(online_update) {
  GEM_CHECK(embedder_ != nullptr && detector_ != nullptr);
}

Status EmbeddingPipeline::Train(
    const std::vector<rf::ScanRecord>& inside_records) {
  GEM_TRACE_SPAN("pipeline.train");
  Status status = embedder_->Fit(inside_records);
  if (!status.ok()) return status;
  std::vector<math::Vec> embeddings;
  embeddings.reserve(inside_records.size());
  for (int i = 0; i < embedder_->num_train(); ++i) {
    embeddings.push_back(embedder_->TrainEmbedding(i));
  }
  return detector_->Fit(embeddings);
}

InferenceResult EmbeddingPipeline::Infer(const rf::ScanRecord& record) {
  GEM_TRACE_SPAN("pipeline.infer");
  static obs::Counter& inside_count =
      obs::MetricsRegistry::Get().GetCounter("pipeline_decisions_total",
                                             {{"decision", "inside"}});
  static obs::Counter& outside_count =
      obs::MetricsRegistry::Get().GetCounter("pipeline_decisions_total",
                                             {{"decision", "outside"}});
  const StatusOr<math::Vec> embedding = embedder_->EmbedNew(record);
  InferenceResult result;
  if (!embedding.ok()) {
    result.decision = Decision::kOutside;
    result.score = 1.0;
    outside_count.Increment();
    return result;
  }
  result.score = detector_->Score(*embedding);
  result.decision = detector_->IsOutlier(*embedding) ? Decision::kOutside
                                                     : Decision::kInside;
  (result.decision == Decision::kInside ? inside_count : outside_count)
      .Increment();
  if (online_update_ && result.decision == Decision::kInside) {
    result.model_updated = detector_->MaybeUpdate(*embedding);
  }
  return result;
}

}  // namespace gem::core

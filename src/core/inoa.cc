#include "core/inoa.h"

#include <algorithm>

#include "base/check.h"
#include "math/stats.h"

namespace gem::core {
namespace {

/// Normalizes an RSS into roughly [0, 1] for the SVDD kernel.
double NormalizeRss(double rss_dbm) {
  return std::clamp((rss_dbm + 120.0) / 100.0, 0.0, 1.0);
}

}  // namespace

Inoa::Inoa(InoaOptions options) : options_(options) {}

math::Vec Inoa::PairFeature(double rss_a, double rss_b) {
  return {NormalizeRss(rss_a), NormalizeRss(rss_b)};
}

Status Inoa::Train(const std::vector<rf::ScanRecord>& inside_records) {
  if (inside_records.empty()) {
    return Status::InvalidArgument("no training records");
  }
  // Expand every record into per-pair feature points.
  std::map<PairKey, std::vector<math::Vec>> pair_points;
  for (const rf::ScanRecord& record : inside_records) {
    const auto& r = record.readings;
    for (size_t i = 0; i < r.size(); ++i) {
      for (size_t j = i + 1; j < r.size(); ++j) {
        const bool ordered = r[i].mac < r[j].mac;
        const PairKey key = ordered ? PairKey{r[i].mac, r[j].mac}
                                    : PairKey{r[j].mac, r[i].mac};
        const double a = ordered ? r[i].rss_dbm : r[j].rss_dbm;
        const double b = ordered ? r[j].rss_dbm : r[i].rss_dbm;
        pair_points[key].push_back(PairFeature(a, b));
      }
    }
  }

  // Keep the most frequently co-observed pairs.
  std::vector<std::pair<PairKey, size_t>> ranked;
  for (const auto& [key, points] : pair_points) {
    if (static_cast<int>(points.size()) >= options_.min_pair_count) {
      ranked.emplace_back(key, points.size());
    }
  }
  if (ranked.empty()) {
    return Status::FailedPrecondition(
        "no MAC pair co-observed often enough for INOA");
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (static_cast<int>(ranked.size()) > options_.max_pairs) {
    ranked.resize(options_.max_pairs);
  }

  models_.clear();
  for (const auto& [key, count] : ranked) {
    auto svdd = std::make_unique<detect::SvddDetector>(options_.svdd);
    Status status = svdd->Fit(pair_points[key]);
    if (!status.ok()) return status;
    models_.emplace(key, std::move(svdd));
  }

  // Calibrate the vote threshold on the training records themselves.
  math::Vec fractions;
  for (const rf::ScanRecord& record : inside_records) {
    const double fraction = InsideFraction(record);
    if (fraction >= 0.0) fractions.push_back(fraction);
  }
  if (fractions.empty()) {
    return Status::Internal("training records touch no modeled pair");
  }
  vote_threshold_ =
      math::Percentile(fractions, options_.threshold_percentile);
  return Status::Ok();
}

double Inoa::InsideFraction(const rf::ScanRecord& record) const {
  const auto& r = record.readings;
  int considered = 0;
  int votes = 0;
  for (size_t i = 0; i < r.size(); ++i) {
    for (size_t j = i + 1; j < r.size(); ++j) {
      const bool ordered = r[i].mac < r[j].mac;
      const PairKey key = ordered ? PairKey{r[i].mac, r[j].mac}
                                  : PairKey{r[j].mac, r[i].mac};
      const auto it = models_.find(key);
      if (it == models_.end()) continue;
      const double a = ordered ? r[i].rss_dbm : r[j].rss_dbm;
      const double b = ordered ? r[j].rss_dbm : r[i].rss_dbm;
      ++considered;
      votes += it->second->IsOutlier(PairFeature(a, b)) ? 0 : 1;
    }
  }
  if (considered == 0) return -1.0;
  return static_cast<double>(votes) / considered;
}

InferenceResult Inoa::Infer(const rf::ScanRecord& record) {
  InferenceResult result;
  const double fraction = InsideFraction(record);
  if (fraction < 0.0) {
    result.decision = Decision::kOutside;
    result.score = 1.0;
    return result;
  }
  result.score = 1.0 - fraction;
  result.decision = fraction >= vote_threshold_ ? Decision::kInside
                                                : Decision::kOutside;
  return result;
}

}  // namespace gem::core

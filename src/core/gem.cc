#include "core/gem.h"

#include "base/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gem::core {
namespace {

/// Decision counters for the three inference stages (Table III's
/// stage accounting). Resolved once; relaxed atomic adds afterwards.
obs::Counter& DecisionCounter(const char* decision) {
  return obs::MetricsRegistry::Get().GetCounter(
      "gem_decisions_total", {{"decision", decision}});
}

}  // namespace

Gem::Gem(GemConfig config)
    : config_(config),
      embedder_(config.bisage, config.edge_weight),
      detector_(config.detector) {}

Gem::Gem(FromPartsTag, GemConfig config, embed::BiSageEmbedder embedder,
         detect::EnhancedHbosDetector detector)
    : config_(std::move(config)),
      embedder_(std::move(embedder)),
      detector_(std::move(detector)),
      trained_(true) {}

Gem Gem::FromParts(GemConfig config, embed::BiSageEmbedder embedder,
                   detect::EnhancedHbosDetector detector) {
  GEM_CHECK(embedder.model().trained());
  return Gem(FromPartsTag{}, std::move(config), std::move(embedder),
             std::move(detector));
}

Status Gem::Train(const std::vector<rf::ScanRecord>& inside_records) {
  GEM_TRACE_SPAN("gem.train");
  static obs::Counter& train_records =
      obs::MetricsRegistry::Get().GetCounter("gem_train_records_total");
  train_records.Increment(inside_records.size());

  Status status;
  {
    GEM_TRACE_SPAN("gem.train.embedder_fit");
    status = embedder_.Fit(inside_records);
  }
  if (!status.ok()) return status;

  std::vector<math::Vec> embeddings;
  embeddings.reserve(inside_records.size());
  {
    GEM_TRACE_SPAN("gem.train.embed_train_set");
    for (int i = 0; i < embedder_.num_train(); ++i) {
      embeddings.push_back(embedder_.TrainEmbedding(i));
    }
  }
  {
    GEM_TRACE_SPAN("gem.train.detector_fit");
    status = detector_.Fit(embeddings);
  }
  if (!status.ok()) return status;
  trained_ = true;
  return Status::Ok();
}

std::optional<math::Vec> Gem::EmbedRecord(const rf::ScanRecord& record) {
  GEM_CHECK(trained_);
  GEM_TRACE_SPAN("gem.embed");
  return embedder_.EmbedNew(record);
}

InferenceResult Gem::Detect(const math::Vec& embedding) const {
  GEM_CHECK(trained_);
  GEM_TRACE_SPAN("gem.detect");
  static obs::Counter& inside_count = DecisionCounter("inside");
  static obs::Counter& outside_count = DecisionCounter("outside");
  InferenceResult result;
  // Report the min-max normalized score (monotone in S_T but free of
  // the softmax saturation plateau, so ROC sweeps retain resolution);
  // the decision is Equation (11) at the detector's calibrated tau_u.
  result.score = detector_.NormalizedScore(embedding);
  result.decision = detector_.IsOutlier(embedding) ? Decision::kOutside
                                                   : Decision::kInside;
  (result.decision == Decision::kInside ? inside_count : outside_count)
      .Increment();
  return result;
}

bool Gem::Update(const math::Vec& embedding) {
  GEM_CHECK(trained_);
  GEM_TRACE_SPAN("gem.update");
  static obs::Counter& offered =
      obs::MetricsRegistry::Get().GetCounter("gem_update_offered_total");
  offered.Increment();
  return detector_.MaybeUpdate(embedding);
}

InferenceResult Gem::Infer(const rf::ScanRecord& record) {
  GEM_TRACE_SPAN("gem.infer");
  static obs::Counter& infer_count =
      obs::MetricsRegistry::Get().GetCounter("gem_infer_total");
  static obs::Counter& no_common_mac =
      obs::MetricsRegistry::Get().GetCounter("gem_no_common_mac_total");
  static obs::Counter& outside_count = DecisionCounter("outside");
  infer_count.Increment();

  const std::optional<math::Vec> embedding = EmbedRecord(record);
  if (!embedding.has_value()) {
    // No MAC in common with anything seen: alert outright.
    no_common_mac.Increment();
    outside_count.Increment();
    InferenceResult result;
    result.decision = Decision::kOutside;
    result.score = 1.0;
    return result;
  }
  InferenceResult result = Detect(*embedding);
  if (config_.online_update && result.decision == Decision::kInside) {
    result.model_updated = Update(*embedding);
  }
  return result;
}

}  // namespace gem::core

#include "core/gem.h"

#include "base/check.h"

namespace gem::core {

Gem::Gem(GemConfig config)
    : config_(config),
      embedder_(config.bisage, config.edge_weight),
      detector_(config.detector) {}

Status Gem::Train(const std::vector<rf::ScanRecord>& inside_records) {
  Status status = embedder_.Fit(inside_records);
  if (!status.ok()) return status;

  std::vector<math::Vec> embeddings;
  embeddings.reserve(inside_records.size());
  for (int i = 0; i < embedder_.num_train(); ++i) {
    embeddings.push_back(embedder_.TrainEmbedding(i));
  }
  status = detector_.Fit(embeddings);
  if (!status.ok()) return status;
  trained_ = true;
  return Status::Ok();
}

std::optional<math::Vec> Gem::EmbedRecord(const rf::ScanRecord& record) {
  GEM_CHECK(trained_);
  return embedder_.EmbedNew(record);
}

InferenceResult Gem::Detect(const math::Vec& embedding) const {
  GEM_CHECK(trained_);
  InferenceResult result;
  // Report the min-max normalized score (monotone in S_T but free of
  // the softmax saturation plateau, so ROC sweeps retain resolution);
  // the decision is Equation (11) at the detector's calibrated tau_u.
  result.score = detector_.NormalizedScore(embedding);
  result.decision = detector_.IsOutlier(embedding) ? Decision::kOutside
                                                   : Decision::kInside;
  return result;
}

bool Gem::Update(const math::Vec& embedding) {
  GEM_CHECK(trained_);
  return detector_.MaybeUpdate(embedding);
}

InferenceResult Gem::Infer(const rf::ScanRecord& record) {
  const std::optional<math::Vec> embedding = EmbedRecord(record);
  if (!embedding.has_value()) {
    // No MAC in common with anything seen: alert outright.
    InferenceResult result;
    result.decision = Decision::kOutside;
    result.score = 1.0;
    return result;
  }
  InferenceResult result = Detect(*embedding);
  if (config_.online_update && result.decision == Decision::kInside) {
    result.model_updated = Update(*embedding);
  }
  return result;
}

}  // namespace gem::core

#include "core/gem.h"

#include "base/check.h"
#include "math/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gem::core {
namespace {

/// Decision counters for the three inference stages (Table III's
/// stage accounting). Resolved once; relaxed atomic adds afterwards.
obs::Counter& DecisionCounter(const char* decision) {
  return obs::MetricsRegistry::Get().GetCounter(
      "gem_decisions_total", {{"decision", decision}});
}

}  // namespace

Status GemConfig::Validate() const {
  Status status = bisage.Validate();
  if (!status.ok()) return status;
  return detector.Validate();
}

Gem::Gem(GemConfig config)
    : config_(config),
      embedder_(config.bisage, config.edge_weight),
      detector_(config.detector) {}

Gem::Gem(FromPartsTag, GemConfig config, embed::BiSageEmbedder embedder,
         detect::EnhancedHbosDetector detector)
    : config_(std::move(config)),
      embedder_(std::move(embedder)),
      detector_(std::move(detector)),
      trained_(true) {}

StatusOr<Gem> Gem::FromParts(GemConfig config, embed::BiSageEmbedder embedder,
                             detect::EnhancedHbosDetector detector) {
  const Status config_status = config.Validate();
  if (!config_status.ok()) return config_status;
  if (!embedder.model().trained()) {
    return Status::FailedPrecondition(
        "gem parts: embedder model is not trained");
  }
  return Gem(FromPartsTag{}, std::move(config), std::move(embedder),
             std::move(detector));
}

Status Gem::Train(const std::vector<rf::ScanRecord>& inside_records) {
  GEM_TRACE_SPAN("gem.train");
  const Status config_status = config_.Validate();
  if (!config_status.ok()) return config_status;
  static obs::Counter& train_records =
      obs::MetricsRegistry::Get().GetCounter("gem_train_records_total");
  train_records.Increment(inside_records.size());
  // Which SIMD backend this process dispatched to (scalar or avx2) —
  // surfaced as a labeled flag gauge so perf numbers scraped off a
  // fleet are attributable to the kernel family that produced them.
  static obs::Gauge& kernel_backend =
      obs::MetricsRegistry::Get().GetGauge(
          "gem_kernel_backend_active",
          {{"backend", math::kernels::BackendName(
                           math::kernels::ActiveBackend())}});
  kernel_backend.Set(1.0);

  Status status;
  {
    GEM_TRACE_SPAN("gem.train.embedder_fit");
    status = embedder_.Fit(inside_records);
  }
  if (!status.ok()) return status;

  std::vector<math::Vec> embeddings;
  embeddings.reserve(inside_records.size());
  {
    GEM_TRACE_SPAN("gem.train.embed_train_set");
    for (int i = 0; i < embedder_.num_train(); ++i) {
      embeddings.push_back(embedder_.TrainEmbedding(i));
    }
  }
  {
    GEM_TRACE_SPAN("gem.train.detector_fit");
    status = detector_.Fit(embeddings);
  }
  if (!status.ok()) return status;
  trained_ = true;
  return Status::Ok();
}

StatusOr<math::Vec> Gem::EmbedRecord(const rf::ScanRecord& record) {
  if (!trained_) return Status::FailedPrecondition("gem is not trained");
  GEM_TRACE_SPAN("gem.embed");
  return embedder_.EmbedNew(record);
}

std::vector<StatusOr<math::Vec>> Gem::EmbedBatch(
    const std::vector<rf::ScanRecord>& records) {
  GEM_TRACE_SPAN("gem.embed_batch");
  if (!trained_) {
    std::vector<StatusOr<math::Vec>> out;
    out.reserve(records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      out.push_back(Status::FailedPrecondition("gem is not trained"));
    }
    return out;
  }
  return embedder_.EmbedNewBatch(records);
}

InferenceResult Gem::Detect(const math::Vec& embedding) const {
  GEM_CHECK(trained_);
  GEM_TRACE_SPAN("gem.detect");
  static obs::Counter& inside_count = DecisionCounter("inside");
  static obs::Counter& outside_count = DecisionCounter("outside");
  InferenceResult result;
  // Report the min-max normalized score (monotone in S_T but free of
  // the softmax saturation plateau, so ROC sweeps retain resolution);
  // the decision is Equation (11) at the detector's calibrated tau_u.
  result.score = detector_.NormalizedScore(embedding);
  result.decision = detector_.IsOutlier(embedding) ? Decision::kOutside
                                                   : Decision::kInside;
  (result.decision == Decision::kInside ? inside_count : outside_count)
      .Increment();
  return result;
}

bool Gem::Update(const math::Vec& embedding) {
  GEM_CHECK(trained_);
  GEM_TRACE_SPAN("gem.update");
  static obs::Counter& offered =
      obs::MetricsRegistry::Get().GetCounter("gem_update_offered_total");
  offered.Increment();
  return detector_.MaybeUpdate(embedding);
}

InferenceResult Gem::FinishInfer(const StatusOr<math::Vec>& embedding) {
  static obs::Counter& infer_count =
      obs::MetricsRegistry::Get().GetCounter("gem_infer_total");
  static obs::Counter& no_common_mac =
      obs::MetricsRegistry::Get().GetCounter("gem_no_common_mac_total");
  static obs::Counter& outside_count = DecisionCounter("outside");
  infer_count.Increment();

  if (!embedding.ok()) {
    // No MAC in common with anything seen: alert outright.
    no_common_mac.Increment();
    outside_count.Increment();
    InferenceResult result;
    result.decision = Decision::kOutside;
    result.score = 1.0;
    return result;
  }
  InferenceResult result = Detect(*embedding);
  if (config_.online_update && result.decision == Decision::kInside) {
    result.model_updated = Update(*embedding);
  }
  return result;
}

InferenceResult Gem::Infer(const rf::ScanRecord& record) {
  GEM_TRACE_SPAN("gem.infer");
  GEM_CHECK(trained_);
  return FinishInfer(EmbedRecord(record));
}

std::vector<InferenceResult> Gem::InferBatch(
    const std::vector<rf::ScanRecord>& records) {
  GEM_TRACE_SPAN("gem.infer_batch");
  GEM_CHECK(trained_);
  // Embeddings are computed in parallel; detection + self-enhancement
  // then run serially in input order, so the detector state evolves
  // exactly as it would under the equivalent sequence of Infer calls
  // (embeddings do not depend on detector state).
  const std::vector<StatusOr<math::Vec>> embeddings = EmbedBatch(records);
  std::vector<InferenceResult> results;
  results.reserve(embeddings.size());
  for (const StatusOr<math::Vec>& embedding : embeddings) {
    results.push_back(FinishInfer(embedding));
  }
  return results;
}

}  // namespace gem::core

#ifndef GEM_CORE_GEM_H_
#define GEM_CORE_GEM_H_

#include <memory>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "core/geofence.h"
#include "detect/hbos.h"
#include "embed/bisage.h"
#include "graph/edge_weight.h"

namespace gem::core {

/// Full GEM configuration: the bipartite-graph edge weights, BiSAGE,
/// the enhanced histogram detector, and the online self-enhancement
/// switch. Defaults are the paper's tuned values (Section VI).
struct GemConfig {
  graph::EdgeWeightConfig edge_weight;
  embed::BiSageConfig bisage;
  detect::EnhancedHbosOptions detector;
  /// Section V-B self-enhancement (absorb highly confident normals).
  bool online_update = true;

  /// kInvalidArgument describing the first offending field across the
  /// nested configs (BiSAGE, detector), Ok otherwise. Checked by
  /// Gem::Train / Gem::FromParts and the serving engine at start-up.
  Status Validate() const;
};

/// GEM (Section III): weighted bipartite graph -> BiSAGE embeddings ->
/// enhanced histogram-based one-class detection, with online
/// embedding prediction and model self-enhancement.
///
/// The three inference stages are public so the latency breakdown of
/// Table III can time them independently; Infer() composes them.
class Gem : public GeofencingSystem {
 public:
  explicit Gem(GemConfig config = GemConfig());

  Status Train(const std::vector<rf::ScanRecord>& inside_records) override;
  InferenceResult Infer(const rf::ScanRecord& record) override;
  std::string name() const override { return "GEM (BiSAGE + OD)"; }

  /// Full inference over a batch of records on the model's thread
  /// pool: all records join the graph serially in input order, the
  /// embeddings are computed in parallel (bit-identical at any thread
  /// count), then detection and self-enhancement run serially in input
  /// order — so the detector sees exactly the update sequence the
  /// equivalent Infer() loop would produce. Result i corresponds to
  /// record i.
  std::vector<InferenceResult> InferBatch(
      const std::vector<rf::ScanRecord>& records);

  /// Stage 1 (Section V-A): add the record to the graph and compute
  /// its primary embedding. kNotFound when it shares no MAC with the
  /// graph (outlier outright, footnote 3); kFailedPrecondition when
  /// the model is not trained.
  StatusOr<math::Vec> EmbedRecord(const rf::ScanRecord& record);

  /// Batched stage 1 (see InferBatch for the graph-append semantics);
  /// slot i corresponds to record i.
  std::vector<StatusOr<math::Vec>> EmbedBatch(
      const std::vector<rf::ScanRecord>& records);

  /// Stage 2: in-out detection on an embedding (Equation (11)).
  InferenceResult Detect(const math::Vec& embedding) const;

  /// Stage 3 (Section V-B): offer the embedding for self-enhancement;
  /// returns whether the detector absorbed it.
  bool Update(const math::Vec& embedding);

  const GemConfig& config() const { return config_; }
  const embed::BiSageEmbedder& embedder() const { return embedder_; }
  const detect::EnhancedHbosDetector& detector() const { return detector_; }
  bool trained() const { return trained_; }

  /// Snapshot support (serve/snapshot.cc): reassembles a trained Gem
  /// from restored components. The embedder must already be fitted and
  /// the detector already carry its persisted state; the config must
  /// validate. kInvalidArgument / kFailedPrecondition otherwise.
  static StatusOr<Gem> FromParts(GemConfig config,
                                 embed::BiSageEmbedder embedder,
                                 detect::EnhancedHbosDetector detector);

 private:
  struct FromPartsTag {};
  Gem(FromPartsTag, GemConfig config, embed::BiSageEmbedder embedder,
      detect::EnhancedHbosDetector detector);

  /// Stages 2+3 plus the decision metrics, shared by Infer/InferBatch.
  InferenceResult FinishInfer(const StatusOr<math::Vec>& embedding);

  GemConfig config_;
  embed::BiSageEmbedder embedder_;
  detect::EnhancedHbosDetector detector_;
  bool trained_ = false;
};

}  // namespace gem::core

#endif  // GEM_CORE_GEM_H_

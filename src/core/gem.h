#ifndef GEM_CORE_GEM_H_
#define GEM_CORE_GEM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/geofence.h"
#include "detect/hbos.h"
#include "embed/bisage.h"
#include "graph/edge_weight.h"

namespace gem::core {

/// Full GEM configuration: the bipartite-graph edge weights, BiSAGE,
/// the enhanced histogram detector, and the online self-enhancement
/// switch. Defaults are the paper's tuned values (Section VI).
struct GemConfig {
  graph::EdgeWeightConfig edge_weight;
  embed::BiSageConfig bisage;
  detect::EnhancedHbosOptions detector;
  /// Section V-B self-enhancement (absorb highly confident normals).
  bool online_update = true;
};

/// GEM (Section III): weighted bipartite graph -> BiSAGE embeddings ->
/// enhanced histogram-based one-class detection, with online
/// embedding prediction and model self-enhancement.
///
/// The three inference stages are public so the latency breakdown of
/// Table III can time them independently; Infer() composes them.
class Gem : public GeofencingSystem {
 public:
  explicit Gem(GemConfig config = GemConfig());

  Status Train(const std::vector<rf::ScanRecord>& inside_records) override;
  InferenceResult Infer(const rf::ScanRecord& record) override;
  std::string name() const override { return "GEM (BiSAGE + OD)"; }

  /// Stage 1 (Section V-A): add the record to the graph and compute
  /// its primary embedding; nullopt when it shares no MAC with the
  /// graph (outlier outright, footnote 3).
  std::optional<math::Vec> EmbedRecord(const rf::ScanRecord& record);

  /// Stage 2: in-out detection on an embedding (Equation (11)).
  InferenceResult Detect(const math::Vec& embedding) const;

  /// Stage 3 (Section V-B): offer the embedding for self-enhancement;
  /// returns whether the detector absorbed it.
  bool Update(const math::Vec& embedding);

  const GemConfig& config() const { return config_; }
  const embed::BiSageEmbedder& embedder() const { return embedder_; }
  const detect::EnhancedHbosDetector& detector() const { return detector_; }
  bool trained() const { return trained_; }

  /// Snapshot support (serve/snapshot.cc): reassembles a trained Gem
  /// from restored components. The embedder must already be fitted and
  /// the detector already carry its persisted state.
  static Gem FromParts(GemConfig config, embed::BiSageEmbedder embedder,
                       detect::EnhancedHbosDetector detector);

 private:
  struct FromPartsTag {};
  Gem(FromPartsTag, GemConfig config, embed::BiSageEmbedder embedder,
      detect::EnhancedHbosDetector detector);

  GemConfig config_;
  embed::BiSageEmbedder embedder_;
  detect::EnhancedHbosDetector detector_;
  bool trained_ = false;
};

}  // namespace gem::core

#endif  // GEM_CORE_GEM_H_

#ifndef GEM_CORE_EMBEDDING_PIPELINE_H_
#define GEM_CORE_EMBEDDING_PIPELINE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/geofence.h"
#include "detect/detector.h"
#include "embed/embedder.h"

namespace gem::core {

/// Generic "embedder + detector" geofencing pipeline, used for every
/// Table I arm that mixes components: GraphSAGE + OD, Autoencoder +
/// OD, MDS + OD, BiSAGE + {feature bagging, iForest, LOF}, and
/// Figure 7's raw-matrix + OD. Records that cannot be embedded are
/// classified outside outright, mirroring GEM.
class EmbeddingPipeline : public GeofencingSystem {
 public:
  EmbeddingPipeline(std::string name,
                    std::unique_ptr<embed::RecordEmbedder> embedder,
                    std::unique_ptr<detect::OutlierDetector> detector,
                    bool online_update = true);

  Status Train(const std::vector<rf::ScanRecord>& inside_records) override;
  InferenceResult Infer(const rf::ScanRecord& record) override;
  std::string name() const override { return name_; }

  const detect::OutlierDetector& detector() const { return *detector_; }

 private:
  std::string name_;
  std::unique_ptr<embed::RecordEmbedder> embedder_;
  std::unique_ptr<detect::OutlierDetector> detector_;
  bool online_update_;
};

}  // namespace gem::core

#endif  // GEM_CORE_EMBEDDING_PIPELINE_H_

#ifndef GEM_CORE_SIGNATURE_HOME_H_
#define GEM_CORE_SIGNATURE_HOME_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/geofence.h"
#include "embed/matrix_rep.h"

namespace gem::core {

/// Configuration of the SignatureHome baseline.
struct SignatureHomeOptions {
  /// MACs present in at least this fraction of training records AND
  /// with a strong mean RSS (below) form the "home network" set used
  /// for the association shortcut — the premises' own APs.
  double home_mac_fraction = 0.7;
  /// Minimum mean training RSS for a MAC to count as a home AP.
  double home_mac_mean_rss_dbm = -70.0;
  /// A record whose strongest reading is a home MAC above this RSS is
  /// declared inside via network association.
  double association_rss_dbm = -70.0;
  /// Per-MAC signature range: [p, 100-p] percentiles of training RSS.
  double range_percentile = 5.0;
  /// Extra tolerance (dB) added on both range ends.
  double range_slack_db = 3.0;
  /// Percentile of training match scores used as the match threshold.
  double threshold_percentile = 5.0;
};

/// Re-implementation of SignatureHome (Tan et al., IEEE IoT Magazine
/// 2020) as characterized by the GEM paper: it learns the geofencing
/// area as (a) the identity of the home network's APs for an
/// association shortcut and (b) a compact signature database of the
/// ambient MACs — per-MAC RSS ranges observed during training (records
/// conceptually held as fixed-length vectors with missing entries
/// padded by an arbitrarily small value). A new record is inside when
/// it is associated with a home AP or when enough of its readings are
/// consistent with the signature ranges. The coarse per-MAC ranges —
/// wide, because the training walk covers the whole perimeter — are
/// what cost it precision near the boundary: signals observed just
/// outside typically still fall within the ranges, which the paper
/// reports as its weak outside detection.
class SignatureHome : public GeofencingSystem {
 public:
  explicit SignatureHome(
      SignatureHomeOptions options = SignatureHomeOptions());

  Status Train(const std::vector<rf::ScanRecord>& inside_records) override;
  InferenceResult Infer(const rf::ScanRecord& record) override;
  std::string name() const override { return "SignatureHome"; }

 private:
  struct MacSignature {
    double lo_dbm = -120.0;
    double hi_dbm = 0.0;
  };

  /// Fraction of the record's readings consistent with the signature
  /// database (known MAC with RSS inside its slackened range).
  double MatchScore(const rf::ScanRecord& record) const;

  SignatureHomeOptions options_;
  std::unordered_map<std::string, MacSignature> signature_;
  std::unordered_set<std::string> home_macs_;
  double match_threshold_ = 0.5;
};

}  // namespace gem::core

#endif  // GEM_CORE_SIGNATURE_HOME_H_

#ifndef GEM_CORE_INOA_H_
#define GEM_CORE_INOA_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/geofence.h"
#include "detect/svdd.h"

namespace gem::core {

/// Configuration of the INOA baseline.
struct InoaOptions {
  /// Minimum co-observations for a MAC pair to get its own SVDD.
  int min_pair_count = 10;
  /// Cap on modeled pairs (most frequently co-observed first).
  int max_pairs = 300;
  /// Fraction of a record's modeled pairs that must fall inside their
  /// spheres is calibrated from training; this percentile sets how
  /// permissive the calibrated vote threshold is.
  double threshold_percentile = 5.0;
  detect::SvddOptions svdd;
};

/// Re-implementation of INOA (Chow et al., TMC 2019) as characterized
/// by the GEM paper: each variable-size record is expanded into a set
/// of per-AP-pair records carrying the two RSS values, and support
/// vector data description models the in-premises region of each
/// pair's RSS space. A new record votes over its sensed pairs; too few
/// in-sphere votes means outside. The pairwise expansion is what makes
/// its support vectors represent 'inside' poorly (low P_out).
class Inoa : public GeofencingSystem {
 public:
  explicit Inoa(InoaOptions options = InoaOptions());

  Status Train(const std::vector<rf::ScanRecord>& inside_records) override;
  InferenceResult Infer(const rf::ScanRecord& record) override;
  std::string name() const override { return "INOA"; }

  int num_modeled_pairs() const { return static_cast<int>(models_.size()); }

 private:
  using PairKey = std::pair<std::string, std::string>;

  /// Inside-vote fraction of a record over modeled pairs; -1 when the
  /// record touches no modeled pair.
  double InsideFraction(const rf::ScanRecord& record) const;

  static math::Vec PairFeature(double rss_a, double rss_b);

  InoaOptions options_;
  std::map<PairKey, std::unique_ptr<detect::SvddDetector>> models_;
  double vote_threshold_ = 0.5;
};

}  // namespace gem::core

#endif  // GEM_CORE_INOA_H_

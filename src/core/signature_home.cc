#include "core/signature_home.h"

#include <algorithm>

#include "base/check.h"
#include "math/stats.h"
#include "math/vec.h"

namespace gem::core {

SignatureHome::SignatureHome(SignatureHomeOptions options)
    : options_(options) {}

Status SignatureHome::Train(
    const std::vector<rf::ScanRecord>& inside_records) {
  if (inside_records.size() < 2) {
    return Status::InvalidArgument(
        "SignatureHome needs at least 2 training records");
  }

  // Collect per-MAC RSS samples and presence counts.
  std::unordered_map<std::string, math::Vec> rss_samples;
  for (const rf::ScanRecord& record : inside_records) {
    for (const rf::Reading& reading : record.readings) {
      rss_samples[reading.mac].push_back(reading.rss_dbm);
    }
  }
  if (rss_samples.empty()) {
    return Status::InvalidArgument("training records contain no MACs");
  }

  signature_.clear();
  home_macs_.clear();
  const double min_count =
      options_.home_mac_fraction * static_cast<double>(inside_records.size());
  for (const auto& [mac, samples] : rss_samples) {
    MacSignature sig;
    sig.lo_dbm = math::Percentile(samples, options_.range_percentile) -
                 options_.range_slack_db;
    sig.hi_dbm =
        math::Percentile(samples, 100.0 - options_.range_percentile) +
        options_.range_slack_db;
    signature_.emplace(mac, sig);
    if (static_cast<double>(samples.size()) >= min_count &&
        math::Mean(samples) >= options_.home_mac_mean_rss_dbm) {
      home_macs_.insert(mac);
    }
  }

  // Calibrate the match threshold on the training records themselves.
  math::Vec scores;
  scores.reserve(inside_records.size());
  for (const rf::ScanRecord& record : inside_records) {
    scores.push_back(MatchScore(record));
  }
  match_threshold_ = math::Percentile(scores, options_.threshold_percentile);
  return Status::Ok();
}

double SignatureHome::MatchScore(const rf::ScanRecord& record) const {
  if (record.readings.empty()) return 0.0;
  int consistent = 0;
  for (const rf::Reading& reading : record.readings) {
    const auto it = signature_.find(reading.mac);
    if (it == signature_.end()) continue;
    if (reading.rss_dbm >= it->second.lo_dbm &&
        reading.rss_dbm <= it->second.hi_dbm) {
      ++consistent;
    }
  }
  return static_cast<double>(consistent) /
         static_cast<double>(record.readings.size());
}

InferenceResult SignatureHome::Infer(const rf::ScanRecord& record) {
  InferenceResult result;
  if (record.readings.empty()) {
    result.decision = Decision::kOutside;
    result.score = 1.0;
    return result;
  }

  // Network-association shortcut: a strong reading from a home AP.
  const rf::Reading* strongest = nullptr;
  for (const rf::Reading& reading : record.readings) {
    if (strongest == nullptr || reading.rss_dbm > strongest->rss_dbm) {
      strongest = &reading;
    }
  }
  if (strongest != nullptr &&
      strongest->rss_dbm >= options_.association_rss_dbm &&
      home_macs_.count(strongest->mac) > 0) {
    result.decision = Decision::kInside;
    result.score = 0.0;
    return result;
  }

  const double match = MatchScore(record);
  result.score = 1.0 - match;
  result.decision = match >= match_threshold_ ? Decision::kInside
                                              : Decision::kOutside;
  return result;
}

}  // namespace gem::core

#ifndef GEM_EMBED_EMBEDDER_H_
#define GEM_EMBED_EMBEDDER_H_

#include <vector>

#include "base/status.h"
#include "base/statusor.h"
#include "math/vec.h"
#include "rf/types.h"

namespace gem::embed {

/// Common interface of all record-embedding algorithms in GEM's
/// evaluation: BiSAGE, GraphSAGE, the autoencoder, MDS, and the raw
/// padded-matrix representation. A geofencing pipeline fits the
/// embedder on the initial in-premises records and then embeds the
/// streaming test records one by one.
class RecordEmbedder {
 public:
  virtual ~RecordEmbedder() = default;

  /// Trains on the initial in-premises records. Must be called exactly
  /// once, before any other method.
  virtual Status Fit(const std::vector<rf::ScanRecord>& train) = 0;

  /// Embedding of the i-th training record (0-based).
  virtual math::Vec TrainEmbedding(int i) const = 0;

  /// Number of training records supplied to Fit().
  virtual int num_train() const = 0;

  /// Embeds a new record (inductive / out-of-sample). Implementations
  /// may update internal state (BiSAGE adds the record to its graph).
  /// Returns kNotFound when the record cannot be embedded at all —
  /// e.g. it shares no MAC with anything seen before — which GEM
  /// treats as an outright outlier (paper footnote 3), and
  /// kFailedPrecondition when called before a successful Fit().
  virtual StatusOr<math::Vec> EmbedNew(const rf::ScanRecord& record) = 0;

  /// Embedding dimensionality.
  virtual int dimension() const = 0;
};

}  // namespace gem::embed

#endif  // GEM_EMBED_EMBEDDER_H_

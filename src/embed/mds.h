#ifndef GEM_EMBED_MDS_H_
#define GEM_EMBED_MDS_H_

#include <vector>

#include "base/status.h"
#include "embed/embedder.h"
#include "embed/matrix_rep.h"
#include "math/matrix.h"

namespace gem::embed {

/// MDS baseline hyperparameters. Per the paper's convention the
/// pairwise distance is 1 - cosine similarity over padded vectors.
struct MdsConfig {
  int components = 32;
  double pad_dbm = -120.0;
};

/// "MDS + OD" baseline of Table I: classical (Torgerson) multi-
/// dimensional scaling of the training records' pairwise 1-cosine
/// distances; streaming test records are projected with the standard
/// Nystrom / landmark-MDS out-of-sample extension (the training set
/// acts as the landmark set).
class MdsEmbedder : public RecordEmbedder {
 public:
  explicit MdsEmbedder(MdsConfig config = {});

  Status Fit(const std::vector<rf::ScanRecord>& train) override;
  math::Vec TrainEmbedding(int i) const override;
  int num_train() const override { return num_train_; }
  StatusOr<math::Vec> EmbedNew(const rf::ScanRecord& record) override;
  int dimension() const override { return components_used_; }

 private:
  MdsConfig config_;
  MacVocabulary vocab_;
  std::vector<math::Vec> train_dense_;  // normalized padded vectors
  math::Matrix train_embeddings_;       // n x k
  /// Per-landmark mean of the squared-distance matrix (for Nystrom).
  math::Vec sq_dist_col_mean_;
  /// Eigenvectors (rows) and eigenvalues of the centered Gram matrix.
  math::Matrix eigvecs_;
  math::Vec eigvals_;
  int components_used_ = 0;
  int num_train_ = 0;
};

}  // namespace gem::embed

#endif  // GEM_EMBED_MDS_H_

#include "embed/autoencoder.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/check.h"
#include "math/rng.h"
#include "math/vec.h"

namespace gem::embed {

AutoencoderEmbedder::AutoencoderEmbedder(AutoencoderConfig config)
    : config_(config) {}

Status AutoencoderEmbedder::Fit(const std::vector<rf::ScanRecord>& train) {
  if (train.empty()) {
    return Status::InvalidArgument("no training records");
  }
  vocab_.Build(train);
  const int in = vocab_.size();
  if (in == 0) {
    return Status::InvalidArgument("training records contain no MACs");
  }
  const int hidden = config_.hidden;
  const int code = config_.bottleneck;

  math::Rng rng(config_.seed);
  w1_ = std::make_unique<math::Parameter>(hidden, in);
  w2_ = std::make_unique<math::Parameter>(code, hidden);
  w3_ = std::make_unique<math::Parameter>(hidden, code);
  w4_ = std::make_unique<math::Parameter>(in, hidden);
  w1_->value.FillGlorot(rng);
  w2_->value.FillGlorot(rng);
  w3_->value.FillGlorot(rng);
  w4_->value.FillGlorot(rng);

  math::AdamOptions adam_options;
  adam_options.learning_rate = config_.learning_rate;
  adam_ = std::make_unique<math::Adam>(adam_options);
  adam_->Register(w1_.get());
  adam_->Register(w2_.get());
  adam_->Register(w3_.get());
  adam_->Register(w4_.get());

  std::vector<math::Vec> inputs;
  inputs.reserve(train.size());
  for (const rf::ScanRecord& record : train) {
    inputs.push_back(vocab_.ToDenseNormalized(record, config_.pad_dbm));
  }

  std::vector<int> order(inputs.size());
  std::iota(order.begin(), order.end(), 0);

  math::Tape tape;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t index = 0;
    while (index < order.size()) {
      tape.Clear();
      const size_t end = std::min(
          order.size(), index + static_cast<size_t>(config_.batch_size));
      const double inv_batch = 1.0 / static_cast<double>(end - index);
      for (; index < end; ++index) {
        const math::Vec& x = inputs[order[index]];
        const math::VarId xi = tape.Leaf(x);
        const math::VarId h1 = tape.Relu(tape.MatVec(w1_.get(), xi));
        const math::VarId z = tape.Tanh(tape.MatVec(w2_.get(), h1));
        const math::VarId h2 = tape.Relu(tape.MatVec(w3_.get(), z));
        const math::VarId out = tape.MatVec(w4_.get(), h2);
        epoch_loss += tape.AddMseLoss(out, x, inv_batch);
      }
      tape.Backward();
      adam_->Step();
    }
    final_loss_ = epoch_loss /
                  (static_cast<double>(inputs.size()) / config_.batch_size);
  }
  trained_ = true;

  train_codes_.clear();
  train_codes_.reserve(inputs.size());
  for (const math::Vec& x : inputs) train_codes_.push_back(Encode(x));
  num_train_ = static_cast<int>(train.size());
  return Status::Ok();
}

math::Vec AutoencoderEmbedder::Encode(const math::Vec& input) const {
  GEM_CHECK(trained_);
  math::Vec h1 = w1_->value.MatVec(input);
  for (double& v : h1) v = v > 0.0 ? v : 0.0;
  math::Vec z = w2_->value.MatVec(h1);
  for (double& v : z) v = std::tanh(v);
  return z;
}

math::Vec AutoencoderEmbedder::Reconstruct(const math::Vec& input) const {
  math::Vec z = Encode(input);
  math::Vec h2 = w3_->value.MatVec(z);
  for (double& v : h2) v = v > 0.0 ? v : 0.0;
  return w4_->value.MatVec(h2);
}

math::Vec AutoencoderEmbedder::TrainEmbedding(int i) const {
  GEM_CHECK(i >= 0 && i < num_train_);
  return train_codes_[i];
}

StatusOr<math::Vec> AutoencoderEmbedder::EmbedNew(
    const rf::ScanRecord& record) {
  if (!trained_) {
    return Status::FailedPrecondition("embedder is not trained");
  }
  if (vocab_.CountKnownMacs(record) == 0) {
    return Status::NotFound("record shares no MAC with the vocabulary");
  }
  return Encode(vocab_.ToDenseNormalized(record, config_.pad_dbm));
}

}  // namespace gem::embed

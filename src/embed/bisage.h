#ifndef GEM_EMBED_BISAGE_H_
#define GEM_EMBED_BISAGE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"
#include "base/thread_pool.h"
#include "embed/embedder.h"
#include "graph/bipartite_graph.h"
#include "math/autograd.h"
#include "math/kernels.h"
#include "math/optimizer.h"
#include "math/rng.h"

namespace gem::embed {

/// Hyperparameters of BiSAGE (Section IV-B). Defaults follow the
/// paper's tuned values (d = 32, lr = 0.003, K_N = 4) with sampling
/// and epoch sizes chosen so a full training run takes a couple of
/// seconds on one core.
struct BiSageConfig {
  int dimension = 32;
  /// K: number of aggregation layers.
  int num_layers = 2;
  /// Per-layer neighborhood sample sizes, outermost layer first
  /// (fanouts[0] neighbors of the target, fanouts[1] of each of those).
  std::vector<int> fanouts = {6, 4};
  int walks_per_node = 2;
  int walk_length = 5;
  int epochs = 4;
  /// K_N in Equation (8).
  int num_negatives = 4;
  double learning_rate = 0.003;
  /// Training pairs accumulated per optimizer step.
  int batch_pairs = 16;
  /// Per-layer sample sizes used at inference time. A value <= 0
  /// aggregates the FULL neighborhood with exact normalized weights —
  /// deterministic, variance-free embeddings (the default). Empty
  /// means "same as fanouts".
  std::vector<int> inference_fanouts = {0, 0};
  /// Ablation switch: false replaces the weight-proportional neighbor
  /// sampling, weighted aggregation coefficients, and weighted random
  /// walks with uniform ones (the bi-level aggregation is kept). Used
  /// by the ablation bench to isolate the value of Section IV-B's
  /// non-uniform sampling.
  bool use_edge_weights = true;
  /// Inference-time aggregation skips MAC nodes with degree below
  /// this. A MAC seen in a single record ever (e.g., a passer-by's
  /// phone) has no relational information — its fixed random feature
  /// is pure noise — so it is excluded until it recurs. Set to 1 to
  /// disable the filter.
  int min_mac_degree = 2;
  uint64_t seed = 13;
  /// Worker threads used by Train() and batched inference. Runtime
  /// knob only: it does not change the model and is not persisted in
  /// snapshots.
  int num_threads = 1;
  /// When true, training draws every random walk from a per-node RNG
  /// stream and reduces gradients one training pair at a time, so the
  /// learned weights are bit-identical at ANY thread count (including
  /// 1). When false (the default), randomness is per worker-chunk and
  /// gradients reduce per chunk: still fully deterministic for a fixed
  /// num_threads, and faster. Runtime knob only, not persisted.
  bool deterministic = false;

  /// kInvalidArgument describing the first offending field, Ok
  /// otherwise. Checked by BiSage at construction (softly: Train()
  /// reports it) and by Gem/serve at their entry points.
  Status Validate() const;
};

/// BiSAGE: inductive bipartite network embedding with bi-level
/// aggregation (paired primary/auxiliary embeddings per node),
/// weight-proportional neighborhood sampling, weighted random walks,
/// and the negative-sampling loss of Equation (8).
///
/// Following the paper, the learnable parameters are the per-layer
/// weight matrices {W_h^k}, {W_l^k}; the initial embeddings (h^0, l^0)
/// are fixed at creation ("chosen randomly"). MAC nodes carry fixed
/// random feature vectors (their identity); record nodes start at zero
/// so that a record's embedding is a pure function of its weighted MAC
/// membership — which is what makes the inductive embedding of brand-
/// new records (Section V-A) consistent with training.
class BiSage {
 public:
  /// An invalid config is held rather than CHECKed: Train() returns
  /// config_status() so callers (CLI flags, service config) surface it
  /// as kInvalidArgument instead of crashing.
  explicit BiSage(BiSageConfig config);

  /// Trains the weight matrices on the graph; the graph must contain
  /// at least one edge. Can be called again after the graph grows to
  /// fine-tune (not required for inference). Runs on
  /// config().num_threads workers; see BiSageConfig::deterministic for
  /// the reproducibility contract.
  Status Train(const graph::BipartiteGraph& graph);

  /// Primary embedding h^K of a node via K rounds of bi-level
  /// aggregation with the learned weights. Nodes unseen at Train()
  /// time are initialized on first touch. Deterministic given the
  /// node's sampled neighborhoods (internally seeded per node).
  /// Convenience wrapper over EmbedForward with a per-thread scratch.
  math::Vec PrimaryEmbedding(const graph::BipartiteGraph& graph,
                             graph::NodeId node) const;

  /// Auxiliary embedding l^K (used by tests and diagnostics).
  math::Vec AuxiliaryEmbedding(const graph::BipartiteGraph& graph,
                               graph::NodeId node) const;

  /// Reusable workspace for the tape-free forward pass (EmbedForward).
  /// Holds a 32-byte-aligned value arena addressed by (node, layer)
  /// offsets, per-layer aggregation/concat temporaries, and neighbor
  /// buffers. One instance per thread; after the first call on a graph
  /// neighborhood of typical size, subsequent calls are allocation-free
  /// (buffers are reset, not released).
  class InferScratch {
   public:
    InferScratch() = default;

   private:
    friend class BiSage;
    void Reset(int num_layers, int dimension);

    /// Computed (h, l) values, one 2*d slab per memoized (node, layer);
    /// memo_ maps MemoKey(node, layer) to the slab's h offset (l at +d).
    math::kernels::AlignedVec arena_;
    std::unordered_map<long, size_t> memo_;
    /// Per layer: [h_agg d | l_agg d | concat 2d]. Stable storage, so
    /// aggregation can accumulate while child recursion grows arena_.
    math::kernels::AlignedVec temps_;
    /// Per-layer sampled-neighbor and coefficient buffers.
    std::vector<std::vector<graph::Neighbor>> sampled_;
    std::vector<math::Vec> coeffs_;
  };

  /// Tape-free forward-only inference: evaluates Equations (3)-(7) for
  /// `node` directly into caller-provided buffers — no Tape node
  /// allocation, no per-node Vec copies. h_out / l_out must each hold
  /// dimension() doubles (either may be null to skip that side; no
  /// alignment required). Numerically identical to the removed
  /// tape-style inference path: same per-node RNG stream, same
  /// aggregation order, same MAC filtering. This is the hot path under
  /// EmbedNew/EmbedNewBatch and the serving engine's Infer*.
  void EmbedForward(const graph::BipartiteGraph& graph, graph::NodeId node,
                    InferScratch& scratch, double* h_out,
                    double* l_out = nullptr) const;

  /// Makes concurrent PrimaryEmbedding/AuxiliaryEmbedding calls over
  /// `graph` safe: grows the node tables to cover the whole graph and
  /// warms the graph's sampling caches, so the parallel reads that
  /// follow touch no lazily-built state. Must be re-run after the
  /// graph grows. Called by EmbedNewBatch; callers doing their own
  /// fan-out call it once before spawning.
  void PrepareInference(const graph::BipartiteGraph& graph) const;

  /// Mean training loss of the last epoch (diagnostic).
  double last_epoch_loss() const { return last_epoch_loss_; }
  const BiSageConfig& config() const { return config_; }
  /// Result of config().Validate() at construction.
  const Status& config_status() const { return config_status_; }
  bool trained() const { return trained_; }

  /// The worker pool backing Train() and batched inference
  /// (config().num_threads threads), created on first use and reused
  /// across epochs and batches.
  ThreadPool& thread_pool() const;

  /// Snapshot support (serve/snapshot.cc): everything Train() learned
  /// plus the lazily-grown node tables and their init stream, so a
  /// restored model embeds future nodes bit-identically to the
  /// original process. Optimizer moments are NOT persisted: a
  /// fine-tuning Train() after restore starts Adam fresh.
  struct TrainedState {
    math::Matrix h_table;
    math::Matrix l_table;
    std::vector<math::Matrix> w_h;
    std::vector<math::Matrix> w_l;
    math::Rng::State init_rng;
    int trained_nodes = 0;
    double last_epoch_loss = 0.0;
  };
  TrainedState ExportTrained() const;
  /// Overwrites the learned state; shapes must match this model's
  /// config (dimension d, per-layer d x 2d weights).
  Status RestoreTrained(TrainedState state);

 private:
  struct NodeVars {
    math::VarId h;
    math::VarId l;
  };

  /// One parallel gradient group's output: a private gradient
  /// accumulator plus its share of the loss, folded into the optimizer
  /// serially in group-index order (the fixed fold order is what makes
  /// the parallel epoch deterministic).
  struct GroupResult {
    math::ParamGradSink sink;
    double loss = 0.0;
    long terms = 0;
  };

  /// Grows the fixed initial-embedding tables to cover node ids
  /// < count (random rows for MAC nodes, zero rows for record nodes).
  void EnsureCapacity(const graph::BipartiteGraph& graph, int count) const;

  /// Builds the (h^k, l^k) computation for `node` on the tape,
  /// memoized per (node, layer) within the current gradient group.
  NodeVars BuildNodeVars(math::Tape& tape,
                         const graph::BipartiteGraph& graph,
                         graph::NodeId node, int layer, math::Rng& rng,
                         std::unordered_map<long, NodeVars>& memo) const;

  /// Recursive worker of EmbedForward: returns the arena offset of the
  /// memoized (h^layer, l^layer) slab for `node`.
  size_t ForwardNode(const graph::BipartiteGraph& graph, graph::NodeId node,
                     int layer, math::Rng& rng, InferScratch& scratch) const;

  BiSageConfig config_;
  Status config_status_;
  // Fixed initial embeddings; mutable so inference can lazily append
  // rows for nodes that joined the graph after training.
  mutable math::Matrix h_table_;
  mutable math::Matrix l_table_;
  mutable math::Rng init_rng_;
  /// Node count when Train() last ran: MAC nodes added later carry
  /// features the weight matrices never saw, so inference aggregation
  /// skips them (they still count toward graph connectivity).
  int trained_nodes_ = 0;
  std::vector<std::unique_ptr<math::Parameter>> w_h_;
  std::vector<std::unique_ptr<math::Parameter>> w_l_;
  std::unique_ptr<math::Adam> adam_;
  mutable std::unique_ptr<ThreadPool> pool_;
  double last_epoch_loss_ = 0.0;
  bool trained_ = false;
};

/// RecordEmbedder adapter: owns a BipartiteGraph + BiSage, maps
/// records to graph nodes, and adds new records to the graph at
/// EmbedNew time.
class BiSageEmbedder : public RecordEmbedder {
 public:
  explicit BiSageEmbedder(BiSageConfig config = {},
                          graph::EdgeWeightConfig weight_config = {});

  Status Fit(const std::vector<rf::ScanRecord>& train) override;
  math::Vec TrainEmbedding(int i) const override;
  int num_train() const override { return num_train_; }
  StatusOr<math::Vec> EmbedNew(const rf::ScanRecord& record) override;
  int dimension() const override { return model_.config().dimension; }

  /// Batched EmbedNew on the model's thread pool. All records are
  /// appended to the graph first, in input order (so each record's
  /// connectivity check sees every earlier record of the batch, same
  /// as sequential EmbedNew calls), then embedded in parallel against
  /// the batch-complete graph. Per-node RNG streams make the result
  /// bit-identical at any thread count. Slot i carries record i's
  /// embedding, kNotFound (no shared MAC), or kFailedPrecondition
  /// (model not trained).
  std::vector<StatusOr<math::Vec>> EmbedNewBatch(
      const std::vector<rf::ScanRecord>& records);

  const graph::BipartiteGraph& graph() const { return graph_; }
  BiSage& model() { return model_; }
  const BiSage& model() const { return model_; }
  const std::vector<graph::NodeId>& train_nodes() const {
    return train_nodes_;
  }

  /// Snapshot support (serve/snapshot.cc): swaps in a persisted graph,
  /// training-node list, and trained model state.
  Status RestoreFitted(graph::BipartiteGraph graph,
                       std::vector<graph::NodeId> train_nodes,
                       BiSage::TrainedState model_state);

 private:
  graph::BipartiteGraph graph_;
  BiSage model_;
  std::vector<graph::NodeId> train_nodes_;
  int num_train_ = 0;
};

}  // namespace gem::embed

#endif  // GEM_EMBED_BISAGE_H_

#include "embed/graphsage.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "math/vec.h"

namespace gem::embed {
namespace {

long MemoKey(graph::NodeId node, int layer, int num_layers) {
  return static_cast<long>(node) * (num_layers + 1) + layer;
}

}  // namespace

GraphSage::GraphSage(GraphSageConfig config)
    : config_(std::move(config)), init_rng_(config_.seed ^ 0x6A5E0ULL) {
  GEM_CHECK(config_.dimension > 0);
  GEM_CHECK(static_cast<int>(config_.fanouts.size()) == config_.num_layers);
  table_ = math::Matrix(0, config_.dimension);
  math::AdamOptions adam_options;
  adam_options.learning_rate = config_.learning_rate;
  table_adam_ = std::make_unique<math::RowAdam>(0, config_.dimension,
                                                adam_options);
  adam_ = std::make_unique<math::Adam>(adam_options);
  math::Rng weight_rng(config_.seed);
  for (int k = 0; k < config_.num_layers; ++k) {
    weights_.push_back(std::make_unique<math::Parameter>(
        config_.dimension, 2 * config_.dimension));
    weights_.back()->value.FillGlorot(weight_rng);
    adam_->Register(weights_.back().get());
  }
}

void GraphSage::EnsureCapacity(const graph::BipartiteGraph& graph,
                               int count) const {
  const int d = config_.dimension;
  const double scale = 1.0 / std::sqrt(static_cast<double>(d));
  while (table_.rows() < count) {
    const graph::NodeId node = table_.rows();
    math::Vec row(d, 0.0);
    // Same input convention as BiSAGE: MAC nodes carry fixed random
    // identity features, record nodes derive everything from their
    // neighborhoods (a random record feature would be pure noise for
    // inductive inference).
    if (node >= graph.num_nodes() ||
        graph.type(node) == graph::NodeType::kMac) {
      for (int i = 0; i < d; ++i) row[i] = init_rng_.Uniform(-scale, scale);
    }
    table_.AppendRow(row);
  }
  table_adam_->Resize(table_.rows());
}

std::vector<graph::NodeId> GraphSage::SampleUniformNeighbors(
    const graph::BipartiteGraph& graph, graph::NodeId node, int count,
    math::Rng& rng) const {
  std::vector<graph::NodeId> sampled;
  const auto& adj = graph.neighbors(node);
  if (adj.empty()) return sampled;
  sampled.reserve(count);
  for (int i = 0; i < count; ++i) {
    sampled.push_back(adj[rng.UniformInt(static_cast<int>(adj.size()))].node);
  }
  return sampled;
}

math::VarId GraphSage::BuildNodeVar(
    math::Tape& tape, const graph::BipartiteGraph& graph,
    graph::NodeId node, int layer, math::Rng& rng,
    std::unordered_map<long, math::VarId>& memo,
    std::vector<std::pair<graph::NodeId, math::VarId>>* leaves) const {
  const long key = MemoKey(node, layer, config_.num_layers);
  const auto it = memo.find(key);
  if (it != memo.end()) return it->second;

  math::VarId var;
  if (layer == 0) {
    var = tape.Leaf(table_.Row(node));
    leaves->emplace_back(node, var);
  } else {
    const math::VarId self =
        BuildNodeVar(tape, graph, node, layer - 1, rng, memo, leaves);
    const int fanout = config_.fanouts[config_.num_layers - layer];
    const std::vector<graph::NodeId> sampled =
        SampleUniformNeighbors(graph, node, fanout, rng);
    math::VarId agg;
    if (sampled.empty()) {
      agg = tape.Leaf(math::Vec(config_.dimension, 0.0));
    } else {
      std::vector<math::VarId> children;
      children.reserve(sampled.size());
      for (const graph::NodeId nb : sampled) {
        children.push_back(
            BuildNodeVar(tape, graph, nb, layer - 1, rng, memo, leaves));
      }
      // MEAN aggregator.
      const math::Vec coeffs(children.size(),
                             1.0 / static_cast<double>(children.size()));
      agg = tape.WeightedSum(children, coeffs);
    }
    // Linear top layer (no ReLU), matching BiSAGE: keeps embeddings
    // from collapsing into the positive orthant.
    const math::VarId lin =
        tape.MatVec(weights_[layer - 1].get(), tape.Concat(self, agg));
    var = layer == config_.num_layers ? tape.L2Normalize(lin)
                                      : tape.L2Normalize(tape.Relu(lin));
  }
  memo.emplace(key, var);
  return var;
}

Status GraphSage::Train(const graph::BipartiteGraph& graph) {
  if (graph.num_nodes() == 0) {
    return Status::FailedPrecondition("graph is empty");
  }
  EnsureCapacity(graph, graph.num_nodes());
  math::Rng rng(config_.seed);

  // Uniform random walks (homogeneous treatment).
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  for (graph::NodeId node = 0; node < graph.num_nodes(); ++node) {
    if (graph.degree(node) == 0) continue;
    for (int w = 0; w < config_.walks_per_node; ++w) {
      graph::NodeId current = node;
      for (int step = 0; step < config_.walk_length; ++step) {
        const auto& adj = graph.neighbors(current);
        if (adj.empty()) break;
        const graph::NodeId next =
            adj[rng.UniformInt(static_cast<int>(adj.size()))].node;
        pairs.emplace_back(current, next);
        current = next;
      }
    }
  }
  if (pairs.empty()) {
    return Status::FailedPrecondition("graph has no edges to walk");
  }

  math::Tape tape;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(pairs);
    double epoch_loss = 0.0;
    long loss_terms = 0;
    size_t index = 0;
    while (index < pairs.size()) {
      tape.Clear();
      std::unordered_map<long, math::VarId> memo;
      std::vector<std::pair<graph::NodeId, math::VarId>> leaves;
      const size_t end = std::min(
          pairs.size(), index + static_cast<size_t>(config_.batch_pairs));
      for (; index < end; ++index) {
        const auto [x, y] = pairs[index];
        const math::VarId vx = BuildNodeVar(tape, graph, x,
                                            config_.num_layers, rng, memo,
                                            &leaves);
        const math::VarId vy = BuildNodeVar(tape, graph, y,
                                            config_.num_layers, rng, memo,
                                            &leaves);
        epoch_loss += tape.AddLogSigmoidLoss(tape.Dot(vx, vy), +1.0);
        ++loss_terms;
        for (int n = 0; n < config_.num_negatives; ++n) {
          const graph::NodeId z = graph.SampleNegative(rng);
          const math::VarId vz = BuildNodeVar(tape, graph, z,
                                              config_.num_layers, rng, memo,
                                              &leaves);
          epoch_loss += tape.AddLogSigmoidLoss(tape.Dot(vx, vz), -1.0);
          ++loss_terms;
        }
      }
      tape.Backward();
      adam_->Step();
    }
    last_epoch_loss_ = epoch_loss / static_cast<double>(loss_terms);
  }
  trained_ = true;
  return Status::Ok();
}

math::Vec GraphSage::InferNode(const graph::BipartiteGraph& graph,
                               graph::NodeId node, int layer,
                               math::Rng& rng,
                               std::unordered_map<long, math::Vec>& memo) const {
  const long key = MemoKey(node, layer, config_.num_layers);
  const auto it = memo.find(key);
  if (it != memo.end()) return it->second;

  math::Vec out;
  if (layer == 0) {
    out = table_.Row(node);
  } else {
    const math::Vec self = InferNode(graph, node, layer - 1, rng, memo);
    // Full-neighborhood MEAN at inference (uniform weights — the
    // homogeneous treatment ignores edge weights by design).
    std::vector<graph::NodeId> sampled;
    for (const graph::Neighbor& nb : graph.neighbors(node)) {
      sampled.push_back(nb.node);
    }
    math::Vec agg(config_.dimension, 0.0);
    if (!sampled.empty()) {
      const double coeff = 1.0 / static_cast<double>(sampled.size());
      for (const graph::NodeId nb : sampled) {
        math::AddScaled(agg, InferNode(graph, nb, layer - 1, rng, memo),
                        coeff);
      }
    }
    out = weights_[layer - 1]->value.MatVec(math::Concat(self, agg));
    if (layer != config_.num_layers) {  // linear top layer
      for (double& v : out) v = v > 0.0 ? v : 0.0;
    }
    math::NormalizeL2(out);
  }
  memo.emplace(key, out);
  return out;
}

math::Vec GraphSage::Embedding(const graph::BipartiteGraph& graph,
                               graph::NodeId node) const {
  GEM_CHECK(node >= 0 && node < graph.num_nodes());
  EnsureCapacity(graph, graph.num_nodes());
  math::Rng rng(config_.seed ^ (0x9E3779B97F4A7C15ULL *
                                (static_cast<uint64_t>(node) + 1)));
  std::unordered_map<long, math::Vec> memo;
  return InferNode(graph, node, config_.num_layers, rng, memo);
}

GraphSageEmbedder::GraphSageEmbedder(GraphSageConfig config,
                                     graph::EdgeWeightConfig weight_config)
    : graph_(weight_config), model_(std::move(config)) {}

Status GraphSageEmbedder::Fit(const std::vector<rf::ScanRecord>& train) {
  if (train.empty()) {
    return Status::InvalidArgument("no training records");
  }
  train_nodes_.clear();
  for (const rf::ScanRecord& record : train) {
    train_nodes_.push_back(graph_.AddRecord(record));
  }
  num_train_ = static_cast<int>(train.size());
  return model_.Train(graph_);
}

math::Vec GraphSageEmbedder::TrainEmbedding(int i) const {
  GEM_CHECK(i >= 0 && i < num_train_);
  return model_.Embedding(graph_, train_nodes_[i]);
}

StatusOr<math::Vec> GraphSageEmbedder::EmbedNew(
    const rf::ScanRecord& record) {
  if (!model_.trained()) {
    return Status::FailedPrecondition("embedder is not trained");
  }
  const bool connected = graph_.CountKnownMacs(record) > 0;
  const graph::NodeId node = graph_.AddRecord(record);
  if (!connected) {
    return Status::NotFound("record shares no MAC with the graph");
  }
  return model_.Embedding(graph_, node);
}

}  // namespace gem::embed

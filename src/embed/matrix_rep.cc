#include "embed/matrix_rep.h"

#include <algorithm>

#include "base/check.h"

namespace gem::embed {

void MacVocabulary::Build(const std::vector<rf::ScanRecord>& records) {
  macs_.clear();
  index_.clear();
  for (const rf::ScanRecord& record : records) {
    for (const rf::Reading& reading : record.readings) {
      if (index_.emplace(reading.mac, static_cast<int>(macs_.size())).second) {
        macs_.push_back(reading.mac);
      }
    }
  }
}

std::optional<int> MacVocabulary::IndexOf(const std::string& mac) const {
  const auto it = index_.find(mac);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

math::Vec MacVocabulary::ToDense(const rf::ScanRecord& record,
                                 double pad_dbm) const {
  math::Vec dense(macs_.size(), pad_dbm);
  for (const rf::Reading& reading : record.readings) {
    const auto it = index_.find(reading.mac);
    if (it != index_.end()) {
      dense[it->second] = std::max(dense[it->second], reading.rss_dbm);
    }
  }
  return dense;
}

math::Vec MacVocabulary::ToDenseNormalized(const rf::ScanRecord& record,
                                           double pad_dbm) const {
  constexpr double kCeilingDbm = -20.0;
  math::Vec dense = ToDense(record, pad_dbm);
  const double range = kCeilingDbm - pad_dbm;
  for (double& v : dense) {
    v = std::clamp((v - pad_dbm) / range, 0.0, 1.0);
  }
  return dense;
}

int MacVocabulary::CountKnownMacs(const rf::ScanRecord& record) const {
  int known = 0;
  for (const rf::Reading& reading : record.readings) {
    if (index_.count(reading.mac) > 0) ++known;
  }
  return known;
}

Status RawVectorEmbedder::Fit(const std::vector<rf::ScanRecord>& train) {
  if (train.empty()) {
    return Status::InvalidArgument("no training records");
  }
  vocab_.Build(train);
  if (vocab_.size() == 0) {
    return Status::InvalidArgument("training records contain no MACs");
  }
  train_embeddings_.clear();
  for (const rf::ScanRecord& record : train) {
    train_embeddings_.push_back(vocab_.ToDenseNormalized(record, pad_dbm_));
  }
  num_train_ = static_cast<int>(train.size());
  return Status::Ok();
}

math::Vec RawVectorEmbedder::TrainEmbedding(int i) const {
  GEM_CHECK(i >= 0 && i < num_train_);
  return train_embeddings_[i];
}

StatusOr<math::Vec> RawVectorEmbedder::EmbedNew(
    const rf::ScanRecord& record) {
  if (vocab_.CountKnownMacs(record) == 0) {
    return Status::NotFound("record shares no MAC with the vocabulary");
  }
  return vocab_.ToDenseNormalized(record, pad_dbm_);
}

}  // namespace gem::embed

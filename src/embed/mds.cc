#include "embed/mds.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "math/eigen.h"
#include "math/vec.h"

namespace gem::embed {

MdsEmbedder::MdsEmbedder(MdsConfig config) : config_(config) {}

Status MdsEmbedder::Fit(const std::vector<rf::ScanRecord>& train) {
  if (train.size() < 2) {
    return Status::InvalidArgument("MDS needs at least 2 training records");
  }
  vocab_.Build(train);
  if (vocab_.size() == 0) {
    return Status::InvalidArgument("training records contain no MACs");
  }
  const int n = static_cast<int>(train.size());
  train_dense_.clear();
  train_dense_.reserve(n);
  for (const rf::ScanRecord& record : train) {
    train_dense_.push_back(vocab_.ToDenseNormalized(record, config_.pad_dbm));
  }

  // Squared distance matrix D2 with d = 1 - cosine similarity.
  math::Matrix d2(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double d = math::CosineDistance(train_dense_[i], train_dense_[j]);
      d2.At(i, j) = d * d;
      d2.At(j, i) = d * d;
    }
  }

  // Double centering: B = -0.5 * J D2 J.
  sq_dist_col_mean_.assign(n, 0.0);
  double grand_mean = 0.0;
  for (int i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (int j = 0; j < n; ++j) row_sum += d2.At(i, j);
    sq_dist_col_mean_[i] = row_sum / n;
    grand_mean += row_sum;
  }
  grand_mean /= static_cast<double>(n) * n;

  math::Matrix b(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      b.At(i, j) = -0.5 * (d2.At(i, j) - sq_dist_col_mean_[i] -
                           sq_dist_col_mean_[j] + grand_mean);
    }
  }

  auto eigen = math::JacobiEigenSymmetric(b);
  if (!eigen.ok()) return eigen.status();
  eigvals_ = eigen.value().values;
  eigvecs_ = eigen.value().vectors;

  // Keep the top-k strictly positive eigenvalues.
  components_used_ = 0;
  for (int k = 0; k < std::min(config_.components, n); ++k) {
    if (eigvals_[k] > 1e-9) ++components_used_;
  }
  if (components_used_ == 0) {
    return Status::Internal("centered Gram matrix has no positive spectrum");
  }

  // Training embeddings: X = V_k Lambda_k^{1/2}.
  train_embeddings_ = math::Matrix(n, components_used_, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < components_used_; ++k) {
      train_embeddings_.At(i, k) =
          eigvecs_.At(k, i) * std::sqrt(eigvals_[k]);
    }
  }
  num_train_ = n;
  return Status::Ok();
}

math::Vec MdsEmbedder::TrainEmbedding(int i) const {
  GEM_CHECK(i >= 0 && i < num_train_);
  return train_embeddings_.Row(i);
}

StatusOr<math::Vec> MdsEmbedder::EmbedNew(const rf::ScanRecord& record) {
  if (num_train_ <= 0) {
    return Status::FailedPrecondition("embedder is not trained");
  }
  if (vocab_.CountKnownMacs(record) == 0) {
    return Status::NotFound("record shares no MAC with the vocabulary");
  }
  const math::Vec dense = vocab_.ToDenseNormalized(record, config_.pad_dbm);

  // Landmark-MDS projection (de Silva & Tenenbaum): with delta the
  // squared distances to the landmarks,
  //   x_k = v_k . (col_mean - delta) / (2 sqrt(lambda_k)).
  const int n = num_train_;
  math::Vec delta(n);
  for (int i = 0; i < n; ++i) {
    const double d = math::CosineDistance(dense, train_dense_[i]);
    delta[i] = d * d;
  }
  math::Vec out(components_used_, 0.0);
  for (int k = 0; k < components_used_; ++k) {
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
      acc += eigvecs_.At(k, i) * (sq_dist_col_mean_[i] - delta[i]);
    }
    out[k] = acc / (2.0 * std::sqrt(eigvals_[k]));
  }
  return out;
}

}  // namespace gem::embed

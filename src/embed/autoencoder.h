#ifndef GEM_EMBED_AUTOENCODER_H_
#define GEM_EMBED_AUTOENCODER_H_

#include <memory>
#include <vector>

#include "base/status.h"
#include "embed/embedder.h"
#include "embed/matrix_rep.h"
#include "math/autograd.h"
#include "math/optimizer.h"

namespace gem::embed {

/// Autoencoder baseline hyperparameters. The paper's best autoencoder
/// used four 1-D convolution layers; with the small padded-vector
/// inputs here an MLP with the same bottleneck dimension is the
/// equivalent substitution (documented in DESIGN.md).
struct AutoencoderConfig {
  int hidden = 64;
  int bottleneck = 32;
  int epochs = 60;
  double learning_rate = 0.003;
  int batch_size = 16;
  double pad_dbm = -120.0;
  uint64_t seed = 23;
};

/// "Autoencoder + OD" baseline of Table I: learns a low-dimensional
/// code of the padded matrix representation by reconstruction (MSE),
/// then the code is fed to the outlier detector. Inherits the
/// missing-value padding problem the paper highlights.
class AutoencoderEmbedder : public RecordEmbedder {
 public:
  explicit AutoencoderEmbedder(AutoencoderConfig config = {});

  Status Fit(const std::vector<rf::ScanRecord>& train) override;
  math::Vec TrainEmbedding(int i) const override;
  int num_train() const override { return num_train_; }
  StatusOr<math::Vec> EmbedNew(const rf::ScanRecord& record) override;
  int dimension() const override { return config_.bottleneck; }

  /// Mean reconstruction loss of the final epoch (diagnostic).
  double final_loss() const { return final_loss_; }

  /// Reconstruction of an input vector (diagnostic / tests).
  math::Vec Reconstruct(const math::Vec& input) const;

 private:
  /// Bottleneck code of an input vector (encoder forward pass).
  math::Vec Encode(const math::Vec& input) const;

  AutoencoderConfig config_;
  MacVocabulary vocab_;
  // Encoder: in -> hidden -> bottleneck (ReLU, tanh code). Decoder:
  // bottleneck -> hidden -> in (ReLU, linear output). Bias-free layers:
  // inputs are normalized to [0, 1] so the model reconstructs well
  // without them.
  std::unique_ptr<math::Parameter> w1_, w2_, w3_, w4_;
  std::unique_ptr<math::Adam> adam_;
  std::vector<math::Vec> train_codes_;
  int num_train_ = 0;
  double final_loss_ = 0.0;
  bool trained_ = false;
};

}  // namespace gem::embed

#endif  // GEM_EMBED_AUTOENCODER_H_

#ifndef GEM_EMBED_MATRIX_REP_H_
#define GEM_EMBED_MATRIX_REP_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "embed/embedder.h"
#include "math/matrix.h"
#include "math/vec.h"
#include "rf/types.h"

namespace gem::embed {

/// The conventional fixed-length matrix representation of RF signal
/// records (Section IV-A): one dimension per MAC seen in training,
/// missing entries padded with an arbitrarily small RSS (-120 dBm in
/// the paper). This is the representation whose "missing-value
/// problem" GEM's bipartite-graph modeling removes; it underlies the
/// SignatureHome/INOA/autoencoder/MDS baselines and Figure 7's
/// "GEM without BiSAGE" arm.
class MacVocabulary {
 public:
  MacVocabulary() = default;

  /// Builds the vocabulary from training records (first-seen order).
  void Build(const std::vector<rf::ScanRecord>& records);

  int size() const { return static_cast<int>(macs_.size()); }
  const std::vector<std::string>& macs() const { return macs_; }
  std::optional<int> IndexOf(const std::string& mac) const;

  /// Fixed-length RSS vector of a record; MACs outside the vocabulary
  /// are dropped, missing ones padded with `pad_dbm`.
  math::Vec ToDense(const rf::ScanRecord& record,
                    double pad_dbm = -120.0) const;

  /// ToDense rescaled to roughly [0, 1]: (rss - pad) / (ceiling - pad)
  /// with ceiling = -20 dBm. The normalization keeps autoencoder /
  /// distance computations well-conditioned.
  math::Vec ToDenseNormalized(const rf::ScanRecord& record,
                              double pad_dbm = -120.0) const;

  /// Number of readings in `record` whose MAC the vocabulary knows.
  int CountKnownMacs(const rf::ScanRecord& record) const;

 private:
  std::vector<std::string> macs_;
  std::unordered_map<std::string, int> index_;
};

/// RecordEmbedder that simply returns the normalized padded vector —
/// "GEM without the embeddings by BiSAGE" in Figure 7.
class RawVectorEmbedder : public RecordEmbedder {
 public:
  explicit RawVectorEmbedder(double pad_dbm = -120.0) : pad_dbm_(pad_dbm) {}

  Status Fit(const std::vector<rf::ScanRecord>& train) override;
  math::Vec TrainEmbedding(int i) const override;
  int num_train() const override { return num_train_; }
  StatusOr<math::Vec> EmbedNew(const rf::ScanRecord& record) override;
  int dimension() const override { return vocab_.size(); }

  const MacVocabulary& vocabulary() const { return vocab_; }

 private:
  double pad_dbm_;
  MacVocabulary vocab_;
  std::vector<math::Vec> train_embeddings_;
  int num_train_ = 0;
};

}  // namespace gem::embed

#endif  // GEM_EMBED_MATRIX_REP_H_

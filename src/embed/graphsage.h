#ifndef GEM_EMBED_GRAPHSAGE_H_
#define GEM_EMBED_GRAPHSAGE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "embed/embedder.h"
#include "graph/bipartite_graph.h"
#include "math/autograd.h"
#include "math/optimizer.h"
#include "math/rng.h"

namespace gem::embed {

/// GraphSAGE hyperparameters (the paper's baseline configuration:
/// homogeneous treatment of the bipartite graph, uniform neighborhood
/// sampling, uniform random walks, single embedding per node).
struct GraphSageConfig {
  int dimension = 32;
  int num_layers = 2;
  std::vector<int> fanouts = {6, 4};
  int walks_per_node = 2;
  int walk_length = 5;
  int epochs = 3;
  int num_negatives = 4;
  double learning_rate = 0.003;
  int batch_pairs = 16;
  uint64_t seed = 17;
};

/// The GraphSAGE baseline of Table I ("GraphSAGE + OD"): the same
/// bipartite graph is embedded as if it were homogeneous — one
/// embedding per node, MEAN aggregation over uniformly sampled
/// neighbors, uniform random walks, and the standard unsupervised
/// negative-sampling loss. The contrast with BiSAGE isolates the value
/// of bi-level aggregation + weighted sampling.
class GraphSage {
 public:
  explicit GraphSage(GraphSageConfig config);

  Status Train(const graph::BipartiteGraph& graph);

  /// Final embedding z^K of a node.
  math::Vec Embedding(const graph::BipartiteGraph& graph,
                      graph::NodeId node) const;

  double last_epoch_loss() const { return last_epoch_loss_; }
  const GraphSageConfig& config() const { return config_; }
  bool trained() const { return trained_; }

 private:
  void EnsureCapacity(const graph::BipartiteGraph& graph,
                      int count) const;

  math::VarId BuildNodeVar(math::Tape& tape,
                           const graph::BipartiteGraph& graph,
                           graph::NodeId node, int layer, math::Rng& rng,
                           std::unordered_map<long, math::VarId>& memo,
                           std::vector<std::pair<graph::NodeId,
                                                 math::VarId>>* leaves) const;

  math::Vec InferNode(const graph::BipartiteGraph& graph,
                      graph::NodeId node, int layer, math::Rng& rng,
                      std::unordered_map<long, math::Vec>& memo) const;

  /// Uniform neighbor draw (GraphSAGE ignores edge weights).
  std::vector<graph::NodeId> SampleUniformNeighbors(
      const graph::BipartiteGraph& graph, graph::NodeId node, int count,
      math::Rng& rng) const;

  GraphSageConfig config_;
  mutable math::Matrix table_;
  mutable std::unique_ptr<math::RowAdam> table_adam_;
  mutable math::Rng init_rng_;
  std::vector<std::unique_ptr<math::Parameter>> weights_;
  std::unique_ptr<math::Adam> adam_;
  double last_epoch_loss_ = 0.0;
  bool trained_ = false;
};

/// RecordEmbedder adapter for GraphSAGE over the bipartite graph.
class GraphSageEmbedder : public RecordEmbedder {
 public:
  explicit GraphSageEmbedder(GraphSageConfig config = {},
                             graph::EdgeWeightConfig weight_config = {});

  Status Fit(const std::vector<rf::ScanRecord>& train) override;
  math::Vec TrainEmbedding(int i) const override;
  int num_train() const override { return num_train_; }
  StatusOr<math::Vec> EmbedNew(const rf::ScanRecord& record) override;
  int dimension() const override { return model_.config().dimension; }

 private:
  graph::BipartiteGraph graph_;
  GraphSage model_;
  std::vector<graph::NodeId> train_nodes_;
  int num_train_ = 0;
};

}  // namespace gem::embed

#endif  // GEM_EMBED_GRAPHSAGE_H_

#include "embed/bisage.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "base/check.h"
#include "base/logging.h"
#include "math/vec.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gem::embed {
namespace {

// Salts separating the independent RNG stream families Train() draws
// from (walks, epoch shuffles, per-group sampling) so no two families
// ever share a stream for any (seed, id) combination.
constexpr uint64_t kWalkStreamSalt = 0x9E2AB15A6E000001ULL;
constexpr uint64_t kShuffleStreamSalt = 0x9E2AB15A6E000002ULL;
constexpr uint64_t kGroupStreamSalt = 0x9E2AB15A6E000003ULL;

/// Memoization key for (node, layer) pairs.
long MemoKey(graph::NodeId node, int layer, int num_layers) {
  return static_cast<long>(node) * (num_layers + 1) + layer;
}

/// Normalized aggregation coefficients of a sampled neighbor multiset
/// (the paper's weighted aggregator; uniform under the ablation),
/// written into a caller-owned buffer so the inference hot path can
/// reuse its capacity.
void AggregationCoeffsInto(const std::vector<graph::Neighbor>& sampled,
                           bool use_edge_weights, math::Vec& coeffs) {
  coeffs.assign(sampled.size(), 0.0);
  if (!use_edge_weights) {
    std::fill(coeffs.begin(), coeffs.end(),
              1.0 / static_cast<double>(sampled.size()));
    return;
  }
  double total = 0.0;
  for (size_t i = 0; i < sampled.size(); ++i) {
    coeffs[i] = sampled[i].weight;
    total += sampled[i].weight;
  }
  if (total <= 0.0) {
    std::fill(coeffs.begin(), coeffs.end(),
              1.0 / static_cast<double>(sampled.size()));
  } else {
    for (double& c : coeffs) c /= total;
  }
}

math::Vec AggregationCoeffs(const std::vector<graph::Neighbor>& sampled,
                            bool use_edge_weights) {
  math::Vec coeffs;
  AggregationCoeffsInto(sampled, use_edge_weights, coeffs);
  return coeffs;
}

/// In-place l2 normalization matching math::NormalizeL2's contract
/// (zero vectors pass through) on a raw kernel buffer.
void NormalizeInPlace(const math::kernels::Ops& ops, double* x, int n) {
  const double norm = std::sqrt(ops.dot(x, x, n));
  if (norm > 0.0) ops.scale(x, 1.0 / norm, n);
}

/// Uniform with-replacement neighbor draw (ablation of the
/// weight-proportional sampling).
std::vector<graph::Neighbor> SampleUniform(const graph::BipartiteGraph& graph,
                                           graph::NodeId node, int count,
                                           math::Rng& rng) {
  std::vector<graph::Neighbor> sampled;
  const auto& adj = graph.neighbors(node);
  if (adj.empty()) return sampled;
  sampled.reserve(count);
  for (int i = 0; i < count; ++i) {
    sampled.push_back(adj[rng.UniformInt(static_cast<int>(adj.size()))]);
  }
  return sampled;
}

}  // namespace

Status BiSageConfig::Validate() const {
  if (dimension < 1) {
    return Status::InvalidArgument("bisage: dimension must be >= 1, got " +
                                   std::to_string(dimension));
  }
  if (num_layers < 1) {
    return Status::InvalidArgument("bisage: num_layers must be >= 1, got " +
                                   std::to_string(num_layers));
  }
  if (static_cast<int>(fanouts.size()) != num_layers) {
    return Status::InvalidArgument(
        "bisage: fanouts must have one entry per layer (" +
        std::to_string(num_layers) + "), got " +
        std::to_string(fanouts.size()));
  }
  for (const int fanout : fanouts) {
    if (fanout < 1) {
      return Status::InvalidArgument(
          "bisage: training fanouts must be >= 1, got " +
          std::to_string(fanout));
    }
  }
  // inference_fanouts entries <= 0 mean "full neighborhood"; only the
  // shape is constrained. Empty means "same as fanouts".
  if (!inference_fanouts.empty() &&
      static_cast<int>(inference_fanouts.size()) != num_layers) {
    return Status::InvalidArgument(
        "bisage: inference_fanouts must be empty or have one entry per "
        "layer (" +
        std::to_string(num_layers) + "), got " +
        std::to_string(inference_fanouts.size()));
  }
  if (walks_per_node < 1) {
    return Status::InvalidArgument("bisage: walks_per_node must be >= 1");
  }
  if (walk_length < 1) {
    return Status::InvalidArgument("bisage: walk_length must be >= 1");
  }
  if (epochs < 1) {
    return Status::InvalidArgument("bisage: epochs must be >= 1");
  }
  if (num_negatives < 0) {
    return Status::InvalidArgument("bisage: num_negatives must be >= 0");
  }
  if (!(learning_rate > 0.0) || !std::isfinite(learning_rate)) {
    return Status::InvalidArgument(
        "bisage: learning_rate must be positive and finite");
  }
  if (batch_pairs < 1) {
    return Status::InvalidArgument("bisage: batch_pairs must be >= 1");
  }
  if (min_mac_degree < 1) {
    return Status::InvalidArgument("bisage: min_mac_degree must be >= 1");
  }
  return ThreadPoolOptions{num_threads}.Validate();
}

BiSage::BiSage(BiSageConfig config)
    : config_(std::move(config)), init_rng_(config_.seed ^ 0xB15A6EULL) {
  if (config_.inference_fanouts.empty()) {
    config_.inference_fanouts = config_.fanouts;
  }
  config_status_ = config_.Validate();
  if (!config_status_.ok()) return;

  const int d = config_.dimension;
  h_table_ = math::Matrix(0, d);
  l_table_ = math::Matrix(0, d);
  math::AdamOptions adam_options;
  adam_options.learning_rate = config_.learning_rate;
  adam_ = std::make_unique<math::Adam>(adam_options);

  math::Rng weight_rng(config_.seed);
  for (int k = 0; k < config_.num_layers; ++k) {
    w_h_.push_back(std::make_unique<math::Parameter>(d, 2 * d));
    w_l_.push_back(std::make_unique<math::Parameter>(d, 2 * d));
    w_h_.back()->value.FillGlorot(weight_rng);
    w_l_.back()->value.FillGlorot(weight_rng);
    adam_->Register(w_h_.back().get());
    adam_->Register(w_l_.back().get());
  }
}

ThreadPool& BiSage::thread_pool() const {
  GEM_CHECK(config_status_.ok());
  if (!pool_) pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  return *pool_;
}

void BiSage::EnsureCapacity(const graph::BipartiteGraph& graph,
                            int count) const {
  const int d = config_.dimension;
  const double scale = 1.0 / std::sqrt(static_cast<double>(d));
  while (h_table_.rows() < count) {
    const graph::NodeId node = h_table_.rows();
    math::Vec h_row(d, 0.0);
    math::Vec l_row(d, 0.0);
    // MAC nodes carry fixed random features — their identity in the
    // embedding space. Record nodes start at zero: a record's identity
    // is entirely its (weighted) MAC membership, so training and the
    // inductive embedding of future records see exactly the same input
    // distribution. (A per-record random h^0 would be pure noise in
    // the self half of the CONCAT of Equations (4)/(6).)
    if (node >= graph.num_nodes() ||
        graph.type(node) == graph::NodeType::kMac) {
      for (int i = 0; i < d; ++i) {
        h_row[i] = init_rng_.Uniform(-scale, scale);
        l_row[i] = init_rng_.Uniform(-scale, scale);
      }
    }
    h_table_.AppendRow(h_row);
    l_table_.AppendRow(l_row);
  }
}

void BiSage::PrepareInference(const graph::BipartiteGraph& graph) const {
  EnsureCapacity(graph, graph.num_nodes());
  graph.WarmCaches();
}

BiSage::NodeVars BiSage::BuildNodeVars(
    math::Tape& tape, const graph::BipartiteGraph& graph,
    graph::NodeId node, int layer, math::Rng& rng,
    std::unordered_map<long, NodeVars>& memo) const {
  const long key = MemoKey(node, layer, config_.num_layers);
  const auto it = memo.find(key);
  if (it != memo.end()) return it->second;

  NodeVars vars;
  if (layer == 0) {
    vars.h = tape.Leaf(h_table_.Row(node));
    vars.l = tape.Leaf(l_table_.Row(node));
  } else {
    const NodeVars self = BuildNodeVars(tape, graph, node, layer - 1, rng,
                                        memo);
    const int fanout = config_.fanouts[config_.num_layers - layer];
    const std::vector<graph::Neighbor> sampled =
        config_.use_edge_weights ? graph.SampleNeighbors(node, fanout, rng)
                                 : SampleUniform(graph, node, fanout, rng);

    math::VarId h_agg;
    math::VarId l_agg;
    if (sampled.empty()) {
      // Isolated node: aggregate nothing; the update still mixes the
      // node's own lower-layer embedding through the weight matrix.
      const math::Vec zeros(config_.dimension, 0.0);
      h_agg = tape.Leaf(zeros);
      l_agg = tape.Leaf(zeros);
    } else {
      const math::Vec coeffs =
          AggregationCoeffs(sampled, config_.use_edge_weights);
      std::vector<math::VarId> neighbor_l;
      std::vector<math::VarId> neighbor_h;
      neighbor_l.reserve(sampled.size());
      neighbor_h.reserve(sampled.size());
      for (const graph::Neighbor& nb : sampled) {
        const NodeVars child = BuildNodeVars(tape, graph, nb.node, layer - 1,
                                             rng, memo);
        neighbor_l.push_back(child.l);
        neighbor_h.push_back(child.h);
      }
      // Equation (3): primary aggregates neighbors' auxiliaries.
      h_agg = tape.WeightedSum(neighbor_l, coeffs);
      // Equation (5): auxiliary aggregates neighbors' primaries.
      l_agg = tape.WeightedSum(neighbor_h, coeffs);
    }
    // Equations (4), (6), (7). The top layer is linear (no ReLU):
    // a ReLU there would confine embeddings to the positive orthant,
    // making the negative terms of Equation (8) unsatisfiable.
    const math::VarId h_lin =
        tape.MatVec(w_h_[layer - 1].get(), tape.Concat(self.h, h_agg));
    const math::VarId l_lin =
        tape.MatVec(w_l_[layer - 1].get(), tape.Concat(self.l, l_agg));
    if (layer == config_.num_layers) {
      vars.h = tape.L2Normalize(h_lin);
      vars.l = tape.L2Normalize(l_lin);
    } else {
      vars.h = tape.L2Normalize(tape.Relu(h_lin));
      vars.l = tape.L2Normalize(tape.Relu(l_lin));
    }
  }
  memo.emplace(key, vars);
  return vars;
}

Status BiSage::Train(const graph::BipartiteGraph& graph) {
  GEM_TRACE_SPAN("bisage.train");
  static obs::Counter& walk_count =
      obs::MetricsRegistry::Get().GetCounter("gem_bisage_walks_total");
  static obs::Counter& pair_count =
      obs::MetricsRegistry::Get().GetCounter("gem_bisage_pairs_total");
  static obs::Gauge& loss_gauge =
      obs::MetricsRegistry::Get().GetGauge("gem_bisage_epoch_loss");
  static obs::Histogram& epoch_seconds =
      obs::MetricsRegistry::Get().GetHistogram("gem_bisage_epoch_seconds",
                                               obs::LatencyBuckets());

  if (!config_status_.ok()) return config_status_;
  if (graph.num_nodes() == 0) {
    return Status::FailedPrecondition("graph is empty");
  }
  // Everything lazily built that the parallel sections read must exist
  // before the first worker touches it: node tables (EnsureCapacity),
  // per-node alias samplers and the negative-sampling table
  // (WarmCaches). After this, workers only read the graph.
  EnsureCapacity(graph, graph.num_nodes());
  graph.WarmCaches();
  ThreadPool& pool = thread_pool();

  // Walks start from record nodes only — the loss of Equation (8) is
  // symmetric in (x, y) and walks alternate sides, so every MAC node
  // on a walk still contributes pairs, at half the walk budget.
  std::vector<graph::NodeId> starts;
  for (graph::NodeId node = 0; node < graph.num_nodes(); ++node) {
    if (graph.type(node) != graph::NodeType::kRecord) continue;
    if (graph.degree(node) == 0) continue;
    starts.push_back(node);
  }
  if (starts.empty()) {
    return Status::FailedPrecondition("graph has no edges to walk");
  }

  // Generate the training pairs from weighted random walks: every
  // consecutive (x, y) in a walk is a positive pair. Each chunk writes
  // its own buffer; concatenating the buffers in chunk-index order
  // yields the same pair list run-to-run. In deterministic mode each
  // START NODE additionally draws from its own RNG stream, so the list
  // is invariant to the chunking itself (= to the thread count).
  std::vector<std::vector<std::pair<graph::NodeId, graph::NodeId>>>
      chunk_pairs(pool.num_threads());
  {
  GEM_TRACE_SPAN("bisage.walks");
  pool.ParallelFor(
      static_cast<long>(starts.size()),
      [&](int chunk, long begin, long end) {
        GEM_TRACE_SPAN("bisage.walk_chunk");
        auto& out = chunk_pairs[chunk];
        math::Rng chunk_rng(
            math::Rng::StreamSeed(config_.seed ^ kWalkStreamSalt,
                                  static_cast<uint64_t>(chunk)));
        for (long i = begin; i < end; ++i) {
          const graph::NodeId node = starts[i];
          math::Rng node_rng(
              math::Rng::StreamSeed(config_.seed ^ kWalkStreamSalt,
                                    static_cast<uint64_t>(node)));
          math::Rng& rng = config_.deterministic ? node_rng : chunk_rng;
          for (int w = 0; w < config_.walks_per_node; ++w) {
            std::vector<graph::NodeId> walk;
            if (config_.use_edge_weights) {
              walk = graph.RandomWalk(node, config_.walk_length, rng);
            } else {
              walk.push_back(node);
              graph::NodeId current = node;
              for (int step = 0; step < config_.walk_length; ++step) {
                const auto& adj = graph.neighbors(current);
                if (adj.empty()) break;
                current =
                    adj[rng.UniformInt(static_cast<int>(adj.size()))].node;
                walk.push_back(current);
              }
            }
            for (size_t j = 0; j + 1 < walk.size(); ++j) {
              out.emplace_back(walk[j], walk[j + 1]);
            }
          }
        }
      });
  }
  walk_count.Increment(starts.size() *
                       static_cast<size_t>(config_.walks_per_node));

  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  {
    GEM_TRACE_SPAN("bisage.concat_pairs");
    size_t total_pairs = 0;
    for (const auto& chunk : chunk_pairs) total_pairs += chunk.size();
    pairs.reserve(total_pairs);
    for (const auto& chunk : chunk_pairs) {
      pairs.insert(pairs.end(), chunk.begin(), chunk.end());
    }
  }
  if (pairs.empty()) {
    return Status::FailedPrecondition("graph has no edges to walk");
  }
  pair_count.Increment(pairs.size());

  // Gradient groups: a group builds its own tape (with its own
  // neighborhood samples and negatives from its own RNG stream) and
  // collects parameter gradients in a private sink; groups of one
  // batch run in parallel and are folded into Parameter::grad in
  // group-index order before the Adam step. In deterministic mode a
  // group is a single training pair — the fold order is then the
  // (shuffled) pair order, independent of the thread count. In default
  // mode a group is one worker-chunk of the batch: fewer, bigger tapes
  // that share a memo across the chunk's pairs, deterministic for a
  // fixed num_threads.
  uint64_t group_stream = 0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const auto epoch_start = std::chrono::steady_clock::now();
    {
      GEM_TRACE_SPAN("bisage.shuffle");
      math::Rng shuffle_rng(math::Rng::StreamSeed(
          config_.seed ^ kShuffleStreamSalt, static_cast<uint64_t>(epoch)));
      shuffle_rng.Shuffle(pairs);
    }
    double epoch_loss = 0.0;
    long loss_terms = 0;

    size_t batch_start = 0;
    while (batch_start < pairs.size()) {
      const long batch_size = static_cast<long>(
          std::min(pairs.size() - batch_start,
                   static_cast<size_t>(config_.batch_pairs)));
      const long num_groups =
          config_.deterministic
              ? batch_size
              : std::min<long>(pool.num_threads(), batch_size);
      std::vector<GroupResult> groups(num_groups);
      pool.ParallelForChunked(
          num_groups, std::min<long>(pool.num_threads(), num_groups),
          [&](int, long group_begin, long group_end) {
            GEM_TRACE_SPAN("bisage.gradient");
            for (long g = group_begin; g < group_end; ++g) {
              const auto [pair_begin, pair_end] =
                  StaticChunkRange(batch_size, num_groups, g);
              GroupResult& result = groups[g];
              math::Tape tape;
              std::unordered_map<long, NodeVars> memo;
              math::Rng rng(math::Rng::StreamSeed(
                  config_.seed ^ kGroupStreamSalt,
                  group_stream + static_cast<uint64_t>(g)));
              for (long p = pair_begin; p < pair_end; ++p) {
                const auto [x, y] = pairs[batch_start + p];
                const NodeVars vx = BuildNodeVars(
                    tape, graph, x, config_.num_layers, rng, memo);
                const NodeVars vy = BuildNodeVars(
                    tape, graph, y, config_.num_layers, rng, memo);
                // Positive part of Equation (8).
                result.loss +=
                    tape.AddLogSigmoidLoss(tape.Dot(vx.h, vy.l), +1.0);
                result.loss +=
                    tape.AddLogSigmoidLoss(tape.Dot(vx.l, vy.h), +1.0);
                result.terms += 2;
                // Negative part: K_N nodes drawn ~ deg^{3/4}.
                for (int n = 0; n < config_.num_negatives; ++n) {
                  const graph::NodeId z = graph.SampleNegative(rng);
                  const NodeVars vz = BuildNodeVars(
                      tape, graph, z, config_.num_layers, rng, memo);
                  result.loss +=
                      tape.AddLogSigmoidLoss(tape.Dot(vx.h, vz.l), -1.0);
                  result.loss +=
                      tape.AddLogSigmoidLoss(tape.Dot(vx.l, vz.h), -1.0);
                  result.terms += 2;
                }
              }
              tape.Backward(&result.sink);
            }
          });
      {
        // Serial per-batch tail: fold the group sinks in group-index
        // order, then one Adam step — the suspected scaling
        // bottleneck of ROADMAP item 1, now directly measurable.
        GEM_TRACE_SPAN("bisage.reduce");
        for (GroupResult& result : groups) {
          result.sink.FlushToParams();
          epoch_loss += result.loss;
          loss_terms += result.terms;
        }
        adam_->Step();
      }
      group_stream += static_cast<uint64_t>(num_groups);
      batch_start += static_cast<size_t>(batch_size);
    }
    last_epoch_loss_ = epoch_loss / static_cast<double>(loss_terms);
    loss_gauge.Set(last_epoch_loss_);
    epoch_seconds.Observe(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - epoch_start)
                              .count());
    GEM_LOG(Debug) << "bisage epoch " << epoch + 1 << "/" << config_.epochs
                   << " loss=" << last_epoch_loss_;
  }
  trained_ = true;
  trained_nodes_ = graph.num_nodes();
  return Status::Ok();
}

void BiSage::InferScratch::Reset(int num_layers, int dimension) {
  arena_.clear();
  memo_.clear();
  temps_.assign(static_cast<size_t>(num_layers) * 4 * dimension, 0.0);
  sampled_.resize(num_layers);
  coeffs_.resize(num_layers);
}

size_t BiSage::ForwardNode(const graph::BipartiteGraph& graph,
                           graph::NodeId node, int layer, math::Rng& rng,
                           InferScratch& scratch) const {
  const long key = MemoKey(node, layer, config_.num_layers);
  const auto it = scratch.memo_.find(key);
  if (it != scratch.memo_.end()) return it->second;

  const int d = config_.dimension;
  const math::kernels::Ops& ops = math::kernels::Active();
  size_t off;
  if (layer == 0) {
    off = scratch.arena_.size();
    scratch.arena_.resize(off + 2 * d);
    std::copy_n(h_table_.RowPtr(node), d, scratch.arena_.data() + off);
    std::copy_n(l_table_.RowPtr(node), d, scratch.arena_.data() + off + d);
  } else {
    const size_t self_off = ForwardNode(graph, node, layer - 1, rng, scratch);
    const int fanout = config_.inference_fanouts[config_.num_layers - layer];
    // fanout <= 0 selects the full neighborhood with exact weights:
    // a deterministic, variance-free aggregation for inference (and the
    // allocation-free path — the adjacency is copied into the reused
    // per-layer buffer, never freshly allocated).
    std::vector<graph::Neighbor>& sampled = scratch.sampled_[layer - 1];
    if (fanout <= 0) {
      const auto& adj = graph.neighbors(node);
      sampled.assign(adj.begin(), adj.end());
    } else if (config_.use_edge_weights) {
      sampled = graph.SampleNeighbors(node, fanout, rng);
    } else {
      sampled = SampleUniform(graph, node, fanout, rng);
    }
    // Drop MAC neighbors the model cannot interpret: singletons
    // (degree < min_mac_degree, e.g. a passer-by's phone — no
    // relational information) and MACs first seen after training
    // (their random features never passed through the learned weight
    // matrices, so they would only inject noise into embeddings the
    // detector was calibrated on).
    sampled.erase(
        std::remove_if(sampled.begin(), sampled.end(),
                       [&](const graph::Neighbor& nb) {
                         if (graph.type(nb.node) !=
                             graph::NodeType::kMac) {
                           return false;
                         }
                         if (nb.node >= trained_nodes_) return true;
                         return config_.min_mac_degree > 1 &&
                                graph.degree(nb.node) <
                                    config_.min_mac_degree;
                       }),
        sampled.end());

    // Stable per-layer temporaries: child recursion below may grow the
    // arena (invalidating arena pointers), so aggregation accumulates
    // here and arena pointers are re-derived from offsets after every
    // recursive call.
    double* temp = scratch.temps_.data() + static_cast<size_t>(layer - 1) * 4 * d;
    double* h_agg = temp;
    double* l_agg = temp + d;
    double* cat = temp + 2 * d;
    std::fill_n(h_agg, 2 * d, 0.0);
    if (!sampled.empty()) {
      math::Vec& coeffs = scratch.coeffs_[layer - 1];
      AggregationCoeffsInto(sampled, config_.use_edge_weights, coeffs);
      for (size_t i = 0; i < sampled.size(); ++i) {
        const size_t child_off =
            ForwardNode(graph, sampled[i].node, layer - 1, rng, scratch);
        const double* child = scratch.arena_.data() + child_off;
        // Equation (3): primary aggregates neighbors' auxiliaries;
        // Equation (5): auxiliary aggregates neighbors' primaries.
        ops.add_scaled(h_agg, child + d, coeffs[i], d);
        ops.add_scaled(l_agg, child, coeffs[i], d);
      }
    }
    off = scratch.arena_.size();
    scratch.arena_.resize(off + 2 * d);
    // Equations (4), (6): y = W [self ; agg], straight into the arena.
    const double* self = scratch.arena_.data() + self_off;
    std::copy_n(self, d, cat);
    std::copy_n(h_agg, d, cat + d);
    ops.matvec(w_h_[layer - 1]->value.data().data(), d, 2 * d, cat,
               scratch.arena_.data() + off);
    std::copy_n(self + d, d, cat);
    std::copy_n(l_agg, d, cat + d);
    ops.matvec(w_l_[layer - 1]->value.data().data(), d, 2 * d, cat,
               scratch.arena_.data() + off + d);
    double* h = scratch.arena_.data() + off;
    double* l = h + d;
    if (layer != config_.num_layers) {  // linear top layer (see training)
      for (int i = 0; i < d; ++i) h[i] = h[i] > 0.0 ? h[i] : 0.0;
      for (int i = 0; i < d; ++i) l[i] = l[i] > 0.0 ? l[i] : 0.0;
    }
    // Equation (7).
    NormalizeInPlace(ops, h, d);
    NormalizeInPlace(ops, l, d);
  }
  scratch.memo_.emplace(key, off);
  return off;
}

void BiSage::EmbedForward(const graph::BipartiteGraph& graph,
                          graph::NodeId node, InferScratch& scratch,
                          double* h_out, double* l_out) const {
  GEM_CHECK(config_status_.ok());
  GEM_CHECK(node >= 0 && node < graph.num_nodes());
  EnsureCapacity(graph, graph.num_nodes());
  scratch.Reset(config_.num_layers, config_.dimension);
  // Per-node deterministic sampling stream so repeated queries agree
  // (and so a batch of nodes embeds identically at any thread count).
  math::Rng rng(config_.seed ^ (0x9E3779B97F4A7C15ULL *
                                (static_cast<uint64_t>(node) + 1)));
  const size_t off = ForwardNode(graph, node, config_.num_layers, rng,
                                 scratch);
  const int d = config_.dimension;
  if (h_out != nullptr) {
    std::copy_n(scratch.arena_.data() + off, d, h_out);
  }
  if (l_out != nullptr) {
    std::copy_n(scratch.arena_.data() + off + d, d, l_out);
  }
}

math::Vec BiSage::PrimaryEmbedding(const graph::BipartiteGraph& graph,
                                   graph::NodeId node) const {
  static thread_local InferScratch scratch;
  math::Vec h(config_.dimension);
  EmbedForward(graph, node, scratch, h.data(), nullptr);
  return h;
}

math::Vec BiSage::AuxiliaryEmbedding(const graph::BipartiteGraph& graph,
                                     graph::NodeId node) const {
  static thread_local InferScratch scratch;
  math::Vec l(config_.dimension);
  EmbedForward(graph, node, scratch, nullptr, l.data());
  return l;
}

BiSage::TrainedState BiSage::ExportTrained() const {
  TrainedState state;
  state.h_table = h_table_;
  state.l_table = l_table_;
  state.w_h.reserve(w_h_.size());
  state.w_l.reserve(w_l_.size());
  for (const auto& p : w_h_) state.w_h.push_back(p->value);
  for (const auto& p : w_l_) state.w_l.push_back(p->value);
  state.init_rng = init_rng_.SaveState();
  state.trained_nodes = trained_nodes_;
  state.last_epoch_loss = last_epoch_loss_;
  return state;
}

Status BiSage::RestoreTrained(TrainedState state) {
  if (!config_status_.ok()) return config_status_;
  const int d = config_.dimension;
  if (state.w_h.size() != w_h_.size() || state.w_l.size() != w_l_.size()) {
    return Status::InvalidArgument("bisage state: layer count mismatch");
  }
  for (const math::Matrix& w : state.w_h) {
    if (w.rows() != d || w.cols() != 2 * d) {
      return Status::InvalidArgument("bisage state: weight shape mismatch");
    }
  }
  for (const math::Matrix& w : state.w_l) {
    if (w.rows() != d || w.cols() != 2 * d) {
      return Status::InvalidArgument("bisage state: weight shape mismatch");
    }
  }
  if (state.h_table.cols() != d || state.l_table.cols() != d ||
      state.h_table.rows() != state.l_table.rows()) {
    return Status::InvalidArgument("bisage state: node table shape mismatch");
  }
  if (state.trained_nodes < 0 ||
      state.trained_nodes > state.h_table.rows()) {
    return Status::InvalidArgument("bisage state: trained_nodes out of range");
  }
  h_table_ = std::move(state.h_table);
  l_table_ = std::move(state.l_table);
  for (size_t k = 0; k < w_h_.size(); ++k) {
    w_h_[k]->value = std::move(state.w_h[k]);
    w_h_[k]->ZeroGrad();
    w_l_[k]->value = std::move(state.w_l[k]);
    w_l_[k]->ZeroGrad();
  }
  init_rng_.RestoreState(state.init_rng);
  trained_nodes_ = state.trained_nodes;
  last_epoch_loss_ = state.last_epoch_loss;
  trained_ = true;
  return Status::Ok();
}

BiSageEmbedder::BiSageEmbedder(BiSageConfig config,
                               graph::EdgeWeightConfig weight_config)
    : graph_(weight_config), model_(std::move(config)) {}

Status BiSageEmbedder::Fit(const std::vector<rf::ScanRecord>& train) {
  if (train.empty()) {
    return Status::InvalidArgument("no training records");
  }
  train_nodes_.clear();
  train_nodes_.reserve(train.size());
  for (const rf::ScanRecord& record : train) {
    train_nodes_.push_back(graph_.AddRecord(record));
  }
  num_train_ = static_cast<int>(train.size());
  return model_.Train(graph_);
}

math::Vec BiSageEmbedder::TrainEmbedding(int i) const {
  GEM_CHECK(i >= 0 && i < num_train_);
  return model_.PrimaryEmbedding(graph_, train_nodes_[i]);
}

Status BiSageEmbedder::RestoreFitted(graph::BipartiteGraph graph,
                                     std::vector<graph::NodeId> train_nodes,
                                     BiSage::TrainedState model_state) {
  if (train_nodes.empty()) {
    return Status::InvalidArgument("embedder state: no training nodes");
  }
  for (const graph::NodeId node : train_nodes) {
    if (node < 0 || node >= graph.num_nodes() ||
        graph.type(node) != graph::NodeType::kRecord) {
      return Status::InvalidArgument("embedder state: bad training node id");
    }
  }
  const Status status = model_.RestoreTrained(std::move(model_state));
  if (!status.ok()) return status;
  graph_ = std::move(graph);
  num_train_ = static_cast<int>(train_nodes.size());
  train_nodes_ = std::move(train_nodes);
  return Status::Ok();
}

StatusOr<math::Vec> BiSageEmbedder::EmbedNew(const rf::ScanRecord& record) {
  if (!model_.trained()) {
    return Status::FailedPrecondition("embedder is not trained");
  }
  // Paper footnote 3: a record sharing no MAC with the graph is an
  // outlier outright (and per Section V-A the record is still added,
  // so its MACs become known for later arrivals).
  const bool connected = graph_.CountKnownMacs(record) > 0;
  const graph::NodeId node = graph_.AddRecord(record);
  if (!connected) {
    return Status::NotFound("record shares no MAC with the graph");
  }
  return model_.PrimaryEmbedding(graph_, node);
}

std::vector<StatusOr<math::Vec>> BiSageEmbedder::EmbedNewBatch(
    const std::vector<rf::ScanRecord>& records) {
  std::vector<StatusOr<math::Vec>> out;
  out.reserve(records.size());
  if (!model_.trained()) {
    for (size_t i = 0; i < records.size(); ++i) {
      out.push_back(Status::FailedPrecondition("embedder is not trained"));
    }
    return out;
  }
  // Graph appends are serial and ordered (see header): each record's
  // connectivity check sees every earlier record of the batch.
  std::vector<graph::NodeId> nodes(records.size(), -1);
  std::vector<char> connected(records.size(), 0);
  for (size_t i = 0; i < records.size(); ++i) {
    connected[i] = graph_.CountKnownMacs(records[i]) > 0 ? 1 : 0;
    nodes[i] = graph_.AddRecord(records[i]);
  }
  // Grow node tables + warm sampling caches before the read-only
  // parallel section.
  model_.PrepareInference(graph_);
  std::vector<math::Vec> embeddings(records.size());
  // One tape-free forward scratch per worker, reused across the chunk's
  // records — the batch does no per-record allocation beyond the output
  // vectors themselves.
  std::vector<BiSage::InferScratch> scratches(
      model_.thread_pool().num_threads());
  const int dimension = model_.config().dimension;
  model_.thread_pool().ParallelFor(
      static_cast<long>(records.size()),
      [&](int chunk, long begin, long end) {
        GEM_TRACE_SPAN("bisage.embed_chunk");
        BiSage::InferScratch& scratch = scratches[chunk];
        for (long i = begin; i < end; ++i) {
          if (connected[i]) {
            embeddings[i].resize(dimension);
            model_.EmbedForward(graph_, nodes[i], scratch,
                                embeddings[i].data());
          }
        }
      });
  for (size_t i = 0; i < records.size(); ++i) {
    if (connected[i]) {
      out.push_back(std::move(embeddings[i]));
    } else {
      out.push_back(Status::NotFound("record shares no MAC with the graph"));
    }
  }
  return out;
}

}  // namespace gem::embed

#ifndef GEM_OBS_TRACE_CONTEXT_H_
#define GEM_OBS_TRACE_CONTEXT_H_

#include <atomic>
#include <cstdint>

namespace gem::obs {

/// Request/operation-scoped trace identity, propagated EXPLICITLY
/// across thread hops (gem::ThreadPool task submission, the serving
/// engine's request queue): the submitter captures its context, the
/// worker installs it before running the task, so child spans on the
/// worker attach to the right parent even though they run on a
/// different thread.
///
/// Ids are process-local (a monotonically increasing 64-bit counter),
/// 0 means "none". trace_id groups every span of one operation (one
/// serve request, one Train call); span_id names the innermost live
/// span and becomes the parent_span_id of any span opened under it.
///
/// This header is intentionally dependency-free (inline thread_locals
/// only) so low-level code (base/thread_pool) can propagate context
/// without linking the obs exporters.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool active() const { return trace_id != 0 || span_id != 0; }
};

namespace internal {
/// Process-wide id source; 0 is reserved for "none".
inline std::atomic<uint64_t> g_next_trace_scoped_id{1};
inline thread_local TraceContext t_trace_context;
}  // namespace internal

/// Fresh process-unique id (shared counter for trace and span ids;
/// uniqueness, not density, is the contract).
inline uint64_t NewTraceId() {
  return internal::g_next_trace_scoped_id.fetch_add(
      1, std::memory_order_relaxed);
}
inline uint64_t NewSpanId() { return NewTraceId(); }

/// The calling thread's current context ({0, 0} when no span/request
/// is live here).
inline TraceContext CurrentTraceContext() {
  return internal::t_trace_context;
}

inline void SetCurrentTraceContext(TraceContext context) {
  internal::t_trace_context = context;
}

/// RAII install/restore of the thread's context around a task that
/// runs on behalf of another thread's span.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext context)
      : saved_(internal::t_trace_context) {
    internal::t_trace_context = context;
  }
  ~TraceContextScope() { internal::t_trace_context = saved_; }

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace gem::obs

#endif  // GEM_OBS_TRACE_CONTEXT_H_

#include "obs/attribution.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "base/text_table.h"

namespace gem::obs {
namespace {

struct Accum {
  uint64_t count = 0;
  int64_t inclusive_ns = 0;
  int64_t exclusive_ns = 0;
};

using Key = std::pair<std::string, int>;  // (stage, tid)

/// One span being swept: how much of its time is covered by direct
/// children accumulates while it sits on the stack.
struct OpenSpan {
  const TimelineEvent* event;
  int64_t end_ns;
  int64_t child_ns = 0;
};

void Close(const OpenSpan& open, int tid, std::map<Key, Accum>& accum) {
  Accum& a = accum[{open.event->name, tid}];
  a.count += 1;
  a.inclusive_ns += open.event->dur_ns;
  a.exclusive_ns += open.event->dur_ns - open.child_ns;
}

}  // namespace

AttributionReport BuildAttribution(
    const std::vector<TimelineEventView>& events, int64_t window_begin_ns,
    int64_t window_end_ns) {
  // Partition sync spans by thread; async spans accumulate directly.
  std::map<int, std::vector<const TimelineEvent*>> spans_by_tid;
  std::map<Key, Accum> accum;
  for (const TimelineEventView& view : events) {
    const TimelineEvent& e = view.event;
    if (e.start_ns < window_begin_ns || e.start_ns >= window_end_ns) {
      continue;
    }
    if (e.kind == TimelineEventKind::kSpan) {
      spans_by_tid[view.tid].push_back(&e);
    } else if (e.kind == TimelineEventKind::kAsyncSpan) {
      Accum& a = accum[{e.name, view.tid}];
      a.count += 1;
      a.inclusive_ns += e.dur_ns;
      a.exclusive_ns += e.dur_ns;  // waits have no children
    }
  }

  for (auto& [tid, spans] : spans_by_tid) {
    // Outer spans first at equal starts (longer duration sorts first),
    // so the stack sweep sees parents before their children.
    std::sort(spans.begin(), spans.end(),
              [](const TimelineEvent* a, const TimelineEvent* b) {
                if (a->start_ns != b->start_ns) {
                  return a->start_ns < b->start_ns;
                }
                return a->dur_ns > b->dur_ns;
              });
    std::vector<OpenSpan> stack;
    for (const TimelineEvent* e : spans) {
      while (!stack.empty() && stack.back().end_ns <= e->start_ns) {
        Close(stack.back(), tid, accum);
        stack.pop_back();
      }
      if (!stack.empty()) stack.back().child_ns += e->dur_ns;
      stack.push_back({e, e->start_ns + e->dur_ns});
    }
    while (!stack.empty()) {
      Close(stack.back(), tid, accum);
      stack.pop_back();
    }
  }

  AttributionReport report;
  std::map<std::string, Accum> totals;
  for (const auto& [key, a] : accum) {
    StageCost cost;
    cost.stage = key.first;
    cost.tid = key.second;
    cost.count = a.count;
    cost.inclusive_seconds = a.inclusive_ns * 1e-9;
    cost.exclusive_seconds = a.exclusive_ns * 1e-9;
    report.by_stage_thread.push_back(std::move(cost));
    Accum& total = totals[key.first];
    total.count += a.count;
    total.inclusive_ns += a.inclusive_ns;
    total.exclusive_ns += a.exclusive_ns;
  }
  for (const auto& [stage, a] : totals) {
    StageCost cost;
    cost.stage = stage;
    cost.tid = StageCost::kAllThreads;
    cost.count = a.count;
    cost.inclusive_seconds = a.inclusive_ns * 1e-9;
    cost.exclusive_seconds = a.exclusive_ns * 1e-9;
    report.by_stage.push_back(std::move(cost));
  }
  std::sort(report.by_stage.begin(), report.by_stage.end(),
            [](const StageCost& a, const StageCost& b) {
              return a.exclusive_seconds > b.exclusive_seconds;
            });
  std::sort(report.by_stage_thread.begin(), report.by_stage_thread.end(),
            [](const StageCost& a, const StageCost& b) {
              if (a.exclusive_seconds != b.exclusive_seconds) {
                return a.exclusive_seconds > b.exclusive_seconds;
              }
              if (a.stage != b.stage) return a.stage < b.stage;
              return a.tid < b.tid;
            });
  return report;
}

std::string AttributionTable(const AttributionReport& report) {
  double total_exclusive = 0.0;
  for (const StageCost& cost : report.by_stage) {
    total_exclusive += cost.exclusive_seconds;
  }
  TextTable table({"stage", "count", "inclusive_s", "exclusive_s", "excl_%"});
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return std::string(buf);
  };
  for (const StageCost& cost : report.by_stage) {
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.1f",
                  total_exclusive > 0.0
                      ? 100.0 * cost.exclusive_seconds / total_exclusive
                      : 0.0);
    table.AddRow({cost.stage, std::to_string(cost.count),
                  fmt(cost.inclusive_seconds), fmt(cost.exclusive_seconds),
                  pct});
  }
  return table.ToString();
}

std::string AttributionJson(const AttributionReport& report) {
  std::string out = "[";
  bool first = true;
  for (const StageCost& cost : report.by_stage) {
    if (!first) out += ",";
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"stage\":\"%s\",\"count\":%llu,"
                  "\"inclusive_seconds\":%.6f,\"exclusive_seconds\":%.6f}",
                  cost.stage.c_str(),
                  static_cast<unsigned long long>(cost.count),
                  cost.inclusive_seconds, cost.exclusive_seconds);
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace gem::obs

#include "obs/resource_sampler.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "obs/metrics.h"
#include "obs/timeline.h"

namespace gem::obs {
namespace {

/// Reads a whole small /proc file into `buf`; returns bytes read or 0.
size_t ReadProcFile(const char* path, char* buf, size_t cap) {
  std::FILE* file = std::fopen(path, "r");
  if (file == nullptr) return 0;
  const size_t n = std::fread(buf, 1, cap - 1, file);
  std::fclose(file);
  buf[n] = '\0';
  return n;
}

}  // namespace

ResourceSample ResourceSampler::SampleNow() {
  ResourceSample sample;
  char buf[1024];

  // /proc/self/statm: "size resident shared ..." in pages.
  if (ReadProcFile("/proc/self/statm", buf, sizeof(buf)) > 0) {
    long size_pages = 0;
    long resident_pages = 0;
    if (std::sscanf(buf, "%ld %ld", &size_pages, &resident_pages) == 2) {
      sample.rss_bytes = static_cast<double>(resident_pages) *
                         static_cast<double>(sysconf(_SC_PAGESIZE));
    }
  }

  // /proc/self/stat: comm can contain spaces/parens, so parse the
  // fixed fields counting from AFTER the last ')'. Field numbering
  // (1-based, proc(5)): utime=14, stime=15, num_threads=20 — i.e.
  // offsets 12, 13, and 18 among the post-comm fields.
  if (ReadProcFile("/proc/self/stat", buf, sizeof(buf)) > 0) {
    const char* after = std::strrchr(buf, ')');
    if (after != nullptr) {
      ++after;  // skip ')'
      unsigned long utime = 0;
      unsigned long stime = 0;
      long num_threads = 0;
      // state(3) ppid pgrp session tty tpgid flags minflt cminflt
      // majflt cmajflt utime stime cutime cstime priority nice
      // num_threads
      const int parsed = std::sscanf(
          after,
          " %*c %*d %*d %*d %*d %*d %*u %*u %*u %*u %*u %lu %lu %*d %*d "
          "%*d %*d %ld",
          &utime, &stime, &num_threads);
      if (parsed == 3) {
        const double ticks =
            static_cast<double>(sysconf(_SC_CLK_TCK));
        if (ticks > 0) {
          sample.user_cpu_seconds = static_cast<double>(utime) / ticks;
          sample.sys_cpu_seconds = static_cast<double>(stime) / ticks;
        }
        sample.num_threads = static_cast<int>(num_threads);
      }
    }
  }

#if defined(__GLIBC__)
  const struct mallinfo2 mi = mallinfo2();
  sample.heap_bytes = static_cast<double>(mi.uordblks);
  sample.heap_mapped_bytes = static_cast<double>(mi.hblkhd);
#endif

  return sample;
}

ResourceSampler::ResourceSampler(Options options) : options_(options) {
  thread_ = std::thread([this] {
    Timeline::SetCurrentThreadName("resource-sampler");
    Loop();
  });
}

ResourceSampler::~ResourceSampler() { Stop(); }

void ResourceSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ResourceSampler::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  do {
    lock.unlock();
    Publish(SampleNow());
    lock.lock();
    // Waits out one period, but leaves immediately on Stop() so
    // teardown never stalls a full period.
  } while (!stop_cv_.wait_for(lock,
                              std::chrono::milliseconds(options_.period_ms),
                              [this] { return stopping_; }));
}

void ResourceSampler::Publish(const ResourceSample& sample) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetGauge("gem_process_rss_bytes").Set(sample.rss_bytes);
  registry.GetGauge("gem_process_cpu_seconds", {{"mode", "user"}})
      .Set(sample.user_cpu_seconds);
  registry.GetGauge("gem_process_cpu_seconds", {{"mode", "sys"}})
      .Set(sample.sys_cpu_seconds);
  registry.GetGauge("gem_process_threads")
      .Set(static_cast<double>(sample.num_threads));
  registry.GetGauge("gem_process_heap_bytes").Set(sample.heap_bytes);

  if (Timeline::IsEnabled()) {
    Timeline::RecordCounter("rss_mb", sample.rss_bytes / (1024.0 * 1024.0));
    Timeline::RecordCounter("cpu_user_s", sample.user_cpu_seconds);
    Timeline::RecordCounter("cpu_sys_s", sample.sys_cpu_seconds);
    Timeline::RecordCounter("threads",
                            static_cast<double>(sample.num_threads));
    Timeline::RecordCounter("heap_mb",
                            sample.heap_bytes / (1024.0 * 1024.0));
  }
}

}  // namespace gem::obs

#include "obs/timeline.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

namespace gem::obs {
namespace {

using Clock = std::chrono::steady_clock;

/// Fixed-capacity, single-writer event buffer for one thread. The
/// owning thread is the only writer; readers take an acquire prefix
/// of `size` and never touch entries past it, so no entry is read
/// while it is being written.
struct ThreadBuffer {
  explicit ThreadBuffer(int tid_in, size_t capacity)
      : tid(tid_in), events(capacity) {}

  const int tid;
  std::vector<TimelineEvent> events;
  std::atomic<size_t> size{0};
  std::atomic<uint64_t> dropped{0};

  std::mutex name_mutex;
  std::string name;  // guarded by name_mutex

  void Push(const TimelineEvent& event) {
    const size_t n = size.load(std::memory_order_relaxed);
    if (n >= events.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events[n] = event;
    size.store(n + 1, std::memory_order_release);
  }
};

struct TimelineState {
  std::mutex mutex;
  // shared_ptr so a buffer outlives its thread: the registry keeps
  // one reference, the thread_local holder another.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;  // guarded
  size_t events_per_thread = TimelineOptions{}.events_per_thread;
  std::atomic<int64_t> epoch_ns{0};
};

TimelineState& State() {
  static TimelineState* state = new TimelineState();
  return *state;
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> holder = [] {
    TimelineState& state = State();
    std::lock_guard<std::mutex> lock(state.mutex);
    auto buffer = std::make_shared<ThreadBuffer>(
        static_cast<int>(state.buffers.size()), state.events_per_thread);
    state.buffers.push_back(buffer);
    return buffer;
  }();
  return *holder;
}

int64_t ToEpochNs(Clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
             .count() -
         State().epoch_ns.load(std::memory_order_relaxed);
}

void AppendJsonEscaped(std::string& out, const char* text) {
  for (const char* p = text; *p; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

std::atomic<bool> Timeline::enabled_{false};

void Timeline::Enable(TimelineOptions options) {
  TimelineState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.events_per_thread = options.events_per_thread;
    for (auto& buffer : state.buffers) {
      buffer->size.store(0, std::memory_order_release);
      buffer->dropped.store(0, std::memory_order_relaxed);
    }
  }
  state.epoch_ns.store(SteadyNowNs(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Timeline::Disable() { enabled_.store(false, std::memory_order_release); }

void Timeline::Clear() {
  TimelineState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& buffer : state.buffers) {
    buffer->size.store(0, std::memory_order_release);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
}

int64_t Timeline::NowNs() {
  const int64_t epoch = State().epoch_ns.load(std::memory_order_relaxed);
  return epoch == 0 ? 0 : SteadyNowNs() - epoch;
}

void Timeline::RecordSpan(const char* name, Clock::time_point start,
                          Clock::time_point end, uint64_t trace_id,
                          uint64_t span_id, uint64_t parent_span_id,
                          int depth) {
  if (!IsEnabled()) return;
  TimelineEvent event;
  event.kind = TimelineEventKind::kSpan;
  event.name = name;
  event.start_ns = ToEpochNs(start);
  event.dur_ns = std::max<int64_t>(
      1, std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
             .count());
  event.trace_id = trace_id;
  event.span_id = span_id;
  event.parent_span_id = parent_span_id;
  event.depth = depth;
  LocalBuffer().Push(event);
}

void Timeline::RecordAsyncSpan(const char* name, Clock::time_point start,
                               Clock::time_point end, uint64_t trace_id,
                               uint64_t span_id, uint64_t parent_span_id) {
  if (!IsEnabled()) return;
  TimelineEvent event;
  event.kind = TimelineEventKind::kAsyncSpan;
  event.name = name;
  event.start_ns = ToEpochNs(start);
  event.dur_ns = std::max<int64_t>(
      1, std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
             .count());
  event.trace_id = trace_id;
  event.span_id = span_id;
  event.parent_span_id = parent_span_id;
  LocalBuffer().Push(event);
}

void Timeline::RecordInstant(const char* name) {
  if (!IsEnabled()) return;
  TimelineEvent event;
  event.kind = TimelineEventKind::kInstant;
  event.name = name;
  event.start_ns = NowNs();
  LocalBuffer().Push(event);
}

void Timeline::RecordCounter(const char* name, double value) {
  if (!IsEnabled()) return;
  TimelineEvent event;
  event.kind = TimelineEventKind::kCounter;
  event.name = name;
  event.start_ns = NowNs();
  event.value = value;
  LocalBuffer().Push(event);
}

void Timeline::SetCurrentThreadName(const std::string& name) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.name_mutex);
  buffer.name = name;
}

std::vector<TimelineEventView> Timeline::Snapshot() {
  TimelineState& state = State();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    buffers = state.buffers;
  }
  std::vector<TimelineEventView> out;
  for (const auto& buffer : buffers) {
    const size_t n = buffer->size.load(std::memory_order_acquire);
    std::string name;
    {
      std::lock_guard<std::mutex> lock(buffer->name_mutex);
      name = buffer->name;
    }
    for (size_t i = 0; i < n; ++i) {
      TimelineEventView view;
      view.tid = buffer->tid;
      view.thread_name = name;
      view.event = buffer->events[i];
      out.push_back(std::move(view));
    }
  }
  return out;
}

uint64_t Timeline::RecordedEvents() {
  TimelineState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  uint64_t total = 0;
  for (const auto& buffer : state.buffers) {
    total += buffer->size.load(std::memory_order_acquire);
  }
  return total;
}

uint64_t Timeline::DroppedEvents() {
  TimelineState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  uint64_t total = 0;
  for (const auto& buffer : state.buffers) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

namespace {

/// One Chrome trace row ready for emission. Sync spans are split into
/// a B and an E row here so the output stream is valid by
/// construction: every recorded span contributes exactly one of each.
struct ChromeRow {
  int64_t ts_ns = 0;
  int tid = 0;
  /// Sort rank at equal timestamps: E(0) before B(1) so that
  /// back-to-back sibling spans close before the next one opens;
  /// counters/instants/async (2) are unconstrained.
  int rank = 2;
  /// Secondary tie-break: E rows close deepest-first, B rows open
  /// shallowest-first.
  int depth_key = 0;
  std::string json;
};

std::string IdFields(uint64_t trace_id, uint64_t span_id,
                     uint64_t parent_span_id) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"args\":{\"trace_id\":%" PRIu64 ",\"span_id\":%" PRIu64
                ",\"parent_span_id\":%" PRIu64 "}",
                trace_id, span_id, parent_span_id);
  return buf;
}

std::string Row(const char* name, char ph, int64_t ts_ns, int tid,
                const std::string& extra) {
  std::string out;
  out += "{\"name\":\"";
  AppendJsonEscaped(out, name);
  char buf[128];
  // Chrome trace timestamps are microseconds; emit fractional us to
  // keep nanosecond resolution.
  std::snprintf(buf, sizeof(buf),
                "\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":1,\"tid\":%d", ph,
                static_cast<double>(ts_ns) / 1000.0, tid);
  out += buf;
  if (!extra.empty()) {
    out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

}  // namespace

std::string ChromeTraceJson(const std::vector<TimelineEventView>& events) {
  std::vector<ChromeRow> rows;
  rows.reserve(events.size() * 2 + 8);
  std::vector<std::pair<int, std::string>> thread_names;
  for (const TimelineEventView& view : events) {
    const TimelineEvent& e = view.event;
    if (!view.thread_name.empty()) {
      bool known = false;
      for (const auto& [tid, _] : thread_names) known |= tid == view.tid;
      if (!known) thread_names.emplace_back(view.tid, view.thread_name);
    }
    switch (e.kind) {
      case TimelineEventKind::kSpan: {
        ChromeRow begin;
        begin.ts_ns = e.start_ns;
        begin.tid = view.tid;
        begin.rank = 1;
        begin.depth_key = e.depth;  // open shallowest-first
        begin.json =
            Row(e.name, 'B', e.start_ns, view.tid,
                IdFields(e.trace_id, e.span_id, e.parent_span_id));
        ChromeRow end;
        end.ts_ns = e.start_ns + e.dur_ns;
        end.tid = view.tid;
        end.rank = 0;
        end.depth_key = -e.depth;  // close deepest-first
        end.json = Row(e.name, 'E', end.ts_ns, view.tid, "");
        rows.push_back(std::move(begin));
        rows.push_back(std::move(end));
        break;
      }
      case TimelineEventKind::kAsyncSpan: {
        char id_extra[256];
        std::snprintf(id_extra, sizeof(id_extra),
                      "\"cat\":\"queue\",\"id\":%" PRIu64
                      ",\"args\":{\"trace_id\":%" PRIu64
                      ",\"parent_span_id\":%" PRIu64 "}",
                      e.span_id, e.trace_id, e.parent_span_id);
        ChromeRow begin;
        begin.ts_ns = e.start_ns;
        begin.tid = view.tid;
        begin.json = Row(e.name, 'b', e.start_ns, view.tid, id_extra);
        char end_extra[64];
        std::snprintf(end_extra, sizeof(end_extra),
                      "\"cat\":\"queue\",\"id\":%" PRIu64, e.span_id);
        ChromeRow end;
        end.ts_ns = e.start_ns + e.dur_ns;
        end.tid = view.tid;
        end.json = Row(e.name, 'e', end.ts_ns, view.tid, end_extra);
        rows.push_back(std::move(begin));
        rows.push_back(std::move(end));
        break;
      }
      case TimelineEventKind::kInstant: {
        ChromeRow row;
        row.ts_ns = e.start_ns;
        row.tid = view.tid;
        row.json = Row(e.name, 'i', e.start_ns, view.tid, "\"s\":\"t\"");
        rows.push_back(std::move(row));
        break;
      }
      case TimelineEventKind::kCounter: {
        char extra[96];
        std::snprintf(extra, sizeof(extra), "\"args\":{\"value\":%.6g}",
                      e.value);
        ChromeRow row;
        row.ts_ns = e.start_ns;
        row.tid = view.tid;
        row.json = Row(e.name, 'C', e.start_ns, view.tid, extra);
        rows.push_back(std::move(row));
        break;
      }
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const ChromeRow& a, const ChromeRow& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     if (a.rank != b.rank) return a.rank < b.rank;
                     return a.depth_key < b.depth_key;
                   });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : thread_names) {
    if (!first) out += ",\n";
    first = false;
    std::string row = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"tid\":%d,", tid);
    row += buf;
    row += "\"args\":{\"name\":\"";
    AppendJsonEscaped(row, name.c_str());
    row += "\"}}";
    out += row;
  }
  for (const ChromeRow& row : rows) {
    if (!first) out += ",\n";
    first = false;
    out += row.json;
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path) {
  const std::string json = ChromeTraceJson(Timeline::Snapshot());
  if (path == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
    return Status::Ok();
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open trace output: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int close_rc = std::fclose(file);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal("short write to trace output: " + path);
  }
  return Status::Ok();
}

std::string TraceOutPathFromEnv() {
  const char* value = std::getenv("GEM_PROFILE");
  if (value == nullptr || value[0] == '\0' ||
      std::strcmp(value, "0") == 0) {
    return "";
  }
  if (std::strcmp(value, "1") == 0) return "trace.json";
  return value;
}

}  // namespace gem::obs

#ifndef GEM_OBS_METRICS_H_
#define GEM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gem::obs {

/// Metric label set, e.g. {{"stage", "embed"}}. Order is preserved in
/// exports; (name, labels) identifies one time series.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

/// Monotonic event counter. Increment is a single relaxed atomic add —
/// safe and cheap to call from any thread on the serving hot path.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Increment returning the pre-increment value (used by the span
  /// sampler to pick every Nth entry without a second atomic).
  uint64_t FetchIncrement() {
    return value_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge (e.g. current training loss, graph size).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Atomic add via CAS (std::atomic<double>::fetch_add is not
  /// guaranteed lock-free everywhere).
  void Add(double delta) {
    double old = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(old, old + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bounds are ascending upper bounds; an
/// implicit +Inf bucket catches the overflow, so Observe never drops a
/// sample. The hot path is one binary search plus three relaxed
/// atomics — no locks.
class Histogram {
 public:
  /// `bounds` must be strictly ascending and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1.
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside
  /// the owning bucket; the +Inf bucket reports its lower bound.
  double Quantile(double q) const;

 private:
  friend class MetricsRegistry;
  void Reset();

  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// 20 exponential buckets from 1 microsecond to ~8.7 seconds —
/// the default for GEM_TRACE_SPAN latency histograms (seconds).
std::vector<double> LatencyBuckets();
/// `count` buckets: start, start*factor, start*factor^2, ...
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);
/// `count` buckets: start, start+step, start+2*step, ...
std::vector<double> LinearBuckets(double start, double step, int count);

/// Point-in-time copy of one time series, consumed by the exporters.
struct MetricSnapshot {
  std::string name;
  MetricType type = MetricType::kCounter;
  Labels labels;
  /// Counter / gauge value (counters widen to double for export).
  double value = 0.0;
  /// Histogram payload (empty for counters / gauges).
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  double sum = 0.0;
};

/// Process-wide metrics registry. Lookup (GetCounter etc.) takes a
/// mutex and should be done once per call site (cache the returned
/// reference, typically in a function-local static); the returned
/// metric objects are never deallocated or moved, so references stay
/// valid for the process lifetime — Reset() zeroes values in place.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  /// Returns the (name, labels) counter, creating it on first use.
  /// Type mismatches with an existing name are a programming error and
  /// abort via GEM_CHECK.
  Counter& GetCounter(const std::string& name, const Labels& labels = {});
  Gauge& GetGauge(const std::string& name, const Labels& labels = {});
  /// `bounds` is consulted only when the (name, labels) series does
  /// not exist yet; later calls reuse the first bounds.
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds,
                          const Labels& labels = {});

  /// Snapshot of every registered series, sorted by (name, labels).
  ///
  /// Staleness contract: Snapshot() may run concurrently with metric
  /// updates (instrumented hot paths, the ResourceSampler thread).
  /// Every individual FIELD read is an atomic load, so no value ever
  /// tears — a snapshotted counter/gauge is some value the metric
  /// actually held. But the snapshot is NOT a consistent cut:
  ///  - across metrics, each is read at a slightly different instant
  ///    (a gauge written after its neighbor was copied can differ by
  ///    up to one sampler period);
  ///  - within a histogram, buckets/count/sum are separate atomics
  ///    read in sequence, so a concurrent Observe() can appear in
  ///    count but not yet in sum (or vice versa). Aggregates are
  ///    monotone and converge; momentary cross-field skew of a few
  ///    in-flight observations is expected and harmless for export.
  /// Exporters and tests must therefore compare snapshots against
  /// quiesced state or tolerate bounded skew, never assume atomicity
  /// across fields.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Zeroes every metric IN PLACE. Outstanding references (including
  /// the function-local statics at instrumentation sites) stay valid.
  void ResetForTesting();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;

  struct Series {
    MetricType type;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& Lookup(const std::string& name, const Labels& labels,
                 MetricType type, const std::vector<double>* bounds);

  mutable std::mutex mutex_;
  // name -> label-key -> series. Metrics are created once and never
  // erased (stable addresses are the hot-path contract).
  std::map<std::string, std::map<std::string, Series>> families_;
};

}  // namespace gem::obs

#endif  // GEM_OBS_METRICS_H_

#ifndef GEM_OBS_ATTRIBUTION_H_
#define GEM_OBS_ATTRIBUTION_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "obs/timeline.h"

namespace gem::obs {

/// Wall-clock cost of one stage (span name), either aggregated across
/// threads (tid == kAllThreads) or on one thread.
struct StageCost {
  static constexpr int kAllThreads = -1;

  std::string stage;
  int tid = kAllThreads;
  uint64_t count = 0;
  /// Total time inside spans of this stage, children included.
  double inclusive_seconds = 0.0;
  /// Inclusive minus time spent in directly nested recorded spans —
  /// the stage's own cost. Sums of exclusive_seconds over all stages
  /// on one thread equal that thread's total instrumented time.
  double exclusive_seconds = 0.0;
};

/// Stage-cost rollup of a timeline snapshot: where did the wall time
/// go, per stage and per thread? Sync spans are attributed by a
/// nesting sweep per thread (RAII spans on one thread are properly
/// nested in time, so exclusive = inclusive - direct children).
/// Async spans (queue waits) cannot nest and are reported with
/// exclusive == inclusive; they measure waiting, not execution, so
/// they deliberately OVERLAP the executing stages' time rather than
/// subtracting from it.
struct AttributionReport {
  /// Aggregated over threads, sorted by exclusive_seconds descending.
  std::vector<StageCost> by_stage;
  /// Per (stage, tid), same order then by tid.
  std::vector<StageCost> by_stage_thread;
};

/// Builds the rollup from Snapshot() output, keeping only spans whose
/// start lies in [window_begin_ns, window_end_ns) — benches use the
/// window to attribute each run (thread count) separately out of one
/// recording.
AttributionReport BuildAttribution(
    const std::vector<TimelineEventView>& events,
    int64_t window_begin_ns = std::numeric_limits<int64_t>::min(),
    int64_t window_end_ns = std::numeric_limits<int64_t>::max());

/// Human-readable per-stage table (stage, threads, count, inclusive,
/// exclusive, exclusive share).
std::string AttributionTable(const AttributionReport& report);

/// The aggregated rows as a JSON array —
/// [{"stage":...,"count":...,"inclusive_seconds":...,
///   "exclusive_seconds":...}, ...] — embedded by the bench binaries
/// into BENCH_train.json / BENCH_serve.json result entries.
std::string AttributionJson(const AttributionReport& report);

}  // namespace gem::obs

#endif  // GEM_OBS_ATTRIBUTION_H_

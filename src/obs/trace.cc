#include "obs/trace.h"

#include <atomic>
#include <string>

#include "base/check.h"
#include "base/logging.h"
#include "obs/timeline.h"

namespace gem::obs {
namespace {

thread_local int t_span_depth = 0;

/// Sampling mask: entry n is timed iff (n & mask) == 0.
std::atomic<uint64_t> g_sample_mask{(1u << 3) - 1};

}  // namespace

void SetSpanSamplingShift(int shift) {
  GEM_CHECK(shift >= 0 && shift < 32);
  g_sample_mask.store((uint64_t{1} << shift) - 1,
                      std::memory_order_relaxed);
}

int GetSpanSamplingShift() {
  const uint64_t mask = g_sample_mask.load(std::memory_order_relaxed);
  int shift = 0;
  while ((uint64_t{1} << shift) - 1 != mask) ++shift;
  return shift;
}

SpanFamily::SpanFamily(const char* name)
    : name_(name),
      latency_(MetricsRegistry::Get().GetHistogram(
          "gem_span_seconds", LatencyBuckets(), {{"span", name}})),
      entries_(MetricsRegistry::Get().GetCounter("gem_span_total",
                                                 {{"span", name}})) {}

ScopedSpan::ScopedSpan(SpanFamily& family) : family_(family) {
  ++t_span_depth;
  const uint64_t n = family_.entries().FetchIncrement();
  sampled_ = (n & g_sample_mask.load(std::memory_order_relaxed)) == 0;
  timeline_ = Timeline::IsEnabled();
  if (timeline_) {
    parent_context_ = CurrentTraceContext();
    span_context_.trace_id = parent_context_.trace_id != 0
                                 ? parent_context_.trace_id
                                 : NewTraceId();
    span_context_.span_id = NewSpanId();
    SetCurrentTraceContext(span_context_);
  }
  if (sampled_ || timeline_) start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  const int depth = t_span_depth--;
  if (timeline_) {
    Timeline::RecordSpan(family_.name(), start_,
                         std::chrono::steady_clock::now(),
                         span_context_.trace_id, span_context_.span_id,
                         parent_context_.span_id, depth);
    SetCurrentTraceContext(parent_context_);
  }
  if (!sampled_) return;
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
  family_.latency().Observe(seconds);
  if (GetLogLevel() <= LogLevel::kDebug) {
    GEM_LOG(Debug) << std::string(2 * (depth - 1), ' ') << "span "
                   << family_.name() << " depth=" << depth << " took "
                   << seconds * 1e6 << " us";
  }
}

int ScopedSpan::CurrentDepth() { return t_span_depth; }

}  // namespace gem::obs

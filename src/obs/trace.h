#ifndef GEM_OBS_TRACE_H_
#define GEM_OBS_TRACE_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace gem::obs {

/// Span latency sampling: wall time is measured on every 2^shift-th
/// entry of each span family (the entry counter is always exact, and
/// entry 0 is always timed, so one-shot spans like gem.train are never
/// missed). The default shift of 3 keeps the per-call overhead of
/// microsecond-scale hot spans (gem.detect, gem.update) within noise;
/// 0 times every call (tests use this for deterministic counts).
void SetSpanSamplingShift(int shift);
int GetSpanSamplingShift();

/// One-time resolution of the metrics a span name records into:
/// gem_span_seconds{span=<name>} (latency histogram, LatencyBuckets)
/// and gem_span_total{span=<name>} (exact entry counter).
/// GEM_TRACE_SPAN materializes one SpanFamily per call site as a
/// function-local static, so the per-entry cost is a few relaxed
/// atomics — no registry lock on the hot path, and clock reads only on
/// sampled entries.
class SpanFamily {
 public:
  explicit SpanFamily(const char* name);

  const char* name() const { return name_; }
  Histogram& latency() { return latency_; }
  Counter& entries() { return entries_; }

 private:
  const char* name_;
  Histogram& latency_;
  Counter& entries_;
};

/// RAII wall-clock span. On destruction of a sampled entry, records
/// the elapsed seconds into the family's histogram and, when the log
/// level admits Debug, emits a nesting-indented "span <name> took
/// <us>" line.
///
/// When the timeline profiler is enabled (Timeline::Enable /
/// GEM_PROFILE), every entry additionally: mints a span id, installs
/// itself as the thread's current TraceContext (starting a fresh
/// trace id when entered with no active context, so top-level
/// operations like gem.train become trace roots), and on destruction
/// records a timeline span carrying (trace_id, span_id,
/// parent_span_id, depth). Timeline recording is unsampled — the
/// sampling shift only thins the HISTOGRAM, since a trace with holes
/// is useless — but costs nothing when the profiler is off.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanFamily& family);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Nesting depth of the innermost live span on this thread
  /// (0 = no span active).
  static int CurrentDepth();

 private:
  SpanFamily& family_;
  bool sampled_;
  bool timeline_;
  std::chrono::steady_clock::time_point start_;
  TraceContext span_context_;    // this span's identity (timeline only)
  TraceContext parent_context_;  // restored at scope exit
};

}  // namespace gem::obs

#define GEM_OBS_CONCAT_INNER(a, b) a##b
#define GEM_OBS_CONCAT(a, b) GEM_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope into gem_span_seconds{span=name}.
/// `name` must be a string literal (it is retained by pointer).
#define GEM_TRACE_SPAN(name)                                             \
  static ::gem::obs::SpanFamily GEM_OBS_CONCAT(gem_span_family_,         \
                                               __LINE__){name};          \
  ::gem::obs::ScopedSpan GEM_OBS_CONCAT(gem_span_, __LINE__){            \
      GEM_OBS_CONCAT(gem_span_family_, __LINE__)}

#endif  // GEM_OBS_TRACE_H_

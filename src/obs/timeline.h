#ifndef GEM_OBS_TIMELINE_H_
#define GEM_OBS_TIMELINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "obs/trace_context.h"

namespace gem::obs {

/// Per-thread timeline profiler behind a process-wide switch
/// (`GEM_PROFILE` env var / `--trace_out` flags). Disabled (the
/// default) the record functions are one relaxed atomic load plus a
/// branch — cheap enough to leave in every hot path permanently.
/// Enabled, each thread appends fixed-size events to its own
/// pre-sized buffer: single-writer, no locks, no allocation after the
/// buffer exists. A full buffer drops NEW events and counts them
/// (dropped_events) rather than overwriting old ones, so every
/// recorded span keeps its matched begin/end and the loss is
/// observable.
///
/// Readers (Snapshot / WriteChromeTrace) may run concurrently with
/// writers: each buffer publishes its size with a release store and
/// readers take an acquire prefix, so a snapshot sees a clean prefix
/// of every thread's history.

/// What one recorded event is.
enum class TimelineEventKind : uint8_t {
  /// Synchronous scoped span: properly nested on its thread (RAII).
  kSpan,
  /// Retrospective interval that may OVERLAP other spans on the
  /// recording thread (e.g. queue-wait measured from enqueue on one
  /// thread to dequeue on another). Exported as Chrome ASYNC b/e
  /// events keyed by span_id, which carry no nesting constraint.
  kAsyncSpan,
  /// Point event.
  kInstant,
  /// Counter sample (value series, e.g. RSS from the resource
  /// sampler); exported as a Chrome "C" event.
  kCounter,
};

struct TimelineEvent {
  TimelineEventKind kind = TimelineEventKind::kInstant;
  /// Static string (retained by pointer; string literals only).
  const char* name = nullptr;
  /// Nanoseconds since the timeline epoch (Enable time).
  int64_t start_ns = 0;
  /// Span kinds only; >= 1 (zero-length spans are clamped so a B is
  /// never sorted after its own E).
  int64_t dur_ns = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  /// Nesting depth at record time (kSpan), 0 otherwise.
  int32_t depth = 0;
  /// kCounter payload.
  double value = 0.0;
};

/// One event joined with its recording thread, as returned by
/// Snapshot().
struct TimelineEventView {
  /// Dense per-process thread ordinal (assigned at first record).
  int tid = 0;
  /// Thread name if SetCurrentThreadName ran on that thread.
  std::string thread_name;
  TimelineEvent event;
};

struct TimelineOptions {
  /// Ring capacity per recording thread; events beyond it are dropped
  /// (and counted), never overwritten.
  size_t events_per_thread = 1 << 15;
};

class Timeline {
 public:
  /// The only check on the disabled hot path.
  static bool IsEnabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Starts recording: resets the epoch to "now", clears every
  /// existing thread buffer, and applies `options` to buffers created
  /// from here on (existing buffers keep their capacity).
  static void Enable(TimelineOptions options = {});
  /// Stops recording. Buffers are retained for Snapshot/Write.
  static void Disable();
  /// Drops all recorded events and drop counters (buffers stay
  /// registered for their threads).
  static void Clear();

  /// Nanoseconds since the epoch (0 when never enabled).
  static int64_t NowNs();

  /// Records a closed span [start, end) attributed to `context`
  /// (span_id = the span's own id, parent via parent_span_id).
  static void RecordSpan(const char* name,
                         std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end,
                         uint64_t trace_id, uint64_t span_id,
                         uint64_t parent_span_id, int depth);
  /// As RecordSpan, but exported as an async (overlap-tolerant)
  /// interval — use for waits measured across threads (queue wait).
  static void RecordAsyncSpan(const char* name,
                              std::chrono::steady_clock::time_point start,
                              std::chrono::steady_clock::time_point end,
                              uint64_t trace_id, uint64_t span_id,
                              uint64_t parent_span_id);
  static void RecordInstant(const char* name);
  static void RecordCounter(const char* name, double value);

  /// Names the calling thread's track in the exported trace (e.g.
  /// "pool-worker-2"). Safe to call when disabled.
  static void SetCurrentThreadName(const std::string& name);

  /// Point-in-time copy of every thread's recorded prefix, ordered by
  /// (tid, record order). Callable while recording continues.
  static std::vector<TimelineEventView> Snapshot();

  /// Total events recorded / dropped across all thread buffers.
  static uint64_t RecordedEvents();
  static uint64_t DroppedEvents();

 private:
  friend class TimelineTestPeer;
  static std::atomic<bool> enabled_;
};

/// Renders a Snapshot() (or the live buffers when `events` is empty
/// via the path overload) as Chrome trace-event JSON — the format
/// chrome://tracing and Perfetto load directly. Sync spans become
/// matched "B"/"E" pairs per thread track, async spans become "b"/"e"
/// pairs keyed by span id, counters become "C" events, and thread
/// names become "M" metadata.
std::string ChromeTraceJson(const std::vector<TimelineEventView>& events);

/// ChromeTraceJson(Timeline::Snapshot()) written to `path` ("-" =
/// stdout).
Status WriteChromeTrace(const std::string& path);

/// The `GEM_PROFILE` environment switch: unset/empty/"0" -> nullopt-
/// like empty string (profiling off); any other value is the trace
/// output path ("1" selects "trace.json"). Binaries consult it when
/// no --trace_out flag was given.
std::string TraceOutPathFromEnv();

}  // namespace gem::obs

#endif  // GEM_OBS_TIMELINE_H_

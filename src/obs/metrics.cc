#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace gem::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  GEM_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    GEM_CHECK(bounds_[i] > bounds_[i - 1]);
  }
}

void Histogram::Observe(double value) {
  const auto it =
      std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double old = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old, old + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  GEM_CHECK(q >= 0.0 && q <= 1.0);
  const std::vector<uint64_t> counts = bucket_counts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank) {
      if (i == bounds_.size()) return bounds_.back();  // +Inf bucket
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(counts[i]);
      return lo + within * (hi - lo);
    }
    cumulative = next;
  }
  return bounds_.back();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> LatencyBuckets() {
  // 1us .. ~8.7s in x2.25 steps: enough resolution to separate the
  // paper's three inference stages (tens of us .. a few ms) from
  // training epochs (hundreds of ms .. seconds).
  return ExponentialBuckets(1e-6, 2.25, 20);
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  GEM_CHECK(start > 0.0 && factor > 1.0 && count >= 1);
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> LinearBuckets(double start, double step, int count) {
  GEM_CHECK(step > 0.0 && count >= 1);
  std::vector<double> bounds;
  bounds.reserve(count);
  for (int i = 0; i < count; ++i) {
    bounds.push_back(start + step * i);
  }
  return bounds;
}

namespace {

/// Canonical map key for a label set ("k1=v1,k2=v2"). Label values in
/// GEM are short identifiers; '=' / ',' inside values would be
/// pathological but still yield a stable (if ugly) key.
std::string LabelKey(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    if (!key.empty()) key += ',';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

MetricsRegistry::Series& MetricsRegistry::Lookup(
    const std::string& name, const Labels& labels, MetricType type,
    const std::vector<double>* bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& family = families_[name];
  auto [it, inserted] = family.try_emplace(LabelKey(labels));
  Series& series = it->second;
  if (inserted) {
    series.type = type;
    series.labels = labels;
    switch (type) {
      case MetricType::kCounter:
        series.counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        series.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        GEM_CHECK(bounds != nullptr);
        series.histogram = std::make_unique<Histogram>(*bounds);
        break;
    }
  } else {
    GEM_CHECK(series.type == type);  // one type per metric name
  }
  return series;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  return *Lookup(name, labels, MetricType::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  return *Lookup(name, labels, MetricType::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds,
                                         const Labels& labels) {
  return *Lookup(name, labels, MetricType::kHistogram, &bounds).histogram;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  for (const auto& [name, family] : families_) {
    for (const auto& [key, series] : family) {
      MetricSnapshot snap;
      snap.name = name;
      snap.type = series.type;
      snap.labels = series.labels;
      switch (series.type) {
        case MetricType::kCounter:
          snap.value = static_cast<double>(series.counter->value());
          break;
        case MetricType::kGauge:
          snap.value = series.gauge->value();
          break;
        case MetricType::kHistogram:
          snap.bounds = series.histogram->bounds();
          snap.buckets = series.histogram->bucket_counts();
          snap.count = series.histogram->count();
          snap.sum = series.histogram->sum();
          break;
      }
      out.push_back(std::move(snap));
    }
  }
  return out;
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, family] : families_) {
    for (auto& [key, series] : family) {
      switch (series.type) {
        case MetricType::kCounter:
          series.counter->Reset();
          break;
        case MetricType::kGauge:
          series.gauge->Reset();
          break;
        case MetricType::kHistogram:
          series.histogram->Reset();
          break;
      }
    }
  }
}

}  // namespace gem::obs

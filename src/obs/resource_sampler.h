#ifndef GEM_OBS_RESOURCE_SAMPLER_H_
#define GEM_OBS_RESOURCE_SAMPLER_H_

#include <condition_variable>
#include <mutex>
#include <thread>

namespace gem::obs {

/// One reading of the process's resource usage (Linux /proc/self;
/// fields that cannot be read stay at their zero defaults).
struct ResourceSample {
  double rss_bytes = 0.0;
  double user_cpu_seconds = 0.0;
  double sys_cpu_seconds = 0.0;
  int num_threads = 0;
  /// Heap bytes currently allocated (glibc mallinfo2; 0 elsewhere).
  double heap_bytes = 0.0;
  /// Cumulative allocation count proxy (glibc: mmap'd blocks + free
  /// chunks is not available portably, so this is arena count; treat
  /// as a coarse trend signal only).
  double heap_mapped_bytes = 0.0;
};

/// Background thread that samples the process every `period_ms` and
/// publishes each reading twice: as gauges in the MetricsRegistry
/// (gem_process_rss_bytes, gem_process_cpu_seconds{mode=user|sys},
/// gem_process_threads, gem_process_heap_bytes) and — when the
/// timeline profiler is recording — as counter-series rows in the
/// trace, so Perfetto shows RSS/CPU tracks alongside the spans.
///
/// Gauge updates race benignly with MetricsRegistry::Snapshot(): each
/// gauge is a single atomic, so a snapshot sees each metric at some
/// point within the last period but the SET of gauges is not a
/// consistent cut (see the staleness contract on Snapshot()).
class ResourceSampler {
 public:
  struct Options {
    int period_ms = 100;
  };

  /// Starts the sampler thread (takes an immediate first sample).
  explicit ResourceSampler(Options options);
  ResourceSampler() : ResourceSampler(Options()) {}
  ~ResourceSampler();

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  /// Stops and joins the thread (idempotent; the destructor calls it).
  void Stop();

  /// Reads /proc/self right now, without publishing anything.
  static ResourceSample SampleNow();

 private:
  void Loop();
  void Publish(const ResourceSample& sample);

  const Options options_;
  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;  // guarded by mutex_
  std::thread thread_;
};

}  // namespace gem::obs

#endif  // GEM_OBS_RESOURCE_SAMPLER_H_

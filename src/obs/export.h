#ifndef GEM_OBS_EXPORT_H_
#define GEM_OBS_EXPORT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "obs/metrics.h"

namespace gem::obs {

enum class ExportFormat { kPrometheus, kJsonLines, kTable };

/// Parses "prom" / "json" / "table" (the --metrics_format values).
std::optional<ExportFormat> ParseExportFormat(std::string_view text);

/// Prometheus text exposition format (# TYPE lines, histograms as
/// cumulative _bucket{le=...} plus _sum / _count).
std::string ExportPrometheus(const std::vector<MetricSnapshot>& snapshot);

/// One JSON object per line per series; histograms carry bounds,
/// bucket counts, count and sum.
std::string ExportJsonLines(const std::vector<MetricSnapshot>& snapshot);

/// Human-readable fixed-width table (base/text_table.h): counters and
/// gauges as single values, histograms as count / mean / p50 / p90 /
/// p99.
std::string ExportTable(const std::vector<MetricSnapshot>& snapshot);

/// Renders the registry's current snapshot in the given format.
std::string Export(const MetricsRegistry& registry, ExportFormat format);

/// Writes Export() output to `path`; "-" means stdout.
Status WriteMetrics(const std::string& path, ExportFormat format);

}  // namespace gem::obs

#endif  // GEM_OBS_EXPORT_H_

#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "base/text_table.h"

namespace gem::obs {
namespace {

/// %g keeps counters integral ("42") and latencies compact ("3.2e-05").
std::string FormatNumber(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

/// Prometheus exposition-format label-value escaping (promtool
/// rules): backslash, double quote, and newline must be escaped
/// inside the quoted value.
std::string PromEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PromLabels(const Labels& labels, const char* extra_key = nullptr,
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += PromEscape(v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += PromEscape(extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Quantile over a snapshot's bucket counts (same interpolation as
/// Histogram::Quantile, but computed from the frozen copy).
double SnapshotQuantile(const MetricSnapshot& snap, double q) {
  uint64_t total = 0;
  for (uint64_t c : snap.buckets) total += c;
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < snap.buckets.size(); ++i) {
    if (snap.buckets[i] == 0) continue;
    const uint64_t next = cumulative + snap.buckets[i];
    if (static_cast<double>(next) >= rank) {
      if (i == snap.bounds.size()) return snap.bounds.back();
      const double lo = i == 0 ? 0.0 : snap.bounds[i - 1];
      const double hi = snap.bounds[i];
      const double within = (rank - static_cast<double>(cumulative)) /
                            static_cast<double>(snap.buckets[i]);
      return lo + within * (hi - lo);
    }
    cumulative = next;
  }
  return snap.bounds.back();
}

}  // namespace

std::optional<ExportFormat> ParseExportFormat(std::string_view text) {
  if (text == "prom" || text == "prometheus") {
    return ExportFormat::kPrometheus;
  }
  if (text == "json") return ExportFormat::kJsonLines;
  if (text == "table") return ExportFormat::kTable;
  return std::nullopt;
}

std::string ExportPrometheus(const std::vector<MetricSnapshot>& snapshot) {
  std::string out;
  const std::string* last_name = nullptr;
  for (const MetricSnapshot& snap : snapshot) {
    if (last_name == nullptr || *last_name != snap.name) {
      out += "# TYPE " + snap.name + " " + TypeName(snap.type) + "\n";
      last_name = &snap.name;
    }
    if (snap.type == MetricType::kHistogram) {
      uint64_t cumulative = 0;
      for (size_t i = 0; i < snap.buckets.size(); ++i) {
        cumulative += snap.buckets[i];
        const std::string le =
            i < snap.bounds.size() ? FormatNumber(snap.bounds[i]) : "+Inf";
        out += snap.name + "_bucket" + PromLabels(snap.labels, "le", le) +
               " " + std::to_string(cumulative) + "\n";
      }
      out += snap.name + "_sum" + PromLabels(snap.labels) + " " +
             FormatNumber(snap.sum) + "\n";
      out += snap.name + "_count" + PromLabels(snap.labels) + " " +
             std::to_string(snap.count) + "\n";
    } else {
      out += snap.name + PromLabels(snap.labels) + " " +
             FormatNumber(snap.value) + "\n";
    }
  }
  return out;
}

std::string ExportJsonLines(const std::vector<MetricSnapshot>& snapshot) {
  std::string out;
  for (const MetricSnapshot& snap : snapshot) {
    std::string line = "{\"name\":\"" + JsonEscape(snap.name) +
                       "\",\"type\":\"" + TypeName(snap.type) + "\"";
    line += ",\"labels\":{";
    bool first = true;
    for (const auto& [k, v] : snap.labels) {
      if (!first) line += ',';
      first = false;
      line += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
    }
    line += "}";
    if (snap.type == MetricType::kHistogram) {
      line += ",\"count\":" + std::to_string(snap.count);
      line += ",\"sum\":" + FormatNumber(snap.sum);
      line += ",\"bounds\":[";
      for (size_t i = 0; i < snap.bounds.size(); ++i) {
        if (i > 0) line += ',';
        line += FormatNumber(snap.bounds[i]);
      }
      line += "],\"buckets\":[";
      for (size_t i = 0; i < snap.buckets.size(); ++i) {
        if (i > 0) line += ',';
        line += std::to_string(snap.buckets[i]);
      }
      line += "]";
    } else {
      line += ",\"value\":" + FormatNumber(snap.value);
    }
    line += "}\n";
    out += line;
  }
  return out;
}

std::string ExportTable(const std::vector<MetricSnapshot>& snapshot) {
  TextTable table(
      {"metric", "labels", "type", "value/count", "mean", "p50", "p90",
       "p99"});
  for (const MetricSnapshot& snap : snapshot) {
    std::string labels;
    for (const auto& [k, v] : snap.labels) {
      if (!labels.empty()) labels += ',';
      labels += k + "=" + v;
    }
    std::vector<std::string> cells = {snap.name, labels,
                                      TypeName(snap.type)};
    if (snap.type == MetricType::kHistogram) {
      const double mean =
          snap.count == 0 ? 0.0
                          : snap.sum / static_cast<double>(snap.count);
      cells.push_back(std::to_string(snap.count));
      cells.push_back(FormatNumber(mean));
      cells.push_back(FormatNumber(SnapshotQuantile(snap, 0.50)));
      cells.push_back(FormatNumber(SnapshotQuantile(snap, 0.90)));
      cells.push_back(FormatNumber(SnapshotQuantile(snap, 0.99)));
    } else {
      cells.push_back(FormatNumber(snap.value));
    }
    table.AddRow(std::move(cells));
  }
  return table.ToString();
}

std::string Export(const MetricsRegistry& registry, ExportFormat format) {
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  switch (format) {
    case ExportFormat::kPrometheus:
      return ExportPrometheus(snapshot);
    case ExportFormat::kJsonLines:
      return ExportJsonLines(snapshot);
    case ExportFormat::kTable:
      return ExportTable(snapshot);
  }
  return "";
}

Status WriteMetrics(const std::string& path, ExportFormat format) {
  const std::string text = Export(MetricsRegistry::Get(), format);
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return Status::Ok();
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open metrics file: " + path);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Internal("short write to metrics file: " + path);
  }
  return Status::Ok();
}

}  // namespace gem::obs

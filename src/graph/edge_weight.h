#ifndef GEM_GRAPH_EDGE_WEIGHT_H_
#define GEM_GRAPH_EDGE_WEIGHT_H_

namespace gem::graph {

/// Families of edge-weight functions f(RSS) > 0 (Equation (1) and the
/// Figure 14(d) ablation).
enum class WeightKind {
  /// The paper's choice (Equation (2)): w = RSS + c with
  /// c > max |RSS|.
  kLinearOffset,
  /// w = exp(RSS / scale): emphasizes strong signals.
  kExponential,
  /// w = 1 for every sensed AP: presence-only graph.
  kBinary,
  /// w = (RSS + c)^2: sharper emphasis than linear.
  kSquaredOffset,
};

/// Parameters of the weight function. `offset_c` is the paper's c
/// (default 120 dBm, larger than any |RSS|).
struct EdgeWeightConfig {
  WeightKind kind = WeightKind::kLinearOffset;
  double offset_c = 120.0;
  double exp_scale = 20.0;
};

/// Maps an RSS (dBm, negative) to a positive edge weight. Values are
/// clamped to stay strictly positive even for RSS below -offset_c.
double EdgeWeight(double rss_dbm, const EdgeWeightConfig& config);

}  // namespace gem::graph

#endif  // GEM_GRAPH_EDGE_WEIGHT_H_

#include "graph/edge_weight.h"

#include <algorithm>
#include <cmath>

namespace gem::graph {

double EdgeWeight(double rss_dbm, const EdgeWeightConfig& config) {
  constexpr double kMinWeight = 1e-3;
  switch (config.kind) {
    case WeightKind::kLinearOffset:
      return std::max(rss_dbm + config.offset_c, kMinWeight);
    case WeightKind::kExponential:
      return std::max(std::exp(rss_dbm / config.exp_scale), kMinWeight);
    case WeightKind::kBinary:
      return 1.0;
    case WeightKind::kSquaredOffset: {
      const double base = std::max(rss_dbm + config.offset_c, kMinWeight);
      return base * base;
    }
  }
  return kMinWeight;
}

}  // namespace gem::graph

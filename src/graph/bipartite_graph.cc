#include "graph/bipartite_graph.h"

#include <cmath>

#include "base/check.h"

namespace gem::graph {

BipartiteGraph::BipartiteGraph(EdgeWeightConfig weight_config)
    : weight_config_(weight_config) {}

NodeId BipartiteGraph::AddRecord(const rf::ScanRecord& record) {
  const NodeId record_id = num_nodes();
  types_.push_back(NodeType::kRecord);
  adjacency_.emplace_back();
  weight_sums_.push_back(0.0);
  samplers_.emplace_back();
  ++num_records_;

  for (const rf::Reading& reading : record.readings) {
    NodeId mac_id;
    const auto it = mac_index_.find(reading.mac);
    if (it == mac_index_.end()) {
      mac_id = num_nodes();
      types_.push_back(NodeType::kMac);
      adjacency_.emplace_back();
      weight_sums_.push_back(0.0);
      samplers_.emplace_back();
      mac_index_.emplace(reading.mac, mac_id);
      ++num_macs_;
    } else {
      mac_id = it->second;
    }
    const double w = EdgeWeight(reading.rss_dbm, weight_config_);
    adjacency_[record_id].push_back(Neighbor{mac_id, w});
    adjacency_[mac_id].push_back(Neighbor{record_id, w});
    weight_sums_[record_id] += w;
    weight_sums_[mac_id] += w;
    InvalidateCaches(mac_id);
  }
  InvalidateCaches(record_id);
  return record_id;
}

Result<BipartiteGraph> BipartiteGraph::FromParts(
    EdgeWeightConfig weight_config, std::vector<NodeType> types,
    std::vector<std::vector<Neighbor>> adjacency,
    std::vector<std::pair<std::string, NodeId>> macs) {
  const int n = static_cast<int>(types.size());
  if (adjacency.size() != types.size()) {
    return Status::InvalidArgument("graph state: adjacency/type size mismatch");
  }
  int num_macs = 0;
  for (const NodeType type : types) {
    if (type != NodeType::kRecord && type != NodeType::kMac) {
      return Status::InvalidArgument("graph state: unknown node type");
    }
    if (type == NodeType::kMac) ++num_macs;
  }
  for (const auto& neighbors : adjacency) {
    for (const Neighbor& nb : neighbors) {
      if (nb.node < 0 || nb.node >= n) {
        return Status::InvalidArgument("graph state: neighbor id out of range");
      }
      if (!(nb.weight > 0.0) || !std::isfinite(nb.weight)) {
        return Status::InvalidArgument("graph state: non-positive edge weight");
      }
    }
  }
  if (static_cast<int>(macs.size()) != num_macs) {
    return Status::InvalidArgument("graph state: mac index size mismatch");
  }
  BipartiteGraph graph(weight_config);
  for (const auto& [mac, id] : macs) {
    if (id < 0 || id >= n || types[id] != NodeType::kMac) {
      return Status::InvalidArgument("graph state: mac index id invalid");
    }
    if (!graph.mac_index_.emplace(mac, id).second) {
      return Status::InvalidArgument("graph state: duplicate mac string");
    }
  }
  graph.types_ = std::move(types);
  graph.adjacency_ = std::move(adjacency);
  graph.num_records_ = n - num_macs;
  graph.num_macs_ = num_macs;
  graph.samplers_.resize(graph.adjacency_.size());
  // Recompute weight sums in adjacency order — the same accumulation
  // order AddRecord used, so the doubles match bit for bit.
  graph.weight_sums_.assign(graph.adjacency_.size(), 0.0);
  for (size_t i = 0; i < graph.adjacency_.size(); ++i) {
    for (const Neighbor& nb : graph.adjacency_[i]) {
      graph.weight_sums_[i] += nb.weight;
    }
  }
  return graph;
}

NodeType BipartiteGraph::type(NodeId id) const {
  GEM_CHECK(id >= 0 && id < num_nodes());
  return types_[id];
}

const std::vector<Neighbor>& BipartiteGraph::neighbors(NodeId id) const {
  GEM_CHECK(id >= 0 && id < num_nodes());
  return adjacency_[id];
}

int BipartiteGraph::degree(NodeId id) const {
  return static_cast<int>(neighbors(id).size());
}

double BipartiteGraph::weight_sum(NodeId id) const {
  GEM_CHECK(id >= 0 && id < num_nodes());
  return weight_sums_[id];
}

std::optional<NodeId> BipartiteGraph::FindMac(const std::string& mac) const {
  const auto it = mac_index_.find(mac);
  if (it == mac_index_.end()) return std::nullopt;
  return it->second;
}

int BipartiteGraph::CountKnownMacs(const rf::ScanRecord& record) const {
  int known = 0;
  for (const rf::Reading& reading : record.readings) {
    if (mac_index_.count(reading.mac) > 0) ++known;
  }
  return known;
}

void BipartiteGraph::InvalidateCaches(NodeId id) {
  samplers_[id].reset();
  negative_sampler_.reset();
}

const math::AliasSampler& BipartiteGraph::NeighborSampler(NodeId id) const {
  if (!samplers_[id]) {
    const auto& adj = adjacency_[id];
    math::Vec weights(adj.size());
    for (size_t i = 0; i < adj.size(); ++i) weights[i] = adj[i].weight;
    samplers_[id] = std::make_unique<math::AliasSampler>(weights);
  }
  return *samplers_[id];
}

std::vector<Neighbor> BipartiteGraph::SampleNeighbors(NodeId id, int count,
                                                      math::Rng& rng) const {
  GEM_CHECK(id >= 0 && id < num_nodes());
  GEM_CHECK(count >= 0);
  std::vector<Neighbor> sampled;
  const auto& adj = adjacency_[id];
  if (adj.empty() || count == 0) return sampled;
  const math::AliasSampler& sampler = NeighborSampler(id);
  sampled.reserve(count);
  for (int i = 0; i < count; ++i) {
    sampled.push_back(adj[sampler.Sample(rng)]);
  }
  return sampled;
}

std::vector<NodeId> BipartiteGraph::RandomWalk(NodeId start, int length,
                                               math::Rng& rng) const {
  GEM_CHECK(start >= 0 && start < num_nodes());
  GEM_CHECK(length >= 0);
  std::vector<NodeId> walk;
  walk.reserve(length + 1);
  walk.push_back(start);
  NodeId current = start;
  for (int step = 0; step < length; ++step) {
    const auto& adj = adjacency_[current];
    if (adj.empty()) break;
    current = adj[NeighborSampler(current).Sample(rng)].node;
    walk.push_back(current);
  }
  return walk;
}

void BipartiteGraph::WarmCaches() const {
  for (NodeId id = 0; id < num_nodes(); ++id) {
    if (!adjacency_[id].empty()) NeighborSampler(id);
  }
  if (num_nodes() > 0) BuildNegativeSampler();
}

void BipartiteGraph::BuildNegativeSampler() const {
  if (negative_sampler_ && negative_sampler_nodes_ == num_nodes()) return;
  math::Vec weights(num_nodes());
  for (int i = 0; i < num_nodes(); ++i) {
    weights[i] = std::pow(static_cast<double>(adjacency_[i].size()), 0.75);
  }
  // An all-isolated graph degenerates to uniform sampling.
  bool any = false;
  for (double w : weights) any |= w > 0.0;
  if (!any) {
    for (double& w : weights) w = 1.0;
  }
  negative_sampler_ = std::make_unique<math::AliasSampler>(weights);
  negative_sampler_nodes_ = num_nodes();
}

NodeId BipartiteGraph::SampleNegative(math::Rng& rng) const {
  GEM_CHECK(num_nodes() > 0);
  BuildNegativeSampler();
  return negative_sampler_->Sample(rng);
}

}  // namespace gem::graph

#ifndef GEM_GRAPH_BIPARTITE_GRAPH_H_
#define GEM_GRAPH_BIPARTITE_GRAPH_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"
#include "graph/edge_weight.h"
#include "math/alias_sampler.h"
#include "math/rng.h"
#include "rf/types.h"

namespace gem::graph {

/// Node identifier, shared across both sides of the bipartition.
using NodeId = int;

enum class NodeType { kRecord, kMac };

/// A weighted adjacency entry.
struct Neighbor {
  NodeId node = -1;
  double weight = 0.0;
};

/// The paper's weighted bipartite graph G = (U, V, E, w): signal-record
/// nodes on one side, MAC nodes on the other, an edge per sensed
/// (record, MAC) pair weighted by f(RSS) (Section IV-A).
///
/// The graph is dynamic: new records (and new MACs) are appended as
/// they stream in (Section V-A), which is what makes BiSAGE inductive
/// in GEM.
class BipartiteGraph {
 public:
  explicit BipartiteGraph(EdgeWeightConfig weight_config = {});

  /// Adds a record node with edges to its sensed MACs (creating MAC
  /// nodes on first sight); returns the new record's NodeId. A record
  /// with no readings becomes an isolated record node.
  NodeId AddRecord(const rf::ScanRecord& record);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  int num_records() const { return num_records_; }
  int num_macs() const { return num_macs_; }

  NodeType type(NodeId id) const;
  const std::vector<Neighbor>& neighbors(NodeId id) const;
  int degree(NodeId id) const;
  /// Sum of incident edge weights.
  double weight_sum(NodeId id) const;

  /// NodeId of a MAC, if it has been seen.
  std::optional<NodeId> FindMac(const std::string& mac) const;

  /// Number of readings in `record` whose MAC the graph already knows.
  /// GEM treats a record with zero known MACs as an outlier outright
  /// (footnote 3 of the paper).
  int CountKnownMacs(const rf::ScanRecord& record) const;

  /// Draws `count` neighbors of `id` with replacement, each with
  /// probability proportional to its edge weight (the paper's
  /// non-uniform neighborhood sampling). Returns an empty vector for an
  /// isolated node.
  std::vector<Neighbor> SampleNeighbors(NodeId id, int count,
                                        math::Rng& rng) const;

  /// Weighted random walk of `length` steps starting at `start`
  /// (Section IV-B); the returned sequence includes the start node.
  /// Stops early at an isolated node.
  std::vector<NodeId> RandomWalk(NodeId start, int length,
                                 math::Rng& rng) const;

  /// Draws a node with probability proportional to degree^{3/4}
  /// (negative sampling distribution of Equation (8)).
  NodeId SampleNegative(math::Rng& rng) const;

  /// Builds every lazily-cached sampling structure (per-node alias
  /// tables and the negative-sampling table) up front. SampleNeighbors
  /// / RandomWalk / SampleNegative mutate those caches on first use, so
  /// they are only safe to call from multiple threads concurrently
  /// after WarmCaches() has run — and only until the next AddRecord,
  /// which invalidates the touched nodes' caches.
  void WarmCaches() const;

  const EdgeWeightConfig& weight_config() const { return weight_config_; }

  /// MAC string -> NodeId index (snapshot support; iteration order is
  /// unspecified and must not influence behavior).
  const std::unordered_map<std::string, NodeId>& mac_index() const {
    return mac_index_;
  }

  /// Rebuilds a graph from persisted structure (serve/snapshot.cc).
  /// `types` and `adjacency` are per-node and must be consistent with
  /// the (mac string, node id) list; weight sums and samplers are
  /// rederived. Returns InvalidArgument on any inconsistency.
  static Result<BipartiteGraph> FromParts(
      EdgeWeightConfig weight_config, std::vector<NodeType> types,
      std::vector<std::vector<Neighbor>> adjacency,
      std::vector<std::pair<std::string, NodeId>> macs);

 private:
  void InvalidateCaches(NodeId id);
  const math::AliasSampler& NeighborSampler(NodeId id) const;
  void BuildNegativeSampler() const;

  EdgeWeightConfig weight_config_;
  std::vector<NodeType> types_;
  std::vector<std::vector<Neighbor>> adjacency_;
  std::vector<double> weight_sums_;
  std::unordered_map<std::string, NodeId> mac_index_;
  int num_records_ = 0;
  int num_macs_ = 0;

  // Lazily built per-node alias tables; invalidated when the node's
  // adjacency grows. Mutable: sampling is logically const.
  mutable std::vector<std::unique_ptr<math::AliasSampler>> samplers_;
  mutable std::unique_ptr<math::AliasSampler> negative_sampler_;
  mutable int negative_sampler_nodes_ = -1;
};

}  // namespace gem::graph

#endif  // GEM_GRAPH_BIPARTITE_GRAPH_H_

#ifndef GEM_BASE_TEXT_TABLE_H_
#define GEM_BASE_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace gem {

/// Simple fixed-width text table writer, shared by the bench output
/// (via eval/table.h) and the obs metrics table exporter.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with column auto-sizing.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gem

#endif  // GEM_BASE_TEXT_TABLE_H_

#ifndef GEM_BASE_STATUSOR_H_
#define GEM_BASE_STATUSOR_H_

#include <utility>
#include <variant>

#include "base/check.h"
#include "base/status.h"

namespace gem {

/// A value-or-error wrapper: every fallible value-producing API in GEM
/// returns `StatusOr<T>` instead of `std::optional` (which erases the
/// failure reason) or a Status + out-parameter pair.
///
/// Accessors that assume success (`value()`, `operator*`, `operator->`)
/// GEM_CHECK on misuse; test `ok()` (or branch on `status().code()`)
/// first. The error-side Status is never OK — constructing a StatusOr
/// from an OK Status is a programmer error and aborts.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from Status so call sites can
  /// `return value;` or `return Status::InvalidArgument(...)`.
  StatusOr(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : data_(std::move(status)) {  // NOLINT
    GEM_CHECK(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// OK on the success path, the stored error otherwise.
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(data_);
  }

  /// StatusCode::kOk on the success path (shorthand for status().code()).
  StatusCode code() const {
    return ok() ? StatusCode::kOk : std::get<Status>(data_).code();
  }

  const T& value() const& {
    GEM_CHECK_MSG(ok(), "StatusOr::value() on error: %s",
                  std::get<Status>(data_).ToString().c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    GEM_CHECK_MSG(ok(), "StatusOr::value() on error: %s",
                  std::get<Status>(data_).ToString().c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    GEM_CHECK_MSG(ok(), "StatusOr::value() on error: %s",
                  std::get<Status>(data_).ToString().c_str());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// The value, or `fallback` when this holds an error.
  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? std::get<T>(data_) : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  std::variant<T, Status> data_;
};

/// Historical name for StatusOr, kept so older call sites keep
/// compiling; new code should spell StatusOr.
template <typename T>
using Result = StatusOr<T>;

}  // namespace gem

#endif  // GEM_BASE_STATUSOR_H_

#ifndef GEM_BASE_CHECK_H_
#define GEM_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// GEM_CHECK(cond): aborts with a message when a programmer-error
/// invariant is violated. Used for conditions that indicate a bug in
/// the calling code (out-of-range indices, size mismatches), not for
/// data-dependent failures, which return gem::Status instead.
#define GEM_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "GEM_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

/// GEM_CHECK with a printf-style explanation appended.
#define GEM_CHECK_MSG(cond, ...)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "GEM_CHECK failed at %s:%d: %s: ", __FILE__,  \
                   __LINE__, #cond);                                     \
      std::fprintf(stderr, __VA_ARGS__);                                 \
      std::fprintf(stderr, "\n");                                        \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#ifndef NDEBUG
#define GEM_DCHECK(cond) GEM_CHECK(cond)
#else
#define GEM_DCHECK(cond) \
  do {                   \
  } while (0)
#endif

#endif  // GEM_BASE_CHECK_H_

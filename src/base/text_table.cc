#include "base/text_table.h"

#include <algorithm>
#include <cstdio>

namespace gem {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      line += cell;
      line.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total - 2, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace gem

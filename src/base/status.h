#ifndef GEM_BASE_STATUS_H_
#define GEM_BASE_STATUS_H_

#include <string>
#include <utility>

namespace gem {

/// Error codes used across the GEM library. Modeled after the
/// Status idiom used by Arrow/RocksDB: fallible public APIs return a
/// `Status` (or `StatusOr<T>`, see base/statusor.h) instead of
/// throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  /// Transient overload: the caller should back off and retry (the
  /// serving engine returns this when its request queue is full).
  kUnavailable,
  /// Persisted data failed validation (bad magic, checksum mismatch,
  /// truncation): the input is unusable, retrying will not help.
  kDataLoss,
  /// The request's deadline passed before the work completed (the
  /// serving engine answers this instead of running a model call whose
  /// caller has already given up).
  kDeadlineExceeded,
};

/// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logging.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace gem

#endif  // GEM_BASE_STATUS_H_

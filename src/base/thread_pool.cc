#include "base/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "base/check.h"
#include "fault/failpoint.h"
#include "obs/timeline.h"
#include "obs/trace_context.h"

namespace gem {

Status ThreadPoolOptions::Validate() const {
  if (num_threads < 1) {
    return Status::InvalidArgument("thread pool needs num_threads >= 1, got " +
                                   std::to_string(num_threads));
  }
  if (num_threads > kMaxThreads) {
    return Status::InvalidArgument(
        "thread pool num_threads " + std::to_string(num_threads) +
        " exceeds the maximum of " + std::to_string(kMaxThreads));
  }
  return Status::Ok();
}

std::pair<long, long> StaticChunkRange(long n, long num_chunks, long chunk) {
  GEM_DCHECK(n >= 0 && num_chunks >= 1 && chunk >= 0 && chunk < num_chunks);
  const long base = n / num_chunks;
  const long extra = n % num_chunks;
  const long begin = chunk * base + std::min(chunk, extra);
  const long size = base + (chunk < extra ? 1 : 0);
  return {begin, begin + size};
}

ThreadPool::ThreadPool(ThreadPoolOptions options) : options_(options) {
  GEM_CHECK(options_.Validate().ok());
  // A 1-thread pool runs everything inline on the caller: no workers,
  // no synchronization, bit-for-bit the serial code path.
  const int workers = options_.num_threads - 1;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] {
      obs::Timeline::SetCurrentThreadName("pool-worker-" +
                                          std::to_string(i + 1));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

StatusOr<std::unique_ptr<ThreadPool>> ThreadPool::Create(
    ThreadPoolOptions options) {
  const Status status = options.Validate();
  if (!status.ok()) return status;
  return std::make_unique<ThreadPool>(options);
}

void ThreadPool::Submit(std::function<void()> fn) {
  GEM_DCHECK(fn != nullptr);
  {
    std::lock_guard lock(mutex_);
    if (!shutting_down_ && !workers_.empty()) {
      if (obs::Timeline::IsEnabled()) {
        // Carry the submitter's trace context across the queue hop and
        // account the enqueue->dequeue gap as an async "pool.queue_wait"
        // interval parented to the submitting span. The task body runs
        // under a "pool.task" span so worker-side child spans (gradient
        // chunks etc.) attach to the right request/operation.
        const obs::TraceContext submitter = obs::CurrentTraceContext();
        const auto enqueued_at = std::chrono::steady_clock::now();
        queue_.push_back([fn = std::move(fn), submitter, enqueued_at] {
          const auto dequeued_at = std::chrono::steady_clock::now();
          const uint64_t trace_id = submitter.trace_id != 0
                                        ? submitter.trace_id
                                        : obs::NewTraceId();
          obs::Timeline::RecordAsyncSpan("pool.queue_wait", enqueued_at,
                                         dequeued_at, trace_id,
                                         obs::NewSpanId(),
                                         submitter.span_id);
          const obs::TraceContext task_context{trace_id, obs::NewSpanId()};
          {
            obs::TraceContextScope scope(task_context);
            fn();
          }
          obs::Timeline::RecordSpan("pool.task", dequeued_at,
                                    std::chrono::steady_clock::now(),
                                    trace_id, task_context.span_id,
                                    submitter.span_id, /*depth=*/0);
        });
      } else {
        queue_.push_back(std::move(fn));
      }
      work_available_.notify_one();
      return;
    }
  }
  // No workers (1-thread pool) or shutting down: run on the caller so
  // submitted work is never silently dropped.
  fn();
}

void ThreadPool::Shutdown() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
    to_join.swap(workers_);  // claimed by exactly one Shutdown caller
  }
  work_available_.notify_all();
  for (std::thread& worker : to_join) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down, queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Chaos schedules inject latency here to model slow / preempted
    // workers; dispatch itself cannot fail, so any error payload is
    // ignored and the task always runs.
    GEM_FAILPOINT_EVAL("base.thread_pool.task");
    task();
  }
}

void ThreadPool::ParallelFor(
    long n, const std::function<void(int chunk, long begin, long end)>& body) {
  ParallelForChunked(n, options_.num_threads, body);
}

void ThreadPool::ParallelForChunked(
    long n, long num_chunks,
    const std::function<void(int chunk, long begin, long end)>& body) {
  if (n <= 0) return;
  num_chunks = std::clamp(num_chunks, 1L, n);
  bool inline_only;
  {
    std::lock_guard lock(mutex_);
    inline_only = workers_.empty() || shutting_down_;
  }
  if (num_chunks == 1 || inline_only) {
    // Same chunk decomposition, executed in index order on the caller:
    // body still sees the exact (chunk, begin, end) triples it would
    // see on a larger pool.
    for (long c = 0; c < num_chunks; ++c) {
      const auto [begin, end] = StaticChunkRange(n, num_chunks, c);
      body(static_cast<int>(c), begin, end);
    }
    return;
  }

  // Per-call completion latch, so concurrent ParallelFor calls on one
  // pool never observe each other's chunks.
  struct Latch {
    std::mutex mutex;
    std::condition_variable done;
    long remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = num_chunks - 1;
  for (long c = 1; c < num_chunks; ++c) {
    Submit([latch, &body, n, num_chunks, c] {
      const auto [begin, end] = StaticChunkRange(n, num_chunks, c);
      body(static_cast<int>(c), begin, end);
      std::lock_guard lock(latch->mutex);
      if (--latch->remaining == 0) latch->done.notify_one();
    });
  }
  const auto [begin, end] = StaticChunkRange(n, num_chunks, 0);
  body(0, begin, end);
  std::unique_lock lock(latch->mutex);
  latch->done.wait(lock, [&latch] { return latch->remaining == 0; });
}

}  // namespace gem

#include "base/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace gem {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

/// Guards sink installation and every emission: one log line is one
/// critical section, so concurrent GEM_LOG lines never interleave.
std::mutex& SinkMutex() {
  static std::mutex* mutex = new std::mutex();  // leaked: usable at exit
  return *mutex;
}

LogSink& SinkRef() {
  static LogSink* sink = new LogSink();  // empty = default stderr sink
  return *sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkRef() = std::move(sink);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(SinkMutex());
  const LogSink& sink = SinkRef();
  if (sink) {
    sink(level_, line);
    return;
  }
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal_logging
}  // namespace gem

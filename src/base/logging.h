#ifndef GEM_BASE_LOGGING_H_
#define GEM_BASE_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace gem {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted (default: Info).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Destination for formatted log lines (without trailing newline).
/// Invoked under the logging mutex, so a sink needs no locking of its
/// own but must not log reentrantly.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Replaces the default stderr sink; tests and the metrics exporters
/// use this to capture output. Passing nullptr restores the default.
void SetLogSink(LogSink sink);

namespace internal_logging {

/// Stream-style log line; emits on destruction. Emission is
/// serialized through a process-wide mutex (with the default sink, a
/// single fwrite per line), so concurrent log lines never interleave.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace gem

#define GEM_LOG(level)                                      \
  ::gem::internal_logging::LogMessage(::gem::LogLevel::k##level, \
                                      __FILE__, __LINE__)

#endif  // GEM_BASE_LOGGING_H_

#ifndef GEM_BASE_THREAD_POOL_H_
#define GEM_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"

namespace gem {

/// ThreadPool sizing knobs (validated, not CHECKed, so callers can
/// surface bad --threads values as kInvalidArgument instead of
/// crashing).
struct ThreadPoolOptions {
  /// Fixed worker count. 1 means "no workers": every ParallelFor and
  /// Submit runs inline on the calling thread, so a single code path
  /// covers both the serial and the parallel build of an algorithm.
  int num_threads = 1;

  /// kInvalidArgument unless 1 <= num_threads <= kMaxThreads.
  Status Validate() const;

  static constexpr int kMaxThreads = 4096;
};

/// Fixed-size worker pool over an unbounded FIFO work queue, shared by
/// BiSAGE training, batched inference, and dataset generation (the
/// hot paths own one pool and reuse it across epochs / batches instead
/// of spawning per-call threads).
///
/// Threading contract:
///  - Submit/ParallelFor may be called concurrently from any thread
///    (each ParallelFor call tracks its own completion latch).
///  - Tasks must not call ParallelFor on the SAME pool (a worker
///    blocking on its own pool's latch can deadlock the queue).
///  - Destruction (or Shutdown) drains already-submitted work, then
///    joins the workers; work submitted after Shutdown runs inline.
class ThreadPool {
 public:
  /// The options must be valid (GEM_CHECKed); use Create() to surface
  /// user-supplied sizes softly.
  explicit ThreadPool(ThreadPoolOptions options);
  explicit ThreadPool(int num_threads)
      : ThreadPool(ThreadPoolOptions{num_threads}) {}
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Validates the options and builds the pool.
  static StatusOr<std::unique_ptr<ThreadPool>> Create(
      ThreadPoolOptions options);

  /// Enqueues fn; runs it inline when the pool has no workers (a
  /// 1-thread pool) or is shutting down.
  ///
  /// When the timeline profiler is enabled (obs::Timeline), the
  /// submitter's TraceContext rides along with the task: the worker
  /// records the enqueue->dequeue gap as a "pool.queue_wait" interval
  /// and runs fn under a "pool.task" span parented to the submitting
  /// span, so traces stay connected across the thread hop. Inline
  /// execution keeps the caller's context and records no queue wait.
  void Submit(std::function<void()> fn);

  /// Stops intake, drains the queue, joins the workers. Idempotent.
  void Shutdown();

  int num_threads() const { return options_.num_threads; }

  /// Splits [0, n) into `chunks()` deterministic contiguous ranges
  /// (sizes differ by at most one, fixed by (n, num_chunks) alone),
  /// runs body(chunk_index, begin, end) for each, and blocks until
  /// every chunk finished. Chunk 0 runs on the calling thread.
  ///
  /// Chunk-to-thread placement is unspecified, so `body` must make the
  /// result a pure function of chunk_index (e.g. seed a per-chunk RNG
  /// and write to a chunk-indexed slot) for the output to be
  /// deterministic at a fixed chunk count.
  void ParallelFor(long n,
                   const std::function<void(int chunk, long begin, long end)>&
                       body);

  /// As above with an explicit chunk count (clamped to [1, n]); used
  /// when the work wants finer granularity than one chunk per thread
  /// (e.g. BiSAGE's deterministic mode runs one chunk per example so
  /// the reduction order cannot depend on the thread count).
  void ParallelForChunked(long n, long num_chunks,
                          const std::function<void(int chunk, long begin,
                                                   long end)>& body);

 private:
  void WorkerLoop();

  const ThreadPoolOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// The half-open sub-range of [0, n) covered by `chunk` under the
/// deterministic static chunking ParallelFor uses (sizes differ by at
/// most one; earlier chunks get the extra element).
std::pair<long, long> StaticChunkRange(long n, long num_chunks, long chunk);

}  // namespace gem

#endif  // GEM_BASE_THREAD_POOL_H_

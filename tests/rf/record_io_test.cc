#include "rf/record_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace gem::rf {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<ScanRecord> SampleRecords() {
  std::vector<ScanRecord> records(2);
  records[0].timestamp_s = 10.5;
  records[0].inside = true;
  records[0].readings = {{"aa:01", -50.25, Band::k2_4GHz},
                         {"aa:02", -71.0, Band::k5GHz}};
  records[1].timestamp_s = 13.5;
  records[1].inside = false;
  records[1].readings = {{"aa:02", -64.0, Band::k5GHz}};
  return records;
}

TEST(RecordIoTest, RoundTrip) {
  const std::string path = TempPath("records_roundtrip.csv");
  ASSERT_TRUE(SaveRecordsCsv(path, SampleRecords()).ok());
  auto loaded = LoadRecordsCsv(path);
  ASSERT_TRUE(loaded.ok());
  const auto& records = loaded.value();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].timestamp_s, 10.5);
  EXPECT_TRUE(records[0].inside);
  ASSERT_EQ(records[0].readings.size(), 2u);
  EXPECT_EQ(records[0].readings[0].mac, "aa:01");
  EXPECT_DOUBLE_EQ(records[0].readings[0].rss_dbm, -50.25);
  EXPECT_EQ(records[0].readings[1].band, Band::k5GHz);
  EXPECT_FALSE(records[1].inside);
  EXPECT_EQ(records[1].readings.size(), 1u);
}

TEST(RecordIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadRecordsCsv("/nonexistent/nope.csv").ok());
}

TEST(RecordIoTest, MalformedRowRejected) {
  const std::string path = TempPath("records_bad.csv");
  std::ofstream out(path);
  out << "record_id,timestamp_s,inside,mac,rss_dbm,band\n";
  out << "0,1.0,1,aa:01\n";  // too few columns
  out.close();
  EXPECT_FALSE(LoadRecordsCsv(path).ok());
}

TEST(RecordIoTest, EmptyRecordListRoundTrips) {
  const std::string path = TempPath("records_empty.csv");
  ASSERT_TRUE(SaveRecordsCsv(path, {}).ok());
  auto loaded = LoadRecordsCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST(RecordIoTest, HandComposedFileLoads) {
  const std::string path = TempPath("records_hand.csv");
  std::ofstream out(path);
  out << "record_id,timestamp_s,inside,mac,rss_dbm,band\n"
      << "7,100,0,de:ad:be:ef,-80.5,2.4\n"
      << "7,100,0,fe:ed:fa:ce,-60,5\n"
      << "9,103,1,de:ad:be:ef,-55,2.4\n";
  out.close();
  auto loaded = LoadRecordsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].readings.size(), 2u);
  EXPECT_TRUE(loaded.value()[1].inside);
}

}  // namespace
}  // namespace gem::rf

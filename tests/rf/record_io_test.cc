#include "rf/record_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace gem::rf {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<ScanRecord> SampleRecords() {
  std::vector<ScanRecord> records(2);
  records[0].timestamp_s = 10.5;
  records[0].inside = true;
  records[0].readings = {{"aa:01", -50.25, Band::k2_4GHz},
                         {"aa:02", -71.0, Band::k5GHz}};
  records[1].timestamp_s = 13.5;
  records[1].inside = false;
  records[1].readings = {{"aa:02", -64.0, Band::k5GHz}};
  return records;
}

TEST(RecordIoTest, RoundTrip) {
  const std::string path = TempPath("records_roundtrip.csv");
  ASSERT_TRUE(SaveRecordsCsv(path, SampleRecords()).ok());
  auto loaded = LoadRecordsCsv(path);
  ASSERT_TRUE(loaded.ok());
  const auto& records = loaded.value();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].timestamp_s, 10.5);
  EXPECT_TRUE(records[0].inside);
  ASSERT_EQ(records[0].readings.size(), 2u);
  EXPECT_EQ(records[0].readings[0].mac, "aa:01");
  EXPECT_DOUBLE_EQ(records[0].readings[0].rss_dbm, -50.25);
  EXPECT_EQ(records[0].readings[1].band, Band::k5GHz);
  EXPECT_FALSE(records[1].inside);
  EXPECT_EQ(records[1].readings.size(), 1u);
}

TEST(RecordIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadRecordsCsv("/nonexistent/nope.csv").ok());
}

TEST(RecordIoTest, MalformedRowRejected) {
  const std::string path = TempPath("records_bad.csv");
  std::ofstream out(path);
  out << "record_id,timestamp_s,inside,mac,rss_dbm,band\n";
  out << "0,1.0,1,aa:01\n";  // too few columns
  out.close();
  EXPECT_FALSE(LoadRecordsCsv(path).ok());
}

TEST(RecordIoTest, EmptyRecordListRoundTrips) {
  const std::string path = TempPath("records_empty.csv");
  ASSERT_TRUE(SaveRecordsCsv(path, {}).ok());
  auto loaded = LoadRecordsCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST(RecordIoTest, HandComposedFileLoads) {
  const std::string path = TempPath("records_hand.csv");
  std::ofstream out(path);
  out << "record_id,timestamp_s,inside,mac,rss_dbm,band\n"
      << "7,100,0,de:ad:be:ef,-80.5,2.4\n"
      << "7,100,0,fe:ed:fa:ce,-60,5\n"
      << "9,103,1,de:ad:be:ef,-55,2.4\n";
  out.close();
  auto loaded = LoadRecordsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].readings.size(), 2u);
  EXPECT_TRUE(loaded.value()[1].inside);
}

std::string WriteFile(const char* name, const std::string& body) {
  const std::string path = TempPath(name);
  std::ofstream out(path);
  out << body;
  return path;
}

constexpr const char* kHeader = "record_id,timestamp_s,inside,mac,rss_dbm,band\n";

TEST(RecordIoTest, EmptyFileRejected) {
  const std::string path = WriteFile("records_zero_bytes.csv", "");
  const auto loaded = LoadRecordsCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecordIoTest, HeaderOnlyFileIsEmptyList) {
  const std::string path = WriteFile("records_header_only.csv", kHeader);
  const auto loaded = LoadRecordsCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST(RecordIoTest, NonNumericRssRejected) {
  const std::string path = WriteFile(
      "records_bad_rss.csv", std::string(kHeader) + "0,1.0,1,aa:01,-50dBm,5\n");
  const auto loaded = LoadRecordsCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecordIoTest, NonNumericTimestampRejected) {
  const std::string path = WriteFile(
      "records_bad_ts.csv", std::string(kHeader) + "0,noon,1,aa:01,-50,5\n");
  EXPECT_FALSE(LoadRecordsCsv(path).ok());
}

TEST(RecordIoTest, UnknownBandRejected) {
  const std::string path = WriteFile(
      "records_bad_band.csv", std::string(kHeader) + "0,1.0,1,aa:01,-50,6\n");
  const auto loaded = LoadRecordsCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("band"), std::string::npos);
}

TEST(RecordIoTest, RecordIdWithTrailingGarbageRejected) {
  const std::string path = WriteFile(
      "records_bad_id.csv", std::string(kHeader) + "0x7,1.0,1,aa:01,-50,5\n");
  EXPECT_FALSE(LoadRecordsCsv(path).ok());
}

TEST(RecordIoTest, BadInsideFlagRejected) {
  const std::string path = WriteFile(
      "records_bad_inside.csv",
      std::string(kHeader) + "0,1.0,yes,aa:01,-50,5\n");
  EXPECT_FALSE(LoadRecordsCsv(path).ok());
}

TEST(RecordIoTest, InterleavedRecordIdsGroup) {
  // Multi-device logs merged by timestamp interleave ids; rows with the
  // same id must land in one record, first-seen order preserved.
  const std::string path =
      WriteFile("records_interleaved.csv",
                std::string(kHeader) + "1,10,1,aa:01,-50,5\n"
                                       "2,11,0,aa:02,-70,2.4\n"
                                       "1,10,1,aa:03,-55,5\n"
                                       "2,11,0,aa:04,-72,2.4\n");
  const auto loaded = LoadRecordsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  ASSERT_EQ(loaded.value()[0].readings.size(), 2u);
  EXPECT_EQ(loaded.value()[0].readings[0].mac, "aa:01");
  EXPECT_EQ(loaded.value()[0].readings[1].mac, "aa:03");
  EXPECT_TRUE(loaded.value()[0].inside);
  ASSERT_EQ(loaded.value()[1].readings.size(), 2u);
  EXPECT_FALSE(loaded.value()[1].inside);
}

TEST(RecordIoTest, CrlfLineEndingsLoad) {
  const std::string path = WriteFile(
      "records_crlf.csv",
      "record_id,timestamp_s,inside,mac,rss_dbm,band\r\n"
      "0,1.0,1,aa:01,-50,5\r\n");
  const auto loaded = LoadRecordsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].readings[0].band, Band::k5GHz);
}

}  // namespace
}  // namespace gem::rf

#include "rf/dataset.h"

#include <gtest/gtest.h>

#include "rf/dynamics.h"

namespace gem::rf {
namespace {

DatasetOptions SmallOptions() {
  DatasetOptions options;
  options.train_duration_s = 120.0;
  options.test_segments = 4;
  options.test_segment_duration_s = 60.0;
  options.seed = 11;
  return options;
}

TEST(ScenarioTest, PresetsMatchPaperShape) {
  // Areas follow Table II: two ~10 m^2, three ~50, four ~100, one ~200.
  const double expected_area[] = {10, 10, 50, 50, 50, 100, 100, 100, 100, 200};
  for (int u = 0; u < 10; ++u) {
    const ScenarioConfig c = HomePreset(u);
    const double area = c.width_m * c.height_m * c.floors;
    EXPECT_GT(area, expected_area[u] * 0.5) << "user " << u;
    EXPECT_LT(area, expected_area[u] * 2.1) << "user " << u;
  }
  EXPECT_EQ(HomePreset(9).floors, 2);
}

TEST(ScenarioTest, MacCountsVaryAcrossUsers) {
  const Environment dense = BuildEnvironment(HomePreset(7));   // 73 MACs
  const Environment sparse = BuildEnvironment(HomePreset(9));  // 12 MACs
  EXPECT_GT(TotalMacs(dense), 2 * TotalMacs(sparse));
}

TEST(DatasetTest, TrainIsAllInside) {
  const Dataset data = GenerateScenarioDataset(HomePreset(2), SmallOptions());
  ASSERT_FALSE(data.train.empty());
  for (const ScanRecord& record : data.train) {
    EXPECT_TRUE(record.inside);
  }
}

TEST(DatasetTest, TestHasBothClasses) {
  const Dataset data = GenerateScenarioDataset(HomePreset(2), SmallOptions());
  int inside = 0;
  int outside = 0;
  for (const ScanRecord& record : data.test) {
    (record.inside ? inside : outside)++;
  }
  EXPECT_GT(inside, 10);
  EXPECT_GT(outside, 10);
}

TEST(DatasetTest, TestStreamIsTimeOrdered) {
  const Dataset data = GenerateScenarioDataset(HomePreset(2), SmallOptions());
  for (size_t i = 1; i < data.test.size(); ++i) {
    EXPECT_GE(data.test[i].timestamp_s, data.test[i - 1].timestamp_s);
  }
}

TEST(DatasetTest, DeterministicForSeed) {
  const Dataset a = GenerateScenarioDataset(HomePreset(1), SmallOptions());
  const Dataset b = GenerateScenarioDataset(HomePreset(1), SmallOptions());
  ASSERT_EQ(a.train.size(), b.train.size());
  ASSERT_EQ(a.test.size(), b.test.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    ASSERT_EQ(a.train[i].readings.size(), b.train[i].readings.size());
    for (size_t j = 0; j < a.train[i].readings.size(); ++j) {
      EXPECT_EQ(a.train[i].readings[j].mac, b.train[i].readings[j].mac);
      EXPECT_DOUBLE_EQ(a.train[i].readings[j].rss_dbm,
                       b.train[i].readings[j].rss_dbm);
    }
  }
}

TEST(DatasetTest, RecordsAreNonTrivial) {
  const Dataset data = GenerateScenarioDataset(HomePreset(5), SmallOptions());
  double mean_len = 0.0;
  for (const ScanRecord& record : data.train) {
    mean_len += static_cast<double>(record.readings.size());
  }
  mean_len /= static_cast<double>(data.train.size());
  EXPECT_GT(mean_len, 5.0);
}

}  // namespace
}  // namespace gem::rf

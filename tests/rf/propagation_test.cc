#include "rf/propagation.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gem::rf {
namespace {

PropagationConfig NoNoiseConfig() {
  PropagationConfig config;
  config.shadowing_sigma_db = 0.0;
  config.noise_sigma_db = 0.0;
  config.drift_amplitude_db = 0.0;
  config.common_drift_amplitude_db = 0.0;
  return config;
}

TEST(PropagationTest, RssDecreasesWithDistance) {
  Environment env;
  env.SetFence(50.0, 50.0);
  const PropagationModel model(&env, NoNoiseConfig());
  AccessPoint ap;
  ap.mac = "a";
  ap.position = {0, 0};

  double prev = 1e9;
  for (double d = 1.0; d <= 40.0; d += 2.0) {
    const double rss = model.MeanRssDbm(ap, {d, 0}, 0);
    EXPECT_LT(rss, prev) << "distance " << d;
    prev = rss;
  }
}

TEST(PropagationTest, ReferenceDistanceValue) {
  Environment env;
  env.SetFence(50.0, 50.0);
  const PropagationModel model(&env, NoNoiseConfig());
  AccessPoint ap;
  ap.mac = "a";
  ap.position = {0, 0};
  ap.ref_rss_1m_dbm = -40.0;
  EXPECT_NEAR(model.MeanRssDbm(ap, {1.0, 0}, 0), -40.0, 1e-9);
}

TEST(PropagationTest, DistanceClampedBelowHalfMeter) {
  Environment env;
  env.SetFence(50.0, 50.0);
  const PropagationModel model(&env, NoNoiseConfig());
  AccessPoint ap;
  ap.mac = "a";
  ap.position = {0, 0};
  // At 0.1 m and 0.5 m the clamped distance is identical.
  EXPECT_DOUBLE_EQ(model.MeanRssDbm(ap, {0.1, 0}, 0),
                   model.MeanRssDbm(ap, {0.5, 0}, 0));
}

TEST(PropagationTest, WallsReduceRss) {
  Environment env;
  env.SetFence(10.0, 10.0);
  env.AddExteriorWalls(8.0);
  const PropagationModel model(&env, NoNoiseConfig());
  AccessPoint ap;
  ap.mac = "a";
  ap.position = {5, 5};  // inside
  const double inside = model.MeanRssDbm(ap, {5, 9}, 0);    // 4 m, no wall
  const double outside = model.MeanRssDbm(ap, {5, 14}, 0);  // 9 m, 1 wall
  // The gap must exceed pure path loss by the wall attenuation.
  const double pure_path_gap =
      10.0 * model.config().path_loss_exponent * std::log10(9.0 / 4.0);
  EXPECT_NEAR(inside - outside, pure_path_gap + 8.0, 1e-9);
}

TEST(PropagationTest, FiveGhzWeakerThroughPathAndWalls) {
  Environment env;
  env.SetFence(10.0, 10.0);
  env.AddExteriorWalls(8.0, 3.0);
  const PropagationModel model(&env, NoNoiseConfig());
  AccessPoint ap24;
  ap24.mac = "a";
  ap24.position = {5, 5};
  ap24.band = Band::k2_4GHz;
  AccessPoint ap5 = ap24;
  ap5.band = Band::k5GHz;
  // Same position outside: 5 GHz pays extra path and wall loss.
  const double rss24 = model.MeanRssDbm(ap24, {5, 14}, 0);
  const double rss5 = model.MeanRssDbm(ap5, {5, 14}, 0);
  EXPECT_DOUBLE_EQ(rss24 - rss5,
                   model.config().extra_5ghz_path_db + 3.0);
}

TEST(PropagationTest, FloorGapAttenuates) {
  Environment env;
  env.SetFence(10.0, 10.0, 2);
  const PropagationModel model(&env, NoNoiseConfig());
  AccessPoint ap;
  ap.mac = "a";
  ap.position = {5, 5};
  ap.floor = 0;
  const double same = model.MeanRssDbm(ap, {7, 5}, 0);
  const double other = model.MeanRssDbm(ap, {7, 5}, 1);
  EXPECT_DOUBLE_EQ(same - other, model.config().floor_attenuation_db);
}

TEST(PropagationTest, ShadowingIsDeterministicPerLocation) {
  Environment env;
  env.SetFence(20.0, 20.0);
  PropagationConfig config;
  config.noise_sigma_db = 0.0;
  config.shadowing_sigma_db = 3.0;
  config.drift_amplitude_db = 0.0;
  config.common_drift_amplitude_db = 0.0;
  const PropagationModel model(&env, config);
  AccessPoint ap;
  ap.mac = "a";
  ap.position = {0, 0};
  EXPECT_DOUBLE_EQ(model.MeanRssDbm(ap, {7.3, 4.2}, 0),
                   model.MeanRssDbm(ap, {7.3, 4.2}, 0));
  // Different shadowing cells generally differ.
  EXPECT_NE(model.MeanRssDbm(ap, {7.3, 4.2}, 0),
            model.MeanRssDbm(ap, {13.0, 15.0}, 0) +
                10.0 * config.path_loss_exponent *
                    (std::log10(std::hypot(13.0, 15.0)) -
                     std::log10(std::hypot(7.3, 4.2))));
}

TEST(PropagationTest, DetectionProbabilityEdges) {
  Environment env;
  env.SetFence(5.0, 5.0);
  PropagationConfig config = NoNoiseConfig();
  config.sensitivity_dbm = -92.0;
  config.detection_softness_db = 6.0;
  const PropagationModel model(&env, config);
  EXPECT_DOUBLE_EQ(model.DetectionProbability(-80.0), 1.0);
  EXPECT_DOUBLE_EQ(model.DetectionProbability(-92.0), 1.0);
  EXPECT_DOUBLE_EQ(model.DetectionProbability(-95.0), 0.5);
  EXPECT_DOUBLE_EQ(model.DetectionProbability(-98.0), 0.0);
  EXPECT_DOUBLE_EQ(model.DetectionProbability(-120.0), 0.0);
}

TEST(PropagationTest, SampleAddsNoise) {
  Environment env;
  env.SetFence(5.0, 5.0);
  PropagationConfig config;
  config.shadowing_sigma_db = 0.0;
  config.noise_sigma_db = 2.0;
  config.drift_amplitude_db = 0.0;
  config.common_drift_amplitude_db = 0.0;
  const PropagationModel model(&env, config);
  AccessPoint ap;
  ap.mac = "a";
  ap.position = {0, 0};
  math::Rng rng(3);
  const double mean = model.MeanRssDbm(ap, {3, 0}, 0);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = model.SampleRssDbm(ap, {3, 0}, 0, rng) - mean;
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / n), 2.0, 0.05);
}

TEST(PropagationTest, DriftIsDeterministicAndBounded) {
  Environment env;
  env.SetFence(10.0, 10.0);
  PropagationConfig config;
  config.shadowing_sigma_db = 0.0;
  config.noise_sigma_db = 0.0;
  config.drift_amplitude_db = 2.0;
  config.common_drift_amplitude_db = 0.0;
  const PropagationModel model(&env, config);
  AccessPoint ap;
  ap.mac = "a";
  ap.position = {0, 0};
  const double base = model.MeanRssDbm(ap, {3, 0}, 0, 0.0);
  // Deterministic per (mac, time).
  EXPECT_DOUBLE_EQ(model.MeanRssDbm(ap, {3, 0}, 0, 123.0),
                   model.MeanRssDbm(ap, {3, 0}, 0, 123.0));
  // Bounded by the (jittered) amplitude and actually varying.
  bool varies = false;
  for (double t = 0.0; t < 4000.0; t += 250.0) {
    const double rss = model.MeanRssDbm(ap, {3, 0}, 0, t);
    EXPECT_LE(std::fabs(rss - base), 2.0 * 2.0 * 1.5 + 1e-9);
    varies |= std::fabs(rss - model.MeanRssDbm(ap, {3, 0}, 0, 0.0)) > 0.2;
  }
  EXPECT_TRUE(varies);
}

TEST(PropagationTest, CommonDriftSharedAcrossAps) {
  Environment env;
  env.SetFence(10.0, 10.0);
  PropagationConfig config;
  config.common_drift_amplitude_db = 3.0;
  const PropagationModel model(&env, config);
  // Common-mode drift is a pure function of time.
  EXPECT_DOUBLE_EQ(model.CommonDriftDb(500.0), model.CommonDriftDb(500.0));
  bool varies = false;
  for (double t = 0.0; t < 8000.0; t += 500.0) {
    EXPECT_LE(std::fabs(model.CommonDriftDb(t)), 3.0 + 1e-9);
    varies |= std::fabs(model.CommonDriftDb(t) -
                        model.CommonDriftDb(0.0)) > 0.5;
  }
  EXPECT_TRUE(varies);
}

}  // namespace
}  // namespace gem::rf

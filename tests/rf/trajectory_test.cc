#include "rf/trajectory.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gem::rf {
namespace {

Environment MakeEnv(double w, double h, int floors = 1) {
  Environment env;
  env.SetFence(w, h, floors);
  return env;
}

TEST(PerimeterWalkTest, StaysInsideFence) {
  const Environment env = MakeEnv(8.0, 6.0);
  const Trajectory traj = PerimeterWalk(env, 0.8, 300.0, 2.0);
  ASSERT_FALSE(traj.empty());
  for (const TimedPoint& tp : traj) {
    EXPECT_TRUE(env.InsideFence(tp.position));
  }
}

TEST(PerimeterWalkTest, RespectsScanInterval) {
  const Environment env = MakeEnv(8.0, 6.0);
  const Trajectory traj = PerimeterWalk(env, 0.8, 100.0, 2.0);
  EXPECT_EQ(traj.size(), 50u);
  EXPECT_DOUBLE_EQ(traj[1].time_s - traj[0].time_s, 2.0);
}

TEST(PerimeterWalkTest, SpeedControlsStepLength) {
  const Environment env = MakeEnv(20.0, 20.0);
  const Trajectory slow = PerimeterWalk(env, 0.4, 40.0, 2.0);
  const Trajectory fast = PerimeterWalk(env, 1.2, 40.0, 2.0);
  auto step = [](const Trajectory& t) {
    const double dx = t[1].position.x - t[0].position.x;
    const double dy = t[1].position.y - t[0].position.y;
    return std::hypot(dx, dy);
  };
  EXPECT_NEAR(step(slow), 0.8, 1e-9);
  EXPECT_NEAR(step(fast), 2.4, 1e-9);
}

TEST(PerimeterWalkTest, CoversAllSides) {
  const Environment env = MakeEnv(10.0, 10.0);
  const Trajectory traj = PerimeterWalk(env, 1.0, 200.0, 1.0);
  bool near_left = false;
  bool near_right = false;
  bool near_bottom = false;
  bool near_top = false;
  for (const TimedPoint& tp : traj) {
    near_left |= tp.position.x < 1.0;
    near_right |= tp.position.x > 9.0;
    near_bottom |= tp.position.y < 1.0;
    near_top |= tp.position.y > 9.0;
  }
  EXPECT_TRUE(near_left && near_right && near_bottom && near_top);
}

TEST(PerimeterWalkTest, MultiFloorAlternatesFloors) {
  const Environment env = MakeEnv(10.0, 8.0, 2);
  const Trajectory traj = PerimeterWalk(env, 1.0, 600.0, 2.0);
  bool saw0 = false;
  bool saw1 = false;
  for (const TimedPoint& tp : traj) {
    saw0 |= tp.floor == 0;
    saw1 |= tp.floor == 1;
  }
  EXPECT_TRUE(saw0 && saw1);
}

TEST(RandomWaypointTest, StaysInside) {
  const Environment env = MakeEnv(8.0, 6.0);
  math::Rng rng(1);
  const Trajectory traj = RandomWaypointInside(env, 0.8, 300.0, 2.0, rng);
  for (const TimedPoint& tp : traj) {
    EXPECT_TRUE(env.InsideFence(tp.position));
  }
}

TEST(RandomWaypointTest, ActuallyMoves) {
  const Environment env = MakeEnv(8.0, 6.0);
  math::Rng rng(2);
  const Trajectory traj = RandomWaypointInside(env, 0.8, 100.0, 2.0, rng);
  double total = 0.0;
  for (size_t i = 1; i < traj.size(); ++i) {
    total += std::hypot(traj[i].position.x - traj[i - 1].position.x,
                        traj[i].position.y - traj[i - 1].position.y);
  }
  EXPECT_GT(total, 10.0);
}

TEST(OutsideWalkTest, StaysOutsideWithinRing) {
  const Environment env = MakeEnv(8.0, 6.0);
  math::Rng rng(3);
  const Trajectory traj = OutsideWalk(env, 0.5, 20.0, 0.8, 300.0, 2.0, rng);
  ASSERT_FALSE(traj.empty());
  for (const TimedPoint& tp : traj) {
    EXPECT_FALSE(env.InsideFence(tp.position));
    // Within the max ring (some slack for corner diagonals).
    EXPECT_GE(tp.position.x, -20.5);
    EXPECT_LE(tp.position.x, 28.5);
  }
}

TEST(OutsideWalkTest, IncludesNearBoundaryPositions) {
  const Environment env = MakeEnv(8.0, 6.0);
  math::Rng rng(4);
  const Trajectory traj = OutsideWalk(env, 0.3, 15.0, 0.8, 900.0, 1.0, rng);
  bool some_near = false;
  for (const TimedPoint& tp : traj) {
    const double dx =
        std::max({-tp.position.x, tp.position.x - env.fence_width(), 0.0});
    const double dy =
        std::max({-tp.position.y, tp.position.y - env.fence_height(), 0.0});
    if (std::hypot(dx, dy) < 2.0) some_near = true;
  }
  EXPECT_TRUE(some_near);
}

}  // namespace
}  // namespace gem::rf

#include "rf/environment.h"

#include <gtest/gtest.h>

namespace gem::rf {
namespace {

TEST(SegmentsIntersectTest, CrossingSegments) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
}

TEST(SegmentsIntersectTest, ParallelSegments) {
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {2, 0}, {0, 1}, {2, 1}));
}

TEST(SegmentsIntersectTest, DisjointSegments) {
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {2, 1}, {3, 1}));
}

TEST(SegmentsIntersectTest, TouchingEndpointsDoNotCount) {
  // Skimming a wall endpoint is not a crossing.
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(EnvironmentTest, InsideFence) {
  Environment env;
  env.SetFence(10.0, 5.0);
  EXPECT_TRUE(env.InsideFence({5, 2.5}));
  EXPECT_TRUE(env.InsideFence({0, 0}));
  EXPECT_FALSE(env.InsideFence({10.1, 2}));
  EXPECT_FALSE(env.InsideFence({-0.1, 2}));
  EXPECT_FALSE(env.InsideFence({5, 5.5}));
}

TEST(EnvironmentTest, ExteriorWallsBlockBoundary) {
  Environment env;
  env.SetFence(10.0, 5.0);
  env.AddExteriorWalls(8.0);
  // Path from inside to outside crosses exactly one exterior wall.
  EXPECT_EQ(env.CountWallCrossings({5, 2.5}, {5, 7.0}, 0), 1);
  EXPECT_DOUBLE_EQ(env.WallAttenuationDb({5, 2.5}, {5, 7.0}, 0,
                                         Band::k2_4GHz),
                   8.0);
  // Path fully inside crosses none.
  EXPECT_EQ(env.CountWallCrossings({2, 2}, {8, 3}, 0), 0);
  // Path through the whole premises crosses two exterior walls.
  EXPECT_EQ(env.CountWallCrossings({5, -2}, {5, 7}, 0), 2);
}

TEST(EnvironmentTest, FiveGhzPaysExtraAttenuation) {
  Environment env;
  env.SetFence(10.0, 5.0);
  env.AddExteriorWalls(8.0, 3.0);
  const double att24 =
      env.WallAttenuationDb({5, 2.5}, {5, 7.0}, 0, Band::k2_4GHz);
  const double att5 =
      env.WallAttenuationDb({5, 2.5}, {5, 7.0}, 0, Band::k5GHz);
  EXPECT_DOUBLE_EQ(att5 - att24, 3.0);
}

TEST(EnvironmentTest, WallsArePerFloor) {
  Environment env;
  env.SetFence(10.0, 5.0, 2);
  Wall wall;
  wall.a = {5, 0};
  wall.b = {5, 5};
  wall.floor = 1;
  wall.attenuation_db = 4.0;
  env.AddWall(wall);
  EXPECT_EQ(env.CountWallCrossings({2, 2}, {8, 2}, 0), 0);
  EXPECT_EQ(env.CountWallCrossings({2, 2}, {8, 2}, 1), 1);
}

TEST(EnvironmentTest, ExteriorWallsOnAllFloors) {
  Environment env;
  env.SetFence(4.0, 4.0, 2);
  env.AddExteriorWalls(8.0);
  EXPECT_EQ(env.CountWallCrossings({2, 2}, {2, 6}, 0), 1);
  EXPECT_EQ(env.CountWallCrossings({2, 2}, {2, 6}, 1), 1);
}

}  // namespace
}  // namespace gem::rf

#include "rf/dynamics.h"

#include <gtest/gtest.h>

#include <set>

namespace gem::rf {
namespace {

std::vector<ScanRecord> MakeRecords(int count, int macs_per_record) {
  std::vector<ScanRecord> records(count);
  for (int i = 0; i < count; ++i) {
    records[i].timestamp_s = i;
    for (int m = 0; m < macs_per_record; ++m) {
      Reading r;
      r.mac = "mac" + std::to_string(m);
      r.rss_dbm = -60.0 - m;
      r.band = m % 2 == 0 ? Band::k2_4GHz : Band::k5GHz;
      records[i].readings.push_back(r);
    }
  }
  return records;
}

TEST(CollectMacsTest, FirstSeenOrderDeduplicated) {
  auto records = MakeRecords(5, 3);
  const auto macs = CollectMacs(records);
  ASSERT_EQ(macs.size(), 3u);
  EXPECT_EQ(macs[0], "mac0");
  EXPECT_EQ(macs[2], "mac2");
}

TEST(RemoveMacsTest, RemovesOnlyListed) {
  auto records = MakeRecords(4, 3);
  RemoveMacs(records, {"mac1"});
  for (const ScanRecord& record : records) {
    EXPECT_EQ(record.readings.size(), 2u);
    for (const Reading& r : record.readings) EXPECT_NE(r.mac, "mac1");
  }
}

TEST(SampleMacSubsetTest, FractionRounding) {
  auto records = MakeRecords(2, 10);
  math::Rng rng(1);
  EXPECT_EQ(SampleMacSubset(records, 0.25, rng).size(), 3u);  // ceil(2.5)
  EXPECT_EQ(SampleMacSubset(records, 0.0, rng).size(), 0u);
  EXPECT_EQ(SampleMacSubset(records, 1.0, rng).size(), 10u);
}

TEST(SampleMacSubsetTest, SubsetIsDistinct) {
  auto records = MakeRecords(2, 20);
  math::Rng rng(2);
  const auto subset = SampleMacSubset(records, 0.5, rng);
  const std::set<std::string> unique(subset.begin(), subset.end());
  EXPECT_EQ(unique.size(), subset.size());
}

TEST(ApOnOffTest, ZeroPKeepsEverything) {
  auto records = MakeRecords(90, 4);
  math::Rng rng(3);
  ApplyApOnOffDynamics(records, 0.0, 0.5, 30, rng);
  for (const ScanRecord& record : records) {
    EXPECT_EQ(record.readings.size(), 4u);
  }
}

TEST(ApOnOffTest, POneQZeroDropsAllAfterFirstBlock) {
  auto records = MakeRecords(90, 4);
  math::Rng rng(4);
  ApplyApOnOffDynamics(records, 1.0, 0.0, 30, rng);
  // First block: everything ON.
  for (int i = 0; i < 30; ++i) EXPECT_EQ(records[i].readings.size(), 4u);
  // After the first boundary all MACs are OFF forever (q = 0).
  for (int i = 30; i < 90; ++i) EXPECT_TRUE(records[i].readings.empty());
}

TEST(ApOnOffTest, StatesConstantWithinBlock) {
  auto records = MakeRecords(120, 6);
  math::Rng rng(5);
  ApplyApOnOffDynamics(records, 0.5, 0.5, 30, rng);
  for (int block = 0; block < 4; ++block) {
    std::set<std::string> first;
    for (const Reading& r : records[block * 30].readings) first.insert(r.mac);
    for (int i = block * 30; i < (block + 1) * 30; ++i) {
      std::set<std::string> macs;
      for (const Reading& r : records[i].readings) macs.insert(r.mac);
      EXPECT_EQ(macs, first) << "record " << i;
    }
  }
}

TEST(ApOnOffTest, LongRunOnFractionMatchesStationary) {
  // Stationary P(ON) of the chain is q / (p + q).
  const double p = 0.3;
  const double q = 0.6;
  auto records = MakeRecords(30 * 400, 1);
  math::Rng rng(6);
  ApplyApOnOffDynamics(records, p, q, 30, rng);
  int on_blocks = 0;
  for (int b = 0; b < 400; ++b) {
    if (!records[b * 30].readings.empty()) ++on_blocks;
  }
  EXPECT_NEAR(on_blocks / 400.0, q / (p + q), 0.08);
}

TEST(FilterBandTest, KeepsOnlyRequestedBand) {
  auto records = MakeRecords(3, 4);
  FilterBand(records, Band::k5GHz);
  for (const ScanRecord& record : records) {
    EXPECT_EQ(record.readings.size(), 2u);
    for (const Reading& r : record.readings) {
      EXPECT_EQ(r.band, Band::k5GHz);
    }
  }
}

}  // namespace
}  // namespace gem::rf

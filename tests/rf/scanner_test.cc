#include "rf/scanner.h"

#include <gtest/gtest.h>

#include <cmath>

#include <set>

#include "math/stats.h"
#include "rf/scenario.h"

namespace gem::rf {
namespace {

class ScannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = BuildEnvironment(HomePreset(2));  // ~50 m^2 apartment
    model_ = std::make_unique<PropagationModel>(&env_, PropagationConfig{});
    scanner_ = std::make_unique<Scanner>(&env_, model_.get());
  }

  Environment env_;
  std::unique_ptr<PropagationModel> model_;
  std::unique_ptr<Scanner> scanner_;
};

TEST_F(ScannerTest, RecordsAreVariableLength) {
  math::Rng rng(1);
  std::set<size_t> lengths;
  for (int i = 0; i < 60; ++i) {
    const Point pos{rng.Uniform(0.0, env_.fence_width()),
                    rng.Uniform(0.0, env_.fence_height())};
    const ScanRecord record = scanner_->Scan(pos, 0, i, rng);
    lengths.insert(record.readings.size());
  }
  // The defining property the paper is built around: scans differ in
  // how many MACs they sense.
  EXPECT_GT(lengths.size(), 2u);
}

TEST_F(ScannerTest, GroundTruthLabelsFollowFence) {
  math::Rng rng(2);
  const ScanRecord in = scanner_->Scan({2, 2}, 0, 0.0, rng);
  const ScanRecord out = scanner_->Scan({-5, -5}, 0, 1.0, rng);
  EXPECT_TRUE(in.inside);
  EXPECT_FALSE(out.inside);
}

TEST_F(ScannerTest, InsideScansSeeStrongerSignals) {
  math::Rng rng(3);
  double inside_mean = 0.0;
  double outside_mean = 0.0;
  int inside_n = 0;
  int outside_n = 0;
  for (int i = 0; i < 40; ++i) {
    const ScanRecord in = scanner_->Scan(
        {rng.Uniform(1.0, env_.fence_width() - 1.0),
         rng.Uniform(1.0, env_.fence_height() - 1.0)},
        0, i, rng);
    for (const Reading& r : in.readings) {
      inside_mean += r.rss_dbm;
      ++inside_n;
    }
    const ScanRecord out =
        scanner_->Scan({env_.fence_width() + 15.0, -15.0}, 0, i, rng);
    for (const Reading& r : out.readings) {
      outside_mean += r.rss_dbm;
      ++outside_n;
    }
  }
  ASSERT_GT(inside_n, 0);
  ASSERT_GT(outside_n, 0);
  // Far outside, fewer + weaker signals from the home cluster.
  EXPECT_GT(inside_mean / inside_n, outside_mean / outside_n);
  EXPECT_GT(inside_n, outside_n);
}

TEST_F(ScannerTest, TransientMacsAreUnique) {
  TimeOfDayProfile profile;
  profile.transient_macs_per_scan = 3.0;
  scanner_->SetTimeOfDayProfile(profile);
  math::Rng rng(4);
  std::set<std::string> transient;
  int total_transient = 0;
  for (int i = 0; i < 30; ++i) {
    const ScanRecord record = scanner_->Scan({2, 2}, 0, i, rng);
    for (const Reading& r : record.readings) {
      if (r.mac.rfind("transient:", 0) == 0) {
        transient.insert(r.mac);
        ++total_transient;
      }
    }
  }
  EXPECT_GT(total_transient, 0);
  EXPECT_EQ(static_cast<int>(transient.size()), total_transient);
}

TEST_F(ScannerTest, BusyProfileIncreasesVariance) {
  math::Rng rng1(5);
  math::Rng rng2(5);
  Scanner quiet(&env_, model_.get());
  quiet.SetTimeOfDayProfile(ProfileAt9Pm());
  Scanner busy(&env_, model_.get());
  busy.SetTimeOfDayProfile(ProfileAt4Pm());

  auto rss_stddev = [&](const Scanner& scanner, math::Rng& rng) {
    std::vector<double> values;
    for (int i = 0; i < 200; ++i) {
      const ScanRecord record = scanner.Scan({3, 3}, 0, i, rng);
      for (const Reading& r : record.readings) {
        if (r.mac.rfind("transient:", 0) != 0) values.push_back(r.rss_dbm);
      }
    }
    return math::StdDev(values);
  };
  EXPECT_GT(rss_stddev(busy, rng2), rss_stddev(quiet, rng1));
}

TEST_F(ScannerTest, MeanOffsetShiftsRss) {
  math::Rng rng1(6);
  math::Rng rng2(6);
  TimeOfDayProfile shifted;
  shifted.mean_offset_db = -10.0;
  Scanner base(&env_, model_.get());
  Scanner shifted_scanner(&env_, model_.get());
  shifted_scanner.SetTimeOfDayProfile(shifted);

  // Track one strong AP: comparing means over *all detected* readings
  // would be confounded by the detection threshold dropping weak APs
  // (survivor bias raises the mean).
  const std::string target = env_.access_points().front().mac;
  auto mean_rss = [&](const Scanner& scanner, math::Rng& rng) {
    double sum = 0.0;
    int n = 0;
    for (int i = 0; i < 200; ++i) {
      const ScanRecord record = scanner.Scan({3, 3}, 0, i, rng);
      for (const Reading& r : record.readings) {
        if (r.mac == target) {
          sum += r.rss_dbm;
          ++n;
        }
      }
    }
    return n > 0 ? sum / n : 0.0;
  };
  EXPECT_LT(mean_rss(shifted_scanner, rng2), mean_rss(base, rng1) - 7.0);
}

}  // namespace
}  // namespace gem::rf

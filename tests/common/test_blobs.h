#ifndef GEM_TESTS_COMMON_TEST_BLOBS_H_
#define GEM_TESTS_COMMON_TEST_BLOBS_H_

#include <vector>

#include "math/rng.h"
#include "math/vec.h"

// Shared detector fixtures (see tests/CMakeLists.txt: every suite
// links gem_test_common). Lives in gem::testing so any gem::* test
// namespace reaches it as `testing::`.
namespace gem::testing {

/// Normal data: a bimodal blob (two Gaussian clusters), mimicking the
/// multimodal in-premises embedding distribution the paper motivates.
inline std::vector<gem::math::Vec> BimodalNormal(int n, int dim,
                                                 uint64_t seed) {
  gem::math::Rng rng(seed);
  std::vector<gem::math::Vec> data;
  data.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double center = i % 2 == 0 ? -1.0 : 1.0;
    gem::math::Vec x(dim);
    for (int k = 0; k < dim; ++k) x[k] = rng.Normal(center, 0.15);
    data.push_back(std::move(x));
  }
  return data;
}

/// Points far from both modes (clear outliers).
inline std::vector<gem::math::Vec> FarOutliers(int n, int dim,
                                               uint64_t seed) {
  gem::math::Rng rng(seed);
  std::vector<gem::math::Vec> data;
  for (int i = 0; i < n; ++i) {
    gem::math::Vec x(dim);
    for (int k = 0; k < dim; ++k) x[k] = rng.Normal(5.0, 0.3);
    data.push_back(std::move(x));
  }
  return data;
}

/// Fresh inliers drawn from the same bimodal distribution.
inline std::vector<gem::math::Vec> FreshInliers(int n, int dim,
                                                uint64_t seed) {
  return BimodalNormal(n, dim, seed ^ 0xF00DULL);
}

/// Fraction of samples the detector flags as outliers.
template <typename Detector>
double OutlierRate(const Detector& detector,
                   const std::vector<gem::math::Vec>& samples) {
  int flagged = 0;
  for (const auto& x : samples) flagged += detector.IsOutlier(x) ? 1 : 0;
  return static_cast<double>(flagged) / samples.size();
}

}  // namespace gem::testing

#endif  // GEM_TESTS_COMMON_TEST_BLOBS_H_

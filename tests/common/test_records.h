#ifndef GEM_TESTS_COMMON_TEST_RECORDS_H_
#define GEM_TESTS_COMMON_TEST_RECORDS_H_

#include <string>
#include <vector>

#include "math/rng.h"
#include "rf/types.h"

// Shared scan-record fixtures (see tests/CMakeLists.txt: every suite
// links gem_test_common). Lives in gem::testing so any gem::* test
// namespace reaches it as `testing::`.
namespace gem::testing {

/// Two synthetic "rooms": room A records sense MACs a0..a4 strongly and
/// a couple of shared MACs weakly; room B symmetrical with b0..b4. A
/// good embedder separates the two clusters.
struct TwoClusterData {
  std::vector<rf::ScanRecord> records;  // first half A, second half B
  int per_cluster;
};

inline rf::ScanRecord NoisyRecord(const std::vector<std::string>& strong,
                                  const std::vector<std::string>& weak,
                                  gem::math::Rng& rng) {
  rf::ScanRecord record;
  for (const std::string& mac : strong) {
    if (rng.Bernoulli(0.9)) {
      record.readings.push_back(
          rf::Reading{mac, rng.Normal(-50.0, 3.0), rf::Band::k2_4GHz});
    }
  }
  for (const std::string& mac : weak) {
    if (rng.Bernoulli(0.5)) {
      record.readings.push_back(
          rf::Reading{mac, rng.Normal(-85.0, 3.0), rf::Band::k2_4GHz});
    }
  }
  return record;
}

inline TwoClusterData MakeTwoClusters(int per_cluster, uint64_t seed) {
  gem::math::Rng rng(seed);
  std::vector<std::string> a{"a0", "a1", "a2", "a3", "a4"};
  std::vector<std::string> b{"b0", "b1", "b2", "b3", "b4"};
  std::vector<std::string> shared{"s0", "s1"};

  TwoClusterData data;
  data.per_cluster = per_cluster;
  std::vector<std::string> a_weak = shared;
  a_weak.push_back("b0");  // faint cross-talk keeps the graph connected
  std::vector<std::string> b_weak = shared;
  b_weak.push_back("a0");
  for (int i = 0; i < per_cluster; ++i) {
    data.records.push_back(NoisyRecord(a, a_weak, rng));
  }
  for (int i = 0; i < per_cluster; ++i) {
    data.records.push_back(NoisyRecord(b, b_weak, rng));
  }
  return data;
}

/// Mean intra-cluster vs inter-cluster embedding distance ratio;
/// smaller is better separation.
inline double SeparationRatio(const std::vector<gem::math::Vec>& embeddings,
                              int per_cluster) {
  double intra = 0.0;
  double inter = 0.0;
  int n_intra = 0;
  int n_inter = 0;
  const int n = static_cast<int>(embeddings.size());
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const bool same = (i < per_cluster) == (j < per_cluster);
      const double d = gem::math::Distance(embeddings[i], embeddings[j]);
      if (same) {
        intra += d;
        ++n_intra;
      } else {
        inter += d;
        ++n_inter;
      }
    }
  }
  return (intra / n_intra) / (inter / n_inter + 1e-12);
}

}  // namespace gem::testing

#endif  // GEM_TESTS_COMMON_TEST_RECORDS_H_

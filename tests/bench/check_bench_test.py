#!/usr/bin/env python3
"""Unit test of bench/check_bench.py — the CI perf-regression gate.

Run directly (registered in ctest as check_bench_test):

    python3 tests/bench/check_bench_test.py [path/to/check_bench.py]

The one guarantee that matters most: a synthetically 2x-slower metric
MUST make the checker exit non-zero (the gate actually gates).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECKER = (sys.argv.pop(1) if len(sys.argv) > 1 else
           os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "bench", "check_bench.py"))

SERVE = {"workload": "serve_latency", "requests": 400,
         "p50_ms": 2.0, "p99_ms": 5.0, "mean_ms": 2.2}
TRAIN = {"workload": "fig9_train", "train_records": 1000,
         "results": [{"threads": 1, "train_seconds": 4.0,
                      "infer_batch_seconds": 1.0},
                     {"threads": 4, "train_seconds": 1.5,
                      "infer_batch_seconds": 0.4}]}
# A --trace_out run: results entries additionally carry a per-stage
# attribution array. Stage rows are warn-only in the gate.
TRAIN_STAGED = json.loads(json.dumps(TRAIN))
TRAIN_STAGED["results"][0]["stages"] = [
    {"stage": "bisage.gradient", "count": 100,
     "inclusive_seconds": 3.0, "exclusive_seconds": 2.8},
    {"stage": "bisage.reduce", "count": 100,
     "inclusive_seconds": 0.5, "exclusive_seconds": 0.5}]
KERNELS = {"workload": "kernels", "active_backend": "avx2",
           "results": [{"kernel": "dot", "dim": 128, "backend": "scalar",
                        "ns_per_op": 60.0},
                       {"kernel": "dot", "dim": 128, "backend": "avx2",
                        "ns_per_op": 21.0}]}


class CheckBenchTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.base_dir = os.path.join(self._tmp.name, "baselines")
        self.cur_dir = os.path.join(self._tmp.name, "current")
        os.makedirs(self.base_dir)
        os.makedirs(self.cur_dir)

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, directory, name, payload):
        with open(os.path.join(directory, name), "w",
                  encoding="utf-8") as f:
            if isinstance(payload, str):
                f.write(payload)
            else:
                json.dump(payload, f)

    def run_checker(self, *extra):
        return subprocess.run(
            [sys.executable, CHECKER, "--baseline-dir", self.base_dir,
             "--current-dir", self.cur_dir, *extra],
            capture_output=True, text=True)

    def seed_all(self):
        for name, payload in (("BENCH_serve.json", SERVE),
                              ("BENCH_train.json", TRAIN),
                              ("BENCH_kernels.json", KERNELS)):
            self.write(self.base_dir, name, payload)
            self.write(self.cur_dir, name, payload)

    def test_identical_passes(self):
        self.seed_all()
        result = self.run_checker()
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("OK: 0 regression(s)", result.stdout)

    def test_two_x_slower_fails(self):
        # The acceptance-criteria case: a 2x wall-time regression in any
        # gated metric must fail the gate.
        self.seed_all()
        slower = json.loads(json.dumps(SERVE))
        slower["p50_ms"] = SERVE["p50_ms"] * 2.0
        self.write(self.cur_dir, "BENCH_serve.json", slower)
        result = self.run_checker()
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("FAIL", result.stdout)
        self.assertIn("p50_ms", result.stdout)

    def test_two_x_slower_kernel_entry_fails(self):
        self.seed_all()
        slower = json.loads(json.dumps(KERNELS))
        slower["results"][1]["ns_per_op"] *= 2.0
        self.write(self.cur_dir, "BENCH_kernels.json", slower)
        result = self.run_checker()
        self.assertEqual(result.returncode, 1)
        self.assertIn("kernel=dot", result.stdout)
        self.assertIn("backend=avx2", result.stdout)

    def test_fifteen_pct_warns_but_passes(self):
        self.seed_all()
        warmish = json.loads(json.dumps(TRAIN))
        warmish["results"][0]["train_seconds"] *= 1.15
        self.write(self.cur_dir, "BENCH_train.json", warmish)
        result = self.run_checker()
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("WARN", result.stdout)
        self.assertIn("train_seconds", result.stdout)

    def test_p99_is_warn_only(self):
        self.seed_all()
        noisy = json.loads(json.dumps(SERVE))
        noisy["p99_ms"] = SERVE["p99_ms"] * 3.0
        self.write(self.cur_dir, "BENCH_serve.json", noisy)
        result = self.run_checker()
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("WARN", result.stdout)
        self.assertIn("p99_ms", result.stdout)

    def test_faster_passes(self):
        self.seed_all()
        faster = json.loads(json.dumps(SERVE))
        faster["p50_ms"] = SERVE["p50_ms"] / 3.0
        self.write(self.cur_dir, "BENCH_serve.json", faster)
        result = self.run_checker()
        self.assertEqual(result.returncode, 0)

    def test_reordered_list_entries_still_align(self):
        self.seed_all()
        reordered = json.loads(json.dumps(TRAIN))
        reordered["results"].reverse()
        self.write(self.cur_dir, "BENCH_train.json", reordered)
        result = self.run_checker()
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("OK: 0 regression(s)", result.stdout)

    def test_metric_missing_from_current_fails(self):
        self.seed_all()
        partial = json.loads(json.dumps(SERVE))
        del partial["p50_ms"]
        self.write(self.cur_dir, "BENCH_serve.json", partial)
        result = self.run_checker()
        self.assertEqual(result.returncode, 1)
        self.assertIn("missing from current run", result.stdout)

    def test_missing_current_file_is_an_error(self):
        self.seed_all()
        os.remove(os.path.join(self.cur_dir, "BENCH_serve.json"))
        result = self.run_checker()
        self.assertEqual(result.returncode, 2)

    def test_malformed_current_json_is_an_error(self):
        self.seed_all()
        self.write(self.cur_dir, "BENCH_serve.json", "{not json")
        result = self.run_checker()
        self.assertEqual(result.returncode, 2)

    def test_empty_baseline_dir_is_an_error(self):
        result = self.run_checker()
        self.assertEqual(result.returncode, 2)

    def test_new_metric_in_current_is_reported_not_gated(self):
        self.seed_all()
        extended = json.loads(json.dumps(SERVE))
        extended["p90_ms"] = 3.0
        self.write(self.cur_dir, "BENCH_serve.json", extended)
        result = self.run_checker()
        self.assertEqual(result.returncode, 0)
        self.assertIn("NEW", result.stdout)

    def test_new_stage_keys_are_reported_not_gated(self):
        # An old baseline (no stages) against a current run that emits
        # per-stage attribution: the new keys must not fail the gate.
        self.seed_all()
        self.write(self.cur_dir, "BENCH_train.json", TRAIN_STAGED)
        result = self.run_checker("BENCH_train.json")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("NEW", result.stdout)
        self.assertIn("stage=bisage.gradient", result.stdout)

    def test_stage_regression_warns_but_passes(self):
        # Once stages ARE baselined, a 2x-slower stage only warns: stage
        # exclusive times are too scheduler-noisy to gate merges on.
        self.write(self.base_dir, "BENCH_train.json", TRAIN_STAGED)
        slower = json.loads(json.dumps(TRAIN_STAGED))
        slower["results"][0]["stages"][0]["exclusive_seconds"] *= 2.0
        self.write(self.cur_dir, "BENCH_train.json", slower)
        result = self.run_checker("BENCH_train.json")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("WARN", result.stdout)
        self.assertIn("exclusive_seconds", result.stdout)

    def test_baselined_stage_missing_warns_but_passes(self):
        # Renamed/removed instrumentation: a stage disappearing from the
        # current run warns instead of failing (stage names track the
        # code, not the perf contract).
        self.write(self.base_dir, "BENCH_train.json", TRAIN_STAGED)
        fewer = json.loads(json.dumps(TRAIN_STAGED))
        del fewer["results"][0]["stages"][1]
        self.write(self.cur_dir, "BENCH_train.json", fewer)
        result = self.run_checker("BENCH_train.json")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("missing from current run", result.stdout)
        self.assertIn("WARN", result.stdout)

    def test_top_level_regression_still_fails_with_stages_present(self):
        # The stage rows must not blanket the whole file in warn-only:
        # the end-to-end train_seconds gate still fails hard.
        self.write(self.base_dir, "BENCH_train.json", TRAIN_STAGED)
        slower = json.loads(json.dumps(TRAIN_STAGED))
        slower["results"][0]["train_seconds"] *= 2.0
        self.write(self.cur_dir, "BENCH_train.json", slower)
        result = self.run_checker("BENCH_train.json")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("FAIL", result.stdout)
        self.assertIn("train_seconds", result.stdout)

    def test_explicit_name_list_restricts_comparison(self):
        self.seed_all()
        slower = json.loads(json.dumps(SERVE))
        slower["p50_ms"] = SERVE["p50_ms"] * 2.0
        self.write(self.cur_dir, "BENCH_serve.json", slower)
        result = self.run_checker("BENCH_train.json")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)

#include "base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace gem {
namespace {

TEST(StaticChunkRangeTest, PartitionsWithoutGapsOrOverlap) {
  for (long n : {0L, 1L, 7L, 100L}) {
    for (long chunks : {1L, 3L, 8L}) {
      long covered = 0;
      long previous_end = 0;
      long max_size = 0;
      long min_size = n + 1;
      for (long c = 0; c < chunks; ++c) {
        const auto [begin, end] = StaticChunkRange(n, chunks, c);
        EXPECT_EQ(begin, previous_end) << "n=" << n << " chunks=" << chunks;
        EXPECT_LE(begin, end);
        covered += end - begin;
        previous_end = end;
        max_size = std::max(max_size, end - begin);
        min_size = std::min(min_size, end - begin);
      }
      EXPECT_EQ(previous_end, n);
      EXPECT_EQ(covered, n);
      EXPECT_LE(max_size - min_size, 1) << "n=" << n << " chunks=" << chunks;
    }
  }
}

TEST(StaticChunkRangeTest, EarlierChunksGetTheRemainder) {
  // 10 over 4 chunks: 3,3,2,2.
  EXPECT_EQ(StaticChunkRange(10, 4, 0), (std::pair<long, long>{0, 3}));
  EXPECT_EQ(StaticChunkRange(10, 4, 1), (std::pair<long, long>{3, 6}));
  EXPECT_EQ(StaticChunkRange(10, 4, 2), (std::pair<long, long>{6, 8}));
  EXPECT_EQ(StaticChunkRange(10, 4, 3), (std::pair<long, long>{8, 10}));
}

TEST(ThreadPoolOptionsTest, Validate) {
  EXPECT_TRUE(ThreadPoolOptions{1}.Validate().ok());
  EXPECT_TRUE(ThreadPoolOptions{8}.Validate().ok());
  EXPECT_TRUE(ThreadPoolOptions{ThreadPoolOptions::kMaxThreads}.Validate().ok());
  EXPECT_EQ(ThreadPoolOptions{0}.Validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ThreadPoolOptions{-3}.Validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ThreadPoolOptions{ThreadPoolOptions::kMaxThreads + 1}
                .Validate()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ThreadPoolTest, CreateRejectsBadSizes) {
  EXPECT_EQ(ThreadPool::Create(ThreadPoolOptions{0}).code(),
            StatusCode::kInvalidArgument);
  auto pool = ThreadPool::Create(ThreadPoolOptions{3});
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ((*pool)->num_threads(), 3);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  int chunks_seen = 0;
  pool.ParallelFor(100, [&](int chunk, long begin, long end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(chunk, 0);
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 100);
    ++chunks_seen;
  });
  EXPECT_EQ(chunks_seen, 1);

  bool ran = false;
  pool.Submit([&] {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, ParallelForCoversEveryElement) {
  ThreadPool pool(4);
  const long n = 10000;
  std::vector<long> out(n, 0);
  pool.ParallelFor(n, [&](int /*chunk*/, long begin, long end) {
    for (long i = begin; i < end; ++i) out[i] = 2 * i + 1;
  });
  for (long i = 0; i < n; ++i) ASSERT_EQ(out[i], 2 * i + 1) << i;
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](int, long, long) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForChunkedHonorsChunkCount) {
  ThreadPool pool(2);
  const long n = 12;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelForChunked(n, n, [&](int chunk, long begin, long end) {
    // One element per chunk, chunk index == element index.
    EXPECT_EQ(begin, chunk);
    EXPECT_EQ(end, chunk + 1);
    hits[begin].fetch_add(1);
  });
  for (long i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsAreIndependent) {
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr long kN = 2000;
  std::vector<long> sums(kCallers, 0);
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&pool, &sums, t] {
      std::vector<long> partial(64, 0);
      pool.ParallelForChunked(kN, 8, [&](int chunk, long begin, long end) {
        for (long i = begin; i < end; ++i) partial[chunk] += i + t;
      });
      sums[t] = std::accumulate(partial.begin(), partial.end(), 0L);
    });
  }
  for (std::thread& caller : callers) caller.join();
  const long base = kN * (kN - 1) / 2;
  for (int t = 0; t < kCallers; ++t) EXPECT_EQ(sums[t], base + t * kN);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingWork) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        completed.fetch_add(1);
      });
    }
    pool.Shutdown();  // must run all 64, not drop the queued tail
    EXPECT_EQ(completed.load(), 64);
    pool.Shutdown();  // idempotent
  }
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPoolTest, SubmitAfterShutdownRunsInline) {
  ThreadPool pool(2);
  pool.Shutdown();
  const std::thread::id caller = std::this_thread::get_id();
  bool ran = false;
  pool.Submit([&] {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, DestructionWithQueuedWorkCompletesEverything) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 128; ++i) {
      pool.Submit([&completed] { completed.fetch_add(1); });
    }
  }  // ~ThreadPool drains then joins
  EXPECT_EQ(completed.load(), 128);
}

}  // namespace
}  // namespace gem

#include "base/status.h"

#include <gtest/gtest.h>

#include "base/statusor.h"

namespace gem {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad bins");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad bins");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad bins");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NOT_FOUND: x");
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FAILED_PRECONDITION: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OUT_OF_RANGE: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "INTERNAL: x");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
  EXPECT_EQ(result.code(), StatusCode::kOk);
}

TEST(StatusOrTest, HoldsStatus) {
  StatusOr<int> result(Status::NotFound("gone"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "gone");
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  ASSERT_TRUE(result.ok());
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StatusOrTest, ValueOrFallsBack) {
  EXPECT_EQ(StatusOr<int>(7).value_or(-1), 7);
  EXPECT_EQ(StatusOr<int>(Status::Internal("boom")).value_or(-1), -1);
}

TEST(StatusOrTest, ArrowReachesMembers) {
  StatusOr<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

TEST(StatusOrTest, ImplicitConversionsAtReturn) {
  auto make = [](bool good) -> StatusOr<double> {
    if (good) return 1.5;
    return Status::Internal("boom");
  };
  EXPECT_TRUE(make(true).ok());
  EXPECT_DOUBLE_EQ(make(true).value(), 1.5);
  EXPECT_FALSE(make(false).ok());
}

TEST(StatusOrTest, ResultAliasStillCompiles) {
  // Result<T> is the historical name, kept as an alias during the
  // StatusOr migration.
  Result<int> result(3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 3);
}

}  // namespace
}  // namespace gem

#include "detect/hbos.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "tests/common/test_blobs.h"

namespace gem::detect {
namespace {

using testing::BimodalNormal;
using testing::FarOutliers;
using testing::FreshInliers;
using testing::OutlierRate;

TEST(HistogramModelTest, RejectsBadInput) {
  HistogramModel model;
  EXPECT_FALSE(model.Fit({}, 10).ok());
  EXPECT_FALSE(model.Fit({{1.0}}, 0).ok());
}

TEST(HistogramModelTest, ScoresDenseBinsLower) {
  HistogramModel model;
  // Dimension 0: forty values at ~0, one at 1 (sparse tail bin).
  std::vector<math::Vec> data;
  for (int i = 0; i < 40; ++i) data.push_back({0.01 * i / 40.0});
  data.push_back({1.0});
  ASSERT_TRUE(model.Fit(data, 10).ok());
  EXPECT_LT(model.RawScore({0.005}), model.RawScore({0.95}));
}

TEST(HistogramModelTest, OutOfRangeScoresAsEmptyBin) {
  HistogramModel model;
  ASSERT_TRUE(model.Fit(BimodalNormal(100, 2, 1), 10).ok());
  // Far outside the fitted range must be at least as anomalous as the
  // rarest in-range bin.
  const double far = model.RawScore({100.0, 100.0});
  const double in = model.RawScore({1.0, 1.0});
  EXPECT_GT(far, in);
}

TEST(HistogramModelTest, AddShiftsDensity) {
  HistogramModel model;
  ASSERT_TRUE(model.Fit(BimodalNormal(100, 2, 2), 10).ok());
  const math::Vec probe{1.0, 1.0};
  const double before = model.RawScore(probe);
  for (int i = 0; i < 50; ++i) model.Add(probe);
  EXPECT_LT(model.RawScore(probe), before);
  EXPECT_EQ(model.samples(), 150);
}

TEST(HbosDetectorTest, SeparatesBlobsFromOutliers) {
  HbosDetector detector;
  ASSERT_TRUE(detector.Fit(BimodalNormal(200, 4, 3)).ok());
  EXPECT_GE(OutlierRate(detector, FarOutliers(50, 4, 3)), 0.95);
  EXPECT_LE(OutlierRate(detector, FreshInliers(100, 4, 3)), 0.35);
}

TEST(HbosDetectorTest, ContaminationControlsTrainFlagRate) {
  HbosOptions options;
  options.contamination = 0.2;
  HbosDetector detector(options);
  const auto train = BimodalNormal(200, 4, 4);
  ASSERT_TRUE(detector.Fit(train).ok());
  // About 20% of training data scores above the threshold.
  EXPECT_NEAR(OutlierRate(detector, train), 0.2, 0.08);
}

TEST(EnhancedHbosDetectorTest, ScoreIsBoundedAndMonotone) {
  EnhancedHbosDetector detector;
  ASSERT_TRUE(detector.Fit(BimodalNormal(200, 4, 5)).ok());
  const auto outliers = FarOutliers(20, 4, 5);
  const auto inliers = FreshInliers(20, 4, 5);
  for (const auto& x : outliers) {
    // Far outliers saturate to ~1 (the softmax can hit 1.0 exactly in
    // double precision); the score never leaves [0, 1].
    const double s = detector.Score(x);
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  // Every outlier scores above every inlier mean-wise.
  double s_out = 0.0;
  double s_in = 0.0;
  for (const auto& x : outliers) s_out += detector.Score(x);
  for (const auto& x : inliers) s_in += detector.Score(x);
  EXPECT_GT(s_out / outliers.size(), s_in / inliers.size());
}

TEST(EnhancedHbosDetectorTest, SoftmaxSharpensSeparation) {
  // The enhanced score pushes normal scores toward 0 and abnormal
  // toward 1 (the paper's Figure 8 rationale).
  EnhancedHbosDetector detector;
  ASSERT_TRUE(detector.Fit(BimodalNormal(200, 4, 6)).ok());
  const auto inliers = FreshInliers(50, 4, 6);
  double mean_in = 0.0;
  for (const auto& x : inliers) mean_in += detector.Score(x);
  mean_in /= inliers.size();

  const auto outliers = FarOutliers(50, 4, 6);
  double mean_out = 0.0;
  for (const auto& x : outliers) mean_out += detector.Score(x);
  mean_out /= outliers.size();

  EXPECT_LT(mean_in, 0.35);
  EXPECT_GT(mean_out, 0.9);
  EXPECT_GT(mean_out - mean_in, 0.6);
}

TEST(EnhancedHbosDetectorTest, DetectsInOut) {
  EnhancedHbosDetector detector;
  ASSERT_TRUE(detector.Fit(BimodalNormal(200, 4, 7)).ok());
  EXPECT_GE(OutlierRate(detector, FarOutliers(50, 4, 7)), 0.98);
  EXPECT_LE(OutlierRate(detector, FreshInliers(100, 4, 7)), 0.2);
}

TEST(EnhancedHbosDetectorTest, UpdatesOnlyOnConfidentNormals) {
  EnhancedHbosDetector detector;
  ASSERT_TRUE(detector.Fit(BimodalNormal(200, 4, 8)).ok());
  // A clear outlier is never absorbed.
  EXPECT_FALSE(detector.MaybeUpdate(FarOutliers(1, 4, 8)[0]));
  // A clear inlier is absorbed.
  bool any_update = false;
  for (const auto& x : FreshInliers(20, 4, 8)) {
    any_update |= detector.MaybeUpdate(x);
  }
  EXPECT_TRUE(any_update);
}

TEST(EnhancedHbosDetectorTest, AbsorbedSamplesDensifyTheirRegion) {
  // The update contract of Section V-B: once a confident normal
  // sample is absorbed, its neighborhood becomes denser, so repeated
  // observations there score monotonically no higher. (The F-score
  // improvement of Figure 9(b) is an integration-level property
  // exercised by the fig9 bench.)
  math::Rng rng(9);
  std::vector<math::Vec> train;
  for (int i = 0; i < 100; ++i) {
    train.push_back({rng.Normal(-1.0, 0.15), rng.Normal(-1.0, 0.15)});
  }
  EnhancedHbosOptions options;
  options.temperature = 0.5;  // keep S_T off its saturation plateaus
  options.tau_lower = 0.45;
  options.tau_upper = 0.6;
  EnhancedHbosDetector detector(options);
  ASSERT_TRUE(detector.Fit(train).ok());

  // A confident in-distribution location.
  const math::Vec spot{-1.0, -1.0};
  ASSERT_LT(detector.Score(spot), options.tau_lower);
  const double before = detector.Score(spot);
  int updates = 0;
  for (int i = 0; i < 100; ++i) {
    updates += detector.MaybeUpdate(spot) ? 1 : 0;
  }
  EXPECT_EQ(updates, 100);
  EXPECT_LE(detector.Score(spot), before);
}

TEST(EnhancedHbosDetectorTest, ResistsOutwardDrift) {
  // Section VII: a "bad actor" drifting slowly outward must not drag
  // the model with them — once samples leave the learned support the
  // update gate closes and the far region stays anomalous.
  math::Rng rng(10);
  std::vector<math::Vec> train;
  for (int i = 0; i < 150; ++i) {
    train.push_back({rng.Normal(-1.0, 0.15), rng.Normal(-1.0, 0.15)});
  }
  EnhancedHbosDetector detector;  // paper defaults: T=0.06, strict taus
  ASSERT_TRUE(detector.Fit(train).ok());

  for (int i = 0; i < 400; ++i) {
    const double c = -1.0 + 3.0 * (i / 400.0);  // drift far outside
    detector.MaybeUpdate({rng.Normal(c, 0.1), rng.Normal(c, 0.1)});
  }
  // The drift endpoint is still a clear outlier.
  EXPECT_TRUE(detector.IsOutlier({2.0, 2.0}));
}

TEST(HistogramModelTest, RetentionCapBoundsBuffer) {
  const auto data = BimodalNormal(100, 2, 11);
  HistogramModel model;
  ASSERT_TRUE(model.Fit(data, 10, /*max_retained=*/40).ok());
  EXPECT_EQ(model.samples(), 100);
  EXPECT_EQ(model.data().size(), 40u);
  for (int i = 0; i < 500; ++i) model.Add(data[i % data.size()]);
  EXPECT_EQ(model.samples(), 600);
  EXPECT_EQ(model.data().size(), 40u);  // never grows past the cap
}

TEST(HistogramModelTest, DefaultRetainsEverything) {
  const auto data = BimodalNormal(100, 2, 12);
  HistogramModel model;
  ASSERT_TRUE(model.Fit(data, 10).ok());
  for (int i = 0; i < 50; ++i) model.Add(data[i]);
  EXPECT_EQ(model.data().size(), 150u);
  EXPECT_EQ(model.samples(), 150);
}

TEST(HistogramModelTest, CapAboveStreamSizeMatchesUnlimited) {
  const auto data = BimodalNormal(80, 2, 13);
  HistogramModel unlimited;
  HistogramModel capped;
  ASSERT_TRUE(unlimited.Fit(data, 10).ok());
  ASSERT_TRUE(capped.Fit(data, 10, /*max_retained=*/10000).ok());
  for (const auto& x : FreshInliers(30, 2, 13)) {
    unlimited.Add(x);
    capped.Add(x);
  }
  // The reservoir only kicks in past the cap; under it, behavior —
  // including range-expanding recounts — is identical.
  for (const auto& x : BimodalNormal(20, 2, 14)) {
    EXPECT_DOUBLE_EQ(unlimited.RawScore(x), capped.RawScore(x));
  }
}

TEST(HistogramModelTest, ReservoirIsDeterministic) {
  const auto data = BimodalNormal(100, 2, 15);
  HistogramModel a;
  HistogramModel b;
  ASSERT_TRUE(a.Fit(data, 10, /*max_retained=*/25).ok());
  ASSERT_TRUE(b.Fit(data, 10, /*max_retained=*/25).ok());
  for (int i = 0; i < 300; ++i) {
    a.Add(data[i % data.size()]);
    b.Add(data[i % data.size()]);
  }
  ASSERT_EQ(a.data().size(), b.data().size());
  for (size_t i = 0; i < a.data().size(); ++i) {
    for (size_t j = 0; j < a.data()[i].size(); ++j) {
      EXPECT_DOUBLE_EQ(a.data()[i][j], b.data()[i][j]);
    }
  }
  for (const auto& x : BimodalNormal(20, 2, 16)) {
    EXPECT_DOUBLE_EQ(a.RawScore(x), b.RawScore(x));
  }
}

TEST(HistogramModelTest, CappedRecountKeepsMassInvariant) {
  // A range-expanding Add rebuilds from the reservoir scaled back up to
  // samples(); the histogram's total mass must stay samples() per
  // dimension, capped or not.
  const auto data = BimodalNormal(100, 2, 17);
  HistogramModel model;
  ASSERT_TRUE(model.Fit(data, 10, /*max_retained=*/30).ok());
  model.Add({100.0, -100.0});  // far out of range: forces the recount
  EXPECT_EQ(model.samples(), 101);
  // Rare regions still score as rare after the scaled rebuild.
  EXPECT_GT(model.RawScore({90.0, -90.0}), model.RawScore(data[0]));
}

TEST(HistogramModelTest, EvictionCounterTicks) {
  auto& evicted = gem::obs::MetricsRegistry::Get().GetCounter(
      "gem_hbos_evicted_total");
  const uint64_t before = evicted.value();
  const auto data = BimodalNormal(50, 2, 18);
  HistogramModel model;
  ASSERT_TRUE(model.Fit(data, 10, /*max_retained=*/10).ok());
  for (int i = 0; i < 100; ++i) model.Add(data[i % data.size()]);
  // 50 - 10 drops during Fit plus 100 capped Adds = 140 evictions.
  EXPECT_EQ(evicted.value() - before, 140u);
}

TEST(EnhancedHbosDetectorTest, RetentionCapFlowsThrough) {
  EnhancedHbosOptions options;
  options.max_retained_samples = 60;
  EnhancedHbosDetector detector(options);
  ASSERT_TRUE(detector.Fit(BimodalNormal(200, 4, 19)).ok());
  EXPECT_EQ(detector.model().samples(), 200);
  EXPECT_EQ(detector.model().data().size(), 60u);
  EXPECT_EQ(detector.model().max_retained(), 60);
  // The bounded detector still detects.
  EXPECT_GE(OutlierRate(detector, FarOutliers(50, 4, 19)), 0.95);
}

TEST(EnhancedHbosDetectorTest, ValidatesOptions) {
  EnhancedHbosOptions options;
  options.tau_lower = 0.5;
  options.tau_upper = 0.1;
  EXPECT_DEATH(EnhancedHbosDetector detector(options), "tau_lower");
}

}  // namespace
}  // namespace gem::detect

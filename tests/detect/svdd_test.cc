#include "detect/svdd.h"

#include <gtest/gtest.h>

#include "tests/common/test_blobs.h"

namespace gem::detect {
namespace {

using testing::BimodalNormal;
using testing::FarOutliers;
using testing::FreshInliers;
using testing::OutlierRate;

TEST(SvddTest, RejectsTinyTraining) {
  SvddDetector svdd;
  EXPECT_FALSE(svdd.Fit({{1.0}}).ok());
}

TEST(SvddTest, SeparatesBlobFromOutliers) {
  SvddDetector svdd;
  ASSERT_TRUE(svdd.Fit(BimodalNormal(150, 3, 1)).ok());
  EXPECT_GE(OutlierRate(svdd, FarOutliers(40, 3, 1)), 0.95);
  EXPECT_LE(OutlierRate(svdd, FreshInliers(80, 3, 1)), 0.4);
}

TEST(SvddTest, AlphaRespectsNu) {
  // With nu = 0.1, roughly 10% of the training points may fall outside
  // the sphere; the decision must not flag dramatically more.
  SvddOptions options;
  options.nu = 0.1;
  SvddDetector svdd(options);
  const auto train = BimodalNormal(150, 3, 2);
  ASSERT_TRUE(svdd.Fit(train).ok());
  EXPECT_LE(OutlierRate(svdd, train), 0.3);
}

TEST(SvddTest, RadiusIsPositive) {
  SvddDetector svdd;
  ASSERT_TRUE(svdd.Fit(BimodalNormal(100, 3, 3)).ok());
  EXPECT_GT(svdd.radius_squared(), 0.0);
}

TEST(SvddTest, SupportVectorsAreSparse) {
  SvddDetector svdd;
  ASSERT_TRUE(svdd.Fit(BimodalNormal(200, 3, 4)).ok());
  EXPECT_LT(svdd.num_support_vectors(), 200);
  EXPECT_GT(svdd.num_support_vectors(), 0);
}

TEST(SvddTest, ScoreIncreasesWithDistance) {
  SvddDetector svdd;
  ASSERT_TRUE(svdd.Fit(BimodalNormal(150, 2, 5)).ok());
  double prev = svdd.Score({0.0, 0.0});
  for (double r = 2.0; r <= 6.0; r += 1.0) {
    const double s = svdd.Score({r, r});
    EXPECT_GE(s, prev - 1e-9);
    prev = s;
  }
}

TEST(SvddTest, ExplicitGammaRespected) {
  SvddOptions options;
  options.gamma = 0.5;
  SvddDetector svdd(options);
  ASSERT_TRUE(svdd.Fit(BimodalNormal(100, 2, 6)).ok());
  EXPECT_GE(OutlierRate(svdd, FarOutliers(20, 2, 6)), 0.9);
}

}  // namespace
}  // namespace gem::detect

#include "detect/iforest.h"

#include <gtest/gtest.h>

#include "tests/common/test_blobs.h"

namespace gem::detect {
namespace {

using testing::BimodalNormal;
using testing::FarOutliers;
using testing::FreshInliers;
using testing::OutlierRate;

TEST(IsolationForestTest, RejectsEmptyTraining) {
  IsolationForest forest;
  EXPECT_FALSE(forest.Fit({}).ok());
}

TEST(IsolationForestTest, SeparatesBlobsFromOutliers) {
  IsolationForest forest;
  ASSERT_TRUE(forest.Fit(BimodalNormal(300, 4, 1)).ok());
  EXPECT_GE(OutlierRate(forest, FarOutliers(50, 4, 1)), 0.95);
  EXPECT_LE(OutlierRate(forest, FreshInliers(100, 4, 1)), 0.35);
}

TEST(IsolationForestTest, OutliersScoreHigher) {
  IsolationForest forest;
  ASSERT_TRUE(forest.Fit(BimodalNormal(300, 4, 2)).ok());
  double s_out = 0.0;
  double s_in = 0.0;
  const auto outliers = FarOutliers(30, 4, 2);
  const auto inliers = FreshInliers(30, 4, 2);
  for (const auto& x : outliers) s_out += forest.Score(x);
  for (const auto& x : inliers) s_in += forest.Score(x);
  EXPECT_GT(s_out / outliers.size(), s_in / inliers.size() + 0.1);
}

TEST(IsolationForestTest, ScoreInUnitRange) {
  IsolationForest forest;
  ASSERT_TRUE(forest.Fit(BimodalNormal(100, 3, 3)).ok());
  for (const auto& x : FarOutliers(10, 3, 3)) {
    const double s = forest.Score(x);
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(IsolationForestTest, DeterministicForSeed) {
  const auto train = BimodalNormal(100, 3, 4);
  IsolationForest a;
  IsolationForest b;
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  const auto probes = FarOutliers(5, 3, 4);
  for (const auto& x : probes) {
    EXPECT_DOUBLE_EQ(a.Score(x), b.Score(x));
  }
}

TEST(IsolationForestTest, HandlesDuplicatePoints) {
  // All-identical training data must not crash or loop; the forest
  // degenerates to single-leaf trees where every query path length is
  // c(psi), i.e. a constant score of 0.5.
  std::vector<math::Vec> dup(50, math::Vec{1.0, 2.0});
  IsolationForest forest;
  ASSERT_TRUE(forest.Fit(dup).ok());
  EXPECT_DOUBLE_EQ(forest.Score({50.0, 50.0}), 0.5);
  EXPECT_DOUBLE_EQ(forest.Score({1.0, 2.0}), 0.5);
}

TEST(IsolationForestTest, SubsampleSmallerThanData) {
  IForestOptions options;
  options.subsample = 32;
  options.num_trees = 50;
  IsolationForest forest(options);
  ASSERT_TRUE(forest.Fit(BimodalNormal(500, 4, 5)).ok());
  EXPECT_GE(OutlierRate(forest, FarOutliers(30, 4, 5)), 0.9);
}

}  // namespace
}  // namespace gem::detect

#include "detect/feature_bagging.h"

#include <gtest/gtest.h>

#include "tests/common/test_blobs.h"

namespace gem::detect {
namespace {

using testing::BimodalNormal;
using testing::FarOutliers;
using testing::FreshInliers;
using testing::OutlierRate;

TEST(FeatureBaggingTest, RejectsBadInput) {
  FeatureBagging fb;
  EXPECT_FALSE(fb.Fit({}).ok());
  EXPECT_FALSE(fb.Fit({{1.0}, {2.0}, {3.0}, {4.0}}).ok());  // 1-D
}

TEST(FeatureBaggingTest, UsesRequestedRounds) {
  FeatureBaggingOptions options;
  options.rounds = 5;
  FeatureBagging fb(options);
  ASSERT_TRUE(fb.Fit(BimodalNormal(100, 6, 1)).ok());
  EXPECT_EQ(fb.rounds_used(), 5);
}

TEST(FeatureBaggingTest, SeparatesBlobsFromOutliers) {
  FeatureBagging fb;
  ASSERT_TRUE(fb.Fit(BimodalNormal(200, 6, 2)).ok());
  EXPECT_GE(OutlierRate(fb, FarOutliers(50, 6, 2)), 0.95);
  EXPECT_LE(OutlierRate(fb, FreshInliers(100, 6, 2)), 0.35);
}

TEST(FeatureBaggingTest, ScoreIsCumulative) {
  // Combined score is approximately rounds x per-round LOF scale.
  FeatureBaggingOptions options;
  options.rounds = 10;
  FeatureBagging fb(options);
  ASSERT_TRUE(fb.Fit(BimodalNormal(200, 6, 3)).ok());
  const auto inliers = FreshInliers(20, 6, 3);
  double mean = 0.0;
  for (const auto& x : inliers) mean += fb.Score(x);
  mean /= inliers.size();
  EXPECT_NEAR(mean, 10.0, 4.0);
}

TEST(FeatureBaggingTest, DeterministicForSeed) {
  const auto train = BimodalNormal(100, 5, 4);
  FeatureBagging a;
  FeatureBagging b;
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  const auto probe = FarOutliers(1, 5, 4)[0];
  EXPECT_DOUBLE_EQ(a.Score(probe), b.Score(probe));
}

}  // namespace
}  // namespace gem::detect

#include "detect/lof.h"

#include <gtest/gtest.h>

#include "tests/common/test_blobs.h"

namespace gem::detect {
namespace {

using testing::BimodalNormal;
using testing::FarOutliers;
using testing::FreshInliers;
using testing::OutlierRate;

TEST(LofDetectorTest, RejectsTinyTraining) {
  LofDetector lof;
  EXPECT_FALSE(lof.Fit({{1.0}, {2.0}}).ok());
}

TEST(LofDetectorTest, InlierScoresNearOne) {
  LofDetector lof;
  ASSERT_TRUE(lof.Fit(BimodalNormal(200, 4, 1)).ok());
  double mean = 0.0;
  const auto inliers = FreshInliers(50, 4, 1);
  for (const auto& x : inliers) mean += lof.Score(x);
  mean /= inliers.size();
  EXPECT_NEAR(mean, 1.0, 0.3);
}

TEST(LofDetectorTest, OutliersScoreWellAboveOne) {
  LofDetector lof;
  ASSERT_TRUE(lof.Fit(BimodalNormal(200, 4, 2)).ok());
  for (const auto& x : FarOutliers(20, 4, 2)) {
    EXPECT_GT(lof.Score(x), 1.5);
  }
}

TEST(LofDetectorTest, SeparatesBlobsFromOutliers) {
  LofDetector lof;
  ASSERT_TRUE(lof.Fit(BimodalNormal(200, 4, 3)).ok());
  EXPECT_GE(OutlierRate(lof, FarOutliers(50, 4, 3)), 0.95);
  EXPECT_LE(OutlierRate(lof, FreshInliers(100, 4, 3)), 0.35);
}

TEST(LofDetectorTest, KLargerThanDataIsClamped) {
  LofOptions options;
  options.k = 100;
  LofDetector lof(options);
  ASSERT_TRUE(lof.Fit(BimodalNormal(20, 3, 4)).ok());
  EXPECT_GT(lof.Score(FarOutliers(1, 3, 4)[0]), 1.0);
}

TEST(LofDetectorTest, LocalDensityMatters) {
  // A point at the edge of a tight cluster is more outlying than a
  // point inside a loose cluster at the same absolute distance.
  math::Rng rng(5);
  std::vector<math::Vec> data;
  for (int i = 0; i < 100; ++i) {
    data.push_back({rng.Normal(0.0, 0.05), rng.Normal(0.0, 0.05)});  // tight
    data.push_back({rng.Normal(5.0, 1.0), rng.Normal(5.0, 1.0)});    // loose
  }
  LofDetector lof;
  ASSERT_TRUE(lof.Fit(data).ok());
  EXPECT_GT(lof.Score({0.8, 0.8}), lof.Score({5.8, 5.8}));
}

}  // namespace
}  // namespace gem::detect

// Tests of BiSAGE's ablation switch and robustness-oriented inference
// rules (singleton-MAC and post-training-MAC filtering).

#include <gtest/gtest.h>

#include "embed/bisage.h"
#include "math/vec.h"
#include "tests/common/test_records.h"

namespace gem::embed {
namespace {

using testing::MakeTwoClusters;
using testing::SeparationRatio;

BiSageConfig FastConfig() {
  BiSageConfig config;
  config.dimension = 16;
  config.epochs = 3;
  config.seed = 3;
  return config;
}

TEST(BiSageAblationTest, UniformSamplingStillTrains) {
  const auto data = MakeTwoClusters(15, 1);
  BiSageConfig config = FastConfig();
  config.use_edge_weights = false;
  BiSageEmbedder embedder(config);
  ASSERT_TRUE(embedder.Fit(data.records).ok());
  for (int i = 0; i < embedder.num_train(); ++i) {
    EXPECT_NEAR(math::Norm2(embedder.TrainEmbedding(i)), 1.0, 1e-9);
  }
  // Still separates the (strongly weight-distinct) clusters somewhat.
  std::vector<math::Vec> embeddings;
  for (int i = 0; i < embedder.num_train(); ++i) {
    embeddings.push_back(embedder.TrainEmbedding(i));
  }
  EXPECT_LT(SeparationRatio(embeddings, data.per_cluster), 1.0);
}

TEST(BiSageAblationTest, UniformAndWeightedDiffer) {
  const auto data = MakeTwoClusters(12, 2);
  BiSageConfig weighted = FastConfig();
  BiSageConfig uniform = FastConfig();
  uniform.use_edge_weights = false;
  BiSageEmbedder a(weighted);
  BiSageEmbedder b(uniform);
  ASSERT_TRUE(a.Fit(data.records).ok());
  ASSERT_TRUE(b.Fit(data.records).ok());
  // Same seeds, but the sampling/aggregation semantics differ, so the
  // learned embeddings must differ.
  double total_distance = 0.0;
  for (int i = 0; i < a.num_train(); ++i) {
    total_distance += math::Distance(a.TrainEmbedding(i),
                                     b.TrainEmbedding(i));
  }
  EXPECT_GT(total_distance, 0.1);
}

TEST(BiSageAblationTest, SingletonMacsDoNotPerturbEmbeddings) {
  // Two copies of a record, one with an extra never-repeating MAC:
  // the singleton filter must make their embeddings identical.
  const auto data = MakeTwoClusters(15, 4);
  BiSageEmbedder embedder(FastConfig());
  ASSERT_TRUE(embedder.Fit(data.records).ok());

  math::Rng rng(8);
  rf::ScanRecord clean =
      testing::NoisyRecord({"a0", "a1", "a2", "a3", "a4"}, {}, rng);
  rf::ScanRecord noisy = clean;
  noisy.readings.push_back(
      rf::Reading{"one-shot-phone", -85.0, rf::Band::k2_4GHz});

  BiSageEmbedder fresh(FastConfig());
  ASSERT_TRUE(fresh.Fit(data.records).ok());
  const auto e_clean = embedder.EmbedNew(clean);
  const auto e_noisy = fresh.EmbedNew(noisy);
  ASSERT_TRUE(e_clean.ok());
  ASSERT_TRUE(e_noisy.ok());
  for (size_t k = 0; k < e_clean->size(); ++k) {
    EXPECT_DOUBLE_EQ((*e_clean)[k], (*e_noisy)[k]) << "dim " << k;
  }
}

TEST(BiSageAblationTest, PostTrainingMacsExcludedFromAggregation) {
  // A brand-new AP that keeps recurring after training must not change
  // the embedding of records that also contain trained MACs.
  const auto data = MakeTwoClusters(15, 5);
  BiSageEmbedder with_new(FastConfig());
  BiSageEmbedder without_new(FastConfig());
  ASSERT_TRUE(with_new.Fit(data.records).ok());
  ASSERT_TRUE(without_new.Fit(data.records).ok());

  math::Rng rng(9);
  // Seed the "new AP" into the with_new graph twice so it passes the
  // degree filter.
  for (int i = 0; i < 2; ++i) {
    rf::ScanRecord seeder = testing::NoisyRecord({"a0", "a1"}, {}, rng);
    seeder.readings.push_back(
        rf::Reading{"new-ap", -55.0, rf::Band::k2_4GHz});
    (void)with_new.EmbedNew(seeder);
    // Keep graphs aligned: the control sees the same records minus the
    // new AP.
    rf::ScanRecord control = seeder;
    control.readings.pop_back();
    (void)without_new.EmbedNew(control);
  }

  rf::ScanRecord probe = testing::NoisyRecord({"a0", "a1", "a2"}, {}, rng);
  rf::ScanRecord probe_with_new_ap = probe;
  probe_with_new_ap.readings.push_back(
      rf::Reading{"new-ap", -50.0, rf::Band::k2_4GHz});

  const auto e1 = with_new.EmbedNew(probe_with_new_ap);
  const auto e2 = without_new.EmbedNew(probe);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  for (size_t k = 0; k < e1->size(); ++k) {
    EXPECT_DOUBLE_EQ((*e1)[k], (*e2)[k]) << "dim " << k;
  }
}

}  // namespace
}  // namespace gem::embed

#include "embed/bisage.h"

#include <gtest/gtest.h>

#include "math/vec.h"
#include "tests/common/test_records.h"

namespace gem::embed {
namespace {

using testing::MakeTwoClusters;
using testing::SeparationRatio;

BiSageConfig FastConfig() {
  BiSageConfig config;
  config.dimension = 16;
  config.epochs = 3;
  config.seed = 3;
  return config;
}

TEST(BiSageTest, RejectsEmptyGraph) {
  BiSage model(FastConfig());
  graph::BipartiteGraph graph;
  EXPECT_FALSE(model.Train(graph).ok());
}

TEST(BiSageTest, EmbeddingsAreUnitNorm) {
  const auto data = MakeTwoClusters(15, 1);
  BiSageEmbedder embedder(FastConfig());
  ASSERT_TRUE(embedder.Fit(data.records).ok());
  for (int i = 0; i < embedder.num_train(); ++i) {
    EXPECT_NEAR(math::Norm2(embedder.TrainEmbedding(i)), 1.0, 1e-9);
  }
}

TEST(BiSageTest, TrainingReducesLoss) {
  const auto data = MakeTwoClusters(15, 2);
  graph::BipartiteGraph graph;
  for (const auto& record : data.records) graph.AddRecord(record);

  BiSageConfig one_epoch = FastConfig();
  one_epoch.epochs = 1;
  BiSage short_model(one_epoch);
  ASSERT_TRUE(short_model.Train(graph).ok());

  BiSageConfig many_epochs = FastConfig();
  many_epochs.epochs = 8;
  BiSage long_model(many_epochs);
  ASSERT_TRUE(long_model.Train(graph).ok());

  EXPECT_LT(long_model.last_epoch_loss(), short_model.last_epoch_loss());
}

TEST(BiSageTest, SeparatesClusters) {
  const auto data = MakeTwoClusters(20, 3);
  BiSageConfig config = FastConfig();
  config.epochs = 6;
  BiSageEmbedder embedder(config);
  ASSERT_TRUE(embedder.Fit(data.records).ok());

  std::vector<math::Vec> embeddings;
  for (int i = 0; i < embedder.num_train(); ++i) {
    embeddings.push_back(embedder.TrainEmbedding(i));
  }
  EXPECT_LT(SeparationRatio(embeddings, data.per_cluster), 0.8);
}

TEST(BiSageTest, DeterministicEmbeddings) {
  const auto data = MakeTwoClusters(10, 4);
  BiSageEmbedder a(FastConfig());
  BiSageEmbedder b(FastConfig());
  ASSERT_TRUE(a.Fit(data.records).ok());
  ASSERT_TRUE(b.Fit(data.records).ok());
  for (int i = 0; i < a.num_train(); ++i) {
    const math::Vec ea = a.TrainEmbedding(i);
    const math::Vec eb = b.TrainEmbedding(i);
    for (size_t k = 0; k < ea.size(); ++k) {
      EXPECT_DOUBLE_EQ(ea[k], eb[k]);
    }
  }
  // Repeated queries on the same model agree too.
  const math::Vec e1 = a.TrainEmbedding(0);
  const math::Vec e2 = a.TrainEmbedding(0);
  for (size_t k = 0; k < e1.size(); ++k) EXPECT_DOUBLE_EQ(e1[k], e2[k]);
}

TEST(BiSageTest, InductiveEmbeddingLandsNearItsCluster) {
  const auto data = MakeTwoClusters(20, 5);
  BiSageConfig config = FastConfig();
  config.epochs = 6;
  BiSageEmbedder embedder(config);
  ASSERT_TRUE(embedder.Fit(data.records).ok());

  // A fresh record from cluster A (never seen in training).
  math::Rng rng(99);
  const rf::ScanRecord fresh = testing::NoisyRecord(
      {"a0", "a1", "a2", "a3", "a4"}, {"s0"}, rng);
  const auto embedding = embedder.EmbedNew(fresh);
  ASSERT_TRUE(embedding.ok());

  double dist_a = 0.0;
  double dist_b = 0.0;
  for (int i = 0; i < data.per_cluster; ++i) {
    dist_a += math::Distance(*embedding, embedder.TrainEmbedding(i));
    dist_b += math::Distance(
        *embedding, embedder.TrainEmbedding(data.per_cluster + i));
  }
  EXPECT_LT(dist_a, dist_b);
}

TEST(BiSageTest, UnknownMacsOnlyRecordIsUnembeddable) {
  const auto data = MakeTwoClusters(10, 6);
  BiSageEmbedder embedder(FastConfig());
  ASSERT_TRUE(embedder.Fit(data.records).ok());

  rf::ScanRecord alien;
  alien.readings.push_back(rf::Reading{"never-seen-1", -60.0,
                                       rf::Band::k2_4GHz});
  alien.readings.push_back(rf::Reading{"never-seen-2", -70.0,
                                       rf::Band::k2_4GHz});
  EXPECT_FALSE(embedder.EmbedNew(alien).ok());

  // Its MACs are now known (the record joined the graph), so a second
  // record sharing them becomes embeddable.
  rf::ScanRecord follower;
  follower.readings.push_back(rf::Reading{"never-seen-1", -62.0,
                                          rf::Band::k2_4GHz});
  EXPECT_TRUE(embedder.EmbedNew(follower).ok());
}

TEST(BiSageTest, AuxiliaryDiffersFromPrimary) {
  const auto data = MakeTwoClusters(10, 7);
  graph::BipartiteGraph graph;
  for (const auto& record : data.records) graph.AddRecord(record);
  BiSage model(FastConfig());
  ASSERT_TRUE(model.Train(graph).ok());
  const math::Vec h = model.PrimaryEmbedding(graph, 0);
  const math::Vec l = model.AuxiliaryEmbedding(graph, 0);
  EXPECT_GT(math::Distance(h, l), 1e-3);
}

TEST(BiSageTest, ConfigValidation) {
  BiSageConfig config;
  config.fanouts = {5};  // must match num_layers = 2
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);

  // Construction soft-fails: the model is inert and Train reports the
  // validation error instead of crashing.
  BiSage model(config);
  EXPECT_EQ(model.config_status().code(), StatusCode::kInvalidArgument);
  graph::BipartiteGraph graph;
  EXPECT_EQ(model.Train(graph).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gem::embed

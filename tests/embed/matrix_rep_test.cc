#include "embed/matrix_rep.h"

#include <gtest/gtest.h>

namespace gem::embed {
namespace {

rf::ScanRecord MakeRecord(std::vector<std::pair<std::string, double>> pairs) {
  rf::ScanRecord record;
  for (auto& [mac, rss] : pairs) {
    record.readings.push_back(rf::Reading{mac, rss, rf::Band::k2_4GHz});
  }
  return record;
}

TEST(MacVocabularyTest, BuildFirstSeenOrder) {
  MacVocabulary vocab;
  vocab.Build({MakeRecord({{"a", -50}, {"b", -60}}),
               MakeRecord({{"b", -55}, {"c", -65}})});
  EXPECT_EQ(vocab.size(), 3);
  EXPECT_EQ(vocab.IndexOf("a").value(), 0);
  EXPECT_EQ(vocab.IndexOf("c").value(), 2);
  EXPECT_FALSE(vocab.IndexOf("z").has_value());
}

TEST(MacVocabularyTest, ToDensePadsAndDrops) {
  MacVocabulary vocab;
  vocab.Build({MakeRecord({{"a", -50}, {"b", -60}})});
  const math::Vec dense =
      vocab.ToDense(MakeRecord({{"a", -45}, {"z", -30}}), -120.0);
  ASSERT_EQ(dense.size(), 2u);
  EXPECT_DOUBLE_EQ(dense[0], -45.0);   // known MAC keeps its RSS
  EXPECT_DOUBLE_EQ(dense[1], -120.0);  // missing -> pad; "z" dropped
}

TEST(MacVocabularyTest, NormalizedInUnitRange) {
  MacVocabulary vocab;
  vocab.Build({MakeRecord({{"a", -50}, {"b", -60}})});
  const math::Vec v =
      vocab.ToDenseNormalized(MakeRecord({{"a", -20}, {"b", -120}}));
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST(MacVocabularyTest, CountKnownMacs) {
  MacVocabulary vocab;
  vocab.Build({MakeRecord({{"a", -50}})});
  EXPECT_EQ(vocab.CountKnownMacs(MakeRecord({{"a", -40}, {"z", -50}})), 1);
  EXPECT_EQ(vocab.CountKnownMacs(MakeRecord({{"z", -50}})), 0);
}

TEST(RawVectorEmbedderTest, FitAndEmbed) {
  RawVectorEmbedder embedder;
  ASSERT_TRUE(embedder
                  .Fit({MakeRecord({{"a", -50}, {"b", -60}}),
                        MakeRecord({{"b", -55}, {"c", -65}})})
                  .ok());
  EXPECT_EQ(embedder.dimension(), 3);
  EXPECT_EQ(embedder.num_train(), 2);
  EXPECT_EQ(embedder.TrainEmbedding(0).size(), 3u);

  const auto e = embedder.EmbedNew(MakeRecord({{"c", -40}}));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->size(), 3u);

  EXPECT_FALSE(embedder.EmbedNew(MakeRecord({{"zz", -40}})).ok());
}

TEST(RawVectorEmbedderTest, RejectsEmptyTraining) {
  RawVectorEmbedder embedder;
  EXPECT_FALSE(embedder.Fit({}).ok());
  EXPECT_FALSE(embedder.Fit({rf::ScanRecord{}}).ok());
}

}  // namespace
}  // namespace gem::embed

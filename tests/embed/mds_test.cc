#include "embed/mds.h"

#include <gtest/gtest.h>

#include "math/vec.h"
#include "tests/common/test_records.h"

namespace gem::embed {
namespace {

using testing::MakeTwoClusters;
using testing::SeparationRatio;

TEST(MdsTest, RejectsTinyTraining) {
  MdsEmbedder embedder;
  EXPECT_FALSE(embedder.Fit({}).ok());
  EXPECT_FALSE(embedder.Fit({rf::ScanRecord{}}).ok());
}

TEST(MdsTest, EmbeddingDistancesApproximateInputDistances) {
  // Classical MDS on exact Euclidean-embeddable data reproduces the
  // configuration up to rotation; with cosine distances on clustered
  // data the ordering of distances must be preserved.
  const auto data = MakeTwoClusters(15, 1);
  MdsConfig config;
  config.components = 8;
  MdsEmbedder embedder(config);
  ASSERT_TRUE(embedder.Fit(data.records).ok());

  std::vector<math::Vec> embeddings;
  for (int i = 0; i < embedder.num_train(); ++i) {
    embeddings.push_back(embedder.TrainEmbedding(i));
  }
  EXPECT_LT(SeparationRatio(embeddings, data.per_cluster), 0.9);
}

TEST(MdsTest, ComponentCapRespected) {
  const auto data = MakeTwoClusters(10, 2);
  MdsConfig config;
  config.components = 5;
  MdsEmbedder embedder(config);
  ASSERT_TRUE(embedder.Fit(data.records).ok());
  EXPECT_LE(embedder.dimension(), 5);
  EXPECT_GT(embedder.dimension(), 0);
}

TEST(MdsTest, NystromProjectionConsistentWithTraining) {
  // Re-embedding an exact copy of a training record must land close to
  // that record's training embedding.
  const auto data = MakeTwoClusters(15, 3);
  MdsEmbedder embedder;
  ASSERT_TRUE(embedder.Fit(data.records).ok());

  const auto projected = embedder.EmbedNew(data.records[4]);
  ASSERT_TRUE(projected.ok());
  const math::Vec original = embedder.TrainEmbedding(4);

  double min_other = 1e18;
  for (int i = 0; i < embedder.num_train(); ++i) {
    if (i == 4) continue;
    min_other = std::min(
        min_other, math::Distance(*projected, embedder.TrainEmbedding(i)));
  }
  EXPECT_LT(math::Distance(*projected, original), min_other + 1e-9);
}

TEST(MdsTest, UnknownOnlyRecordUnembeddable) {
  const auto data = MakeTwoClusters(10, 4);
  MdsEmbedder embedder;
  ASSERT_TRUE(embedder.Fit(data.records).ok());
  rf::ScanRecord alien;
  alien.readings.push_back(rf::Reading{"xyz", -60.0, rf::Band::k2_4GHz});
  EXPECT_FALSE(embedder.EmbedNew(alien).ok());
}

}  // namespace
}  // namespace gem::embed

#include "embed/graphsage.h"

#include <gtest/gtest.h>

#include "math/vec.h"
#include "tests/common/test_records.h"

namespace gem::embed {
namespace {

using testing::MakeTwoClusters;
using testing::SeparationRatio;

GraphSageConfig FastConfig() {
  GraphSageConfig config;
  config.dimension = 16;
  config.epochs = 3;
  config.seed = 5;
  return config;
}

TEST(GraphSageTest, RejectsEmptyGraph) {
  GraphSage model(FastConfig());
  graph::BipartiteGraph graph;
  EXPECT_FALSE(model.Train(graph).ok());
}

TEST(GraphSageTest, EmbeddingsAreUnitNorm) {
  const auto data = MakeTwoClusters(12, 1);
  GraphSageEmbedder embedder(FastConfig());
  ASSERT_TRUE(embedder.Fit(data.records).ok());
  for (int i = 0; i < embedder.num_train(); ++i) {
    EXPECT_NEAR(math::Norm2(embedder.TrainEmbedding(i)), 1.0, 1e-9);
  }
}

TEST(GraphSageTest, TrainingReducesLoss) {
  const auto data = MakeTwoClusters(12, 2);
  graph::BipartiteGraph graph;
  for (const auto& record : data.records) graph.AddRecord(record);

  GraphSageConfig one = FastConfig();
  one.epochs = 1;
  GraphSage short_model(one);
  ASSERT_TRUE(short_model.Train(graph).ok());

  GraphSageConfig many = FastConfig();
  many.epochs = 8;
  GraphSage long_model(many);
  ASSERT_TRUE(long_model.Train(graph).ok());
  EXPECT_LT(long_model.last_epoch_loss(), short_model.last_epoch_loss());
}

TEST(GraphSageTest, SeparatesClustersSomewhat) {
  const auto data = MakeTwoClusters(20, 3);
  GraphSageConfig config = FastConfig();
  config.epochs = 6;
  GraphSageEmbedder embedder(config);
  ASSERT_TRUE(embedder.Fit(data.records).ok());
  std::vector<math::Vec> embeddings;
  for (int i = 0; i < embedder.num_train(); ++i) {
    embeddings.push_back(embedder.TrainEmbedding(i));
  }
  EXPECT_LT(SeparationRatio(embeddings, data.per_cluster), 1.0);
}

TEST(GraphSageTest, InductiveEmbedding) {
  const auto data = MakeTwoClusters(12, 4);
  GraphSageEmbedder embedder(FastConfig());
  ASSERT_TRUE(embedder.Fit(data.records).ok());
  math::Rng rng(42);
  const auto e = embedder.EmbedNew(
      testing::NoisyRecord({"a0", "a1", "a2"}, {}, rng));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(static_cast<int>(e->size()), embedder.dimension());
}

TEST(GraphSageTest, UnknownOnlyRecordUnembeddable) {
  const auto data = MakeTwoClusters(12, 5);
  GraphSageEmbedder embedder(FastConfig());
  ASSERT_TRUE(embedder.Fit(data.records).ok());
  rf::ScanRecord alien;
  alien.readings.push_back(rf::Reading{"xyz", -60.0, rf::Band::k2_4GHz});
  EXPECT_FALSE(embedder.EmbedNew(alien).ok());
}

}  // namespace
}  // namespace gem::embed

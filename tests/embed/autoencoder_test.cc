#include "embed/autoencoder.h"

#include <gtest/gtest.h>

#include "math/vec.h"
#include "tests/common/test_records.h"

namespace gem::embed {
namespace {

using testing::MakeTwoClusters;
using testing::SeparationRatio;

AutoencoderConfig FastConfig() {
  AutoencoderConfig config;
  config.hidden = 32;
  config.bottleneck = 8;
  config.epochs = 40;
  config.seed = 3;
  return config;
}

TEST(AutoencoderTest, RejectsEmptyTraining) {
  AutoencoderEmbedder embedder(FastConfig());
  EXPECT_FALSE(embedder.Fit({}).ok());
}

TEST(AutoencoderTest, LearnsToReconstruct) {
  const auto data = MakeTwoClusters(20, 1);
  AutoencoderConfig few = FastConfig();
  few.epochs = 1;
  AutoencoderEmbedder short_run(few);
  ASSERT_TRUE(short_run.Fit(data.records).ok());

  AutoencoderEmbedder long_run(FastConfig());
  ASSERT_TRUE(long_run.Fit(data.records).ok());
  EXPECT_LT(long_run.final_loss(), short_run.final_loss());
}

TEST(AutoencoderTest, EmbeddingDimensionIsBottleneck) {
  const auto data = MakeTwoClusters(10, 2);
  AutoencoderEmbedder embedder(FastConfig());
  ASSERT_TRUE(embedder.Fit(data.records).ok());
  EXPECT_EQ(embedder.dimension(), 8);
  EXPECT_EQ(embedder.TrainEmbedding(0).size(), 8u);
}

TEST(AutoencoderTest, SeparatesClusters) {
  const auto data = MakeTwoClusters(20, 3);
  AutoencoderEmbedder embedder(FastConfig());
  ASSERT_TRUE(embedder.Fit(data.records).ok());
  std::vector<math::Vec> embeddings;
  for (int i = 0; i < embedder.num_train(); ++i) {
    embeddings.push_back(embedder.TrainEmbedding(i));
  }
  EXPECT_LT(SeparationRatio(embeddings, data.per_cluster), 0.9);
}

TEST(AutoencoderTest, DeterministicForSeed) {
  const auto data = MakeTwoClusters(10, 4);
  AutoencoderEmbedder a(FastConfig());
  AutoencoderEmbedder b(FastConfig());
  ASSERT_TRUE(a.Fit(data.records).ok());
  ASSERT_TRUE(b.Fit(data.records).ok());
  const math::Vec ea = a.TrainEmbedding(3);
  const math::Vec eb = b.TrainEmbedding(3);
  for (size_t k = 0; k < ea.size(); ++k) EXPECT_DOUBLE_EQ(ea[k], eb[k]);
}

TEST(AutoencoderTest, EmbedNewMatchesTrainPath) {
  const auto data = MakeTwoClusters(10, 5);
  AutoencoderEmbedder embedder(FastConfig());
  ASSERT_TRUE(embedder.Fit(data.records).ok());
  // Embedding the exact training record again gives the same code.
  const auto e = embedder.EmbedNew(data.records[0]);
  ASSERT_TRUE(e.ok());
  const math::Vec t = embedder.TrainEmbedding(0);
  for (size_t k = 0; k < t.size(); ++k) EXPECT_DOUBLE_EQ((*e)[k], t[k]);
}

TEST(AutoencoderTest, UnknownOnlyRecordUnembeddable) {
  const auto data = MakeTwoClusters(10, 6);
  AutoencoderEmbedder embedder(FastConfig());
  ASSERT_TRUE(embedder.Fit(data.records).ok());
  rf::ScanRecord alien;
  alien.readings.push_back(rf::Reading{"xyz", -60.0, rf::Band::k2_4GHz});
  EXPECT_FALSE(embedder.EmbedNew(alien).ok());
}

}  // namespace
}  // namespace gem::embed

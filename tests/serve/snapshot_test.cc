#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/gem.h"
#include "rf/dataset.h"

namespace gem::serve {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

rf::Dataset SmallDataset(int user = 2, uint64_t seed = 77) {
  rf::DatasetOptions options;
  options.train_duration_s = 180.0;
  options.test_segments = 2;
  options.test_segment_duration_s = 60.0;
  options.seed = seed;
  return rf::GenerateScenarioDataset(rf::HomePreset(user), options);
}

core::GemConfig FastConfig() {
  core::GemConfig config;
  config.bisage.dimension = 8;
  config.bisage.epochs = 1;
  return config;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

TEST(SnapshotTest, UntrainedGemRefusesToSave) {
  core::Gem gem(FastConfig());
  const Status status = SaveSnapshot(TempPath("untrained.gem"), gem);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  const auto loaded = LoadSnapshot(TempPath("no_such_snapshot.gem"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// The acceptance bar for the format: across several randomized homes,
// a save -> load cycle yields a model whose Infer scores are
// BIT-identical to the original while both stream the same records —
// including the online self-enhancement path, which only stays in sync
// if graph, embedder, detector, AND the persisted RNG streams all
// round-tripped exactly.
TEST(SnapshotTest, RoundTripInferenceIsBitIdentical) {
  struct Home {
    int user;
    uint64_t seed;
  };
  const std::vector<Home> homes = {{0, 11}, {2, 77}, {5, 123}};
  for (const Home& home : homes) {
    SCOPED_TRACE("user " + std::to_string(home.user));
    const rf::Dataset data = SmallDataset(home.user, home.seed);
    core::Gem original(FastConfig());
    ASSERT_TRUE(original.Train(data.train).ok());

    const std::string path =
        TempPath("roundtrip_" + std::to_string(home.user) + ".gem");
    ASSERT_TRUE(SaveSnapshot(path, original).ok());
    auto loaded = LoadSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    int absorbed = 0;
    for (const rf::ScanRecord& record : data.test) {
      const core::InferenceResult a = original.Infer(record);
      const core::InferenceResult b = loaded.value().Infer(record);
      ASSERT_EQ(Bits(a.score), Bits(b.score));
      ASSERT_EQ(a.decision, b.decision);
      ASSERT_EQ(a.model_updated, b.model_updated);
      absorbed += a.model_updated ? 1 : 0;
    }
    // The sequences must have diverged IF state drifted — make sure the
    // self-enhancement path actually exercised mutation.
    EXPECT_GT(absorbed, 0);
  }
}

TEST(SnapshotTest, ReSaveAfterLoadIsIdenticalBytes) {
  const rf::Dataset data = SmallDataset();
  core::Gem gem(FastConfig());
  ASSERT_TRUE(gem.Train(data.train).ok());
  const std::string first = TempPath("resave_first.gem");
  const std::string second = TempPath("resave_second.gem");
  ASSERT_TRUE(SaveSnapshot(first, gem).ok());
  auto loaded = LoadSnapshot(first);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(SaveSnapshot(second, loaded.value()).ok());
  EXPECT_EQ(ReadFile(first), ReadFile(second));
}

TEST(SnapshotTest, TruncationAtAnyLengthFailsCleanly) {
  const rf::Dataset data = SmallDataset();
  core::Gem gem(FastConfig());
  ASSERT_TRUE(gem.Train(data.train).ok());
  const std::string path = TempPath("truncate_src.gem");
  ASSERT_TRUE(SaveSnapshot(path, gem).ok());
  const std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 64u);

  const std::string cut_path = TempPath("truncate_cut.gem");
  const std::vector<size_t> cuts = {0,  1,  7,  8,  11,
                                    15, 16, 20, bytes.size() / 2,
                                    bytes.size() - 1};
  for (const size_t cut : cuts) {
    SCOPED_TRACE("cut at " + std::to_string(cut));
    WriteFile(cut_path, bytes.substr(0, cut));
    const auto loaded = LoadSnapshot(cut_path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  }
}

TEST(SnapshotTest, AnyFlippedByteFailsCleanly) {
  const rf::Dataset data = SmallDataset();
  core::Gem gem(FastConfig());
  ASSERT_TRUE(gem.Train(data.train).ok());
  const std::string path = TempPath("corrupt_src.gem");
  ASSERT_TRUE(SaveSnapshot(path, gem).ok());
  const std::string bytes = ReadFile(path);

  // Every byte of the header region plus a stride over the payload:
  // every payload byte is CRC-covered, so any single flip must surface
  // as a clean error, never a crash or a silently different model.
  std::vector<size_t> offsets;
  for (size_t i = 0; i < 64 && i < bytes.size(); ++i) offsets.push_back(i);
  for (size_t i = 64; i < bytes.size(); i += 211) offsets.push_back(i);
  offsets.push_back(bytes.size() - 1);

  const std::string flip_path = TempPath("corrupt_flip.gem");
  for (const size_t offset : offsets) {
    SCOPED_TRACE("flip at " + std::to_string(offset));
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x40);
    WriteFile(flip_path, corrupt);
    const auto loaded = LoadSnapshot(flip_path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_TRUE(loaded.status().code() == StatusCode::kDataLoss ||
                loaded.status().code() == StatusCode::kInvalidArgument)
        << loaded.status().ToString();
  }
}

TEST(SnapshotTest, TrailingBytesRejected) {
  const rf::Dataset data = SmallDataset();
  core::Gem gem(FastConfig());
  ASSERT_TRUE(gem.Train(data.train).ok());
  const std::string path = TempPath("trailing.gem");
  ASSERT_TRUE(SaveSnapshot(path, gem).ok());
  WriteFile(path, ReadFile(path) + '\0');
  const auto loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotTest, FutureFormatVersionRejected) {
  const rf::Dataset data = SmallDataset();
  core::Gem gem(FastConfig());
  ASSERT_TRUE(gem.Train(data.train).ok());
  const std::string path = TempPath("future_version.gem");
  ASSERT_TRUE(SaveSnapshot(path, gem).ok());
  std::string bytes = ReadFile(path);
  // The u32 version sits right after the 8-byte magic (little-endian).
  const uint32_t future = kSnapshotFormatVersion + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[8 + i] = static_cast<char>((future >> (8 * i)) & 0xFF);
  }
  WriteFile(path, bytes);
  const auto loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, BadMagicRejected) {
  const std::string path = TempPath("bad_magic.gem");
  WriteFile(path, "NOTASNAP" + std::string(64, '\0'));
  const auto loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace gem::serve

#include "serve/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/gem.h"
#include "rf/dataset.h"
#include "serve/fence_registry.h"
#include "serve/snapshot.h"

namespace gem::serve {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

rf::Dataset SmallDataset(int user = 2, uint64_t seed = 77) {
  rf::DatasetOptions options;
  options.train_duration_s = 180.0;
  options.test_segments = 2;
  options.test_segment_duration_s = 60.0;
  options.seed = seed;
  return rf::GenerateScenarioDataset(rf::HomePreset(user), options);
}

core::GemConfig FastConfig() {
  core::GemConfig config;
  config.bisage.dimension = 8;
  config.bisage.epochs = 1;
  return config;
}

/// Trains once per process and snapshots; tests clone fences by
/// loading the snapshot (core::Gem itself is move-only).
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new rf::Dataset(SmallDataset());
    core::Gem gem(FastConfig());
    ASSERT_TRUE(gem.Train(dataset_->train).ok());
    snapshot_path_ = new std::string(TempPath("engine_test_model.gem"));
    ASSERT_TRUE(SaveSnapshot(*snapshot_path_, gem).ok());
  }

  static void TearDownTestSuite() {
    delete dataset_;
    delete snapshot_path_;
    dataset_ = nullptr;
    snapshot_path_ = nullptr;
  }

  static core::Gem LoadModel() {
    auto gem = LoadSnapshot(*snapshot_path_);
    EXPECT_TRUE(gem.ok()) << gem.status().ToString();
    return std::move(gem).value();
  }

  static rf::Dataset* dataset_;
  static std::string* snapshot_path_;
};

rf::Dataset* ServeTest::dataset_ = nullptr;
std::string* ServeTest::snapshot_path_ = nullptr;

TEST_F(ServeTest, RegistryInstallFindUnload) {
  FenceRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.Find("home_a"), nullptr);

  auto generation = registry.Install("home_a", LoadModel());
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(generation.value(), 1u);
  EXPECT_EQ(registry.size(), 1u);

  const std::shared_ptr<Fence> fence = registry.Find("home_a");
  ASSERT_NE(fence, nullptr);
  EXPECT_EQ(fence->id, "home_a");
  EXPECT_EQ(fence->generation, 1u);

  // Reinstall = live reload: generation bumps, old handle still valid.
  generation = registry.Install("home_a", LoadModel());
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(generation.value(), 2u);
  EXPECT_EQ(fence->generation, 1u);  // the pre-reload handle
  EXPECT_EQ(registry.Find("home_a")->generation, 2u);

  EXPECT_TRUE(registry.Unload("home_a").ok());
  EXPECT_EQ(registry.Find("home_a"), nullptr);
  EXPECT_EQ(registry.Unload("home_a").code(), StatusCode::kNotFound);
}

TEST_F(ServeTest, RegistryRejectsUntrainedAndEmptyId) {
  FenceRegistry registry;
  EXPECT_EQ(registry.Install("x", core::Gem(FastConfig())).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.Install("", LoadModel()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, RegistryFenceIdsSorted) {
  FenceRegistry registry;
  for (const char* id : {"zeta", "alpha", "mid"}) {
    ASSERT_TRUE(registry.Install(id, LoadModel()).ok());
  }
  EXPECT_EQ(registry.FenceIds(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST_F(ServeTest, UnknownFenceIsNotFound) {
  FenceRegistry registry;
  Engine engine(&registry);
  ServeRequest request;
  request.fence_id = "nope";
  request.record = dataset_->test.front();
  const ServeResponse response = engine.InferBlocking(std::move(request));
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
}

TEST_F(ServeTest, ServesMatchDirectInference) {
  FenceRegistry registry;
  ASSERT_TRUE(registry.Install("home", LoadModel()).ok());
  core::Gem reference = LoadModel();

  Engine engine(&registry, EngineOptions{/*num_threads=*/1});
  for (size_t i = 0; i < 20 && i < dataset_->test.size(); ++i) {
    ServeRequest request;
    request.fence_id = "home";
    request.record = dataset_->test[i];
    const ServeResponse response = engine.InferBlocking(std::move(request));
    ASSERT_TRUE(response.status.ok());
    const core::InferenceResult expected = reference.Infer(dataset_->test[i]);
    EXPECT_DOUBLE_EQ(response.result.score, expected.score);
    EXPECT_EQ(response.result.decision, expected.decision);
    EXPECT_EQ(response.fence_generation, 1u);
  }
}

// The acceptance scenario: >= 4 fences served concurrently, each
// fence's stream racing the self-enhancement updates it triggers, with
// a live reload happening mid-traffic. Run under TSan in CI.
TEST_F(ServeTest, ConcurrentFencesWithRacingUpdatesAndReload) {
  constexpr int kFences = 4;
  FenceRegistry registry;
  for (int i = 0; i < kFences; ++i) {
    ASSERT_TRUE(
        registry.Install("home_" + std::to_string(i), LoadModel()).ok());
  }

  Engine engine(&registry, EngineOptions{/*num_threads=*/4});
  std::atomic<int> ok_count{0};
  std::atomic<int> reloaded_generation_seen{0};
  std::vector<std::thread> clients;
  clients.reserve(kFences);
  for (int f = 0; f < kFences; ++f) {
    clients.emplace_back([&, f] {
      const std::string fence_id = "home_" + std::to_string(f);
      for (const rf::ScanRecord& record : dataset_->test) {
        ServeRequest request;
        request.fence_id = fence_id;
        request.record = record;
        ServeResponse response = engine.InferBlocking(request);
        while (response.status.code() == StatusCode::kUnavailable) {
          std::this_thread::yield();
          response = engine.InferBlocking(request);
        }
        ASSERT_TRUE(response.status.ok()) << response.status.ToString();
        ok_count.fetch_add(1);
        if (response.fence_generation > 1) {
          reloaded_generation_seen.fetch_add(1);
        }
      }
    });
  }

  // Live reload fence 0 while the clients are hammering it.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto generation =
      registry.InstallFromSnapshot("home_0", *snapshot_path_);
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(generation.value(), 2u);

  for (std::thread& client : clients) client.join();
  engine.Shutdown();
  EXPECT_EQ(ok_count.load(),
            kFences * static_cast<int>(dataset_->test.size()));
  // The reload lands early in the stream, so later home_0 requests must
  // observe generation 2.
  EXPECT_GT(reloaded_generation_seen.load(), 0);
}

TEST_F(ServeTest, BackpressureRejectsWhenQueueFull) {
  FenceRegistry registry;
  ASSERT_TRUE(registry.Install("home", LoadModel()).ok());

  EngineOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 2;
  Engine engine(&registry, options);

  // Stall the single worker by holding the fence's model mutex, then
  // saturate: 1 in-flight + 2 queued, everything after is shed.
  const std::shared_ptr<Fence> fence = registry.Find("home");
  std::atomic<int> completed{0};
  std::vector<Status> verdicts;
  {
    std::unique_lock stall(fence->mutex);
    // Wait until the worker has dequeued the first job (queue drains to
    // 0) so the subsequent submits deterministically fill the queue.
    ServeRequest first;
    first.fence_id = "home";
    first.record = dataset_->test.front();
    ASSERT_TRUE(engine
                    .Submit(first,
                            [&](ServeResponse) { completed.fetch_add(1); })
                    .ok());
    while (engine.queue_depth() != 0) std::this_thread::yield();

    for (int i = 0; i < 6; ++i) {
      ServeRequest request;
      request.fence_id = "home";
      request.record = dataset_->test.front();
      verdicts.push_back(engine.Submit(
          request, [&](ServeResponse) { completed.fetch_add(1); }));
    }
    int rejected = 0;
    for (const Status& verdict : verdicts) {
      if (verdict.code() == StatusCode::kUnavailable) ++rejected;
    }
    EXPECT_EQ(rejected, 4);  // queue holds 2, the rest bounce
  }
  engine.Shutdown();  // drains the 3 admitted jobs
  EXPECT_EQ(completed.load(), 3);
}

TEST_F(ServeTest, SubmitAfterShutdownFailsWithoutCallback) {
  FenceRegistry registry;
  ASSERT_TRUE(registry.Install("home", LoadModel()).ok());
  Engine engine(&registry);
  engine.Shutdown();
  engine.Shutdown();  // idempotent

  ServeRequest request;
  request.fence_id = "home";
  request.record = dataset_->test.front();
  bool callback_ran = false;
  const Status status = engine.Submit(
      std::move(request), [&](ServeResponse) { callback_ran = true; });
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(callback_ran);
}

TEST_F(ServeTest, UnloadDuringTrafficFinishesInFlight) {
  FenceRegistry registry;
  ASSERT_TRUE(registry.Install("home", LoadModel()).ok());
  Engine engine(&registry, EngineOptions{/*num_threads=*/2});

  std::atomic<int> ok_or_notfound{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        ServeRequest request;
        request.fence_id = "home";
        request.record = dataset_->test[i % dataset_->test.size()];
        ServeResponse response = engine.InferBlocking(request);
        while (response.status.code() == StatusCode::kUnavailable) {
          std::this_thread::yield();
          response = engine.InferBlocking(request);
        }
        // Every request either serves against the model it resolved or
        // cleanly reports the fence as gone — nothing crashes or hangs.
        ASSERT_TRUE(response.status.ok() ||
                    response.status.code() == StatusCode::kNotFound);
        ok_or_notfound.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(registry.Unload("home").ok());
  for (std::thread& client : clients) client.join();
  engine.Shutdown();
  EXPECT_EQ(ok_or_notfound.load(), 100);
}

TEST_F(ServeTest, InferBatchMatchesSequentialServes) {
  FenceRegistry registry;
  ASSERT_TRUE(registry.Install("batch", LoadModel()).ok());
  ASSERT_TRUE(registry.Install("serial", LoadModel()).ok());
  Engine engine(&registry, EngineOptions{2, 16});

  const std::vector<rf::ScanRecord> records(dataset_->test.begin(),
                                            dataset_->test.end());
  const BatchServeResponse batch = engine.InferBatch("batch", records);
  ASSERT_TRUE(batch.status.ok()) << batch.status.ToString();
  ASSERT_EQ(batch.results.size(), records.size());
  EXPECT_EQ(batch.fence_generation, 1u);

  // One-at-a-time serving against an identically seeded fence must see
  // the same scores: the batch path is an optimization, not a
  // semantics change.
  for (size_t i = 0; i < records.size(); ++i) {
    ServeRequest request;
    request.fence_id = "serial";
    request.record = records[i];
    const ServeResponse one = engine.InferBlocking(std::move(request));
    ASSERT_TRUE(one.status.ok());
    EXPECT_EQ(batch.results[i].score, one.result.score) << "record " << i;
    EXPECT_EQ(batch.results[i].decision, one.result.decision);
  }
  engine.Shutdown();
}

TEST_F(ServeTest, InferBatchReportsMissingFenceAndShutdown) {
  FenceRegistry registry;
  Engine engine(&registry, EngineOptions{1, 4});
  const std::vector<rf::ScanRecord> records(2);

  const BatchServeResponse missing = engine.InferBatch("ghost", records);
  EXPECT_EQ(missing.status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(missing.results.empty());

  engine.Shutdown();
  const BatchServeResponse down = engine.InferBatch("ghost", records);
  EXPECT_EQ(down.status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeTest, ConcurrentBatchesAgainstOneFenceStaySerialized) {
  FenceRegistry registry;
  ASSERT_TRUE(registry.Install("home", LoadModel()).ok());
  Engine engine(&registry, EngineOptions{4, 64});

  const std::vector<rf::ScanRecord> records(dataset_->test.begin(),
                                            dataset_->test.begin() + 16);
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      const BatchServeResponse response = engine.InferBatch("home", records);
      if (response.status.ok() && response.results.size() == records.size()) {
        ok_count.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(ok_count.load(), 4);
  engine.Shutdown();
}

}  // namespace
}  // namespace gem::serve

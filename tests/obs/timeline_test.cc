// gem::obs v2 suite: the per-thread timeline profiler, trace-context
// propagation across ThreadPool / serve::Engine thread hops, the
// Chrome trace-event JSON writer, stage-cost attribution, the
// resource sampler, Prometheus label escaping, and the
// MetricsRegistry::Snapshot staleness contract. Runs under TSan in CI
// (`ctest -R ^obs_`), so every concurrent scenario here doubles as a
// race check.

#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "base/thread_pool.h"
#include "obs/attribution.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/resource_sampler.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "serve/engine.h"
#include "serve/fence_registry.h"

namespace gem::obs {
namespace {

using std::chrono::steady_clock;

/// Re-enables with default options and guarantees Disable+Clear on
/// exit, so timeline state never leaks between tests.
class ScopedTimeline {
 public:
  explicit ScopedTimeline(TimelineOptions options = {}) {
    Timeline::Enable(options);
  }
  ~ScopedTimeline() {
    Timeline::Disable();
    Timeline::Clear();
  }
};

std::vector<TimelineEventView> EventsNamed(
    const std::vector<TimelineEventView>& events, const std::string& name) {
  std::vector<TimelineEventView> out;
  for (const TimelineEventView& view : events) {
    if (view.event.name != nullptr && name == view.event.name) {
      out.push_back(view);
    }
  }
  return out;
}

TEST(TimelineTest, DisabledRecordingIsANoOp) {
  ASSERT_FALSE(Timeline::IsEnabled());
  const auto now = steady_clock::now();
  Timeline::RecordSpan("timeline_test.noop", now, now, 1, 2, 0, 0);
  Timeline::RecordInstant("timeline_test.noop");
  Timeline::RecordCounter("timeline_test.noop", 1.0);
  EXPECT_TRUE(EventsNamed(Timeline::Snapshot(), "timeline_test.noop")
                  .empty());
}

TEST(TimelineTest, RecordsSpanIdentityAndClampsZeroDuration) {
  ScopedTimeline timeline;
  const auto now = steady_clock::now();
  Timeline::RecordSpan("timeline_test.span", now, now, /*trace_id=*/7,
                       /*span_id=*/8, /*parent_span_id=*/6, /*depth=*/2);
  const auto spans =
      EventsNamed(Timeline::Snapshot(), "timeline_test.span");
  ASSERT_EQ(spans.size(), 1u);
  const TimelineEvent& event = spans[0].event;
  EXPECT_EQ(event.kind, TimelineEventKind::kSpan);
  EXPECT_EQ(event.trace_id, 7u);
  EXPECT_EQ(event.span_id, 8u);
  EXPECT_EQ(event.parent_span_id, 6u);
  EXPECT_EQ(event.depth, 2);
  // Zero-length spans are clamped to 1ns so a B never sorts after its
  // own E in the exported JSON.
  EXPECT_GE(event.dur_ns, 1);
}

TEST(TimelineTest, ScopedSpanMintsContextAndRestoresParent) {
  ScopedTimeline timeline;
  TraceContext outer_context, inner_context;
  {
    GEM_TRACE_SPAN("timeline_test.outer");
    outer_context = CurrentTraceContext();
    EXPECT_NE(outer_context.trace_id, 0u);
    EXPECT_NE(outer_context.span_id, 0u);
    {
      GEM_TRACE_SPAN("timeline_test.inner");
      inner_context = CurrentTraceContext();
      // Same operation, new span id.
      EXPECT_EQ(inner_context.trace_id, outer_context.trace_id);
      EXPECT_NE(inner_context.span_id, outer_context.span_id);
    }
    EXPECT_EQ(CurrentTraceContext().span_id, outer_context.span_id);
  }
  EXPECT_FALSE(CurrentTraceContext().active());

  const auto events = Timeline::Snapshot();
  const auto inner = EventsNamed(events, "timeline_test.inner");
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(inner[0].event.parent_span_id, outer_context.span_id);
  EXPECT_EQ(inner[0].event.trace_id, outer_context.trace_id);
}

TEST(ThreadPoolTraceTest, ContextPropagatesAcrossSubmitHop) {
  ScopedTimeline timeline;
  ThreadPool pool(2);

  const TraceContext submitter{NewTraceId(), NewSpanId()};
  TraceContext in_task;
  std::promise<void> done;
  {
    TraceContextScope scope(submitter);
    pool.Submit([&] {
      in_task = CurrentTraceContext();
      done.set_value();
    });
  }
  done.get_future().wait();
  pool.Shutdown();

  // The worker ran the task under the submitter's trace with a fresh
  // task span id.
  EXPECT_EQ(in_task.trace_id, submitter.trace_id);
  EXPECT_NE(in_task.span_id, submitter.span_id);
  EXPECT_NE(in_task.span_id, 0u);

  const auto events = Timeline::Snapshot();
  const auto waits = EventsNamed(events, "pool.queue_wait");
  ASSERT_EQ(waits.size(), 1u);
  EXPECT_EQ(waits[0].event.kind, TimelineEventKind::kAsyncSpan);
  EXPECT_EQ(waits[0].event.trace_id, submitter.trace_id);
  EXPECT_EQ(waits[0].event.parent_span_id, submitter.span_id);

  const auto tasks = EventsNamed(events, "pool.task");
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].event.trace_id, submitter.trace_id);
  EXPECT_EQ(tasks[0].event.span_id, in_task.span_id);
  EXPECT_EQ(tasks[0].event.parent_span_id, submitter.span_id);
  // The worker track carries the name the pool assigned it.
  EXPECT_EQ(tasks[0].thread_name.rfind("pool-worker-", 0), 0u);
}

TEST(ThreadPoolTraceTest, InlineExecutionKeepsContextNoQueueWait) {
  ScopedTimeline timeline;
  ThreadPool pool(1);  // no workers: Submit runs inline

  const TraceContext submitter{NewTraceId(), NewSpanId()};
  TraceContext in_task;
  {
    TraceContextScope scope(submitter);
    pool.Submit([&] { in_task = CurrentTraceContext(); });
  }
  // Inline execution IS the caller: same span, and no queue to wait in.
  EXPECT_EQ(in_task.trace_id, submitter.trace_id);
  EXPECT_EQ(in_task.span_id, submitter.span_id);
  EXPECT_TRUE(
      EventsNamed(Timeline::Snapshot(), "pool.queue_wait").empty());
}

TEST(TimelineTest, FullRingDropsNewEventsAndCountsThem) {
  TimelineOptions options;
  options.events_per_thread = 4;
  ScopedTimeline timeline(options);
  // A fresh thread gets a fresh ring sized by the active options (the
  // main test thread's ring was created earlier at default capacity).
  std::thread recorder([] {
    for (int i = 0; i < 10; ++i) {
      Timeline::RecordCounter("timeline_test.ring", static_cast<double>(i));
    }
  });
  recorder.join();

  EXPECT_EQ(Timeline::RecordedEvents(), 4u);
  EXPECT_EQ(Timeline::DroppedEvents(), 6u);
  // Drop-newest: the four OLDEST samples survive, never overwritten.
  const auto events =
      EventsNamed(Timeline::Snapshot(), "timeline_test.ring");
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(events[i].event.value, static_cast<double>(i));
  }
}

TEST(TimelineTest, QueueWaitUnderEngineBackpressure) {
  ScopedTimeline timeline;
  Timeline::SetCurrentThreadName("main");

  // An empty registry still exercises the whole queue path: requests
  // against a fence that is not loaded answer kNotFound, but they
  // queue, wait, and trace exactly like live ones.
  serve::FenceRegistry registry;
  serve::EngineOptions options;
  options.num_threads = 1;
  serve::Engine engine(&registry, options);

  const TraceContext submitter{NewTraceId(), NewSpanId()};
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::atomic<int> responses{0};
  {
    TraceContextScope scope(submitter);
    // First job parks the lone worker in its callback; the next two
    // must sit in the queue behind it.
    ASSERT_TRUE(engine
                    .Submit({"missing", {}, {}},
                            [&](serve::ServeResponse) {
                              released.wait();
                              responses.fetch_add(1);
                            })
                    .ok());
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(engine
                      .Submit({"missing", {}, {}},
                              [&](serve::ServeResponse) {
                                responses.fetch_add(1);
                              })
                      .ok());
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  release.set_value();
  engine.Shutdown();
  EXPECT_EQ(responses.load(), 3);

  const auto waits =
      EventsNamed(Timeline::Snapshot(), "serve.queue_wait");
  ASSERT_EQ(waits.size(), 3u);
  int64_t longest_wait_ns = 0;
  for (const TimelineEventView& wait : waits) {
    EXPECT_EQ(wait.event.kind, TimelineEventKind::kAsyncSpan);
    EXPECT_EQ(wait.event.trace_id, submitter.trace_id);
    EXPECT_EQ(wait.event.parent_span_id, submitter.span_id);
    EXPECT_EQ(wait.thread_name.rfind("serve-worker-", 0), 0u);
    longest_wait_ns = std::max(longest_wait_ns, wait.event.dur_ns);
  }
  // The queued jobs measurably waited out the parked worker.
  EXPECT_GE(longest_wait_ns, 20'000'000);
}

/// Minimal Chrome trace-event validator: walks the serialized rows in
/// order and checks that sync B/E and async b/e events pair up and
/// that sync nesting never goes negative. (Recording is confined to
/// one thread, so a global scan is a valid per-track scan.)
void CheckMatchedPhases(const std::string& json) {
  int sync_depth = 0;
  int async_open = 0;
  size_t pos = 0;
  while ((pos = json.find("\"ph\":\"", pos)) != std::string::npos) {
    const char phase = json[pos + 6];
    pos += 7;
    switch (phase) {
      case 'B':
        ++sync_depth;
        break;
      case 'E':
        --sync_depth;
        ASSERT_GE(sync_depth, 0) << "E before its B at byte " << pos;
        break;
      case 'b':
        ++async_open;
        break;
      case 'e':
        --async_open;
        ASSERT_GE(async_open, 0) << "async e before its b";
        break;
      default:
        break;  // C / M / i rows carry no pairing constraint
    }
  }
  EXPECT_EQ(sync_depth, 0) << "unclosed B span(s)";
  EXPECT_EQ(async_open, 0) << "unclosed async span(s)";
}

TEST(ChromeTraceJsonTest, GoldenSchemaWithMatchedNesting) {
  ScopedTimeline timeline;
  Timeline::SetCurrentThreadName("main");
  const auto t0 = steady_clock::now();
  using std::chrono::microseconds;
  const uint64_t trace_id = NewTraceId();
  const uint64_t outer_id = NewSpanId();
  // outer [0us,100us] wrapping inner [10us,40us]; an async wait and a
  // counter overlapping both.
  Timeline::RecordSpan("chrome_test.inner", t0 + microseconds(10),
                       t0 + microseconds(40), trace_id, NewSpanId(),
                       outer_id, 1);
  Timeline::RecordSpan("chrome_test.outer", t0, t0 + microseconds(100),
                       trace_id, outer_id, 0, 0);
  Timeline::RecordAsyncSpan("chrome_test.wait", t0, t0 + microseconds(25),
                            trace_id, NewSpanId(), outer_id);
  Timeline::RecordCounter("chrome_test.rss_mb", 12.5);

  const std::string json = ChromeTraceJson(Timeline::Snapshot());
  // Envelope chrome://tracing and Perfetto load directly.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // One row of each phase family.
  EXPECT_NE(json.find("\"name\":\"chrome_test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"queue\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"main\""), std::string::npos);
  // Span rows carry the trace identity for Perfetto queries.
  EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\""), std::string::npos);
  CheckMatchedPhases(json);
}

TimelineEventView MakeSpan(const char* name, int64_t start_ns,
                           int64_t dur_ns,
                           TimelineEventKind kind = TimelineEventKind::kSpan,
                           int tid = 0) {
  TimelineEventView view;
  view.tid = tid;
  view.event.kind = kind;
  view.event.name = name;
  view.event.start_ns = start_ns;
  view.event.dur_ns = dur_ns;
  return view;
}

const StageCost* FindStage(const AttributionReport& report,
                           const std::string& stage) {
  for (const StageCost& cost : report.by_stage) {
    if (cost.stage == stage) return &cost;
  }
  return nullptr;
}

TEST(AttributionTest, ExclusiveIsInclusiveMinusDirectChildren) {
  // outer [1us,101us] > inner [11us,41us] > leaf [15us,20us],
  // plus a second inner [51us,61us].
  const std::vector<TimelineEventView> events = {
      MakeSpan("outer", 1000, 100000),
      MakeSpan("inner", 11000, 30000),
      MakeSpan("leaf", 15000, 5000),
      MakeSpan("inner", 51000, 10000),
  };
  const AttributionReport report = BuildAttribution(events);

  const StageCost* outer = FindStage(report, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_DOUBLE_EQ(outer->inclusive_seconds, 100000e-9);
  // Direct children only: both inners subtract, the leaf does not.
  EXPECT_DOUBLE_EQ(outer->exclusive_seconds, 60000e-9);

  const StageCost* inner = FindStage(report, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);
  EXPECT_DOUBLE_EQ(inner->inclusive_seconds, 40000e-9);
  EXPECT_DOUBLE_EQ(inner->exclusive_seconds, 35000e-9);

  const StageCost* leaf = FindStage(report, "leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_DOUBLE_EQ(leaf->exclusive_seconds, leaf->inclusive_seconds);

  // Sorted by exclusive share, biggest first.
  ASSERT_EQ(report.by_stage.size(), 3u);
  EXPECT_EQ(report.by_stage[0].stage, "outer");
  EXPECT_EQ(report.by_stage[1].stage, "inner");
  EXPECT_EQ(report.by_stage[2].stage, "leaf");
}

TEST(AttributionTest, AsyncSpansKeepExclusiveEqualInclusive) {
  // A queue wait OVERLAPS the executing span; it must neither nest
  // under it nor steal its exclusive time.
  const std::vector<TimelineEventView> events = {
      MakeSpan("work", 1000, 50000),
      MakeSpan("wait", 1000, 80000, TimelineEventKind::kAsyncSpan),
  };
  const AttributionReport report = BuildAttribution(events);
  const StageCost* work = FindStage(report, "work");
  const StageCost* wait = FindStage(report, "wait");
  ASSERT_NE(work, nullptr);
  ASSERT_NE(wait, nullptr);
  EXPECT_DOUBLE_EQ(work->exclusive_seconds, 50000e-9);
  EXPECT_DOUBLE_EQ(wait->inclusive_seconds, 80000e-9);
  EXPECT_DOUBLE_EQ(wait->exclusive_seconds, 80000e-9);
}

TEST(AttributionTest, WindowFiltersSpansByStartTime) {
  const std::vector<TimelineEventView> events = {
      MakeSpan("outer", 1000, 100000),
      MakeSpan("inner", 11000, 30000),
      MakeSpan("inner", 51000, 10000),
  };
  // [0, 50us) keeps outer and the first inner only — the per-run
  // windows the benches use to split one recording by thread count.
  const AttributionReport report = BuildAttribution(events, 0, 50000);
  const StageCost* inner = FindStage(report, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 1u);
  const StageCost* outer = FindStage(report, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_DOUBLE_EQ(outer->exclusive_seconds, 70000e-9);
}

TEST(AttributionTest, JsonAndTableCarryEveryStage) {
  const std::vector<TimelineEventView> events = {
      MakeSpan("alpha", 1000, 40000),
      MakeSpan("beta", 51000, 20000),
  };
  const AttributionReport report = BuildAttribution(events);
  const std::string json = AttributionJson(report);
  EXPECT_NE(json.find("\"stage\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"exclusive_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"inclusive_seconds\""), std::string::npos);
  const std::string table = AttributionTable(report);
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
}

TEST(ResourceSamplerTest, SampleNowReadsProcSelf) {
  const ResourceSample sample = ResourceSampler::SampleNow();
  EXPECT_GT(sample.rss_bytes, 0.0);
  EXPECT_GE(sample.num_threads, 1);
  EXPECT_GE(sample.user_cpu_seconds, 0.0);
  EXPECT_GE(sample.sys_cpu_seconds, 0.0);
}

TEST(ResourceSamplerTest, PublishesGaugesAndTraceCounters) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.ResetForTesting();
  ScopedTimeline timeline;
  {
    ResourceSampler::Options options;
    options.period_ms = 5;
    ResourceSampler sampler(options);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sampler.Stop();  // idempotent with the destructor's Stop
  }
  EXPECT_GT(registry.GetGauge("gem_process_rss_bytes").value(), 0.0);
  EXPECT_GE(registry.GetGauge("gem_process_threads").value(), 1.0);
  EXPECT_GE(
      registry.GetGauge("gem_process_cpu_seconds", {{"mode", "user"}})
          .value(),
      0.0);
  // The same readings land in the trace as counter series.
  const auto rss_rows =
      EventsNamed(Timeline::Snapshot(), "rss_mb");
  ASSERT_FALSE(rss_rows.empty());
  EXPECT_EQ(rss_rows[0].event.kind, TimelineEventKind::kCounter);
  EXPECT_GT(rss_rows[0].event.value, 0.0);
}

TEST(ExportEscapeTest, PrometheusEscapesLabelValues) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.ResetForTesting();
  registry
      .GetCounter("escape_test_total", {{"path", "a\"b\\c\nd"}})
      .Increment(1);
  const std::string text = ExportPrometheus(registry.Snapshot());
  // Quote, backslash, and newline are escaped per the Prometheus text
  // exposition format; the raw newline must NOT appear mid-series.
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
  EXPECT_EQ(text.find("a\"b"), std::string::npos);
}

TEST(MetricsSnapshotTest, ConcurrentSnapshotsNeverTearOrRegress) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.ResetForTesting();
  constexpr int kWriters = 4;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&registry] {
      Counter& counter = registry.GetCounter("tear_test_total");
      Histogram& hist =
          registry.GetHistogram("tear_test_hist", {1.0, 2.0});
      for (int i = 0; i < kIncrements; ++i) {
        counter.Increment();
        hist.Observe(static_cast<double>(i % 3) + 0.5);
      }
    });
  }
  // Per the Snapshot() staleness contract each field is an atomic
  // load: values may be mutually stale but never torn, so the counter
  // reads monotonically and bucket sums never exceed a LATER count.
  double last_count = 0.0;
  while (last_count < 1.0 * kWriters * kIncrements) {
    for (const MetricSnapshot& metric : registry.Snapshot()) {
      if (metric.name == "tear_test_total") {
        EXPECT_GE(metric.value, last_count);
        last_count = metric.value;
      }
    }
  }
  for (std::thread& writer : writers) writer.join();
  const auto snapshot = registry.Snapshot();
  for (const MetricSnapshot& metric : snapshot) {
    if (metric.name == "tear_test_hist") {
      EXPECT_EQ(metric.count,
                static_cast<uint64_t>(kWriters) * kIncrements);
    }
  }
}

}  // namespace
}  // namespace gem::obs

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "base/logging.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace gem::obs {
namespace {

/// Finds "name{labels} <value>" in a Prometheus dump and parses the
/// value back (the exporter round-trip check).
double PromValue(const std::string& text, const std::string& series) {
  const size_t pos = text.find("\n" + series + " ");
  EXPECT_NE(pos, std::string::npos) << "series not found: " << series;
  if (pos == std::string::npos) return -1.0;
  return std::stod(text.substr(pos + series.size() + 2));
}

TEST(ScopedSpanTest, RecordsLatencyAndEntryCount) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.ResetForTesting();
  SetSpanSamplingShift(0);  // time every entry for a deterministic count
  for (int i = 0; i < 3; ++i) {
    GEM_TRACE_SPAN("trace_test.outer");
  }
  SetSpanSamplingShift(3);
  Histogram& hist = registry.GetHistogram(
      "gem_span_seconds", LatencyBuckets(), {{"span", "trace_test.outer"}});
  Counter& entries = registry.GetCounter("gem_span_total",
                                         {{"span", "trace_test.outer"}});
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(entries.value(), 3u);
  EXPECT_GE(hist.sum(), 0.0);
}

TEST(ScopedSpanTest, DefaultSamplingTimesEveryEighthEntry) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.ResetForTesting();
  ASSERT_EQ(GetSpanSamplingShift(), 3);
  for (int i = 0; i < 16; ++i) {
    GEM_TRACE_SPAN("trace_test.sampled");
  }
  Histogram& hist = registry.GetHistogram(
      "gem_span_seconds", LatencyBuckets(),
      {{"span", "trace_test.sampled"}});
  Counter& entries = registry.GetCounter("gem_span_total",
                                         {{"span", "trace_test.sampled"}});
  EXPECT_EQ(entries.value(), 16u);  // entry counter is exact
  EXPECT_EQ(hist.count(), 2u);      // entries 0 and 8 were timed
}

TEST(ScopedSpanTest, TracksNestingDepth) {
  EXPECT_EQ(ScopedSpan::CurrentDepth(), 0);
  {
    GEM_TRACE_SPAN("trace_test.depth1");
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
    {
      GEM_TRACE_SPAN("trace_test.depth2");
      EXPECT_EQ(ScopedSpan::CurrentDepth(), 2);
    }
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
  }
  EXPECT_EQ(ScopedSpan::CurrentDepth(), 0);
}

TEST(ScopedSpanTest, DebugLogGoesToInjectedSink) {
  std::vector<std::string> lines;
  SetLogSink([&lines](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  SetLogLevel(LogLevel::kDebug);
  {
    GEM_TRACE_SPAN("trace_test.logged");
  }
  SetLogLevel(LogLevel::kInfo);
  SetLogSink(nullptr);
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("span trace_test.logged"), std::string::npos);
  EXPECT_NE(lines.back().find("depth=1"), std::string::npos);
}

TEST(ExportTest, PrometheusRoundTripsCounterGaugeHistogram) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.ResetForTesting();
  registry.GetCounter("export_test_total", {{"stage", "embed"}})
      .Increment(42);
  registry.GetGauge("export_test_gauge").Set(1.5);
  Histogram& hist =
      registry.GetHistogram("export_test_hist", {1.0, 2.0});
  hist.Observe(0.5);
  hist.Observe(1.5);
  hist.Observe(9.0);

  const std::string text = "\n" + ExportPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE export_test_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE export_test_hist histogram"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(
      PromValue(text, "export_test_total{stage=\"embed\"}"), 42.0);
  EXPECT_DOUBLE_EQ(PromValue(text, "export_test_gauge"), 1.5);
  // Cumulative buckets: le=1 -> 1, le=2 -> 2, +Inf -> 3.
  EXPECT_DOUBLE_EQ(PromValue(text, "export_test_hist_bucket{le=\"1\"}"),
                   1.0);
  EXPECT_DOUBLE_EQ(PromValue(text, "export_test_hist_bucket{le=\"2\"}"),
                   2.0);
  EXPECT_DOUBLE_EQ(
      PromValue(text, "export_test_hist_bucket{le=\"+Inf\"}"), 3.0);
  EXPECT_DOUBLE_EQ(PromValue(text, "export_test_hist_count"), 3.0);
  EXPECT_DOUBLE_EQ(PromValue(text, "export_test_hist_sum"), 11.0);
}

TEST(ExportTest, JsonLinesCarriesValuesAndBuckets) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.ResetForTesting();
  registry.GetCounter("export_json_total").Increment(7);
  registry.GetHistogram("export_json_hist", {1.0}).Observe(0.25);

  const std::string text = ExportJsonLines(registry.Snapshot());
  EXPECT_NE(text.find("{\"name\":\"export_json_total\",\"type\":"
                      "\"counter\",\"labels\":{},\"value\":7}"),
            std::string::npos);
  EXPECT_NE(text.find("\"name\":\"export_json_hist\""), std::string::npos);
  EXPECT_NE(text.find("\"count\":1"), std::string::npos);
  EXPECT_NE(text.find("\"buckets\":[1,0]"), std::string::npos);
}

TEST(ExportTest, TableListsHistogramQuantiles) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.ResetForTesting();
  registry.GetCounter("export_table_total", {{"decision", "inside"}})
      .Increment(9);
  Histogram& hist = registry.GetHistogram("export_table_hist", {1.0, 2.0});
  hist.Observe(1.5);

  const std::string text = ExportTable(registry.Snapshot());
  EXPECT_NE(text.find("export_table_total"), std::string::npos);
  EXPECT_NE(text.find("decision=inside"), std::string::npos);
  EXPECT_NE(text.find("export_table_hist"), std::string::npos);
  EXPECT_NE(text.find("histogram"), std::string::npos);
}

TEST(ExportTest, ParsesFormatNames) {
  EXPECT_EQ(ParseExportFormat("prom"), ExportFormat::kPrometheus);
  EXPECT_EQ(ParseExportFormat("prometheus"), ExportFormat::kPrometheus);
  EXPECT_EQ(ParseExportFormat("json"), ExportFormat::kJsonLines);
  EXPECT_EQ(ParseExportFormat("table"), ExportFormat::kTable);
  EXPECT_EQ(ParseExportFormat("xml"), std::nullopt);
}

TEST(LoggingTest, ConcurrentLinesDoNotInterleave) {
  std::vector<std::string> lines;
  SetLogSink([&lines](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 100; ++i) {
        GEM_LOG(Info) << "thread " << t << " line " << i << " end";
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  SetLogSink(nullptr);
  ASSERT_EQ(lines.size(), 400u);
  for (const std::string& line : lines) {
    // A complete, non-interleaved line mentions exactly one thread and
    // terminates with the sentinel.
    EXPECT_NE(line.find("thread "), std::string::npos);
    EXPECT_EQ(line.substr(line.size() - 4), " end");
  }
}

}  // namespace
}  // namespace gem::obs

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace gem::obs {
namespace {

TEST(CounterTest, IncrementsAndReads) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
}

TEST(HistogramTest, BucketsObservationsByUpperBound) {
  Histogram hist({1.0, 2.0, 4.0});
  hist.Observe(0.5);   // bucket 0 (<= 1)
  hist.Observe(1.0);   // bucket 0 (bounds are inclusive upper bounds)
  hist.Observe(1.5);   // bucket 1
  hist.Observe(100.0); // +Inf bucket
  const std::vector<uint64_t> counts = hist.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 103.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 103.0 / 4.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram hist({1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) hist.Observe(1.5);  // all in (1, 2]
  // Every rank lands in bucket 1; interpolation stays within (1, 2].
  EXPECT_GT(hist.Quantile(0.5), 1.0);
  EXPECT_LE(hist.Quantile(0.5), 2.0);
  EXPECT_GT(hist.Quantile(0.99), 1.0);
  EXPECT_LE(hist.Quantile(0.99), 2.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram hist({1.0});
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 0.0);
}

TEST(BucketHelpersTest, ExponentialAndLinear) {
  const std::vector<double> exp = ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp[0], 1.0);
  EXPECT_DOUBLE_EQ(exp[3], 8.0);
  const std::vector<double> lin = LinearBuckets(0.0, 0.5, 3);
  ASSERT_EQ(lin.size(), 3u);
  EXPECT_DOUBLE_EQ(lin[2], 1.0);
  EXPECT_FALSE(LatencyBuckets().empty());
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameInstance) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter& a = registry.GetCounter("registry_test_counter");
  Counter& b = registry.GetCounter("registry_test_counter");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1u);
}

TEST(MetricsRegistryTest, DistinctLabelsAreDistinctSeries) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter& inside =
      registry.GetCounter("registry_test_labeled", {{"decision", "inside"}});
  Counter& outside =
      registry.GetCounter("registry_test_labeled", {{"decision", "outside"}});
  EXPECT_NE(&inside, &outside);
  inside.Increment(3);
  outside.Increment(5);
  EXPECT_EQ(inside.value(), 3u);
  EXPECT_EQ(outside.value(), 5u);

  int found = 0;
  for (const MetricSnapshot& snap : registry.Snapshot()) {
    if (snap.name != "registry_test_labeled") continue;
    ++found;
    ASSERT_EQ(snap.labels.size(), 1u);
    EXPECT_EQ(snap.labels[0].first, "decision");
    if (snap.labels[0].second == "inside") {
      EXPECT_DOUBLE_EQ(snap.value, 3.0);
    } else {
      EXPECT_EQ(snap.labels[0].second, "outside");
      EXPECT_DOUBLE_EQ(snap.value, 5.0);
    }
  }
  EXPECT_EQ(found, 2);
}

TEST(MetricsRegistryTest, HistogramReusesFirstBounds) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  Histogram& a =
      registry.GetHistogram("registry_test_hist", {1.0, 2.0});
  Histogram& b =
      registry.GetHistogram("registry_test_hist", {5.0, 6.0, 7.0});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.bounds().size(), 2u);
}

TEST(MetricsRegistryTest, ResetZeroesInPlaceKeepingReferences) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter& counter = registry.GetCounter("registry_test_reset");
  Histogram& hist = registry.GetHistogram("registry_test_reset_hist", {1.0});
  Gauge& gauge = registry.GetGauge("registry_test_reset_gauge");
  counter.Increment(7);
  hist.Observe(0.5);
  gauge.Set(3.0);
  registry.ResetForTesting();
  EXPECT_EQ(counter.value(), 0u);  // same object, zeroed
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50000;
  Counter& counter = registry.GetCounter("registry_test_concurrent");
  Gauge& gauge = registry.GetGauge("registry_test_concurrent_gauge");
  Histogram& hist = registry.GetHistogram("registry_test_concurrent_hist",
                                          LatencyBuckets());
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &gauge, &hist, t] {
      for (int i = 0; i < kIncrements; ++i) {
        counter.Increment();
        gauge.Add(1.0);
        hist.Observe(1e-6 * (t + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_DOUBLE_EQ(gauge.value(),
                   static_cast<double>(kThreads) * kIncrements);
  EXPECT_EQ(hist.count(), static_cast<uint64_t>(kThreads) * kIncrements);
  uint64_t bucket_total = 0;
  for (uint64_t c : hist.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, hist.count());
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      seen[t] = &registry.GetCounter("registry_test_race",
                                     {{"k", "v"}});
      seen[t]->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->value(), static_cast<uint64_t>(kThreads));
}

}  // namespace
}  // namespace gem::obs

// Parameterized property sweeps across the GEM pipeline: invariants
// that must hold for every seed, embedding dimension, bin count, and
// edge-weight family.

#include <gtest/gtest.h>

#include <cmath>

#include "core/gem.h"
#include "math/metrics.h"
#include "rf/dataset.h"

namespace gem::core {
namespace {

rf::Dataset TinyDataset(uint64_t seed) {
  rf::DatasetOptions options;
  options.train_duration_s = 240.0;
  options.test_segments = 2;
  options.test_segment_duration_s = 90.0;
  options.seed = seed;
  return rf::GenerateScenarioDataset(rf::HomePreset(2), options);
}

// ---------------------------------------------------------------------
// Across seeds: the full pipeline always trains, always produces
// decisions for every record, keeps scores finite, and stays
// deterministic given the same inputs.

class SeedProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedProperties, PipelineTotalAndFinite) {
  const rf::Dataset data = TinyDataset(GetParam());
  GemConfig config;
  config.bisage.dimension = 16;
  config.bisage.epochs = 2;
  Gem gem(config);
  ASSERT_TRUE(gem.Train(data.train).ok());
  for (const rf::ScanRecord& record : data.test) {
    const InferenceResult result = gem.Infer(record);
    EXPECT_TRUE(std::isfinite(result.score));
    // Hbar is anchored to the training min/max: a streamed record can
    // score slightly below 0 (more typical than any training sample)
    // but never wildly so.
    EXPECT_GE(result.score, -0.5);
  }
}

TEST_P(SeedProperties, DeterministicAcrossRuns) {
  const rf::Dataset data = TinyDataset(GetParam());
  GemConfig config;
  config.bisage.dimension = 16;
  config.bisage.epochs = 2;
  Gem a(config);
  Gem b(config);
  ASSERT_TRUE(a.Train(data.train).ok());
  ASSERT_TRUE(b.Train(data.train).ok());
  for (int i = 0; i < 30; ++i) {
    const InferenceResult ra = a.Infer(data.test[i]);
    const InferenceResult rb = b.Infer(data.test[i]);
    EXPECT_EQ(ra.decision, rb.decision) << "record " << i;
    EXPECT_DOUBLE_EQ(ra.score, rb.score);
    EXPECT_EQ(ra.model_updated, rb.model_updated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedProperties,
                         ::testing::Values(1u, 17u, 99u, 4242u));

// ---------------------------------------------------------------------
// Across embedding dimensions: embeddings are unit-norm, dimension is
// honored, and the detector separates train-core from far-away records.

class DimensionProperties : public ::testing::TestWithParam<int> {};

TEST_P(DimensionProperties, EmbeddingsUnitNormAtRequestedDimension) {
  const rf::Dataset data = TinyDataset(7);
  GemConfig config;
  config.bisage.dimension = GetParam();
  config.bisage.epochs = 2;
  Gem gem(config);
  ASSERT_TRUE(gem.Train(data.train).ok());
  for (int i = 0; i < 20; ++i) {
    const math::Vec e = gem.embedder().TrainEmbedding(i);
    ASSERT_EQ(static_cast<int>(e.size()), GetParam());
    EXPECT_NEAR(math::Norm2(e), 1.0, 1e-9);
  }
  // A far-away record (unknown MACs only) must alert regardless of d.
  rf::ScanRecord alien;
  alien.readings.push_back(rf::Reading{"zz:zz", -60.0, rf::Band::k2_4GHz});
  EXPECT_EQ(gem.Infer(alien).decision, Decision::kOutside);
}

INSTANTIATE_TEST_SUITE_P(Dims, DimensionProperties,
                         ::testing::Values(8, 16, 32, 48));

// ---------------------------------------------------------------------
// Across histogram bin counts: detection quality holds and thresholds
// stay ordered (tau_l <= tau_u).

class BinProperties : public ::testing::TestWithParam<int> {};

TEST_P(BinProperties, ThresholdsOrderedAndQualityHolds) {
  const rf::Dataset data = TinyDataset(11);
  GemConfig config;
  config.bisage.dimension = 16;
  config.bisage.epochs = 2;
  config.detector.bins = GetParam();
  Gem gem(config);
  ASSERT_TRUE(gem.Train(data.train).ok());
  EXPECT_LE(gem.detector().hbar_tau_lower(),
            gem.detector().hbar_tau_upper());

  std::vector<bool> actual, predicted;
  for (const rf::ScanRecord& record : data.test) {
    actual.push_back(record.inside);
    predicted.push_back(gem.Infer(record).decision == Decision::kInside);
  }
  const math::InOutMetrics m = math::ComputeInOutMetrics(actual, predicted);
  EXPECT_GT(m.f_in, 0.7) << "bins=" << GetParam();
  EXPECT_GT(m.f_out, 0.6) << "bins=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Bins, BinProperties,
                         ::testing::Values(5, 10, 25, 60));

// ---------------------------------------------------------------------
// Across edge-weight families: the graph stays positive-weighted and
// the pipeline remains functional.

class WeightProperties
    : public ::testing::TestWithParam<graph::WeightKind> {};

TEST_P(WeightProperties, PositiveWeightsAndWorkingPipeline) {
  const rf::Dataset data = TinyDataset(23);
  GemConfig config;
  config.bisage.dimension = 16;
  config.bisage.epochs = 2;
  config.edge_weight.kind = GetParam();
  Gem gem(config);
  ASSERT_TRUE(gem.Train(data.train).ok());

  const graph::BipartiteGraph& g = gem.embedder().graph();
  for (graph::NodeId node = 0; node < g.num_nodes(); ++node) {
    for (const graph::Neighbor& nb : g.neighbors(node)) {
      EXPECT_GT(nb.weight, 0.0);
    }
  }
  std::vector<bool> actual, predicted;
  for (const rf::ScanRecord& record : data.test) {
    actual.push_back(record.inside);
    predicted.push_back(gem.Infer(record).decision == Decision::kInside);
  }
  const math::InOutMetrics m = math::ComputeInOutMetrics(actual, predicted);
  EXPECT_GT(m.f_in + m.f_out, 1.2);
}

INSTANTIATE_TEST_SUITE_P(Weights, WeightProperties,
                         ::testing::Values(graph::WeightKind::kLinearOffset,
                                           graph::WeightKind::kExponential,
                                           graph::WeightKind::kBinary,
                                           graph::WeightKind::kSquaredOffset));

}  // namespace
}  // namespace gem::core

// Parameterized property sweeps over the outlier detectors: every
// detector must satisfy the same behavioral contract on synthetic
// data, across dimensions and training sizes.

#include <cmath>
#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "detect/feature_bagging.h"
#include "detect/hbos.h"
#include "detect/iforest.h"
#include "detect/lof.h"
#include "detect/svdd.h"
#include "tests/common/test_blobs.h"

namespace gem::detect {
namespace {

using testing::BimodalNormal;
using testing::FarOutliers;
using testing::FreshInliers;

using DetectorFactory = std::function<std::unique_ptr<OutlierDetector>()>;

struct DetectorCase {
  const char* name;
  DetectorFactory make;
};

class DetectorContract
    : public ::testing::TestWithParam<std::tuple<DetectorCase, int, int>> {};

TEST_P(DetectorContract, SeparatesOutliersAtEveryDimAndSize) {
  const auto& [detector_case, dim, n_train] = GetParam();
  auto detector = detector_case.make();
  const auto train = BimodalNormal(n_train, dim, 7);
  ASSERT_TRUE(detector->Fit(train).ok()) << detector_case.name;

  // Contract 1: far outliers are flagged (nearly) always.
  int flagged = 0;
  const auto outliers = FarOutliers(40, dim, 7);
  for (const auto& x : outliers) flagged += detector->IsOutlier(x) ? 1 : 0;
  EXPECT_GE(flagged, 36) << detector_case.name;

  // Contract 2: fresh inliers are mostly accepted.
  int false_alarms = 0;
  const auto inliers = FreshInliers(80, dim, 7);
  for (const auto& x : inliers) {
    false_alarms += detector->IsOutlier(x) ? 1 : 0;
  }
  EXPECT_LE(false_alarms, 40) << detector_case.name;

  // Contract 3: scores rank — mean outlier score above mean inlier
  // score.
  double s_out = 0.0;
  double s_in = 0.0;
  for (const auto& x : outliers) s_out += detector->Score(x);
  for (const auto& x : inliers) s_in += detector->Score(x);
  EXPECT_GT(s_out / outliers.size(), s_in / inliers.size())
      << detector_case.name;

  // Contract 4: scores are finite.
  for (const auto& x : outliers) {
    EXPECT_TRUE(std::isfinite(detector->Score(x))) << detector_case.name;
  }
}

std::vector<DetectorCase> AllDetectors() {
  return {
      {"enhanced_hbos",
       [] { return std::make_unique<EnhancedHbosDetector>(); }},
      {"plain_hbos", [] { return std::make_unique<HbosDetector>(); }},
      {"iforest", [] { return std::make_unique<IsolationForest>(); }},
      {"lof", [] { return std::make_unique<LofDetector>(); }},
      {"feature_bagging", [] { return std::make_unique<FeatureBagging>(); }},
      {"svdd", [] { return std::make_unique<SvddDetector>(); }},
  };
}

INSTANTIATE_TEST_SUITE_P(
    AllDetectorsDimsSizes, DetectorContract,
    ::testing::Combine(::testing::ValuesIn(AllDetectors()),
                       ::testing::Values(4, 16),
                       ::testing::Values(80, 250)),
    [](const ::testing::TestParamInfo<DetectorContract::ParamType>& info) {
      return std::string(std::get<0>(info.param).name) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace gem::detect

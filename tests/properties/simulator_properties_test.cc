// Parameterized property sweeps over the RF simulator: physical
// invariants that must hold for every scenario preset.

#include <gtest/gtest.h>

#include <set>

#include "rf/dataset.h"
#include "rf/dynamics.h"

namespace gem::rf {
namespace {

class ScenarioProperties : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioProperties, EnvironmentIsWellFormed) {
  const ScenarioConfig config = HomePreset(GetParam());
  const Environment env = BuildEnvironment(config);
  EXPECT_GT(env.fence_width(), 0.0);
  EXPECT_GT(env.fence_height(), 0.0);
  EXPECT_FALSE(env.access_points().empty());
  EXPECT_GE(static_cast<int>(env.walls().size()), 4 * config.floors);

  // Every AP has a unique, non-empty MAC.
  std::set<std::string> macs;
  for (const AccessPoint& ap : env.access_points()) {
    EXPECT_FALSE(ap.mac.empty());
    EXPECT_TRUE(macs.insert(ap.mac).second) << "duplicate " << ap.mac;
  }
}

TEST_P(ScenarioProperties, BoundaryContrastExists) {
  // Crossing the boundary must cost signal: mean RSS of the strongest
  // inside AP drops when measured just outside.
  const ScenarioConfig config = HomePreset(GetParam());
  const Environment env = BuildEnvironment(config);
  PropagationConfig prop;
  prop.noise_sigma_db = 0.0;
  prop.shadowing_sigma_db = 0.0;
  prop.drift_amplitude_db = 0.0;
  prop.common_drift_amplitude_db = 0.0;
  const PropagationModel model(&env, prop);

  const Point inside{env.fence_width() / 2.0, env.fence_height() / 2.0};
  const Point outside{env.fence_width() / 2.0, env.fence_height() + 1.0};
  // Strongest inside AP, measured at the center.
  const AccessPoint* best = nullptr;
  double best_rss = -1e9;
  for (const AccessPoint& ap : env.access_points()) {
    if (!env.InsideFence(ap.position) || ap.floor != 0) continue;
    const double rss = model.MeanRssDbm(ap, inside, 0);
    if (rss > best_rss) {
      best_rss = rss;
      best = &ap;
    }
  }
  if (best == nullptr) GTEST_SKIP() << "no ground-floor inside AP";
  EXPECT_LT(model.MeanRssDbm(*best, outside, 0), best_rss);
}

TEST_P(ScenarioProperties, DatasetLabelsMatchGeometry) {
  rf::DatasetOptions options;
  options.train_duration_s = 120.0;
  options.test_segments = 2;
  options.test_segment_duration_s = 60.0;
  options.seed = 40 + static_cast<uint64_t>(GetParam());
  const Dataset data =
      GenerateScenarioDataset(HomePreset(GetParam()), options);
  const Environment env = BuildEnvironment(HomePreset(GetParam()));
  for (const ScanRecord& record : data.train) {
    EXPECT_TRUE(record.inside);
    EXPECT_TRUE(env.InsideFence(record.position));
  }
  for (const ScanRecord& record : data.test) {
    EXPECT_EQ(record.inside, env.InsideFence(record.position));
  }
}

TEST_P(ScenarioProperties, RecordsVaryInLength) {
  rf::DatasetOptions options;
  options.train_duration_s = 200.0;
  options.seed = 60 + static_cast<uint64_t>(GetParam());
  const Dataset data =
      GenerateScenarioDataset(HomePreset(GetParam()), options);
  std::set<size_t> lengths;
  for (const ScanRecord& record : data.train) {
    lengths.insert(record.readings.size());
  }
  EXPECT_GT(lengths.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllHomes, ScenarioProperties,
                         ::testing::Range(0, 10));

// Markov dynamics property: at any (p, q), the surviving readings are
// a subset of the originals and blocks stay internally consistent.
class MarkovProperties
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(MarkovProperties, ChurnOnlyRemovesReadings) {
  const auto [p, q] = GetParam();
  rf::DatasetOptions options;
  options.train_duration_s = 200.0;
  options.seed = 77;
  Dataset data = GenerateScenarioDataset(HomePreset(2), options);
  const std::vector<ScanRecord> before = data.train;
  math::Rng rng(3);
  ApplyApOnOffDynamics(data.train, p, q, 30, rng);
  ASSERT_EQ(data.train.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_LE(data.train[i].readings.size(), before[i].readings.size());
    // Surviving readings are unchanged (same mac -> same rss).
    for (const Reading& kept : data.train[i].readings) {
      bool found = false;
      for (const Reading& orig : before[i].readings) {
        if (orig.mac == kept.mac && orig.rss_dbm == kept.rss_dbm) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << kept.mac;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MarkovProperties,
    ::testing::Values(std::pair{0.1, 0.1}, std::pair{0.5, 0.5},
                      std::pair{0.9, 0.1}, std::pair{0.1, 0.9}));

}  // namespace
}  // namespace gem::rf

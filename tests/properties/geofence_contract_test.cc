// Contract test across every geofencing system in the evaluation:
// each must train on a small in-premises set, classify every streamed
// record (totality), treat degenerate records as outside, and produce
// finite scores.

#include <cmath>

#include <gtest/gtest.h>

#include "eval/systems.h"
#include "rf/dataset.h"

namespace gem::eval {
namespace {

rf::Dataset TinyDataset() {
  rf::DatasetOptions options;
  options.train_duration_s = 200.0;
  options.test_segments = 2;
  options.test_segment_duration_s = 60.0;
  options.seed = 33;
  return rf::GenerateScenarioDataset(rf::HomePreset(2), options);
}

class GeofenceContract : public ::testing::TestWithParam<AlgorithmId> {};

TEST_P(GeofenceContract, TrainsClassifiesAndHandlesDegenerates) {
  const rf::Dataset data = TinyDataset();
  auto system = MakeSystem(GetParam(), 33);
  ASSERT_TRUE(system->Train(data.train).ok()) << system->name();

  int inside = 0;
  int outside = 0;
  for (const rf::ScanRecord& record : data.test) {
    const core::InferenceResult result = system->Infer(record);
    EXPECT_TRUE(std::isfinite(result.score)) << system->name();
    (result.decision == core::Decision::kInside ? inside : outside)++;
  }
  // Non-degenerate behavior: both classes are predicted on a stream
  // that is roughly half inside, half outside.
  EXPECT_GT(inside, 0) << system->name();
  EXPECT_GT(outside, 0) << system->name();

  // A record of only never-before-seen MACs is outside for every
  // system (nothing ties it to the premises).
  rf::ScanRecord alien;
  alien.readings.push_back(
      rf::Reading{"ff:ff:ff:00:00:01", -60.0, rf::Band::k2_4GHz});
  alien.readings.push_back(
      rf::Reading{"ff:ff:ff:00:00:02", -65.0, rf::Band::k5GHz});
  EXPECT_EQ(system->Infer(alien).decision, core::Decision::kOutside)
      << system->name();

  // An empty record carries no evidence of being inside.
  EXPECT_EQ(system->Infer(rf::ScanRecord{}).decision,
            core::Decision::kOutside)
      << system->name();
}

TEST_P(GeofenceContract, RetrainOnEmptyFails) {
  auto system = MakeSystem(GetParam(), 33);
  EXPECT_FALSE(system->Train({}).ok()) << system->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, GeofenceContract,
    ::testing::ValuesIn(TableOneAlgorithms()),
    [](const ::testing::TestParamInfo<AlgorithmId>& info) {
      std::string name = AlgorithmName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace gem::eval

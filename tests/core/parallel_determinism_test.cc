// Deterministic-mode bit-identity across thread counts, and batched
// inference equivalence with the sequential path. These tests are part
// of the TSan CI matrix (the `parallel_` prefix), so they double as
// data-race coverage for parallel Train / EmbedNewBatch / InferBatch.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/gem.h"
#include "embed/bisage.h"
#include "graph/bipartite_graph.h"
#include "math/vec.h"
#include "rf/dataset.h"

namespace gem::core {
namespace {

// Thread count exercised by the "many threads" leg; CI overrides via
// GEM_THREADS to match the runner's core count.
int ManyThreads() {
  if (const char* env = std::getenv("GEM_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  return 8;
}

rf::Dataset SmallDataset(uint64_t seed = 77) {
  rf::DatasetOptions options;
  options.train_duration_s = 240.0;
  options.test_segments = 4;
  options.test_segment_duration_s = 60.0;
  options.seed = seed;
  return rf::GenerateScenarioDataset(rf::HomePreset(2), options);
}

embed::BiSageConfig FastBiSage(int num_threads, bool deterministic) {
  embed::BiSageConfig config;
  config.dimension = 16;
  config.epochs = 2;
  config.seed = 5;
  config.num_threads = num_threads;
  config.deterministic = deterministic;
  return config;
}

GemConfig FastGem(int num_threads, bool deterministic) {
  GemConfig config;
  config.bisage = FastBiSage(num_threads, deterministic);
  return config;
}

std::vector<math::Vec> TrainEmbeddings(const rf::Dataset& data,
                                       int num_threads) {
  embed::BiSageEmbedder embedder(FastBiSage(num_threads, true));
  EXPECT_TRUE(embedder.Fit(data.train).ok());
  std::vector<math::Vec> embeddings;
  embeddings.reserve(embedder.num_train());
  for (int i = 0; i < embedder.num_train(); ++i) {
    embeddings.push_back(embedder.TrainEmbedding(i));
  }
  return embeddings;
}

void ExpectBitIdentical(const std::vector<math::Vec>& a,
                        const std::vector<math::Vec>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << label << " record " << i;
    for (size_t k = 0; k < a[i].size(); ++k) {
      ASSERT_EQ(a[i][k], b[i][k])
          << label << " record " << i << " component " << k;
    }
  }
}

TEST(ParallelDeterminismTest, TrainIsBitIdenticalAcrossThreadCounts) {
  const rf::Dataset data = SmallDataset();
  const std::vector<math::Vec> serial = TrainEmbeddings(data, 1);
  ASSERT_FALSE(serial.empty());
  ExpectBitIdentical(serial, TrainEmbeddings(data, 2), "2 threads");
  ExpectBitIdentical(serial, TrainEmbeddings(data, ManyThreads()),
                     "many threads");
}

TEST(ParallelDeterminismTest, InferScoresAreBitIdenticalAcrossThreadCounts) {
  const rf::Dataset data = SmallDataset(31);
  std::vector<double> serial_scores;
  std::vector<Decision> serial_decisions;
  for (const int threads : {1, 2, ManyThreads()}) {
    Gem gem(FastGem(threads, true));
    ASSERT_TRUE(gem.Train(data.train).ok());
    std::vector<double> scores;
    std::vector<Decision> decisions;
    for (const rf::ScanRecord& record : data.test) {
      const InferenceResult result = gem.Infer(record);
      scores.push_back(result.score);
      decisions.push_back(result.decision);
    }
    if (threads == 1) {
      serial_scores = scores;
      serial_decisions = decisions;
      continue;
    }
    ASSERT_EQ(scores.size(), serial_scores.size());
    for (size_t i = 0; i < scores.size(); ++i) {
      ASSERT_EQ(scores[i], serial_scores[i]) << threads << " threads, " << i;
      ASSERT_EQ(decisions[i], serial_decisions[i]);
    }
  }
}

TEST(ParallelDeterminismTest, EmbedBatchMatchesSequentialEmbeds) {
  const rf::Dataset data = SmallDataset(42);
  Gem sequential(FastGem(1, true));
  Gem batched(FastGem(ManyThreads(), true));
  ASSERT_TRUE(sequential.Train(data.train).ok());
  ASSERT_TRUE(batched.Train(data.train).ok());

  const size_t n = std::min<size_t>(data.test.size(), 24);
  const std::vector<rf::ScanRecord> batch(data.test.begin(),
                                          data.test.begin() + n);
  const std::vector<StatusOr<math::Vec>> batch_out =
      batched.EmbedBatch(batch);
  ASSERT_EQ(batch_out.size(), n);
  for (size_t i = 0; i < n; ++i) {
    const StatusOr<math::Vec> one = sequential.EmbedRecord(batch[i]);
    ASSERT_EQ(batch_out[i].ok(), one.ok()) << "record " << i;
    if (!one.ok()) {
      EXPECT_EQ(batch_out[i].code(), one.code());
      continue;
    }
    ASSERT_EQ(batch_out[i]->size(), one->size());
    for (size_t k = 0; k < one->size(); ++k) {
      ASSERT_EQ((*batch_out[i])[k], (*one)[k]) << "record " << i;
    }
  }
}

TEST(ParallelDeterminismTest, InferBatchMatchesSequentialInferLoop) {
  const rf::Dataset data = SmallDataset(9);
  Gem sequential(FastGem(1, true));
  Gem batched(FastGem(ManyThreads(), true));
  ASSERT_TRUE(sequential.Train(data.train).ok());
  ASSERT_TRUE(batched.Train(data.train).ok());

  // The batch path must replay the sequential semantics exactly:
  // graph appends and detector self-enhancement happen in input order,
  // so scores, decisions, AND update flags line up bitwise.
  const std::vector<InferenceResult> batch_out =
      batched.InferBatch(data.test);
  ASSERT_EQ(batch_out.size(), data.test.size());
  for (size_t i = 0; i < data.test.size(); ++i) {
    const InferenceResult one = sequential.Infer(data.test[i]);
    ASSERT_EQ(batch_out[i].score, one.score) << "record " << i;
    ASSERT_EQ(batch_out[i].decision, one.decision) << "record " << i;
    ASSERT_EQ(batch_out[i].model_updated, one.model_updated)
        << "record " << i;
  }
}

TEST(ParallelDeterminismTest, UntrainedBatchReportsFailedPrecondition) {
  Gem gem(FastGem(2, false));
  const std::vector<rf::ScanRecord> batch(3);
  const std::vector<StatusOr<math::Vec>> out = gem.EmbedBatch(batch);
  ASSERT_EQ(out.size(), batch.size());
  for (const StatusOr<math::Vec>& e : out) {
    EXPECT_EQ(e.code(), StatusCode::kFailedPrecondition);
  }
}

TEST(ParallelDeterminismTest, ParallelDatasetGenerationMatchesSequential) {
  std::vector<rf::ScenarioJob> jobs;
  for (int user = 0; user < 4; ++user) {
    rf::ScenarioJob job;
    job.scenario = rf::HomePreset(user);
    job.options.train_duration_s = 120.0;
    job.options.test_segments = 2;
    job.options.test_segment_duration_s = 45.0;
    job.options.seed = 100 + user;
    jobs.push_back(job);
  }
  const std::vector<rf::Dataset> parallel =
      rf::GenerateScenarioDatasets(jobs, ManyThreads());
  const std::vector<rf::Dataset> serial =
      rf::GenerateScenarioDatasets(jobs, 1);
  ASSERT_EQ(parallel.size(), jobs.size());
  ASSERT_EQ(serial.size(), jobs.size());
  for (size_t j = 0; j < jobs.size(); ++j) {
    ASSERT_EQ(parallel[j].train.size(), serial[j].train.size());
    ASSERT_EQ(parallel[j].test.size(), serial[j].test.size());
    for (size_t i = 0; i < serial[j].train.size(); ++i) {
      const rf::ScanRecord& a = parallel[j].train[i];
      const rf::ScanRecord& b = serial[j].train[i];
      ASSERT_EQ(a.readings.size(), b.readings.size());
      for (size_t r = 0; r < b.readings.size(); ++r) {
        ASSERT_EQ(a.readings[r].mac, b.readings[r].mac);
        ASSERT_EQ(a.readings[r].rss_dbm, b.readings[r].rss_dbm);
      }
    }
  }
}

}  // namespace
}  // namespace gem::core

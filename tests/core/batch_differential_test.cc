// Differential testing of the batch inference paths: randomized (but
// seeded) workloads through Gem::InferBatch and serve::Engine::InferBatch
// must match a sequential Infer loop field-for-field — score, decision,
// AND model_updated — at 1, 2, and GEM_THREADS threads. Deterministic
// mode makes identically-configured models bit-identical across thread
// counts, so each leg trains a fresh model and compares against one
// precomputed sequential reference. Part of the TSan CI matrix via the
// `parallel_` prefix.
#include <algorithm>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/gem.h"
#include "rf/dataset.h"
#include "serve/engine.h"
#include "serve/fence_registry.h"

namespace gem::core {
namespace {

int ManyThreads() {
  if (const char* env = std::getenv("GEM_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  return 8;
}

rf::Dataset TwoClusterDataset(uint64_t seed) {
  // Home presets alternate inside/outside test segments — the workload
  // mixes the two clusters plus the unknown-MAC tail below.
  rf::DatasetOptions options;
  options.train_duration_s = 180.0;
  options.test_segments = 2;
  options.test_segment_duration_s = 60.0;
  options.seed = seed;
  return rf::GenerateScenarioDataset(rf::HomePreset(2), options);
}

GemConfig DeterministicConfig(int num_threads) {
  GemConfig config;
  config.bisage.dimension = 16;
  config.bisage.epochs = 2;
  config.bisage.seed = 5;
  config.bisage.num_threads = num_threads;
  config.bisage.deterministic = true;
  return config;
}

/// Seeded workload: the test stream shuffled out of scan order, a
/// sprinkling of never-trained MACs spliced into existing records, and
/// one record of nothing but unknown APs. Order and mutations are a
/// pure function of `seed`, so every leg sees the identical stream.
std::vector<rf::ScanRecord> BuildWorkload(const rf::Dataset& data,
                                          uint64_t seed) {
  std::vector<rf::ScanRecord> workload(data.test.begin(), data.test.end());
  std::mt19937_64 rng(seed);
  std::shuffle(workload.begin(), workload.end(), rng);
  for (size_t i = 0; i < workload.size(); ++i) {
    // Rename ~15% of non-leading readings to MACs the model never saw;
    // the leading reading stays so the record keeps a trained anchor.
    for (size_t r = 1; r < workload[i].readings.size(); ++r) {
      if (rng() % 100 < 15) {
        workload[i].readings[r].mac =
            "un:kn:" + std::to_string(i) + ":" + std::to_string(r);
      }
    }
  }
  // And one all-unknown record: both paths must agree on the degenerate
  // case too, whatever the model decides for it.
  if (!workload.empty()) {
    rf::ScanRecord ghost = workload.back();
    for (size_t r = 0; r < ghost.readings.size(); ++r) {
      ghost.readings[r].mac = "gh:os:t0:" + std::to_string(r);
    }
    workload.push_back(std::move(ghost));
  }
  return workload;
}

/// The sequential ground truth: a fresh single-threaded model fed the
/// workload one record at a time.
std::vector<InferenceResult> SequentialReference(
    const rf::Dataset& data, const std::vector<rf::ScanRecord>& workload) {
  Gem gem(DeterministicConfig(1));
  EXPECT_TRUE(gem.Train(data.train).ok());
  std::vector<InferenceResult> results;
  results.reserve(workload.size());
  for (const rf::ScanRecord& record : workload) {
    results.push_back(gem.Infer(record));
  }
  return results;
}

void ExpectFieldForField(const std::vector<InferenceResult>& actual,
                         const std::vector<InferenceResult>& expected,
                         const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i].score, expected[i].score)
        << label << " record " << i;
    ASSERT_EQ(actual[i].decision, expected[i].decision)
        << label << " record " << i;
    ASSERT_EQ(actual[i].model_updated, expected[i].model_updated)
        << label << " record " << i;
  }
}

TEST(BatchDifferentialTest, GemInferBatchMatchesSequentialLoop) {
  for (const uint64_t seed : {3u, 17u}) {
    const rf::Dataset data = TwoClusterDataset(seed);
    const std::vector<rf::ScanRecord> workload = BuildWorkload(data, seed);
    const std::vector<InferenceResult> expected =
        SequentialReference(data, workload);

    for (const int threads : {1, 2, ManyThreads()}) {
      Gem batched(DeterministicConfig(threads));
      ASSERT_TRUE(batched.Train(data.train).ok());
      ExpectFieldForField(batched.InferBatch(workload), expected,
                          "seed " + std::to_string(seed) + ", " +
                              std::to_string(threads) + " threads");
    }
  }
}

TEST(BatchDifferentialTest, EngineInferBatchMatchesSequentialLoop) {
  const uint64_t seed = 29;
  const rf::Dataset data = TwoClusterDataset(seed);
  const std::vector<rf::ScanRecord> workload = BuildWorkload(data, seed);
  const std::vector<InferenceResult> expected =
      SequentialReference(data, workload);

  for (const int threads : {1, 2, ManyThreads()}) {
    // The model's own pool does the intra-batch parallelism; the
    // engine's worker count just mirrors it for coverage.
    Gem model(DeterministicConfig(threads));
    ASSERT_TRUE(model.Train(data.train).ok());

    serve::FenceRegistry registry;
    ASSERT_TRUE(registry.Install("home", std::move(model)).ok());
    serve::EngineOptions options;
    options.num_threads = threads;
    serve::Engine engine(&registry, options);

    const serve::BatchServeResponse response =
        engine.InferBatch("home", workload);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ExpectFieldForField(response.results, expected,
                        std::to_string(threads) + " engine threads");
    engine.Shutdown();
  }
}

}  // namespace
}  // namespace gem::core

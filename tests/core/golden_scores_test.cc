// Golden regression over the full train -> infer pipeline: retrains in
// deterministic mode on a committed scenario dataset and compares every
// Infer result bit-exactly (hex-float scores, decisions, update flags)
// against a committed golden file. Any change to training, embedding,
// detection, or self-enhancement numerics shows up as a diff here —
// intentional changes regenerate with:
//
//   GEM_REGEN_GOLDEN=1 GEM_KERNELS=scalar ./golden_scores_test
//   GEM_REGEN_GOLDEN=1 GEM_KERNELS=avx2   ./golden_scores_test
//
// which rewrites tests/data/golden/ in the source tree (commit the
// result alongside the change that moved the numbers). The score
// fixture is per kernel backend (scores.scalar.golden /
// scores.avx2.golden): the SIMD backend's fixed-lane-order reductions
// and single-rounding FMAs are deterministic run-to-run but not
// bit-identical to the sequential scalar order, so each backend pins
// its own bits. scores.scalar.golden is byte-identical to the
// pre-kernel scores.golden — the scalar backend IS the seed numerics.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/gem.h"
#include "math/kernels.h"
#include "rf/dataset.h"
#include "rf/record_io.h"

#ifndef GEM_TEST_DATA_DIR
#error "golden_scores_test needs GEM_TEST_DATA_DIR (set in CMakeLists)"
#endif

namespace gem::core {
namespace {

std::string GoldenDir() {
  return std::string(GEM_TEST_DATA_DIR) + "/golden";
}

/// Single-threaded deterministic-mode config: bit-identical across
/// machines and (by the parallel_determinism suite's guarantee) across
/// thread counts, so the golden file is independent of where it was
/// produced.
GemConfig GoldenConfig() {
  GemConfig config;
  config.bisage.dimension = 16;
  config.bisage.epochs = 2;
  config.bisage.seed = 5;
  config.bisage.num_threads = 1;
  config.bisage.deterministic = true;
  return config;
}

/// "%a" renders the exact bits of the double; a one-ULP drift anywhere
/// in the pipeline changes the line.
std::string FormatResult(const InferenceResult& result) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%a %d %d", result.score,
                static_cast<int>(result.decision),
                result.model_updated ? 1 : 0);
  return buf;
}

TEST(GoldenScoresTest, InferResultsMatchCommittedGolden) {
  const std::string train_path = GoldenDir() + "/train.csv";
  const std::string test_path = GoldenDir() + "/test.csv";
  const std::string golden_path =
      GoldenDir() + "/scores." +
      math::kernels::BackendName(math::kernels::ActiveBackend()) +
      ".golden";
  const bool regen = std::getenv("GEM_REGEN_GOLDEN") != nullptr;

  if (regen) {
    // The scenario itself is pinned by seed; rewriting the CSVs keeps
    // the fixtures reproducible from this file alone.
    rf::DatasetOptions options;
    options.train_duration_s = 240.0;
    options.test_segments = 3;
    options.test_segment_duration_s = 60.0;
    options.seed = 2024;
    const rf::Dataset data =
        rf::GenerateScenarioDataset(rf::HomePreset(3), options);
    ASSERT_TRUE(rf::SaveRecordsCsv(train_path, data.train).ok());
    ASSERT_TRUE(rf::SaveRecordsCsv(test_path, data.test).ok());
  }

  // Always retrain from the CSVs (not the in-memory dataset) so the
  // verify path and the regen path exercise identical inputs.
  const auto train = rf::LoadRecordsCsv(train_path);
  ASSERT_TRUE(train.ok())
      << train.status().ToString()
      << " — run with GEM_REGEN_GOLDEN=1 to create the fixtures";
  const auto test = rf::LoadRecordsCsv(test_path);
  ASSERT_TRUE(test.ok()) << test.status().ToString();
  ASSERT_FALSE(test.value().empty());

  Gem gem(GoldenConfig());
  ASSERT_TRUE(gem.Train(train.value()).ok());
  std::vector<std::string> actual;
  actual.reserve(test.value().size());
  for (const rf::ScanRecord& record : test.value()) {
    actual.push_back(FormatResult(gem.Infer(record)));
  }

  if (regen) {
    std::ofstream out(golden_path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    for (const std::string& line : actual) out << line << '\n';
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "regenerated " << golden_path << " ("
                 << actual.size() << " results) — commit the new fixtures";
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good())
      << golden_path << " missing — run with GEM_REGEN_GOLDEN=1";
  std::vector<std::string> expected;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) expected.push_back(line);
  }

  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i])
        << "record " << i << " drifted (format: score decision updated); "
        << "if the numerics change is intentional, regenerate with "
        << "GEM_REGEN_GOLDEN=1 and commit";
  }
}

}  // namespace
}  // namespace gem::core

// Table-driven rejection tests for the Validate() surface introduced
// with the StatusOr migration: every invalid knob must come back as
// kInvalidArgument (never a crash), and defaults must validate clean.
#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/thread_pool.h"
#include "core/gem.h"
#include "detect/hbos.h"
#include "embed/bisage.h"
#include "serve/engine.h"

namespace gem {
namespace {

template <typename Config>
struct RejectionCase {
  std::string name;
  std::function<void(Config&)> mutate;
};

template <typename Config>
void RunRejectionTable(const std::vector<RejectionCase<Config>>& cases) {
  ASSERT_TRUE(Config{}.Validate().ok()) << "defaults must validate";
  for (const RejectionCase<Config>& c : cases) {
    Config config;
    c.mutate(config);
    const Status status = config.Validate();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << c.name;
    EXPECT_FALSE(status.message().empty()) << c.name;
  }
}

TEST(ConfigValidateTest, BiSageConfigRejections) {
  using Config = embed::BiSageConfig;
  RunRejectionTable<Config>({
      {"zero dimension", [](Config& c) { c.dimension = 0; }},
      {"negative dimension", [](Config& c) { c.dimension = -4; }},
      {"zero layers", [](Config& c) { c.num_layers = 0; }},
      {"fanouts size mismatch", [](Config& c) { c.fanouts = {5}; }},
      {"non-positive fanout", [](Config& c) { c.fanouts = {6, 0}; }},
      {"inference fanouts size mismatch",
       [](Config& c) { c.inference_fanouts = {3}; }},
      {"zero walks per node", [](Config& c) { c.walks_per_node = 0; }},
      {"zero walk length", [](Config& c) { c.walk_length = 0; }},
      {"zero epochs", [](Config& c) { c.epochs = 0; }},
      {"negative negatives", [](Config& c) { c.num_negatives = -1; }},
      {"zero learning rate", [](Config& c) { c.learning_rate = 0.0; }},
      {"nan learning rate",
       [](Config& c) { c.learning_rate = std::nan(""); }},
      {"zero batch pairs", [](Config& c) { c.batch_pairs = 0; }},
      {"zero min mac degree", [](Config& c) { c.min_mac_degree = 0; }},
      {"zero threads", [](Config& c) { c.num_threads = 0; }},
      {"too many threads",
       [](Config& c) { c.num_threads = ThreadPoolOptions::kMaxThreads + 1; }},
  });
}

TEST(ConfigValidateTest, EnhancedHbosOptionsRejections) {
  using Config = detect::EnhancedHbosOptions;
  RunRejectionTable<Config>({
      {"zero bins", [](Config& c) { c.bins = 0; }},
      {"zero temperature", [](Config& c) { c.temperature = 0.0; }},
      {"infinite temperature",
       [](Config& c) { c.temperature = std::numeric_limits<double>::infinity(); }},
      {"tau_upper at one", [](Config& c) { c.tau_upper = 1.0; }},
      {"tau_upper non-positive", [](Config& c) { c.tau_upper = 0.0; }},
      {"tau_lower above tau_upper",
       [](Config& c) { c.tau_lower = c.tau_upper * 2; }},
      {"one calibration fold", [](Config& c) { c.calibration_folds = 1; }},
      {"inverted percentiles",
       [](Config& c) {
         c.calibration_upper_percentile = 40.0;
         c.calibration_lower_percentile = 60.0;
       }},
      {"percentile above 100",
       [](Config& c) { c.calibration_upper_percentile = 101.0; }},
      {"negative spread factor",
       [](Config& c) { c.calibration_spread_factor = -0.5; }},
      {"negative retained samples",
       [](Config& c) { c.max_retained_samples = -1; }},
  });
}

TEST(ConfigValidateTest, ThreadPoolOptionsRejections) {
  using Config = ThreadPoolOptions;
  RunRejectionTable<Config>({
      {"zero threads", [](Config& c) { c.num_threads = 0; }},
      {"negative threads", [](Config& c) { c.num_threads = -1; }},
      {"too many threads",
       [](Config& c) { c.num_threads = Config::kMaxThreads + 1; }},
  });
}

TEST(ConfigValidateTest, EngineOptionsRejections) {
  using Config = serve::EngineOptions;
  RunRejectionTable<Config>({
      {"zero threads", [](Config& c) { c.num_threads = 0; }},
      {"zero queue depth", [](Config& c) { c.max_queue_depth = 0; }},
  });
}

TEST(ConfigValidateTest, GemConfigPropagatesNestedErrors) {
  using Config = core::GemConfig;
  RunRejectionTable<Config>({
      {"bad bisage", [](Config& c) { c.bisage.dimension = 0; }},
      {"bad bisage threads", [](Config& c) { c.bisage.num_threads = -2; }},
      {"bad detector", [](Config& c) { c.detector.bins = 0; }},
  });
}

TEST(ConfigValidateTest, TrainRefusesInvalidConfig) {
  core::GemConfig config;
  config.bisage.num_threads = 0;
  core::Gem gem(config);
  const Status status = gem.Train({rf::ScanRecord{}});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ConfigValidateTest, EngineCreateRefusesInvalidOptions) {
  serve::FenceRegistry registry;
  serve::EngineOptions options;
  options.num_threads = 0;
  const auto engine = serve::Engine::Create(&registry, options);
  EXPECT_EQ(engine.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(serve::Engine::Create(nullptr, serve::EngineOptions{}).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gem

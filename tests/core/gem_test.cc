#include "core/gem.h"

#include <gtest/gtest.h>

#include "math/metrics.h"
#include "rf/dataset.h"

namespace gem::core {
namespace {

rf::Dataset SmallDataset(int user = 2, uint64_t seed = 77) {
  rf::DatasetOptions options;
  options.train_duration_s = 300.0;
  options.test_segments = 4;
  options.test_segment_duration_s = 90.0;
  options.seed = seed;
  return rf::GenerateScenarioDataset(rf::HomePreset(user), options);
}

GemConfig FastConfig() {
  GemConfig config;
  config.bisage.dimension = 16;
  config.bisage.epochs = 2;
  return config;
}

TEST(GemTest, TrainRequiresRecords) {
  Gem gem(FastConfig());
  EXPECT_FALSE(gem.Train({}).ok());
}

TEST(GemTest, EndToEndDetectionQuality) {
  const rf::Dataset data = SmallDataset();
  Gem gem(FastConfig());
  ASSERT_TRUE(gem.Train(data.train).ok());

  std::vector<bool> actual;
  std::vector<bool> predicted;
  for (const rf::ScanRecord& record : data.test) {
    const InferenceResult result = gem.Infer(record);
    actual.push_back(record.inside);
    predicted.push_back(result.decision == Decision::kInside);
  }
  const math::InOutMetrics m = math::ComputeInOutMetrics(actual, predicted);
  EXPECT_GT(m.f_in, 0.85);
  EXPECT_GT(m.f_out, 0.8);
}

TEST(GemTest, ScoresRankOutsideAboveInside) {
  const rf::Dataset data = SmallDataset(0, 31);
  Gem gem(FastConfig());
  ASSERT_TRUE(gem.Train(data.train).ok());

  math::Vec scores;
  std::vector<bool> is_outside;
  for (const rf::ScanRecord& record : data.test) {
    const InferenceResult result = gem.Infer(record);
    scores.push_back(result.score);
    is_outside.push_back(!record.inside);
  }
  EXPECT_GT(math::RocAuc(scores, is_outside), 0.9);
}

TEST(GemTest, UnknownMacRecordIsOutsideAlert) {
  const rf::Dataset data = SmallDataset();
  Gem gem(FastConfig());
  ASSERT_TRUE(gem.Train(data.train).ok());

  rf::ScanRecord alien;
  alien.readings.push_back(
      rf::Reading{"ff:ff:00:00:00:01", -60.0, rf::Band::k2_4GHz});
  const InferenceResult result = gem.Infer(alien);
  EXPECT_EQ(result.decision, Decision::kOutside);
  EXPECT_DOUBLE_EQ(result.score, 1.0);
}

TEST(GemTest, EmptyRecordIsOutsideAlert) {
  const rf::Dataset data = SmallDataset();
  Gem gem(FastConfig());
  ASSERT_TRUE(gem.Train(data.train).ok());
  const InferenceResult result = gem.Infer(rf::ScanRecord{});
  EXPECT_EQ(result.decision, Decision::kOutside);
}

TEST(GemTest, OnlineUpdateAbsorbsConfidentInside) {
  const rf::Dataset data = SmallDataset();
  Gem gem(FastConfig());
  ASSERT_TRUE(gem.Train(data.train).ok());
  int updates = 0;
  for (const rf::ScanRecord& record : data.test) {
    updates += gem.Infer(record).model_updated ? 1 : 0;
  }
  EXPECT_GT(updates, 5);
}

TEST(GemTest, OnlineUpdateDisabledNeverUpdates) {
  const rf::Dataset data = SmallDataset();
  GemConfig config = FastConfig();
  config.online_update = false;
  Gem gem(config);
  ASSERT_TRUE(gem.Train(data.train).ok());
  for (const rf::ScanRecord& record : data.test) {
    EXPECT_FALSE(gem.Infer(record).model_updated);
  }
}

TEST(GemTest, StageMethodsComposeLikeInfer) {
  const rf::Dataset data = SmallDataset();
  GemConfig config = FastConfig();
  config.online_update = false;  // keep the model static for comparison
  Gem staged(config);
  Gem direct(config);
  ASSERT_TRUE(staged.Train(data.train).ok());
  ASSERT_TRUE(direct.Train(data.train).ok());

  for (int i = 0; i < 20; ++i) {
    const rf::ScanRecord& record = data.test[i];
    const auto embedding = staged.EmbedRecord(record);
    const InferenceResult via_infer = direct.Infer(record);
    if (!embedding.ok()) {
      EXPECT_EQ(via_infer.decision, Decision::kOutside);
      continue;
    }
    const InferenceResult via_stages = staged.Detect(*embedding);
    EXPECT_EQ(via_stages.decision, via_infer.decision) << "record " << i;
    EXPECT_DOUBLE_EQ(via_stages.score, via_infer.score);
  }
}

}  // namespace
}  // namespace gem::core

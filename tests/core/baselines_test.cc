#include <gtest/gtest.h>

#include "core/embedding_pipeline.h"
#include "core/inoa.h"
#include "core/signature_home.h"
#include "detect/iforest.h"
#include "embed/matrix_rep.h"
#include "math/metrics.h"
#include "rf/dataset.h"

namespace gem::core {
namespace {

rf::Dataset SmallDataset(int user = 2, uint64_t seed = 91) {
  rf::DatasetOptions options;
  options.train_duration_s = 300.0;
  options.test_segments = 4;
  options.test_segment_duration_s = 90.0;
  options.seed = seed;
  return rf::GenerateScenarioDataset(rf::HomePreset(user), options);
}

math::InOutMetrics Evaluate(GeofencingSystem& system,
                            const rf::Dataset& data) {
  std::vector<bool> actual;
  std::vector<bool> predicted;
  for (const rf::ScanRecord& record : data.test) {
    const InferenceResult result = system.Infer(record);
    actual.push_back(record.inside);
    predicted.push_back(result.decision == Decision::kInside);
  }
  return math::ComputeInOutMetrics(actual, predicted);
}

TEST(SignatureHomeTest, RejectsTinyTraining) {
  SignatureHome system;
  EXPECT_FALSE(system.Train({}).ok());
  EXPECT_FALSE(system.Train({rf::ScanRecord{}}).ok());
}

TEST(SignatureHomeTest, ReasonableInsideDetection) {
  const rf::Dataset data = SmallDataset();
  SignatureHome system;
  ASSERT_TRUE(system.Train(data.train).ok());
  const math::InOutMetrics m = Evaluate(system, data);
  // SignatureHome's paper-reported profile: strong in-premises
  // detection; outside detection may lag.
  EXPECT_GT(m.f_in, 0.7);
}

TEST(SignatureHomeTest, EmptyRecordIsOutside) {
  const rf::Dataset data = SmallDataset();
  SignatureHome system;
  ASSERT_TRUE(system.Train(data.train).ok());
  EXPECT_EQ(system.Infer(rf::ScanRecord{}).decision, Decision::kOutside);
}

TEST(SignatureHomeTest, FarAwayRecordIsOutside) {
  const rf::Dataset data = SmallDataset();
  SignatureHome system;
  ASSERT_TRUE(system.Train(data.train).ok());
  rf::ScanRecord far;
  far.readings.push_back(
      rf::Reading{"ff:ff:00:00:00:01", -60.0, rf::Band::k2_4GHz});
  EXPECT_EQ(system.Infer(far).decision, Decision::kOutside);
}

TEST(InoaTest, RejectsEmptyTraining) {
  Inoa system;
  EXPECT_FALSE(system.Train({}).ok());
}

TEST(InoaTest, BuildsPairModels) {
  const rf::Dataset data = SmallDataset();
  Inoa system;
  ASSERT_TRUE(system.Train(data.train).ok());
  EXPECT_GT(system.num_modeled_pairs(), 10);
}

TEST(InoaTest, DetectsFarOutside) {
  const rf::Dataset data = SmallDataset();
  Inoa system;
  ASSERT_TRUE(system.Train(data.train).ok());
  rf::ScanRecord far;
  far.readings.push_back(
      rf::Reading{"ff:ff:00:00:00:01", -60.0, rf::Band::k2_4GHz});
  EXPECT_EQ(system.Infer(far).decision, Decision::kOutside);
}

TEST(InoaTest, ReasonableOverallQuality) {
  const rf::Dataset data = SmallDataset();
  Inoa system;
  ASSERT_TRUE(system.Train(data.train).ok());
  const math::InOutMetrics m = Evaluate(system, data);
  EXPECT_GT(m.f_in + m.f_out, 1.0);
}

TEST(EmbeddingPipelineTest, RawPlusIForestWorksEndToEnd) {
  const rf::Dataset data = SmallDataset();
  EmbeddingPipeline pipeline(
      "raw+iforest", std::make_unique<embed::RawVectorEmbedder>(),
      std::make_unique<detect::IsolationForest>());
  ASSERT_TRUE(pipeline.Train(data.train).ok());
  const math::InOutMetrics m = Evaluate(pipeline, data);
  EXPECT_GT(m.f_in, 0.5);
  EXPECT_EQ(pipeline.name(), "raw+iforest");
}

TEST(EmbeddingPipelineTest, PropagatesEmbedderFailure) {
  EmbeddingPipeline pipeline(
      "raw+iforest", std::make_unique<embed::RawVectorEmbedder>(),
      std::make_unique<detect::IsolationForest>());
  EXPECT_FALSE(pipeline.Train({}).ok());
}

}  // namespace
}  // namespace gem::core

// Scalar-vs-AVX2 differential over the full inference path: train one
// deterministic model (under the scalar backend, so the weights are a
// fixed reference), then recompute training-node embeddings and
// detector scores under each kernel backend and bound the drift.
//
// The two backends are NOT bit-exact by contract — AVX2 reassociates
// reductions into fixed lane order and FMA rounds once — but for the
// shallow BiSAGE forward pass the accumulated drift must stay below
// 1e-9 per embedding component and per score (observed: a few ULPs).
// Training is done once, not per backend: comparing two independently
// trained models would amplify ULP drift through epochs of SGD and
// measure nothing useful.
//
// The comparison is per layer, not end-to-end: HBOS scores are a step
// function of the embedding (histogram bin lookups), so a 1-ULP
// embedding drift that lands exactly on a bin edge legitimately moves
// the score by a whole bin's log-density. Scoring is therefore
// differentialed on the SAME embedding under each backend, which pins
// the bins and exposes only the detector's own kernel usage.

#include <cmath>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "core/gem.h"
#include "math/kernels.h"
#include "rf/dataset.h"

namespace gem::core {
namespace {

namespace kernels = math::kernels;

constexpr double kTolerance = 1e-9;

GemConfig DifferentialConfig() {
  GemConfig config;
  config.bisage.dimension = 16;
  config.bisage.epochs = 2;
  config.bisage.seed = 5;
  config.bisage.num_threads = 1;
  config.bisage.deterministic = true;
  return config;
}

TEST(KernelsDifferentialTest, EmbeddingsAndScoresAgreeAcrossBackends) {
  if (!kernels::Avx2Available()) {
    GTEST_SKIP() << "no AVX2+FMA on this CPU — nothing to differentiate";
  }
  const kernels::Backend original =
      kernels::ForceBackendForTest(kernels::Backend::kScalar);

  rf::DatasetOptions options;
  options.train_duration_s = 180.0;
  options.test_segments = 2;
  options.test_segment_duration_s = 45.0;
  options.seed = 77;
  const rf::Dataset data =
      rf::GenerateScenarioDataset(rf::HomePreset(3), options);

  Gem gem(DifferentialConfig());
  ASSERT_TRUE(gem.Train(data.train).ok());

  const int num_nodes =
      std::min<int>(48, static_cast<int>(data.train.size()));
  ASSERT_GT(num_nodes, 0);
  double max_component_drift = 0.0;
  double max_score_drift = 0.0;
  for (int i = 0; i < num_nodes; ++i) {
    // Layer 1: the tape-free forward pass, whole pipeline's hot path.
    kernels::ForceBackendForTest(kernels::Backend::kScalar);
    const math::Vec scalar_embedding = gem.embedder().TrainEmbedding(i);
    kernels::ForceBackendForTest(kernels::Backend::kAvx2);
    const math::Vec avx2_embedding = gem.embedder().TrainEmbedding(i);

    ASSERT_EQ(scalar_embedding.size(), avx2_embedding.size());
    for (size_t d = 0; d < scalar_embedding.size(); ++d) {
      const double drift =
          std::abs(scalar_embedding[d] - avx2_embedding[d]);
      max_component_drift = std::max(max_component_drift, drift);
      EXPECT_LE(drift, kTolerance)
          << "node " << i << " component " << d << ": "
          << scalar_embedding[d] << " vs " << avx2_embedding[d];
    }

    // Layer 2: detection, scored on ONE embedding so both backends see
    // identical histogram bins (see header comment).
    kernels::ForceBackendForTest(kernels::Backend::kScalar);
    const InferenceResult scalar_result = gem.Detect(scalar_embedding);
    kernels::ForceBackendForTest(kernels::Backend::kAvx2);
    const InferenceResult avx2_result = gem.Detect(scalar_embedding);
    const double score_drift =
        std::abs(scalar_result.score - avx2_result.score);
    max_score_drift = std::max(max_score_drift, score_drift);
    EXPECT_LE(score_drift, kTolerance) << "node " << i;
    EXPECT_EQ(scalar_result.decision, avx2_result.decision) << "node " << i;
  }
  kernels::ForceBackendForTest(original);

  RecordProperty("max_component_drift", std::to_string(max_component_drift));
  RecordProperty("max_score_drift", std::to_string(max_score_drift));
}

}  // namespace
}  // namespace gem::core

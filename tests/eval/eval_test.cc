#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "eval/csv.h"
#include "eval/evaluate.h"
#include "eval/systems.h"
#include "eval/table.h"
#include "rf/dataset.h"

namespace gem::eval {
namespace {

rf::Dataset TinyDataset() {
  rf::DatasetOptions options;
  options.train_duration_s = 180.0;
  options.test_segments = 2;
  options.test_segment_duration_s = 60.0;
  options.seed = 5;
  return rf::GenerateScenarioDataset(rf::HomePreset(2), options);
}

TEST(SystemsTest, TableOneListsNinePaperRows) {
  EXPECT_EQ(TableOneAlgorithms().size(), 9u);
}

TEST(SystemsTest, EveryAlgorithmConstructsAndNames) {
  for (const AlgorithmId id : TableOneAlgorithms()) {
    auto system = MakeSystem(id);
    ASSERT_NE(system, nullptr);
    EXPECT_FALSE(system->name().empty());
  }
  EXPECT_NE(MakeSystem(AlgorithmId::kRawOd), nullptr);
}

TEST(EvaluateTest, RunsEveryRecordAndCountsUpdates) {
  const rf::Dataset data = TinyDataset();
  core::GemConfig config;
  config.bisage.dimension = 16;
  config.bisage.epochs = 2;
  auto system = MakeSystem(AlgorithmId::kGem, 5, config);
  auto result = Evaluate(*system, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().scores.size(), data.test.size());
  EXPECT_EQ(result.value().is_outside.size(), data.test.size());
  EXPECT_GE(result.value().updates, 0);
  EXPECT_GT(result.value().train_seconds, 0.0);
  EXPECT_GT(result.value().infer_seconds, 0.0);
}

TEST(EvaluateTest, TrainFailureSurfacesStatus) {
  rf::Dataset empty;
  auto system = MakeSystem(AlgorithmId::kSignatureHome);
  auto result = Evaluate(*system, empty);
  EXPECT_FALSE(result.ok());
}

TEST(AggregateTest, SummarizesRuns) {
  math::InOutMetrics a;
  a.f_in = 0.9;
  a.f_out = 0.8;
  math::InOutMetrics b;
  b.f_in = 0.7;
  b.f_out = 1.0;
  const AggregateMetrics agg = Aggregate({a, b});
  EXPECT_DOUBLE_EQ(agg.f_in.mean, 0.8);
  EXPECT_DOUBLE_EQ(agg.f_in.min, 0.7);
  EXPECT_DOUBLE_EQ(agg.f_in.max, 0.9);
  EXPECT_DOUBLE_EQ(agg.f_out.mean, 0.9);
}

TEST(TableTest, FormatsSummaryCells) {
  EXPECT_EQ(FormatSummary({0.98123, 0.941, 1.0}), "0.98 (0.94, 1.00)");
  EXPECT_EQ(FormatValue(0.12345), "0.123");
}

TEST(TableTest, RendersAlignedColumns) {
  TextTable table({"A", "LongHeader"});
  table.AddRow({"value-one", "x"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("A          LongHeader"), std::string::npos);
  EXPECT_NE(out.find("value-one"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(CsvTest, WritesQuotedCells) {
  const std::string path =
      std::string(::testing::TempDir()) + "/eval_test.csv";
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.ok());
    csv.WriteHeader({"a", "b"});
    csv.WriteRow({"plain", "with,comma"});
    csv.WriteNumericRow({1.5, -2.0});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"with,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,-2");
}

TEST(FlagsTest, ParsesCsvAndFullFlags) {
  const char* argv[] = {"prog", "--csv", "/tmp/x", "--full"};
  EXPECT_EQ(CsvDirFromArgs(4, const_cast<char**>(argv)), "/tmp/x");
  EXPECT_TRUE(FullScaleFromArgs(4, const_cast<char**>(argv)));
  const char* bare[] = {"prog"};
  EXPECT_EQ(CsvDirFromArgs(1, const_cast<char**>(bare)), "");
  EXPECT_FALSE(FullScaleFromArgs(1, const_cast<char**>(bare)));
}

}  // namespace
}  // namespace gem::eval

#include "graph/edge_weight.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gem::graph {
namespace {

TEST(EdgeWeightTest, LinearOffsetMatchesPaper) {
  EdgeWeightConfig config;  // c = 120
  EXPECT_DOUBLE_EQ(EdgeWeight(-60.0, config), 60.0);
  EXPECT_DOUBLE_EQ(EdgeWeight(-90.0, config), 30.0);
}

TEST(EdgeWeightTest, AlwaysPositive) {
  for (const WeightKind kind :
       {WeightKind::kLinearOffset, WeightKind::kExponential,
        WeightKind::kBinary, WeightKind::kSquaredOffset}) {
    EdgeWeightConfig config;
    config.kind = kind;
    for (double rss = -130.0; rss <= -20.0; rss += 5.0) {
      EXPECT_GT(EdgeWeight(rss, config), 0.0)
          << "kind " << static_cast<int>(kind) << " rss " << rss;
    }
  }
}

TEST(EdgeWeightTest, MonotoneInRss) {
  for (const WeightKind kind :
       {WeightKind::kLinearOffset, WeightKind::kExponential,
        WeightKind::kSquaredOffset}) {
    EdgeWeightConfig config;
    config.kind = kind;
    double prev = 0.0;
    for (double rss = -110.0; rss <= -20.0; rss += 5.0) {
      const double w = EdgeWeight(rss, config);
      EXPECT_GE(w, prev);
      prev = w;
    }
  }
}

TEST(EdgeWeightTest, BinaryIgnoresRss) {
  EdgeWeightConfig config;
  config.kind = WeightKind::kBinary;
  EXPECT_DOUBLE_EQ(EdgeWeight(-30.0, config), EdgeWeight(-90.0, config));
}

TEST(EdgeWeightTest, ExponentialScale) {
  EdgeWeightConfig config;
  config.kind = WeightKind::kExponential;
  config.exp_scale = 20.0;
  EXPECT_NEAR(EdgeWeight(-40.0, config) / EdgeWeight(-60.0, config),
              std::exp(1.0), 1e-9);
}

TEST(EdgeWeightTest, SquaredOffset) {
  EdgeWeightConfig config;
  config.kind = WeightKind::kSquaredOffset;
  EXPECT_DOUBLE_EQ(EdgeWeight(-60.0, config), 3600.0);
}

}  // namespace
}  // namespace gem::graph

#include "graph/bipartite_graph.h"

#include <gtest/gtest.h>

#include <map>

namespace gem::graph {
namespace {

rf::ScanRecord MakeRecord(std::vector<std::pair<std::string, double>> pairs) {
  rf::ScanRecord record;
  for (auto& [mac, rss] : pairs) {
    record.readings.push_back(rf::Reading{mac, rss, rf::Band::k2_4GHz});
  }
  return record;
}

TEST(BipartiteGraphTest, BuildsNodesAndEdges) {
  BipartiteGraph graph;
  const NodeId r1 = graph.AddRecord(
      MakeRecord({{"a", -50.0}, {"b", -60.0}, {"c", -70.0}}));
  const NodeId r2 = graph.AddRecord(MakeRecord({{"c", -55.0}, {"d", -65.0}}));

  EXPECT_EQ(graph.num_records(), 2);
  EXPECT_EQ(graph.num_macs(), 4);
  EXPECT_EQ(graph.num_nodes(), 6);
  EXPECT_EQ(graph.type(r1), NodeType::kRecord);
  EXPECT_EQ(graph.degree(r1), 3);
  EXPECT_EQ(graph.degree(r2), 2);

  // Shared MAC "c" connects both records.
  const auto c = graph.FindMac("c");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(graph.type(*c), NodeType::kMac);
  EXPECT_EQ(graph.degree(*c), 2);
}

TEST(BipartiteGraphTest, EdgeWeightsFollowRss) {
  BipartiteGraph graph;  // linear offset, c = 120
  const NodeId r = graph.AddRecord(MakeRecord({{"a", -50.0}, {"b", -80.0}}));
  const auto& adj = graph.neighbors(r);
  ASSERT_EQ(adj.size(), 2u);
  EXPECT_DOUBLE_EQ(adj[0].weight, 70.0);
  EXPECT_DOUBLE_EQ(adj[1].weight, 40.0);
  EXPECT_DOUBLE_EQ(graph.weight_sum(r), 110.0);
}

TEST(BipartiteGraphTest, EmptyRecordIsIsolated) {
  BipartiteGraph graph;
  const NodeId r = graph.AddRecord(rf::ScanRecord{});
  EXPECT_EQ(graph.degree(r), 0);
  math::Rng rng(1);
  EXPECT_TRUE(graph.SampleNeighbors(r, 5, rng).empty());
  EXPECT_EQ(graph.RandomWalk(r, 4, rng).size(), 1u);
}

TEST(BipartiteGraphTest, CountKnownMacs) {
  BipartiteGraph graph;
  graph.AddRecord(MakeRecord({{"a", -50.0}, {"b", -60.0}}));
  EXPECT_EQ(graph.CountKnownMacs(MakeRecord({{"a", -55.0}, {"z", -70.0}})), 1);
  EXPECT_EQ(graph.CountKnownMacs(MakeRecord({{"x", -55.0}, {"z", -70.0}})), 0);
}

TEST(BipartiteGraphTest, SamplingProportionalToWeight) {
  BipartiteGraph graph;
  // Weights 90 and 30: MAC "a" should be sampled ~3x as often as "b".
  const NodeId r = graph.AddRecord(MakeRecord({{"a", -30.0}, {"b", -90.0}}));
  math::Rng rng(5);
  std::map<NodeId, int> counts;
  const int n = 60000;
  for (const Neighbor& nb : graph.SampleNeighbors(r, n, rng)) {
    counts[nb.node]++;
  }
  const NodeId a = *graph.FindMac("a");
  const NodeId b = *graph.FindMac("b");
  EXPECT_NEAR(counts[a] / static_cast<double>(n), 0.75, 0.01);
  EXPECT_NEAR(counts[b] / static_cast<double>(n), 0.25, 0.01);
}

TEST(BipartiteGraphTest, SamplingWorksAfterGraphGrowth) {
  // MAC node alias caches must be invalidated when later records attach
  // new edges to them.
  BipartiteGraph graph;
  graph.AddRecord(MakeRecord({{"a", -50.0}}));
  const NodeId a = *graph.FindMac("a");
  math::Rng rng(6);
  (void)graph.SampleNeighbors(a, 3, rng);  // builds the cache (degree 1)
  graph.AddRecord(MakeRecord({{"a", -50.0}}));
  // Now degree 2: both record nodes must appear.
  std::map<NodeId, int> counts;
  for (const Neighbor& nb : graph.SampleNeighbors(a, 2000, rng)) {
    counts[nb.node]++;
  }
  EXPECT_EQ(counts.size(), 2u);
}

TEST(BipartiteGraphTest, RandomWalkAlternatesTypes) {
  BipartiteGraph graph;
  graph.AddRecord(MakeRecord({{"a", -50.0}, {"b", -60.0}}));
  graph.AddRecord(MakeRecord({{"a", -55.0}, {"c", -65.0}}));
  graph.AddRecord(MakeRecord({{"b", -52.0}, {"c", -62.0}}));
  math::Rng rng(7);
  const auto walk = graph.RandomWalk(0, 8, rng);
  ASSERT_EQ(walk.size(), 9u);
  for (size_t i = 0; i < walk.size(); ++i) {
    const NodeType expected =
        i % 2 == 0 ? NodeType::kRecord : NodeType::kMac;
    EXPECT_EQ(graph.type(walk[i]), expected) << "step " << i;
  }
}

TEST(BipartiteGraphTest, RandomWalkStepsAreEdges) {
  BipartiteGraph graph;
  graph.AddRecord(MakeRecord({{"a", -50.0}, {"b", -60.0}}));
  graph.AddRecord(MakeRecord({{"b", -55.0}, {"c", -65.0}}));
  math::Rng rng(8);
  const auto walk = graph.RandomWalk(0, 20, rng);
  for (size_t i = 1; i < walk.size(); ++i) {
    bool is_edge = false;
    for (const Neighbor& nb : graph.neighbors(walk[i - 1])) {
      is_edge |= nb.node == walk[i];
    }
    EXPECT_TRUE(is_edge) << "step " << i;
  }
}

TEST(BipartiteGraphTest, NegativeSamplingFavorsHighDegree) {
  BipartiteGraph graph;
  // MAC "hub" appears in every record; "rare" in one.
  for (int i = 0; i < 20; ++i) {
    auto record = MakeRecord({{"hub", -50.0}});
    if (i == 0) {
      record.readings.push_back(rf::Reading{"rare", -60.0,
                                            rf::Band::k2_4GHz});
    }
    graph.AddRecord(record);
  }
  const NodeId hub = *graph.FindMac("hub");
  const NodeId rare = *graph.FindMac("rare");
  math::Rng rng(9);
  int hub_count = 0;
  int rare_count = 0;
  for (int i = 0; i < 20000; ++i) {
    const NodeId z = graph.SampleNegative(rng);
    if (z == hub) ++hub_count;
    if (z == rare) ++rare_count;
  }
  // deg(hub)=20 vs deg(rare)=1 -> ratio 20^{0.75} ~ 9.5.
  EXPECT_GT(hub_count, 5 * rare_count);
}

TEST(BipartiteGraphTest, WeightConfigRespected) {
  EdgeWeightConfig config;
  config.kind = WeightKind::kBinary;
  BipartiteGraph graph(config);
  const NodeId r = graph.AddRecord(MakeRecord({{"a", -30.0}, {"b", -90.0}}));
  for (const Neighbor& nb : graph.neighbors(r)) {
    EXPECT_DOUBLE_EQ(nb.weight, 1.0);
  }
}

}  // namespace
}  // namespace gem::graph

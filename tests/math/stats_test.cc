#include "math/stats.h"

#include <gtest/gtest.h>

namespace gem::math {
namespace {

TEST(StatsTest, MeanBasic) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(StatsTest, StdDevSample) {
  // Sample stddev of {2,4,4,4,5,5,7,9} with n-1 denominator.
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.13809, 1e-4);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0.0);
}

TEST(StatsTest, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3, -1, 2}), -1.0);
  EXPECT_DOUBLE_EQ(Max({3, -1, 2}), 3.0);
}

TEST(StatsTest, PercentileEndpoints) {
  const Vec v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
}

TEST(StatsTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 25), 2.5);
}

TEST(StatsTest, MinMaxNormalize) {
  Vec v{10, 20, 30};
  MinMaxNormalize(v);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.5);
  EXPECT_DOUBLE_EQ(v[2], 1.0);
}

TEST(StatsTest, MinMaxNormalizeConstantInput) {
  Vec v{5, 5, 5};
  MinMaxNormalize(v);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(StatsTest, Summarize) {
  const Summary s = Summarize({1, 2, 6});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
}

}  // namespace
}  // namespace gem::math

#include "math/eigen.h"

#include <gtest/gtest.h>

#include "math/rng.h"

namespace gem::math {
namespace {

TEST(EigenTest, DiagonalMatrix) {
  Matrix a(3, 3, 0.0);
  a.At(0, 0) = 3.0;
  a.At(1, 1) = 1.0;
  a.At(2, 2) = 2.0;
  auto result = JacobiEigenSymmetric(a);
  ASSERT_TRUE(result.ok());
  const auto& eig = result.value();
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-10);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-10);
}

TEST(EigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a.At(0, 0) = 2;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 2;
  auto result = JacobiEigenSymmetric(a);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().values[0], 3.0, 1e-10);
  EXPECT_NEAR(result.value().values[1], 1.0, 1e-10);
}

TEST(EigenTest, NonSquareRejected) {
  EXPECT_FALSE(JacobiEigenSymmetric(Matrix(2, 3)).ok());
}

TEST(EigenTest, ReconstructsRandomSymmetric) {
  Rng rng(5);
  const int n = 8;
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double v = rng.Uniform(-1, 1);
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
  }
  auto result = JacobiEigenSymmetric(a);
  ASSERT_TRUE(result.ok());
  const auto& eig = result.value();

  // Check A v_i = lambda_i v_i and orthonormality.
  for (int i = 0; i < n; ++i) {
    const Vec v = eig.vectors.Row(i);
    EXPECT_NEAR(Norm2(v), 1.0, 1e-8);
    const Vec av = a.MatVec(v);
    for (int k = 0; k < n; ++k) {
      EXPECT_NEAR(av[k], eig.values[i] * v[k], 1e-7);
    }
    for (int j = i + 1; j < n; ++j) {
      EXPECT_NEAR(Dot(v, eig.vectors.Row(j)), 0.0, 1e-8);
    }
  }
}

TEST(EigenTest, TraceEqualsEigenvalueSum) {
  Rng rng(9);
  const int n = 6;
  Matrix a(n, n);
  double trace = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double v = rng.Uniform(-2, 2);
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
    trace += a.At(i, i);
  }
  auto result = JacobiEigenSymmetric(a);
  ASSERT_TRUE(result.ok());
  double sum = 0.0;
  for (double lambda : result.value().values) sum += lambda;
  EXPECT_NEAR(sum, trace, 1e-8);
}

}  // namespace
}  // namespace gem::math

#include "math/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gem::math {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformUnitInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformUnit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformUnitMeanNearHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformUnit();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversSupport) {
  Rng rng(3);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.UniformInt(5)];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformIntRange(2, 4);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 4);
    saw_lo |= (v == 2);
    saw_hi |= (v == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalMeanStd) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(-80.0, 5.0);
  EXPECT_NEAR(sum / n, -80.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5};
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(RngTest, SplitIsIndependentButDeterministic) {
  Rng a(5);
  Rng b(5);
  Rng child_a = a.Split();
  Rng child_b = b.Split();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child_a.Next(), child_b.Next());
}

}  // namespace
}  // namespace gem::math

#include "math/alias_sampler.h"

#include <gtest/gtest.h>

#include <numeric>

namespace gem::math {
namespace {

/// Draws n samples and checks empirical frequencies against the
/// normalized weights within a tolerance.
void CheckFrequencies(const Vec& weights, int n_draws, double tol) {
  AliasSampler sampler(weights);
  Rng rng(123);
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < n_draws; ++i) ++counts[sampler.Sample(rng)];
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / total;
    const double observed = static_cast<double>(counts[i]) / n_draws;
    EXPECT_NEAR(observed, expected, tol) << "index " << i;
  }
}

TEST(AliasSamplerTest, UniformWeights) {
  CheckFrequencies({1, 1, 1, 1}, 100000, 0.01);
}

TEST(AliasSamplerTest, SkewedWeights) {
  CheckFrequencies({10, 1, 1}, 100000, 0.01);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler sampler({0.0, 1.0, 0.0});
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.Sample(rng), 1);
}

TEST(AliasSamplerTest, SingleElement) {
  AliasSampler sampler({3.5});
  Rng rng(1);
  EXPECT_EQ(sampler.Sample(rng), 0);
}

TEST(AliasSamplerTest, LargeSupport) {
  Vec weights(1000);
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<double>(i % 7) + 1.0;
  }
  CheckFrequencies(weights, 500000, 0.003);
}

TEST(SampleProportionalTest, MatchesDistribution) {
  const Vec weights{2.0, 6.0, 2.0};
  Rng rng(77);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[SampleProportional(weights, rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.6, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.2, 0.01);
}

}  // namespace
}  // namespace gem::math

#include "math/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.h"

namespace gem::math {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.At(0, 1), 7.0);
}

TEST(MatrixTest, RowRoundTrip) {
  Matrix m(2, 2);
  m.SetRow(0, {1, 2});
  m.SetRow(1, {3, 4});
  EXPECT_EQ(m.Row(1), (Vec{3, 4}));
}

TEST(MatrixTest, MatVec) {
  Matrix m(2, 3);
  m.SetRow(0, {1, 0, 2});
  m.SetRow(1, {0, 1, -1});
  const Vec y = m.MatVec({1, 2, 3});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(MatrixTest, MatTVec) {
  Matrix m(2, 3);
  m.SetRow(0, {1, 0, 2});
  m.SetRow(1, {0, 1, -1});
  const Vec y = m.MatTVec({2, 3});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 1.0);
}

TEST(MatrixTest, AddOuter) {
  Matrix m(2, 2, 0.0);
  m.AddOuter({1, 2}, {3, 4}, 2.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 12.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 16.0);
}

TEST(MatrixTest, AppendRowGrows) {
  Matrix m;
  m.AppendRow({1, 2, 3});
  m.AppendRow({4, 5, 6});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 4.0);
}

TEST(MatrixTest, MatMul) {
  Matrix a(2, 3);
  a.SetRow(0, {1, 2, 3});
  a.SetRow(1, {4, 5, 6});
  Matrix b(3, 2);
  b.SetRow(0, {7, 8});
  b.SetRow(1, {9, 10});
  b.SetRow(2, {11, 12});
  const Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154.0);
}

TEST(MatrixTest, FillGlorotWithinBounds) {
  Rng rng(1);
  Matrix m(8, 8);
  m.FillGlorot(rng);
  const double bound = std::sqrt(6.0 / 16.0);
  bool any_nonzero = false;
  for (double x : m.data()) {
    EXPECT_LE(std::abs(x), bound);
    if (x != 0.0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace gem::math

#include "math/metrics.h"

#include <gtest/gtest.h>

namespace gem::math {
namespace {

TEST(ConfusionCountsTest, PerfectClassifier) {
  ConfusionCounts c;
  c.Add(true, true);
  c.Add(false, false);
  EXPECT_DOUBLE_EQ(c.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(c.F1(), 1.0);
  EXPECT_DOUBLE_EQ(c.FalsePositiveRate(), 0.0);
}

TEST(ConfusionCountsTest, KnownCounts) {
  ConfusionCounts c;
  c.tp = 8;
  c.fp = 2;
  c.fn = 2;
  c.tn = 8;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.8);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.8);
  EXPECT_DOUBLE_EQ(c.F1(), 0.8);
  EXPECT_DOUBLE_EQ(c.FalsePositiveRate(), 0.2);
}

TEST(ConfusionCountsTest, EmptyDenominatorsReturnZero) {
  ConfusionCounts c;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.F1(), 0.0);
}

TEST(InOutMetricsTest, TwoOrientationsAreDuals) {
  // actual:    in, in, out, out
  // predicted: in, out, out, in
  const std::vector<bool> actual{true, true, false, false};
  const std::vector<bool> pred{true, false, false, true};
  const InOutMetrics m = ComputeInOutMetrics(actual, pred);
  EXPECT_DOUBLE_EQ(m.precision_in, 0.5);
  EXPECT_DOUBLE_EQ(m.recall_in, 0.5);
  EXPECT_DOUBLE_EQ(m.precision_out, 0.5);
  EXPECT_DOUBLE_EQ(m.recall_out, 0.5);
}

TEST(InOutMetricsTest, AllCorrect) {
  const std::vector<bool> actual{true, false, true};
  const InOutMetrics m = ComputeInOutMetrics(actual, actual);
  EXPECT_DOUBLE_EQ(m.f_in, 1.0);
  EXPECT_DOUBLE_EQ(m.f_out, 1.0);
}

TEST(RocTest, PerfectSeparationAucOne) {
  const Vec scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<bool> pos{true, true, false, false};
  EXPECT_DOUBLE_EQ(RocAuc(scores, pos), 1.0);
}

TEST(RocTest, ReversedSeparationAucZero) {
  const Vec scores{0.1, 0.2, 0.8, 0.9};
  const std::vector<bool> pos{true, true, false, false};
  EXPECT_DOUBLE_EQ(RocAuc(scores, pos), 0.0);
}

TEST(RocTest, RandomScoresAucHalfWithTies) {
  const Vec scores{0.5, 0.5, 0.5, 0.5};
  const std::vector<bool> pos{true, false, true, false};
  EXPECT_DOUBLE_EQ(RocAuc(scores, pos), 0.5);
}

TEST(RocTest, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {true, true}), 0.5);
}

TEST(RocTest, CurveEndpoints) {
  const Vec scores{0.9, 0.7, 0.4, 0.2};
  const std::vector<bool> pos{true, false, true, false};
  const auto curve = RocCurve(scores, pos);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
}

TEST(RocTest, CurveMonotone) {
  const Vec scores{0.9, 0.8, 0.75, 0.7, 0.4, 0.35, 0.2};
  const std::vector<bool> pos{true, false, true, true, false, true, false};
  const auto curve = RocCurve(scores, pos);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
  }
}

}  // namespace
}  // namespace gem::math

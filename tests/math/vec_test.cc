#include "math/vec.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gem::math {
namespace {

TEST(VecTest, DotBasic) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(VecTest, Norm2) {
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Norm2({0, 0, 0}), 0.0);
}

TEST(VecTest, Distances) {
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1}, {4, 5}), 25.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {4, 5}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({2, 2}, {2, 2}), 0.0);
}

TEST(VecTest, CosineDistanceIdenticalIsZero) {
  EXPECT_NEAR(CosineDistance({1, 2, 3}, {2, 4, 6}), 0.0, 1e-12);
}

TEST(VecTest, CosineDistanceOrthogonalIsOne) {
  EXPECT_NEAR(CosineDistance({1, 0}, {0, 1}), 1.0, 1e-12);
}

TEST(VecTest, CosineDistanceOppositeIsTwo) {
  EXPECT_NEAR(CosineDistance({1, 0}, {-1, 0}), 2.0, 1e-12);
}

TEST(VecTest, CosineDistanceZeroVectorIsOne) {
  EXPECT_DOUBLE_EQ(CosineDistance({0, 0}, {1, 1}), 1.0);
}

TEST(VecTest, AddScaled) {
  Vec a{1, 2};
  AddScaled(a, {10, 20}, 0.5);
  EXPECT_DOUBLE_EQ(a[0], 6.0);
  EXPECT_DOUBLE_EQ(a[1], 12.0);
}

TEST(VecTest, NormalizeL2) {
  Vec a{3, 4};
  NormalizeL2(a);
  EXPECT_NEAR(Norm2(a), 1.0, 1e-12);
  EXPECT_NEAR(a[0], 0.6, 1e-12);

  Vec zero{0, 0};
  NormalizeL2(zero);  // must not divide by zero
  EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

TEST(VecTest, Concat) {
  const Vec c = Concat({1, 2}, {3});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
}

TEST(VecTest, Sub) {
  const Vec d = Sub({5, 7}, {2, 3});
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], 4.0);
}

TEST(VecTest, MeanOfRows) {
  const Vec m = MeanRows({{1, 2}, {3, 4}, {5, 6}});
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0], 3.0);
  EXPECT_DOUBLE_EQ(m[1], 4.0);
  EXPECT_TRUE(MeanRows(std::vector<Vec>{}).empty());
}

}  // namespace
}  // namespace gem::math

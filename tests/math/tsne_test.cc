#include "math/tsne.h"

#include <gtest/gtest.h>

#include "math/rng.h"
#include "math/vec.h"

namespace gem::math {
namespace {

TEST(TsneTest, RejectsTinyInput) {
  EXPECT_FALSE(Tsne(Matrix(2, 4)).ok());
}

TEST(TsneTest, OutputShape) {
  Rng rng(1);
  Matrix points(30, 8);
  points.FillUniform(rng, 1.0);
  TsneOptions opts;
  opts.iterations = 50;
  auto result = Tsne(points, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows(), 30);
  EXPECT_EQ(result.value().cols(), 2);
}

TEST(TsneTest, SeparatesTwoGaussianClusters) {
  Rng rng(2);
  const int per_cluster = 25;
  Matrix points(2 * per_cluster, 5);
  for (int i = 0; i < per_cluster; ++i) {
    for (int k = 0; k < 5; ++k) {
      points.At(i, k) = rng.Normal(0.0, 0.1);
      points.At(per_cluster + i, k) = rng.Normal(5.0, 0.1);
    }
  }
  TsneOptions opts;
  opts.iterations = 300;
  opts.perplexity = 10.0;
  auto result = Tsne(points, opts);
  ASSERT_TRUE(result.ok());
  const Matrix& y = result.value();

  // Mean intra-cluster distance must be far below inter-cluster distance.
  auto dist = [&](int a, int b) {
    return Distance(y.Row(a), y.Row(b));
  };
  double intra = 0.0;
  double inter = 0.0;
  int n_intra = 0;
  int n_inter = 0;
  for (int i = 0; i < 2 * per_cluster; ++i) {
    for (int j = i + 1; j < 2 * per_cluster; ++j) {
      const bool same = (i < per_cluster) == (j < per_cluster);
      if (same) {
        intra += dist(i, j);
        ++n_intra;
      } else {
        inter += dist(i, j);
        ++n_inter;
      }
    }
  }
  intra /= n_intra;
  inter /= n_inter;
  EXPECT_GT(inter, 2.0 * intra);
}

TEST(TsneTest, DeterministicForSeed) {
  Rng rng(3);
  Matrix points(20, 4);
  points.FillUniform(rng, 1.0);
  TsneOptions opts;
  opts.iterations = 30;
  auto a = Tsne(points, opts);
  auto b = Tsne(points, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.value().At(i, 0), b.value().At(i, 0));
    EXPECT_DOUBLE_EQ(a.value().At(i, 1), b.value().At(i, 1));
  }
}

}  // namespace
}  // namespace gem::math

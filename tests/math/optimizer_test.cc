#include "math/optimizer.h"

#include <gtest/gtest.h>

#include "math/autograd.h"
#include "math/rng.h"

namespace gem::math {
namespace {

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize 0.5*||Wx - t||^2 over W for fixed x; optimum is exact when
  // W x == t is achievable.
  Parameter w(2, 2);
  Rng rng(3);
  w.value.FillUniform(rng, 0.5);
  AdamOptions opts;
  opts.learning_rate = 0.05;
  Adam adam(opts);
  adam.Register(&w);

  const Vec x{1.0, -0.5};
  const Vec target{0.3, 0.7};
  double last_loss = 1e9;
  for (int i = 0; i < 500; ++i) {
    Tape tape;
    const VarId xi = tape.Leaf(x);
    tape.AddMseLoss(tape.MatVec(&w, xi), target);
    last_loss = tape.loss();
    tape.Backward();
    adam.Step();
  }
  EXPECT_LT(last_loss, 1e-6);
}

TEST(AdamTest, StepZeroesGradients) {
  Parameter w(1, 1);
  w.grad.At(0, 0) = 5.0;
  Adam adam;
  adam.Register(&w);
  adam.Step();
  EXPECT_DOUBLE_EQ(w.grad.At(0, 0), 0.0);
}

TEST(RowAdamTest, UpdatesOnlyTargetRow) {
  Matrix table(3, 2, 1.0);
  RowAdam adam(3, 2);
  adam.Update(table, 1, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(table.At(0, 0), 1.0);
  EXPECT_NE(table.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(table.At(2, 1), 1.0);
}

TEST(RowAdamTest, ConvergesRowToTarget) {
  // Gradient of 0.5*||row - t||^2 is (row - t).
  Matrix table(1, 3, 0.0);
  AdamOptions opts;
  opts.learning_rate = 0.05;
  RowAdam adam(1, 3, opts);
  const Vec target{0.2, -0.4, 0.9};
  for (int i = 0; i < 1000; ++i) {
    Vec g(3);
    for (int k = 0; k < 3; ++k) g[k] = table.At(0, k) - target[k];
    adam.Update(table, 0, g);
  }
  for (int k = 0; k < 3; ++k) EXPECT_NEAR(table.At(0, k), target[k], 1e-3);
}

TEST(RowAdamTest, ResizeExtends) {
  RowAdam adam(2, 4);
  adam.Resize(5);
  EXPECT_EQ(adam.rows(), 5);
  Matrix table(5, 4, 0.0);
  adam.Update(table, 4, {1, 1, 1, 1});  // must not crash
}

}  // namespace
}  // namespace gem::math

#include "math/autograd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "math/rng.h"

namespace gem::math {
namespace {

/// Finite-difference check: builds the graph twice per perturbed leaf
/// entry and compares the numerical derivative of the total loss
/// against the analytic leaf gradient.
///
/// `build` maps leaf values -> (tape with losses attached, leaf ids).
struct BuiltGraph {
  std::vector<VarId> leaves;
};

using BuildFn =
    std::function<BuiltGraph(Tape&, const std::vector<Vec>&)>;

void CheckLeafGradients(const BuildFn& build, std::vector<Vec> leaf_values,
                        double eps = 1e-6, double tol = 1e-5) {
  Tape tape;
  const BuiltGraph g = build(tape, leaf_values);
  tape.Backward();
  std::vector<Vec> analytic;
  analytic.reserve(g.leaves.size());
  for (VarId id : g.leaves) analytic.push_back(tape.grad(id));
  const double base_loss = tape.loss();
  (void)base_loss;

  for (size_t li = 0; li < leaf_values.size(); ++li) {
    for (size_t k = 0; k < leaf_values[li].size(); ++k) {
      auto perturbed = leaf_values;
      perturbed[li][k] += eps;
      Tape tp;
      build(tp, perturbed);
      const double loss_plus = tp.loss();

      perturbed[li][k] -= 2 * eps;
      Tape tm;
      build(tm, perturbed);
      const double loss_minus = tm.loss();

      const double numeric = (loss_plus - loss_minus) / (2 * eps);
      EXPECT_NEAR(analytic[li][k], numeric, tol)
          << "leaf " << li << " dim " << k;
    }
  }
}

TEST(AutogradTest, DotForward) {
  Tape tape;
  const VarId a = tape.Leaf({1, 2, 3});
  const VarId b = tape.Leaf({4, 5, 6});
  const VarId d = tape.Dot(a, b);
  EXPECT_DOUBLE_EQ(tape.value(d)[0], 32.0);
}

TEST(AutogradTest, GradDotViaMse) {
  CheckLeafGradients(
      [](Tape& t, const std::vector<Vec>& leaves) {
        const VarId a = t.Leaf(leaves[0]);
        const VarId b = t.Leaf(leaves[1]);
        t.AddMseLoss(t.Dot(a, b), {1.0});
        return BuiltGraph{{a, b}};
      },
      {{0.3, -0.5, 0.2}, {0.1, 0.4, -0.7}});
}

TEST(AutogradTest, GradLogSigmoidLoss) {
  CheckLeafGradients(
      [](Tape& t, const std::vector<Vec>& leaves) {
        const VarId a = t.Leaf(leaves[0]);
        const VarId b = t.Leaf(leaves[1]);
        const VarId d = t.Dot(a, b);
        t.AddLogSigmoidLoss(d, +1.0);
        t.AddLogSigmoidLoss(d, -1.0, 0.5);
        return BuiltGraph{{a, b}};
      },
      {{0.3, -0.5}, {0.8, 0.4}});
}

TEST(AutogradTest, GradRelu) {
  CheckLeafGradients(
      [](Tape& t, const std::vector<Vec>& leaves) {
        const VarId x = t.Leaf(leaves[0]);
        t.AddMseLoss(t.Relu(x), {1.0, -1.0, 0.5});
        return BuiltGraph{{x}};
      },
      // Keep entries away from the ReLU kink at 0.
      {{0.5, -0.7, 0.3}});
}

TEST(AutogradTest, GradTanh) {
  CheckLeafGradients(
      [](Tape& t, const std::vector<Vec>& leaves) {
        const VarId x = t.Leaf(leaves[0]);
        t.AddMseLoss(t.Tanh(x), {0.2, -0.3});
        return BuiltGraph{{x}};
      },
      {{0.5, -1.2}});
}

TEST(AutogradTest, GradSigmoid) {
  CheckLeafGradients(
      [](Tape& t, const std::vector<Vec>& leaves) {
        const VarId x = t.Leaf(leaves[0]);
        t.AddMseLoss(t.Sigmoid(x), {0.9, 0.1});
        return BuiltGraph{{x}};
      },
      {{0.4, -0.8}});
}

TEST(AutogradTest, GradL2Normalize) {
  CheckLeafGradients(
      [](Tape& t, const std::vector<Vec>& leaves) {
        const VarId x = t.Leaf(leaves[0]);
        t.AddMseLoss(t.L2Normalize(x), {0.5, -0.5, 0.1});
        return BuiltGraph{{x}};
      },
      {{1.0, 2.0, -1.5}});
}

TEST(AutogradTest, GradConcatAndWeightedSum) {
  CheckLeafGradients(
      [](Tape& t, const std::vector<Vec>& leaves) {
        const VarId a = t.Leaf(leaves[0]);
        const VarId b = t.Leaf(leaves[1]);
        const VarId c = t.Leaf(leaves[2]);
        const VarId ws = t.WeightedSum({a, b}, {0.7, 0.3});
        const VarId cat = t.Concat(ws, c);
        t.AddMseLoss(cat, {0.1, 0.2, 0.3, 0.4});
        return BuiltGraph{{a, b, c}};
      },
      {{1.0, -1.0}, {0.5, 0.5}, {2.0, 0.0}});
}

TEST(AutogradTest, GradAddSub) {
  CheckLeafGradients(
      [](Tape& t, const std::vector<Vec>& leaves) {
        const VarId a = t.Leaf(leaves[0]);
        const VarId b = t.Leaf(leaves[1]);
        t.AddMseLoss(t.Add(a, b), {1.0, 1.0});
        t.AddMseLoss(t.Sub(a, b), {0.0, 0.0}, 0.3);
        return BuiltGraph{{a, b}};
      },
      {{0.2, 0.8}, {-0.4, 0.6}});
}

TEST(AutogradTest, GradMatVecIntoLeaf) {
  // Checks dL/dx through y = Wx.
  Parameter w(2, 3);
  Rng rng(4);
  w.value.FillUniform(rng, 0.5);
  CheckLeafGradients(
      [&w](Tape& t, const std::vector<Vec>& leaves) {
        const VarId x = t.Leaf(leaves[0]);
        t.AddMseLoss(t.MatVec(&w, x), {0.1, -0.2});
        return BuiltGraph{{x}};
      },
      {{0.5, -0.3, 0.8}});
}

TEST(AutogradTest, GradMatVecParameter) {
  // Finite-difference check of dL/dW entries.
  Parameter w(2, 2);
  w.value.At(0, 0) = 0.3;
  w.value.At(0, 1) = -0.4;
  w.value.At(1, 0) = 0.1;
  w.value.At(1, 1) = 0.7;
  const Vec x{0.5, -0.6};
  const Vec target{1.0, -1.0};

  auto loss_of = [&](const Matrix& wv) {
    Tape t;
    Parameter local(2, 2);
    local.value = wv;
    const VarId xi = t.Leaf(x);
    t.AddMseLoss(t.MatVec(&local, xi), target);
    return t.loss();
  };

  Tape tape;
  const VarId xi = tape.Leaf(x);
  tape.AddMseLoss(tape.MatVec(&w, xi), target);
  tape.Backward();

  const double eps = 1e-6;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      Matrix wp = w.value;
      wp.At(r, c) += eps;
      Matrix wm = w.value;
      wm.At(r, c) -= eps;
      const double numeric = (loss_of(wp) - loss_of(wm)) / (2 * eps);
      EXPECT_NEAR(w.grad.At(r, c), numeric, 1e-5);
    }
  }
}

TEST(AutogradTest, DeepCompositionGradient) {
  // A BiSAGE-shaped pipeline: weighted-sum -> concat -> matvec -> relu ->
  // l2norm -> dot -> log-sigmoid losses.
  Parameter w(3, 6);
  Rng rng(8);
  w.value.FillUniform(rng, 0.4);
  CheckLeafGradients(
      [&w](Tape& t, const std::vector<Vec>& leaves) {
        const VarId self = t.Leaf(leaves[0]);
        const VarId n1 = t.Leaf(leaves[1]);
        const VarId n2 = t.Leaf(leaves[2]);
        const VarId other = t.Leaf(leaves[3]);
        const VarId agg = t.WeightedSum({n1, n2}, {0.6, 0.4});
        const VarId cat = t.Concat(self, agg);
        const VarId lin = t.MatVec(&w, cat);
        const VarId act = t.Relu(lin);
        const VarId emb = t.L2Normalize(act);
        const VarId dot = t.Dot(emb, other);
        t.AddLogSigmoidLoss(dot, +1.0);
        return BuiltGraph{{self, n1, n2, other}};
      },
      {{0.4, -0.2, 0.7}, {0.1, 0.9, -0.3}, {-0.5, 0.2, 0.6},
       {0.3, 0.3, 0.3}},
      1e-6, 1e-4);
}

TEST(AutogradTest, ClearResetsState) {
  Tape tape;
  const VarId a = tape.Leaf({1.0});
  tape.AddMseLoss(a, {0.0});
  EXPECT_GT(tape.loss(), 0.0);
  tape.Clear();
  EXPECT_EQ(tape.size(), 0);
  EXPECT_DOUBLE_EQ(tape.loss(), 0.0);
}

TEST(AutogradTest, ZeroGradSkipsPropagation) {
  // Nodes not connected to any loss keep zero gradients.
  Tape tape;
  const VarId a = tape.Leaf({1.0, 2.0});
  const VarId b = tape.Leaf({3.0, 4.0});
  tape.Relu(b);                 // dangling
  tape.AddMseLoss(a, {0.0, 0.0});
  tape.Backward();
  EXPECT_DOUBLE_EQ(tape.grad(b)[0], 0.0);
  EXPECT_DOUBLE_EQ(tape.grad(b)[1], 0.0);
  EXPECT_NE(tape.grad(a)[0], 0.0);
}

}  // namespace
}  // namespace gem::math

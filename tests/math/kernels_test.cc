// Edge cases and backend agreement for the dispatched SIMD kernels.
// Sizes deliberately straddle every SIMD boundary (0, 1, the 4-lane
// width, the 8-element unroll, and off-by-one around each), buffers are
// also fed in deliberately misaligned (the kernels promise unaligned
// loads work), and the scalar and AVX2 backends must agree to within
// floating-point reassociation noise on random inputs.

#include "math/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/rng.h"

namespace gem::math::kernels {
namespace {

// Every length class the kernels can see: empty, single element,
// sub-width, exactly one vector, unroll boundaries, and large+odd.
constexpr size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9,
                             15, 16, 17, 31, 32, 33, 100, 128, 129};

// |a-b| within reassociation/FMA drift of two summation orders. The
// bound is far looser than observed (a few ULPs) but far tighter than
// any behavioral difference.
void ExpectClose(double a, double b) {
  EXPECT_LE(std::abs(a - b), 1e-9 * std::max(1.0, std::abs(b)))
      << a << " vs " << b;
}

std::vector<double> RandomVec(Rng& rng, size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(-2.0, 2.0);
  return v;
}

class ScopedBackend {
 public:
  explicit ScopedBackend(Backend backend)
      : previous_(ForceBackendForTest(backend)) {}
  ~ScopedBackend() { ForceBackendForTest(previous_); }

 private:
  Backend previous_;
};

TEST(KernelsTest, BackendNamesMatchEnvValues) {
  EXPECT_STREQ("scalar", BackendName(Backend::kScalar));
  EXPECT_STREQ("avx2", BackendName(Backend::kAvx2));
}

TEST(KernelsTest, ForceBackendForTestRoundTrips) {
  const Backend original = ActiveBackend();
  const Backend previous = ForceBackendForTest(Backend::kScalar);
  EXPECT_EQ(previous, original);
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  EXPECT_EQ(Active().dot, OpsFor(Backend::kScalar).dot);
  ForceBackendForTest(original);
  EXPECT_EQ(ActiveBackend(), original);
}

TEST(KernelsTest, EmptyInputsAreWellDefined) {
  for (const Backend backend :
       {Backend::kScalar, Backend::kAvx2}) {
    if (backend == Backend::kAvx2 && !Avx2Available()) continue;
    const Ops& ops = OpsFor(backend);
    EXPECT_EQ(0.0, ops.dot(nullptr, nullptr, 0));
    EXPECT_EQ(0.0, ops.squared_distance(nullptr, nullptr, 0));
    ops.add_scaled(nullptr, nullptr, 2.0, 0);
    ops.scale(nullptr, 2.0, 0);
    ops.weighted_sum(nullptr, nullptr, nullptr, 0, 0);
    double y = 7.0;
    ops.matvec(nullptr, 0, 4, nullptr, &y);  // rows == 0: y untouched
    ops.mattvec(nullptr, 0, 0, nullptr, &y);
    EXPECT_EQ(7.0, y);
  }
}

TEST(KernelsTest, SingleElement) {
  for (const Backend backend :
       {Backend::kScalar, Backend::kAvx2}) {
    if (backend == Backend::kAvx2 && !Avx2Available()) continue;
    const Ops& ops = OpsFor(backend);
    const double a[] = {3.0};
    const double b[] = {-0.5};
    EXPECT_DOUBLE_EQ(-1.5, ops.dot(a, b, 1));
    EXPECT_DOUBLE_EQ(12.25, ops.squared_distance(a, b, 1));
    double out[] = {1.0};
    ops.add_scaled(out, b, 4.0, 1);
    EXPECT_DOUBLE_EQ(-1.0, out[0]);
    ops.scale(out, -2.0, 1);
    EXPECT_DOUBLE_EQ(2.0, out[0]);
  }
}

TEST(KernelsTest, DotMatchesReferenceAtEverySize) {
  Rng rng(11);
  for (const size_t n : kSizes) {
    const std::vector<double> a = RandomVec(rng, n);
    const std::vector<double> b = RandomVec(rng, n);
    double reference = 0.0;
    for (size_t i = 0; i < n; ++i) reference += a[i] * b[i];
    for (const Backend backend :
         {Backend::kScalar, Backend::kAvx2}) {
      if (backend == Backend::kAvx2 && !Avx2Available()) continue;
      ExpectClose(OpsFor(backend).dot(a.data(), b.data(), n), reference);
    }
    // Scalar is defined to BE the sequential reference, bit-for-bit.
    EXPECT_EQ(OpsFor(Backend::kScalar).dot(a.data(), b.data(), n),
              reference);
  }
}

TEST(KernelsTest, SquaredDistanceMatchesReferenceAtEverySize) {
  Rng rng(12);
  for (const size_t n : kSizes) {
    const std::vector<double> a = RandomVec(rng, n);
    const std::vector<double> b = RandomVec(rng, n);
    double reference = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = a[i] - b[i];
      reference += d * d;
    }
    for (const Backend backend :
         {Backend::kScalar, Backend::kAvx2}) {
      if (backend == Backend::kAvx2 && !Avx2Available()) continue;
      ExpectClose(OpsFor(backend).squared_distance(a.data(), b.data(), n),
                  reference);
    }
  }
}

TEST(KernelsTest, AddScaledAndScaleMatchReferenceAtEverySize) {
  Rng rng(13);
  for (const size_t n : kSizes) {
    const std::vector<double> base = RandomVec(rng, n);
    const std::vector<double> b = RandomVec(rng, n);
    for (const Backend backend :
         {Backend::kScalar, Backend::kAvx2}) {
      if (backend == Backend::kAvx2 && !Avx2Available()) continue;
      const Ops& ops = OpsFor(backend);
      std::vector<double> got = base;
      ops.add_scaled(got.data(), b.data(), 0.75, n);
      ops.scale(got.data(), -3.0, n);
      for (size_t i = 0; i < n; ++i) {
        // Element-wise ops have no reduction order: both backends must
        // match the reference exactly (FMA on the AVX2 path rounds
        // once, so allow 1-ULP-scale drift there).
        const double want = (base[i] + 0.75 * b[i]) * -3.0;
        ExpectClose(got[i], want);
      }
    }
  }
}

TEST(KernelsTest, WeightedSumAccumulatesInAscendingOrder) {
  Rng rng(14);
  for (const size_t n : kSizes) {
    for (const size_t k : {size_t{0}, size_t{1}, size_t{3}, size_t{8}}) {
      std::vector<std::vector<double>> inputs;
      std::vector<const double*> ptrs;
      for (size_t j = 0; j < k; ++j) {
        inputs.push_back(RandomVec(rng, n));
        ptrs.push_back(inputs.back().data());
      }
      const std::vector<double> coeffs = RandomVec(rng, k);
      // The documented semantics: overwrite out, ascending-k order.
      std::vector<double> reference(n, 0.0);
      for (size_t j = 0; j < k; ++j) {
        for (size_t i = 0; i < n; ++i) {
          reference[i] += coeffs[j] * inputs[j][i];
        }
      }
      for (const Backend backend :
           {Backend::kScalar, Backend::kAvx2}) {
        if (backend == Backend::kAvx2 && !Avx2Available()) continue;
        std::vector<double> got(n, 123.0);  // must be overwritten
        OpsFor(backend).weighted_sum(got.data(), ptrs.data(),
                                     coeffs.data(), k, n);
        for (size_t i = 0; i < n; ++i) ExpectClose(got[i], reference[i]);
        if (backend == Backend::kScalar) {
          EXPECT_EQ(got, reference);
        }
      }
    }
  }
}

TEST(KernelsTest, MatVecAndMatTVecMatchReference) {
  Rng rng(15);
  for (const int rows : {0, 1, 3, 16}) {
    for (const int cols : {0, 1, 5, 32, 33}) {
      const std::vector<double> m =
          RandomVec(rng, static_cast<size_t>(rows) * cols);
      const std::vector<double> x = RandomVec(rng, cols);
      const std::vector<double> xt = RandomVec(rng, rows);
      std::vector<double> y_ref(rows, 0.0);
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) y_ref[r] += m[r * cols + c] * x[c];
      }
      std::vector<double> yt_ref(cols, 0.5);  // mattvec accumulates
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
          yt_ref[c] += m[r * cols + c] * xt[r];
        }
      }
      for (const Backend backend :
           {Backend::kScalar, Backend::kAvx2}) {
        if (backend == Backend::kAvx2 && !Avx2Available()) continue;
        const Ops& ops = OpsFor(backend);
        std::vector<double> y(rows, -9.0);
        ops.matvec(m.data(), rows, cols, x.data(), y.data());
        for (int r = 0; r < rows; ++r) ExpectClose(y[r], y_ref[r]);
        std::vector<double> yt(cols, 0.5);
        ops.mattvec(m.data(), rows, cols, xt.data(), yt.data());
        for (int c = 0; c < cols; ++c) ExpectClose(yt[c], yt_ref[c]);
      }
    }
  }
}

TEST(KernelsTest, UnalignedBuffersWork) {
  // The kernels use unaligned loads; feed pointers offset one double
  // (8 bytes) off the allocator's 32-byte boundary to prove it.
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2+FMA on this CPU";
  Rng rng(16);
  constexpr size_t kN = 67;
  AlignedVec a_buf = [&] {
    AlignedVec v(kN + 1);
    for (double& x : v) x = rng.Uniform(-1.0, 1.0);
    return v;
  }();
  AlignedVec b_buf = a_buf;
  for (double& x : b_buf) x = rng.Uniform(-1.0, 1.0);
  const double* a = a_buf.data() + 1;
  const double* b = b_buf.data() + 1;
  ASSERT_NE(reinterpret_cast<uintptr_t>(a) % 32, 0u);

  const Ops& avx2 = OpsFor(Backend::kAvx2);
  const Ops& scalar = OpsFor(Backend::kScalar);
  ExpectClose(avx2.dot(a, b, kN), scalar.dot(a, b, kN));
  ExpectClose(avx2.squared_distance(a, b, kN),
              scalar.squared_distance(a, b, kN));
  AlignedVec out_a(kN + 1, 0.25), out_s(kN + 1, 0.25);
  avx2.add_scaled(out_a.data() + 1, b, 1.5, kN);
  scalar.add_scaled(out_s.data() + 1, b, 1.5, kN);
  for (size_t i = 0; i <= kN; ++i) ExpectClose(out_a[i], out_s[i]);
}

TEST(KernelsTest, ScalarAndAvx2AgreeOnRandomInputs) {
  // The blanket differential: both backends over many random draws of
  // awkward sizes. (End-to-end model agreement is covered separately by
  // kernels_differential_test.)
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2+FMA on this CPU";
  Rng rng(17);
  const Ops& avx2 = OpsFor(Backend::kAvx2);
  const Ops& scalar = OpsFor(Backend::kScalar);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = static_cast<size_t>(rng.UniformInt(201));
    const std::vector<double> a = RandomVec(rng, n);
    const std::vector<double> b = RandomVec(rng, n);
    ExpectClose(avx2.dot(a.data(), b.data(), n),
                scalar.dot(a.data(), b.data(), n));
    ExpectClose(avx2.squared_distance(a.data(), b.data(), n),
                scalar.squared_distance(a.data(), b.data(), n));
    std::vector<double> out_a = a, out_s = a;
    avx2.add_scaled(out_a.data(), b.data(), -0.3, n);
    scalar.add_scaled(out_s.data(), b.data(), -0.3, n);
    for (size_t i = 0; i < n; ++i) ExpectClose(out_a[i], out_s[i]);
  }
}

TEST(KernelsTest, ScopedForceIsHonoredByActive) {
  {
    ScopedBackend forced(Backend::kScalar);
    EXPECT_EQ(Backend::kScalar, ActiveBackend());
    const double a[] = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(14.0, Active().dot(a, a, 3));
  }
  // Destructor restored whatever the process resolved at startup.
  EXPECT_EQ(ActiveBackend(), ActiveBackend());
}

}  // namespace
}  // namespace gem::math::kernels

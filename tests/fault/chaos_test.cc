// Chaos layer over gem::serve: seeded failpoint schedules drive a
// multi-fence engine and the tests assert system-level invariants —
// no crash, no stuck request, a definite Status for every request,
// and an old fence generation that keeps serving across failed live
// reloads. Schedules are seeded (prob=P@SEED) so every run, including
// the TSan CI run, replays the same injection pattern. This binary
// only exists in builds configured with -DGEM_ENABLE_FAILPOINTS=ON.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/gem.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "rf/dataset.h"
#include "serve/engine.h"
#include "serve/fence_registry.h"
#include "serve/snapshot.h"

namespace gem::serve {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

rf::Dataset SmallDataset() {
  rf::DatasetOptions options;
  options.train_duration_s = 180.0;
  options.test_segments = 2;
  options.test_segment_duration_s = 60.0;
  options.seed = 77;
  return rf::GenerateScenarioDataset(rf::HomePreset(2), options);
}

core::GemConfig FastConfig() {
  core::GemConfig config;
  config.bisage.dimension = 8;
  config.bisage.epochs = 1;
  return config;
}

uint64_t ReloadFailures(const char* phase) {
  return obs::MetricsRegistry::Get()
      .GetCounter("gem_serve_reload_failures_total", {{"phase", phase}})
      .value();
}

uint64_t SnapshotRetries() {
  return obs::MetricsRegistry::Get()
      .GetCounter("gem_serve_snapshot_retries_total")
      .value();
}

uint64_t DeadlineExceededCount() {
  return obs::MetricsRegistry::Get()
      .GetCounter("gem_serve_responses_total",
                  {{"result", "deadline_exceeded"}})
      .value();
}

RetryOptions FastRetry(int attempts) {
  RetryOptions retry;
  retry.max_attempts = attempts;
  retry.initial_backoff = std::chrono::milliseconds(1);
  return retry;
}

/// Trains once per process and snapshots; tests clone fences by
/// loading the snapshot. Every test starts and ends with a clean
/// failpoint registry so schedules cannot leak across tests.
class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new rf::Dataset(SmallDataset());
    core::Gem gem(FastConfig());
    ASSERT_TRUE(gem.Train(dataset_->train).ok());
    snapshot_path_ = new std::string(TempPath("chaos_test_model.gem"));
    ASSERT_TRUE(SaveSnapshot(*snapshot_path_, gem).ok());
  }

  static void TearDownTestSuite() {
    delete dataset_;
    delete snapshot_path_;
    dataset_ = nullptr;
    snapshot_path_ = nullptr;
  }

  void SetUp() override { fault::Reset(); }
  void TearDown() override { fault::Reset(); }

  static core::Gem LoadModel() {
    auto gem = LoadSnapshot(*snapshot_path_);
    EXPECT_TRUE(gem.ok()) << gem.status().ToString();
    return std::move(gem).value();
  }

  static rf::Dataset* dataset_;
  static std::string* snapshot_path_;
};

rf::Dataset* ChaosTest::dataset_ = nullptr;
std::string* ChaosTest::snapshot_path_ = nullptr;

// The headline invariant run: 4 fences, 4 workers, 4 client threads,
// with seeded admission and execution faults firing throughout. Every
// request must come back with a definite Status from the known set,
// the totals must add up, and the engine must shut down cleanly — for
// every seed.
TEST_F(ChaosTest, SeededChaosEveryRequestGetsADefiniteAnswer) {
  constexpr int kFences = 4;
  constexpr int kRequestsPerClient = 50;
  for (const int seed : {11, 23, 47}) {
    fault::Reset();
    ASSERT_TRUE(fault::Configure(
                    "serve.engine.admit=prob=0.08@" + std::to_string(seed) +
                    "/unavailable;"
                    "serve.engine.process=prob=0.12@" +
                    std::to_string(seed + 100) + "/unavailable/delay=1")
                    .ok());

    FenceRegistry registry;
    for (int f = 0; f < kFences; ++f) {
      ASSERT_TRUE(
          registry.Install("home_" + std::to_string(f), LoadModel()).ok());
    }
    EngineOptions options;
    options.num_threads = 4;
    options.max_queue_depth = 32;
    Engine engine(&registry, options);

    std::atomic<int> ok_count{0};
    std::atomic<int> unavailable_count{0};
    std::atomic<int> unexpected_count{0};
    std::vector<std::thread> clients;
    clients.reserve(kFences);
    for (int f = 0; f < kFences; ++f) {
      clients.emplace_back([&, f] {
        const std::string fence_id = "home_" + std::to_string(f);
        for (int i = 0; i < kRequestsPerClient; ++i) {
          ServeRequest request;
          request.fence_id = fence_id;
          request.record =
              dataset_->test[i % dataset_->test.size()];
          const ServeResponse response = engine.InferBlocking(request);
          if (response.status.ok()) {
            ok_count.fetch_add(1);
          } else if (response.status.code() == StatusCode::kUnavailable) {
            unavailable_count.fetch_add(1);
          } else {
            unexpected_count.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
    engine.Shutdown();

    // Definite answers, nothing lost, nothing outside the fault model.
    EXPECT_EQ(unexpected_count.load(), 0) << "seed " << seed;
    EXPECT_EQ(ok_count.load() + unavailable_count.load(),
              kFences * kRequestsPerClient)
        << "seed " << seed;
    // At ~20% combined injection over 200 requests both outcomes are
    // statistically certain to appear.
    EXPECT_GT(ok_count.load(), 0) << "seed " << seed;
    EXPECT_GT(unavailable_count.load(), 0) << "seed " << seed;
    EXPECT_EQ(engine.queue_depth(), 0u) << "seed " << seed;
  }
}

// The acceptance scenario: a live reload whose snapshot load fails for
// good must leave the previously installed generation serving, visible
// both through gem_serve_reload_failures_total and through a
// successful post-failure request against generation 1.
TEST_F(ChaosTest, FailedReloadKeepsOldGenerationServing) {
  FenceRegistry registry;
  ASSERT_TRUE(registry.Install("home", LoadModel()).ok());
  Engine engine(&registry, EngineOptions{/*num_threads=*/2});

  const uint64_t failures_before = ReloadFailures("reload");
  const uint64_t retries_before = SnapshotRetries();
  ASSERT_TRUE(
      fault::Configure("serve.snapshot.read=always/unavailable").ok());
  const auto reload =
      registry.InstallFromSnapshot("home", *snapshot_path_, FastRetry(2));
  EXPECT_EQ(reload.code(), StatusCode::kUnavailable);
  EXPECT_EQ(ReloadFailures("reload") - failures_before, 1u);
  // 2 attempts = 1 retry before giving up.
  EXPECT_EQ(SnapshotRetries() - retries_before, 1u);

  // Generation 1 is untouched and still answers traffic.
  const std::shared_ptr<Fence> fence = registry.Find("home");
  ASSERT_NE(fence, nullptr);
  EXPECT_EQ(fence->generation, 1u);
  ServeRequest request;
  request.fence_id = "home";
  request.record = dataset_->test.front();
  const ServeResponse response = engine.InferBlocking(std::move(request));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.fence_generation, 1u);

  // Clearing the schedule lets the same reload succeed: generation 2.
  fault::Reset();
  const auto healed =
      registry.InstallFromSnapshot("home", *snapshot_path_, FastRetry(2));
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(healed.value(), 2u);
  engine.Shutdown();
}

TEST_F(ChaosTest, InitialInstallFailureIsLabeledInitial) {
  FenceRegistry registry;
  const uint64_t failures_before = ReloadFailures("initial");
  ASSERT_TRUE(
      fault::Configure("serve.snapshot.open=always/unavailable").ok());
  const auto install =
      registry.InstallFromSnapshot("fresh", *snapshot_path_, FastRetry(1));
  EXPECT_EQ(install.code(), StatusCode::kUnavailable);
  EXPECT_EQ(ReloadFailures("initial") - failures_before, 1u);
  EXPECT_EQ(registry.Find("fresh"), nullptr);
}

TEST_F(ChaosTest, RegistryReloadInjectionDegradesGracefully) {
  FenceRegistry registry;
  ASSERT_TRUE(registry.Install("home", LoadModel()).ok());
  const uint64_t failures_before = ReloadFailures("reload");
  ASSERT_TRUE(fault::Configure("serve.registry.reload=once/internal").ok());
  const auto reload =
      registry.InstallFromSnapshot("home", *snapshot_path_, FastRetry(1));
  EXPECT_EQ(reload.code(), StatusCode::kInternal);
  EXPECT_EQ(ReloadFailures("reload") - failures_before, 1u);
  EXPECT_EQ(registry.Find("home")->generation, 1u);
}

TEST_F(ChaosTest, TransientSnapshotFailureRetriesToSuccess) {
  ASSERT_TRUE(
      fault::Configure("serve.snapshot.read=once/unavailable").ok());
  const uint64_t retries_before = SnapshotRetries();
  const auto gem = LoadSnapshotWithRetry(*snapshot_path_, FastRetry(3));
  ASSERT_TRUE(gem.ok()) << gem.status().ToString();
  EXPECT_EQ(fault::HitCount("serve.snapshot.read"), 2u);
  EXPECT_EQ(SnapshotRetries() - retries_before, 1u);
}

TEST_F(ChaosTest, RetryGivesUpAfterMaxAttempts) {
  ASSERT_TRUE(
      fault::Configure("serve.snapshot.read=always/unavailable").ok());
  const auto gem = LoadSnapshotWithRetry(*snapshot_path_, FastRetry(3));
  EXPECT_EQ(gem.code(), StatusCode::kUnavailable);
  EXPECT_EQ(fault::HitCount("serve.snapshot.read"), 3u);
}

TEST_F(ChaosTest, TerminalCodesAreNotRetried) {
  // An injected CRC mismatch is corruption: retrying cannot help and
  // must not happen.
  ASSERT_TRUE(fault::Configure("serve.snapshot.crc=always/data_loss").ok());
  const uint64_t retries_before = SnapshotRetries();
  const auto gem = LoadSnapshotWithRetry(*snapshot_path_, FastRetry(3));
  EXPECT_EQ(gem.code(), StatusCode::kDataLoss);
  EXPECT_EQ(fault::HitCount("serve.snapshot.crc"), 1u);
  EXPECT_EQ(SnapshotRetries() - retries_before, 0u);
}

TEST_F(ChaosTest, SaveRenameInjectionLeavesNoArtifacts) {
  const std::string path = TempPath("chaos_rename_victim.gem");
  // TempDir persists across runs; start from a clean slate.
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  core::Gem gem = LoadModel();
  ASSERT_TRUE(fault::Configure("serve.snapshot.rename=once/internal").ok());
  EXPECT_EQ(SaveSnapshot(path, gem).code(), StatusCode::kInternal);
  // Neither a torn final file nor a leftover temp file.
  EXPECT_FALSE(std::ifstream(path).good());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  // With the failpoint exhausted the same save completes and loads.
  ASSERT_TRUE(SaveSnapshot(path, gem).ok());
  EXPECT_TRUE(LoadSnapshot(path).ok());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
}

TEST_F(ChaosTest, WorkerInjectionAnswersWithInjectedStatus) {
  FenceRegistry registry;
  ASSERT_TRUE(registry.Install("home", LoadModel()).ok());
  Engine engine(&registry, EngineOptions{/*num_threads=*/1});
  ASSERT_TRUE(fault::Configure("serve.engine.process=once/internal").ok());

  ServeRequest request;
  request.fence_id = "home";
  request.record = dataset_->test.front();
  EXPECT_EQ(engine.InferBlocking(request).status.code(),
            StatusCode::kInternal);
  // The schedule is exhausted: the identical request now serves.
  EXPECT_TRUE(engine.InferBlocking(request).status.ok());
  engine.Shutdown();
}

// --- Deadlines ------------------------------------------------------

TEST_F(ChaosTest, DeadlineExpiresInQueueBehindSlowWork) {
  FenceRegistry registry;
  ASSERT_TRUE(registry.Install("home", LoadModel()).ok());
  Engine engine(&registry, EngineOptions{/*num_threads=*/1});
  const std::shared_ptr<Fence> fence = registry.Find("home");
  ASSERT_NE(fence, nullptr);

  const uint64_t exceeded_before = DeadlineExceededCount();
  std::promise<ServeResponse> first_done;
  std::promise<ServeResponse> second_done;
  {
    // Stall the single worker on the fence mutex so the second request
    // ages past its deadline while still queued.
    std::unique_lock stall(fence->mutex);
    ServeRequest first;
    first.fence_id = "home";
    first.record = dataset_->test.front();
    ASSERT_TRUE(engine
                    .Submit(first,
                            [&](ServeResponse r) {
                              first_done.set_value(std::move(r));
                            })
                    .ok());
    while (engine.queue_depth() != 0) std::this_thread::yield();

    ServeRequest second;
    second.fence_id = "home";
    second.record = dataset_->test.front();
    second.deadline = std::chrono::milliseconds(10);
    ASSERT_TRUE(engine
                    .Submit(second,
                            [&](ServeResponse r) {
                              second_done.set_value(std::move(r));
                            })
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // First request had no deadline: it serves once the stall lifts.
  EXPECT_TRUE(first_done.get_future().get().status.ok());
  const ServeResponse expired = second_done.get_future().get();
  EXPECT_EQ(expired.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(expired.status.message().find("in queue"), std::string::npos);
  EXPECT_GE(DeadlineExceededCount() - exceeded_before, 1u);
  engine.Shutdown();
}

TEST_F(ChaosTest, DeadlineExpiresWaitingForBusyFence) {
  FenceRegistry registry;
  ASSERT_TRUE(registry.Install("home", LoadModel()).ok());
  Engine engine(&registry, EngineOptions{/*num_threads=*/1});
  const std::shared_ptr<Fence> fence = registry.Find("home");
  ASSERT_NE(fence, nullptr);

  std::promise<ServeResponse> done;
  {
    // The worker dequeues immediately (queue-side check passes) and
    // then outwaits its deadline blocked on the fence mutex.
    std::unique_lock stall(fence->mutex);
    ServeRequest request;
    request.fence_id = "home";
    request.record = dataset_->test.front();
    request.deadline = std::chrono::milliseconds(20);
    ASSERT_TRUE(engine
                    .Submit(request,
                            [&](ServeResponse r) {
                              done.set_value(std::move(r));
                            })
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  const ServeResponse expired = done.get_future().get();
  EXPECT_EQ(expired.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(expired.status.message().find("waiting for fence"),
            std::string::npos);
  engine.Shutdown();
}

TEST_F(ChaosTest, EngineDefaultDeadlineApplies) {
  FenceRegistry registry;
  ASSERT_TRUE(registry.Install("home", LoadModel()).ok());
  EngineOptions options;
  options.num_threads = 1;
  options.default_deadline = std::chrono::milliseconds(15);
  Engine engine(&registry, options);
  const std::shared_ptr<Fence> fence = registry.Find("home");

  std::promise<ServeResponse> done;
  {
    std::unique_lock stall(fence->mutex);
    ServeRequest request;  // no per-request deadline
    request.fence_id = "home";
    request.record = dataset_->test.front();
    ASSERT_TRUE(engine
                    .Submit(request,
                            [&](ServeResponse r) {
                              done.set_value(std::move(r));
                            })
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(done.get_future().get().status.code(),
            StatusCode::kDeadlineExceeded);
  engine.Shutdown();
}

TEST_F(ChaosTest, NegativeDeadlineIsRejectedAtSubmit) {
  FenceRegistry registry;
  ASSERT_TRUE(registry.Install("home", LoadModel()).ok());
  Engine engine(&registry, EngineOptions{/*num_threads=*/1});
  ServeRequest request;
  request.fence_id = "home";
  request.record = dataset_->test.front();
  request.deadline = std::chrono::milliseconds(-1);
  bool callback_ran = false;
  EXPECT_EQ(engine
                .Submit(std::move(request),
                        [&](ServeResponse) { callback_ran = true; })
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(callback_ran);
  engine.Shutdown();
}

// A reload storm with a flaky snapshot source: clients hammer the
// fence throughout and every lookup must resolve — a failed reload is
// invisible to traffic except through metrics.
TEST_F(ChaosTest, ReloadStormNeverInterruptsServing) {
  FenceRegistry registry;
  ASSERT_TRUE(registry.Install("home", LoadModel()).ok());
  Engine engine(&registry, EngineOptions{/*num_threads=*/2});
  ASSERT_TRUE(
      fault::Configure("serve.snapshot.read=prob=0.5@5/unavailable").ok());

  const uint64_t failures_before = ReloadFailures("reload");
  std::atomic<bool> stop{false};
  std::atomic<int> served{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        ServeRequest request;
        request.fence_id = "home";
        request.record = dataset_->test[served.load() %
                                        dataset_->test.size()];
        const ServeResponse response = engine.InferBlocking(request);
        // kUnavailable can only mean queue backpressure here; the
        // fence itself must always resolve.
        ASSERT_TRUE(response.status.ok() ||
                    response.status.code() == StatusCode::kUnavailable)
            << response.status.ToString();
        if (response.status.ok()) served.fetch_add(1);
      }
    });
  }

  int reload_failures = 0;
  int reload_successes = 0;
  for (int i = 0; i < 8; ++i) {
    const auto reload =
        registry.InstallFromSnapshot("home", *snapshot_path_, FastRetry(1));
    if (reload.ok()) {
      ++reload_successes;
    } else {
      ++reload_failures;
    }
    // The fence is ALWAYS resolvable, whatever the reload outcome.
    ASSERT_NE(registry.Find("home"), nullptr);
  }
  // The reload storm outpaces the clients; let traffic prove the fence
  // stayed serviceable before stopping (the ctest TIMEOUT bounds this).
  while (served.load() < 20) std::this_thread::yield();
  stop.store(true);
  for (std::thread& client : clients) client.join();
  engine.Shutdown();

  EXPECT_EQ(reload_failures + reload_successes, 8);
  EXPECT_EQ(ReloadFailures("reload") - failures_before,
            static_cast<uint64_t>(reload_failures));
  EXPECT_EQ(registry.Find("home")->generation,
            static_cast<uint64_t>(1 + reload_successes));
  EXPECT_GT(served.load(), 0);
}

}  // namespace
}  // namespace gem::serve

// Unit coverage for the gem::fault registry itself: policy grammar,
// trigger semantics (once / always / every-Nth / seeded probability),
// payload injection, counters, and the instrumented sites in layers
// below serve (thread-pool dispatch, CSV parsing). This binary only
// exists in builds configured with -DGEM_ENABLE_FAILPOINTS=ON.
#include "fault/failpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "base/thread_pool.h"
#include "rf/record_io.h"

namespace gem::fault {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Reset(); }
  void TearDown() override { Reset(); }
};

TEST_F(FailpointTest, CompiledInThisBuild) { EXPECT_TRUE(CompiledIn()); }

TEST_F(FailpointTest, UnconfiguredPointNeverFires) {
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(Evaluate("no.such.point").ok());
  }
  EXPECT_EQ(HitCount("no.such.point"), 0u);
  EXPECT_TRUE(ConfiguredPoints().empty());
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  ASSERT_TRUE(Configure("a.b.c=once/unavailable").ok());
  EXPECT_EQ(Evaluate("a.b.c").code(), StatusCode::kUnavailable);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(Evaluate("a.b.c").ok());
  }
  EXPECT_EQ(HitCount("a.b.c"), 6u);
  EXPECT_EQ(TriggerCount("a.b.c"), 1u);
}

TEST_F(FailpointTest, AlwaysFiresEveryTimeWithDefaultInternal) {
  ASSERT_TRUE(Configure("a.b.c=always").ok());
  for (int i = 0; i < 3; ++i) {
    const Status status = Evaluate("a.b.c");
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_NE(status.message().find("a.b.c"), std::string::npos);
  }
  EXPECT_EQ(TriggerCount("a.b.c"), 3u);
}

TEST_F(FailpointTest, EveryNthFiresOnMultiples) {
  ASSERT_TRUE(Configure("a.b.c=every=3/data_loss").ok());
  std::vector<int> fired_on;
  for (int hit = 1; hit <= 9; ++hit) {
    if (!Evaluate("a.b.c").ok()) fired_on.push_back(hit);
  }
  EXPECT_EQ(fired_on, (std::vector<int>{3, 6, 9}));
}

TEST_F(FailpointTest, SeededProbabilityReplaysBitIdentically) {
  const auto run = [](const std::string& spec) {
    EXPECT_TRUE(Configure(spec).ok());
    std::vector<bool> fires;
    for (int i = 0; i < 500; ++i) {
      fires.push_back(!Evaluate("p.q.r").ok());
    }
    Reset();
    return fires;
  };
  const std::vector<bool> first = run("p.q.r=prob=0.2@42/unavailable");
  const std::vector<bool> second = run("p.q.r=prob=0.2@42/unavailable");
  EXPECT_EQ(first, second);

  int fired = 0;
  for (const bool f : first) fired += f ? 1 : 0;
  // 500 Bernoulli(0.2) trials: [60, 140] is > 6 sigma around 100.
  EXPECT_GT(fired, 60);
  EXPECT_LT(fired, 140);
}

TEST_F(FailpointTest, ProbabilityZeroAndOneAreDegenerate) {
  ASSERT_TRUE(Configure("never=prob=0@7;ever=prob=1@7/not_found").ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(Evaluate("never").ok());
    EXPECT_EQ(Evaluate("ever").code(), StatusCode::kNotFound);
  }
}

TEST_F(FailpointTest, DelayPayloadSleepsBeforeReturning) {
  ASSERT_TRUE(Configure("slow=always/unavailable/delay=30").ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(Evaluate("slow").code(), StatusCode::kUnavailable);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            25);
}

TEST_F(FailpointTest, OkPayloadInjectsLatencyOnly) {
  ASSERT_TRUE(Configure("slow=always/delay=20/ok").ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(Evaluate("slow").ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            15);
  EXPECT_EQ(TriggerCount("slow"), 1u);
}

TEST_F(FailpointTest, OffRemovesThePoint) {
  ASSERT_TRUE(Configure("a=always;b=always").ok());
  EXPECT_EQ(ConfiguredPoints(), (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(Configure("a=off").ok());
  EXPECT_EQ(ConfiguredPoints(), (std::vector<std::string>{"b"}));
  EXPECT_TRUE(Evaluate("a").ok());
  EXPECT_FALSE(Evaluate("b").ok());
}

TEST_F(FailpointTest, ReconfigureReplacesPolicyAndCounters) {
  ASSERT_TRUE(Configure("a=always/unavailable").ok());
  EXPECT_EQ(Evaluate("a").code(), StatusCode::kUnavailable);
  ASSERT_TRUE(Configure("a=always/data_loss").ok());
  EXPECT_EQ(Evaluate("a").code(), StatusCode::kDataLoss);
  EXPECT_EQ(HitCount("a"), 1u);  // counters restart with the new policy
}

TEST_F(FailpointTest, MultiEntrySpecInstallsAllPoints) {
  ASSERT_TRUE(
      Configure("x=once/not_found;y=every=2/unavailable;z=always/ok").ok());
  EXPECT_EQ(ConfiguredPoints(), (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_EQ(Evaluate("x").code(), StatusCode::kNotFound);
  EXPECT_TRUE(Evaluate("y").ok());
  EXPECT_EQ(Evaluate("y").code(), StatusCode::kUnavailable);
  EXPECT_TRUE(Evaluate("z").ok());
}

TEST_F(FailpointTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "no_equals",
      "=always",
      "a=",
      "a=sometimes",
      "a=every=0",
      "a=every=abc",
      "a=prob=1.5@3",
      "a=prob=0.5@x",
      "a=always/bogus_code",
      "a=always/delay=-1",
      "a=always/delay=999999",
      "a=off/unavailable",
  };
  for (const char* spec : bad) {
    EXPECT_EQ(Configure(spec).code(), StatusCode::kInvalidArgument) << spec;
  }
}

TEST_F(FailpointTest, MalformedTailInstallsNothing) {
  EXPECT_EQ(Configure("good=always;bad=nonsense").code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(ConfiguredPoints().empty());
  EXPECT_TRUE(Evaluate("good").ok());
}

TEST_F(FailpointTest, ConcurrentEvaluateCountsEveryHit) {
  ASSERT_TRUE(Configure("racy=prob=0.5@9/unavailable").ok());
  constexpr int kThreads = 8;
  constexpr int kEvalsPerThread = 2000;
  std::atomic<uint64_t> fired{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kEvalsPerThread; ++i) {
        if (!Evaluate("racy").ok()) fired.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(HitCount("racy"), uint64_t{kThreads} * kEvalsPerThread);
  EXPECT_EQ(TriggerCount("racy"), fired.load());
}

// --- Instrumented sites below the serve layer ------------------------

TEST_F(FailpointTest, ThreadPoolDispatchAcceptsDelayInjection) {
  ASSERT_TRUE(Configure("base.thread_pool.task=every=2/delay=1/ok").ok());
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  pool.ParallelFor(64, [&](int, long begin, long end) {
    for (long i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 64 * 63 / 2);  // every task still ran
  EXPECT_GT(HitCount("base.thread_pool.task"), 0u);
}

TEST_F(FailpointTest, ThreadPoolDispatchIgnoresErrorPayloads) {
  // An error payload at a site that cannot fail must not lose tasks.
  ASSERT_TRUE(Configure("base.thread_pool.task=always/internal").ok());
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] { ran.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 16);
}

std::string WriteCsv(const std::string& name, int rows) {
  const std::string path = std::string(::testing::TempDir()) + "/" + name;
  std::ofstream out(path);
  out << "record_id,timestamp_s,inside,mac,rss_dbm,band\n";
  for (int i = 0; i < rows; ++i) {
    out << i << "," << i * 1.5 << ",1,aa:bb:0" << i % 10 << ",-55,5\n";
  }
  return path;
}

TEST_F(FailpointTest, RecordIoOpenInjectionSurfacesCleanly) {
  const std::string path = WriteCsv("fp_open.csv", 4);
  ASSERT_TRUE(Configure("rf.record_io.open=once/unavailable").ok());
  EXPECT_EQ(rf::LoadRecordsCsv(path).code(), StatusCode::kUnavailable);
  // Second load (failpoint exhausted) parses normally.
  const auto records = rf::LoadRecordsCsv(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records.value().size(), 4u);
}

TEST_F(FailpointTest, RecordIoRowInjectionAbandonsTheParse) {
  const std::string path = WriteCsv("fp_row.csv", 10);
  ASSERT_TRUE(Configure("rf.record_io.row=every=7/data_loss").ok());
  const auto records = rf::LoadRecordsCsv(path);
  EXPECT_EQ(records.code(), StatusCode::kDataLoss);
  EXPECT_EQ(HitCount("rf.record_io.row"), 7u);
}

}  // namespace
}  // namespace gem::fault
